// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// float GEMM (naive vs blocked vs pool-parallel across 64^3..512^3, with
// a machine-readable JSON summary for perf tracking), the fixed-point
// faulty-GEMM engine (clean / corrupt / bypass), the register-level cycle
// simulator, PLIF forward/backward, prune-mask construction, fault-map
// generation, and post-fab test.
//
// Usage:
//   micro_kernels [--gemm_json=PATH] [--threads=N] [google-benchmark flags]
//
// The GEMM sweep runs first and writes its summary to PATH (default
// micro_kernels_gemm.json in the CWD); google-benchmark then runs the
// registered micro-benchmarks as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "compute/gemm_kernels.h"
#include "compute/thread_pool.h"
#include "fault/fault_generator.h"
#include "fault/post_fab_test.h"
#include "fault/prune_mask.h"
#include "snn/plif.h"
#include "systolic/cycle_sim.h"
#include "systolic/faulty_gemm.h"
#include "tensor/gemm.h"

namespace {

using namespace falvolt;

tensor::Tensor random_spikes(int m, int k, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  return a;
}

tensor::Tensor random_weights(int k, int n, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor w({k, n});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return w;
}

void BM_FloatGemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  const tensor::Tensor a = random_spikes(m, k, 1);
  const tensor::Tensor w = random_weights(k, n, 2);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), w.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(256)->Arg(1024);

// Square-GEMM tier comparison: the seed's naive kernel vs the compute
// backend's blocked kernel, serial and pool-parallel.

enum class GemmTier { kNaive, kBlocked, kParallel };

void square_gemm_bench(benchmark::State& state, GemmTier tier) {
  const int s = static_cast<int>(state.range(0));
  const tensor::Tensor a = random_weights(s, s, 41);
  const tensor::Tensor b = random_weights(s, s, 42);
  tensor::Tensor c({s, s});
  for (auto _ : state) {
    switch (tier) {
      case GemmTier::kNaive:
        compute::gemm_naive(a.data(), b.data(), c.data(), s, s, s);
        break;
      case GemmTier::kBlocked:
        compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s);
        break;
      case GemmTier::kParallel:
        compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s,
                              /*accumulate=*/false,
                              compute::global_threads());
        break;
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(s) * s *
                          s);
}

void BM_GemmNaive(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kNaive);
}
void BM_GemmBlocked(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kBlocked);
}
void BM_GemmParallel(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kParallel);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmParallel)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SystolicEngineClean(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  systolic::ArrayConfig cfg;  // 256x256
  systolic::SystolicGemmEngine engine(cfg, nullptr);
  const tensor::Tensor a = random_spikes(m, k, 3);
  const tensor::Tensor w = random_weights(k, n, 4);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_SystolicEngineClean)->Arg(64)->Arg(256);

void BM_SystolicEngineCorrupt(benchmark::State& state) {
  const int faults = static_cast<int>(state.range(0));
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(5);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, faults,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(cfg, &map);
  const tensor::Tensor a = random_spikes(m, k, 6);
  const tensor::Tensor w = random_weights(k, n, 7);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineCorrupt)->Arg(8)->Arg(64)->Arg(4096);

void BM_SystolicEngineBypass(benchmark::State& state) {
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(8);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, 64,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(
      cfg, &map, systolic::SystolicGemmEngine::FaultHandling::kBypass);
  const tensor::Tensor a = random_spikes(m, k, 9);
  const tensor::Tensor w = random_weights(k, n, 10);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineBypass);

void BM_CycleSimulator(benchmark::State& state) {
  const int n_pe = static_cast<int>(state.range(0));
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = n_pe;
  systolic::SystolicArraySim sim(cfg, nullptr);
  const tensor::Tensor a = random_spikes(16, 2 * n_pe, 11);
  const tensor::Tensor w = random_weights(2 * n_pe, n_pe, 12);
  for (auto _ : state) {
    systolic::CycleStats stats;
    const tensor::Tensor c = sim.matmul(a, w, &stats);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CycleSimulator)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PlifForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::Plif plif("p");
  common::Rng rng(13);
  tensor::Tensor x({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kEval));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_PlifForward)->Arg(1024)->Arg(16384);

void BM_PlifTrainStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::PlifConfig pc;
  pc.train_vth = true;
  snn::Plif plif("p", pc);
  common::Rng rng(14);
  tensor::Tensor x({1, n});
  tensor::Tensor g({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-0.1, 0.1));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kTrain));
    }
    for (int t = 3; t >= 0; --t) {
      benchmark::DoNotOptimize(plif.backward(g, t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_PlifTrainStep)->Arg(1024)->Arg(16384);

void BM_PruneMaskBuild(benchmark::State& state) {
  common::Rng rng(15);
  const fault::FaultMap map = fault::random_fault_map(
      256, 256, static_cast<int>(state.range(0)),
      fault::worst_case_spec(16), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::build_prune_mask(map, 288, 32));
  }
}
BENCHMARK(BM_PruneMaskBuild)->Arg(64)->Arg(4096)->Arg(39321);

void BM_FaultMapGeneration(benchmark::State& state) {
  common::Rng rng(16);
  const fault::FaultSpec spec = fault::worst_case_spec(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::random_fault_map(
        256, 256, static_cast<int>(state.range(0)), spec, rng));
  }
}
BENCHMARK(BM_FaultMapGeneration)->Arg(8)->Arg(4096);

void BM_PostFabTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(17);
  const fault::FabricatedChip chip = fault::fabricate_random_chip(
      n, n, n / 4, fx::FixedFormat::q8_8(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_post_fab_test(chip));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_PostFabTest)->Arg(16)->Arg(64)->Arg(256);

// ------------------------------------------------- GEMM sweep + JSON

// Median-of-reps wall time for one kernel invocation.
double time_kernel_ms(const std::function<void()>& fn) {
  // Warm up once, then repeat until ~0.2 s of samples (>= 3 reps).
  fn();
  std::vector<double> samples;
  double total = 0.0;
  while (static_cast<int>(samples.size()) < 3 || total < 0.2) {
    common::Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
    if (samples.size() >= 64) break;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e3;
}

// naive / blocked / parallel square-GEMM sweep; returns the JSON text.
std::string run_gemm_sweep(const std::vector<int>& sizes) {
  const int threads = compute::global_threads();
  std::string json = "{\n  \"bench\": \"gemm_tiers\",\n  \"threads\": " +
                     std::to_string(threads) + ",\n  \"sizes\": [\n";
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const int s = sizes[idx];
    const tensor::Tensor a = random_weights(s, s, 51);
    const tensor::Tensor b = random_weights(s, s, 52);
    tensor::Tensor c({s, s});
    const double naive_ms = time_kernel_ms([&] {
      compute::gemm_naive(a.data(), b.data(), c.data(), s, s, s);
    });
    const double blocked_ms = time_kernel_ms([&] {
      compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s);
    });
    const double parallel_ms = time_kernel_ms([&] {
      compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s,
                            /*accumulate=*/false, threads);
    });
    const double flops = 2.0 * s * s * static_cast<double>(s);
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"size\": %d, \"naive_ms\": %.3f, \"blocked_ms\": %.3f, "
        "\"parallel_ms\": %.3f, \"blocked_speedup\": %.2f, "
        "\"parallel_speedup\": %.2f, \"parallel_gflops\": %.2f}%s\n",
        s, naive_ms, blocked_ms, parallel_ms, naive_ms / blocked_ms,
        naive_ms / parallel_ms, flops / (parallel_ms * 1e6),
        idx + 1 == sizes.size() ? "" : ",");
    json += row;
    std::printf(
        "[gemm %3d^3] naive %8.2f ms | blocked %8.2f ms (%.2fx) | "
        "parallel(%d) %8.2f ms (%.2fx)\n",
        s, naive_ms, blocked_ms, naive_ms / blocked_ms, threads,
        parallel_ms, naive_ms / parallel_ms);
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our flags; everything else goes to google-benchmark.
  std::string json_path = "micro_kernels_gemm.json";
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      json_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      compute::set_global_threads(std::atoi(argv[i] + 10));
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  const std::string json = run_gemm_sweep({64, 128, 256, 512});
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("[gemm] JSON summary written to %s\n\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[gemm] cannot write %s\n", json_path.c_str());
    }
  }

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
