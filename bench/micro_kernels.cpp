// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// float GEMM (naive vs blocked vs pool-parallel across 64^3..512^3), the
// fixed-point faulty-GEMM engine (clean / corrupt / bypass, vectorized vs
// forced-scalar), the register-level cycle simulator, PLIF
// forward/backward, prune-mask construction, fault-map generation, and
// post-fab test.
//
// Usage:
//   micro_kernels [--out_dir=DIR] [--json=NAME] [--gemm_json=NAME]
//                 [--threads=N] [google-benchmark flags]
//
// The perf-trajectory sweeps (GEMM tiers, faulty-GEMM engine, cycle sim)
// run first and write one machine-readable summary to --json (default
// micro_kernels.json, 'none' disables); google-benchmark then runs the
// registered micro-benchmarks as usual. --out_dir places every relative
// output under DIR, created with parents (default bench_out/ — CI and
// local runs stop littering the invocation CWD; pass --out_dir= to
// write relative paths as-is); --gemm_json additionally writes the
// legacy GEMM-tier-only summary.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "common/version.h"
#include "compute/gemm_kernels.h"
#include "compute/simd.h"
#include "compute/thread_pool.h"
#include "fault/fault_generator.h"
#include "fault/post_fab_test.h"
#include "fault/prune_mask.h"
#include "snn/plif.h"
#include "systolic/cycle_sim.h"
#include "systolic/faulty_gemm.h"
#include "tensor/gemm.h"

namespace {

using namespace falvolt;

tensor::Tensor random_spikes(int m, int k, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  return a;
}

tensor::Tensor random_weights(int k, int n, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor w({k, n});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return w;
}

void BM_FloatGemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  const tensor::Tensor a = random_spikes(m, k, 1);
  const tensor::Tensor w = random_weights(k, n, 2);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), w.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(256)->Arg(1024);

// Square-GEMM tier comparison: the seed's naive kernel vs the compute
// backend's blocked kernel, serial and pool-parallel.

enum class GemmTier { kNaive, kBlocked, kParallel };

void square_gemm_bench(benchmark::State& state, GemmTier tier) {
  const int s = static_cast<int>(state.range(0));
  const tensor::Tensor a = random_weights(s, s, 41);
  const tensor::Tensor b = random_weights(s, s, 42);
  tensor::Tensor c({s, s});
  for (auto _ : state) {
    switch (tier) {
      case GemmTier::kNaive:
        compute::gemm_naive(a.data(), b.data(), c.data(), s, s, s);
        break;
      case GemmTier::kBlocked:
        compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s);
        break;
      case GemmTier::kParallel:
        compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s,
                              /*accumulate=*/false,
                              compute::global_threads());
        break;
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(s) * s *
                          s);
}

void BM_GemmNaive(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kNaive);
}
void BM_GemmBlocked(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kBlocked);
}
void BM_GemmParallel(benchmark::State& state) {
  square_gemm_bench(state, GemmTier::kParallel);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmParallel)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SystolicEngineClean(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  systolic::ArrayConfig cfg;  // 256x256
  systolic::SystolicGemmEngine engine(cfg, nullptr);
  const tensor::Tensor a = random_spikes(m, k, 3);
  const tensor::Tensor w = random_weights(k, n, 4);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_SystolicEngineClean)->Arg(64)->Arg(256);

void BM_SystolicEngineCorrupt(benchmark::State& state) {
  const int faults = static_cast<int>(state.range(0));
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(5);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, faults,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(cfg, &map);
  const tensor::Tensor a = random_spikes(m, k, 6);
  const tensor::Tensor w = random_weights(k, n, 7);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineCorrupt)->Arg(8)->Arg(64)->Arg(4096);

void BM_SystolicEngineBypass(benchmark::State& state) {
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(8);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, 64,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(
      cfg, &map, systolic::SystolicGemmEngine::FaultHandling::kBypass);
  const tensor::Tensor a = random_spikes(m, k, 9);
  const tensor::Tensor w = random_weights(k, n, 10);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineBypass);

void BM_CycleSimulator(benchmark::State& state) {
  const int n_pe = static_cast<int>(state.range(0));
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = n_pe;
  systolic::SystolicArraySim sim(cfg, nullptr);
  const tensor::Tensor a = random_spikes(16, 2 * n_pe, 11);
  const tensor::Tensor w = random_weights(2 * n_pe, n_pe, 12);
  for (auto _ : state) {
    systolic::CycleStats stats;
    const tensor::Tensor c = sim.matmul(a, w, &stats);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CycleSimulator)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PlifForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::Plif plif("p");
  common::Rng rng(13);
  tensor::Tensor x({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kEval));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_PlifForward)->Arg(1024)->Arg(16384);

void BM_PlifTrainStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::PlifConfig pc;
  pc.train_vth = true;
  snn::Plif plif("p", pc);
  common::Rng rng(14);
  tensor::Tensor x({1, n});
  tensor::Tensor g({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-0.1, 0.1));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kTrain));
    }
    for (int t = 3; t >= 0; --t) {
      benchmark::DoNotOptimize(plif.backward(g, t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_PlifTrainStep)->Arg(1024)->Arg(16384);

void BM_PruneMaskBuild(benchmark::State& state) {
  common::Rng rng(15);
  const fault::FaultMap map = fault::random_fault_map(
      256, 256, static_cast<int>(state.range(0)),
      fault::worst_case_spec(16), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::build_prune_mask(map, 288, 32));
  }
}
BENCHMARK(BM_PruneMaskBuild)->Arg(64)->Arg(4096)->Arg(39321);

void BM_FaultMapGeneration(benchmark::State& state) {
  common::Rng rng(16);
  const fault::FaultSpec spec = fault::worst_case_spec(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::random_fault_map(
        256, 256, static_cast<int>(state.range(0)), spec, rng));
  }
}
BENCHMARK(BM_FaultMapGeneration)->Arg(8)->Arg(4096);

void BM_PostFabTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(17);
  const fault::FabricatedChip chip = fault::fabricate_random_chip(
      n, n, n / 4, fx::FixedFormat::q8_8(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_post_fab_test(chip));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_PostFabTest)->Arg(16)->Arg(64)->Arg(256);

// ------------------------------------------------- GEMM sweep + JSON

// Median-of-reps wall time for one kernel invocation.
double time_kernel_ms(const std::function<void()>& fn) {
  // Warm up once, then repeat until ~0.2 s of samples (>= 3 reps).
  fn();
  std::vector<double> samples;
  double total = 0.0;
  while (static_cast<int>(samples.size()) < 3 || total < 0.2) {
    common::Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
    if (samples.size() >= 64) break;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e3;
}

// naive / blocked / parallel square-GEMM sweep; returns the JSON array
// body (the "gemm_tiers" entries).
std::string run_gemm_sweep(const std::vector<int>& sizes) {
  const int threads = compute::global_threads();
  std::string json;
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const int s = sizes[idx];
    const tensor::Tensor a = random_weights(s, s, 51);
    const tensor::Tensor b = random_weights(s, s, 52);
    tensor::Tensor c({s, s});
    const double naive_ms = time_kernel_ms([&] {
      compute::gemm_naive(a.data(), b.data(), c.data(), s, s, s);
    });
    const double blocked_ms = time_kernel_ms([&] {
      compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s);
    });
    const double parallel_ms = time_kernel_ms([&] {
      compute::gemm_blocked(a.data(), b.data(), c.data(), s, s, s,
                            /*accumulate=*/false, threads);
    });
    const double flops = 2.0 * s * s * static_cast<double>(s);
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"size\": %d, \"naive_ms\": %.3f, \"blocked_ms\": %.3f, "
        "\"parallel_ms\": %.3f, \"blocked_speedup\": %.2f, "
        "\"parallel_speedup\": %.2f, \"parallel_gflops\": %.2f}%s\n",
        s, naive_ms, blocked_ms, parallel_ms, naive_ms / blocked_ms,
        naive_ms / parallel_ms, flops / (parallel_ms * 1e6),
        idx + 1 == sizes.size() ? "" : ",");
    json += row;
    std::printf(
        "[gemm %3d^3] naive %8.2f ms | blocked %8.2f ms (%.2fx) | "
        "parallel(%d) %8.2f ms (%.2fx)\n",
        s, naive_ms, blocked_ms, naive_ms / blocked_ms, threads,
        parallel_ms, naive_ms / parallel_ms);
  }
  return json;
}

// Faulty-GEMM engine sweep over the actual eval hot path: per (mode,
// array size), the vectorized engine vs the FALVOLT_FORCE_SCALAR
// reference on the same operands, so the JSON carries the measured
// fast-path speedup. Returns the "faulty_gemm" JSON array body.
std::string run_faulty_gemm_sweep() {
  struct Case {
    const char* mode;
    int array;
    int faults;
    systolic::SystolicGemmEngine::FaultHandling handling;
  };
  const std::vector<Case> cases = {
      {"clean", 64, 0, systolic::SystolicGemmEngine::FaultHandling::kCorrupt},
      {"clean", 256, 0,
       systolic::SystolicGemmEngine::FaultHandling::kCorrupt},
      {"corrupt", 64, 16,
       systolic::SystolicGemmEngine::FaultHandling::kCorrupt},
      {"corrupt", 256, 64,
       systolic::SystolicGemmEngine::FaultHandling::kCorrupt},
      {"bypass", 64, 16,
       systolic::SystolicGemmEngine::FaultHandling::kBypass},
      {"bypass", 256, 64,
       systolic::SystolicGemmEngine::FaultHandling::kBypass},
  };
  const int m = 256, k = 72, n = 64;
  const tensor::Tensor a = random_spikes(m, k, 61);
  const tensor::Tensor w = random_weights(k, n, 62);
  std::string json;
  for (std::size_t idx = 0; idx < cases.size(); ++idx) {
    const Case& cs = cases[idx];
    systolic::ArrayConfig cfg;
    cfg.rows = cfg.cols = cs.array;
    common::Rng rng(63 + static_cast<std::uint64_t>(idx));
    fault::FaultMap map(cs.array, cs.array);
    if (cs.faults > 0) {
      map = fault::random_fault_map(
          cs.array, cs.array, cs.faults,
          fault::worst_case_spec(cfg.format.total_bits()), rng);
    }
    systolic::SystolicGemmEngine engine(
        cfg, cs.faults > 0 ? &map : nullptr, cs.handling);
    tensor::Tensor c({m, n});
    engine.set_force_scalar(false);
    const double vector_ms = time_kernel_ms([&] {
      engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    });
    engine.set_force_scalar(true);
    const double scalar_ms = time_kernel_ms([&] {
      engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    });
    // Path-taken counts for ONE vectorized invocation: delta the
    // engine's cumulative counters around a single untimed run, so the
    // JSON carries deterministic per-run() numbers (the timed loops
    // above run an unknown number of iterations). Sanity invariant:
    // vector + scalar + fallback columns plus reference_rows * n covers
    // every output element exactly once.
    engine.set_force_scalar(false);
    const auto paths_before = engine.path_counts();
    const std::uint64_t steps_before = engine.accumulate_steps();
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    const auto paths = engine.path_counts();
    const unsigned long long vector_cols = paths.vector_cols - paths_before.vector_cols;
    const unsigned long long scalar_cols = paths.scalar_cols - paths_before.scalar_cols;
    const unsigned long long fallback_cols =
        paths.fallback_cols - paths_before.fallback_cols;
    const unsigned long long reference_rows =
        paths.reference_rows - paths_before.reference_rows;
    const unsigned long long steps = engine.accumulate_steps() - steps_before;
    const double items = static_cast<double>(m) * k * n;
    char row[768];
    std::snprintf(
        row, sizeof(row),
        "    {\"mode\": \"%s\", \"array\": %d, \"faults\": %d, "
        "\"m\": %d, \"k\": %d, \"n\": %d, \"scalar_ms\": %.4f, "
        "\"vector_ms\": %.4f, \"speedup\": %.2f, "
        "\"vector_mitems_per_s\": %.1f, \"vector_cols\": %llu, "
        "\"scalar_cols\": %llu, \"fallback_cols\": %llu, "
        "\"reference_rows\": %llu, \"accumulate_steps\": %llu}%s\n",
        cs.mode, cs.array, cs.faults, m, k, n, scalar_ms, vector_ms,
        scalar_ms / vector_ms, items / (vector_ms * 1e3), vector_cols,
        scalar_cols, fallback_cols, reference_rows, steps,
        idx + 1 == cases.size() ? "" : ",");
    json += row;
    std::printf(
        "[faulty_gemm %-7s N=%-3d] scalar %8.3f ms | vector %8.3f ms "
        "(%.2fx)\n",
        cs.mode, cs.array, scalar_ms, vector_ms, scalar_ms / vector_ms);
  }
  return json;
}

// Register-level cycle-simulator sweep (the bit-accuracy oracle — slow
// by construction, tracked so an accidental slowdown is still caught).
// Returns the "cycle_sim" JSON array body.
std::string run_cycle_sim_sweep() {
  const std::vector<int> sizes = {8, 16, 32};
  std::string json;
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const int n_pe = sizes[idx];
    systolic::ArrayConfig cfg;
    cfg.rows = cfg.cols = n_pe;
    systolic::SystolicArraySim sim(cfg, nullptr);
    const tensor::Tensor a = random_spikes(16, 2 * n_pe, 71);
    const tensor::Tensor w = random_weights(2 * n_pe, n_pe, 72);
    const double ms = time_kernel_ms([&] {
      systolic::CycleStats stats;
      const tensor::Tensor c = sim.matmul(a, w, &stats);
      benchmark::DoNotOptimize(c.data());
    });
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"array\": %d, \"ms\": %.4f}%s\n", n_pe, ms,
                  idx + 1 == sizes.size() ? "" : ",");
    json += row;
    std::printf("[cycle_sim N=%-3d] %8.3f ms\n", n_pe, ms);
  }
  return json;
}

// Resolve a possibly relative output path under --out_dir, creating the
// directory (with parents) on demand.
std::string resolve_out_path(const std::string& out_dir,
                             const std::string& name) {
  const std::filesystem::path p(name);
  if (out_dir.empty() || p.is_absolute()) return name;
  std::filesystem::create_directories(out_dir);
  return (std::filesystem::path(out_dir) / p).string();
}

bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("[%s] JSON summary written to %s\n", what, path.c_str());
    return true;
  }
  std::fprintf(stderr, "[%s] cannot write %s\n", what, path.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our flags; everything else goes to google-benchmark.
  std::string out_dir = "bench_out";
  std::string json_name = "micro_kernels.json";
  std::string gemm_json_name;  // legacy GEMM-tier-only summary, off by default
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out_dir=", 10) == 0) {
      out_dir = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_name = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      gemm_json_name = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      compute::set_global_threads(std::atoi(argv[i] + 10));
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  const std::string gemm_rows = run_gemm_sweep({64, 128, 256, 512});
  const std::string faulty_rows = run_faulty_gemm_sweep();
  const std::string cycle_rows = run_cycle_sim_sweep();

  if (!json_name.empty() && json_name != "none") {
    std::string json = "{\n  \"bench\": \"micro_kernels\",\n";
    json += "  \"version\": \"" + std::string(falvolt::kFalvoltVersion) +
            "\",\n";
    json += "  \"simd\": \"" + std::string(compute::simd_backend()) +
            "\",\n";
    json += "  \"threads\": " + std::to_string(compute::global_threads()) +
            ",\n";
    json += "  \"gemm_tiers\": [\n" + gemm_rows + "  ],\n";
    json += "  \"faulty_gemm\": [\n" + faulty_rows + "  ],\n";
    json += "  \"cycle_sim\": [\n" + cycle_rows + "  ]\n}\n";
    write_text_file(resolve_out_path(out_dir, json_name), json,
                    "micro_kernels");
  }
  if (!gemm_json_name.empty() && gemm_json_name != "none") {
    const std::string legacy =
        "{\n  \"bench\": \"gemm_tiers\",\n  \"threads\": " +
        std::to_string(compute::global_threads()) + ",\n  \"sizes\": [\n" +
        gemm_rows + "  ]\n}\n";
    write_text_file(resolve_out_path(out_dir, gemm_json_name), legacy,
                    "gemm");
  }
  std::printf("\n");

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
