// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// float GEMM, the fixed-point faulty-GEMM engine (clean / corrupt /
// bypass), the register-level cycle simulator, PLIF forward/backward,
// prune-mask construction, fault-map generation, and post-fab test.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fault/fault_generator.h"
#include "fault/post_fab_test.h"
#include "fault/prune_mask.h"
#include "snn/plif.h"
#include "systolic/cycle_sim.h"
#include "systolic/faulty_gemm.h"
#include "tensor/gemm.h"

namespace {

using namespace falvolt;

tensor::Tensor random_spikes(int m, int k, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  return a;
}

tensor::Tensor random_weights(int k, int n, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor w({k, n});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return w;
}

void BM_FloatGemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  const tensor::Tensor a = random_spikes(m, k, 1);
  const tensor::Tensor w = random_weights(k, n, 2);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    tensor::gemm(a.data(), w.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(256)->Arg(1024);

void BM_SystolicEngineClean(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 72, n = 8;
  systolic::ArrayConfig cfg;  // 256x256
  systolic::SystolicGemmEngine engine(cfg, nullptr);
  const tensor::Tensor a = random_spikes(m, k, 3);
  const tensor::Tensor w = random_weights(k, n, 4);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m) * k *
                          n);
}
BENCHMARK(BM_SystolicEngineClean)->Arg(64)->Arg(256);

void BM_SystolicEngineCorrupt(benchmark::State& state) {
  const int faults = static_cast<int>(state.range(0));
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(5);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, faults,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(cfg, &map);
  const tensor::Tensor a = random_spikes(m, k, 6);
  const tensor::Tensor w = random_weights(k, n, 7);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineCorrupt)->Arg(8)->Arg(64)->Arg(4096);

void BM_SystolicEngineBypass(benchmark::State& state) {
  const int m = 256, k = 72, n = 8;
  systolic::ArrayConfig cfg;
  common::Rng rng(8);
  const fault::FaultMap map = fault::random_fault_map(
      cfg.rows, cfg.cols, 64,
      fault::worst_case_spec(cfg.format.total_bits()), rng);
  systolic::SystolicGemmEngine engine(
      cfg, &map, systolic::SystolicGemmEngine::FaultHandling::kBypass);
  const tensor::Tensor a = random_spikes(m, k, 9);
  const tensor::Tensor w = random_weights(k, n, 10);
  tensor::Tensor c({m, n});
  for (auto _ : state) {
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SystolicEngineBypass);

void BM_CycleSimulator(benchmark::State& state) {
  const int n_pe = static_cast<int>(state.range(0));
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = n_pe;
  systolic::SystolicArraySim sim(cfg, nullptr);
  const tensor::Tensor a = random_spikes(16, 2 * n_pe, 11);
  const tensor::Tensor w = random_weights(2 * n_pe, n_pe, 12);
  for (auto _ : state) {
    systolic::CycleStats stats;
    const tensor::Tensor c = sim.matmul(a, w, &stats);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CycleSimulator)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PlifForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::Plif plif("p");
  common::Rng rng(13);
  tensor::Tensor x({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kEval));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_PlifForward)->Arg(1024)->Arg(16384);

void BM_PlifTrainStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  snn::PlifConfig pc;
  pc.train_vth = true;
  snn::Plif plif("p", pc);
  common::Rng rng(14);
  tensor::Tensor x({1, n});
  tensor::Tensor g({1, n});
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto& v : g) v = static_cast<float>(rng.uniform(-0.1, 0.1));
  for (auto _ : state) {
    plif.reset_state();
    for (int t = 0; t < 4; ++t) {
      benchmark::DoNotOptimize(plif.forward(x, t, snn::Mode::kTrain));
    }
    for (int t = 3; t >= 0; --t) {
      benchmark::DoNotOptimize(plif.backward(g, t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_PlifTrainStep)->Arg(1024)->Arg(16384);

void BM_PruneMaskBuild(benchmark::State& state) {
  common::Rng rng(15);
  const fault::FaultMap map = fault::random_fault_map(
      256, 256, static_cast<int>(state.range(0)),
      fault::worst_case_spec(16), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::build_prune_mask(map, 288, 32));
  }
}
BENCHMARK(BM_PruneMaskBuild)->Arg(64)->Arg(4096)->Arg(39321);

void BM_FaultMapGeneration(benchmark::State& state) {
  common::Rng rng(16);
  const fault::FaultSpec spec = fault::worst_case_spec(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::random_fault_map(
        256, 256, static_cast<int>(state.range(0)), spec, rng));
  }
}
BENCHMARK(BM_FaultMapGeneration)->Arg(8)->Arg(4096);

void BM_PostFabTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(17);
  const fault::FabricatedChip chip = fault::fabricate_random_chip(
      n, n, n / 4, fx::FixedFormat::q8_8(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_post_fab_test(chip));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_PostFabTest)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
