// sweep_merge — union sharded scenario-result stores, maintain the
// destination store (GC + segment compaction), and emit the final
// figure tables.
//
// A multi-machine sweep runs `fig<X> --shard i/n --store <dir_i>` once
// per shard; each shard publishes its cells (content-addressed) and the
// full grid manifest into its own store. This tool then:
//
//   1. unions the shard stores into --into (records are re-validated
//      before import; a corrupt shard record is skipped and reported,
//      manifests are carried over; a --from that names a missing or
//      empty store is an error, not a silent no-op),
//   2. optionally garbage-collects --into (--prune): mark-and-sweep
//      over manifest reachability — records no manifest references are
//      deleted, reachable records are re-validated (frame checksum AND
//      payload codec, so stale-format records from an epoch bump are
//      reclaimed too) and dropped when damaged; fully-dead or damaged
//      segments are deleted whole. Deleting is always safe: the worst
//      case is a recompute on the next sweep,
//   3. optionally compacts --into (--compact): packs the loose `.rec`
//      records into one indexed append-only segment file (segment.h),
//      durably published BEFORE the loose copies are deleted, so a
//      crash mid-compact loses nothing and a re-run converges. Reads
//      keep working throughout: sweeps open the store as loose objects
//      layered over segments,
//   4. rebuilds the complete grid in manifest order from the merged
//      store (loose or segmented — the read chain is the same), and
//   5. emits the generic figure table (--csv) — byte-identical to what
//      a single unsharded sweep of the same grid produces, because every
//      cell value is content-addressed by everything that determines
//      it — and the machine-readable summary (--json), whose per-cell
//      metrics/fingerprints match the unsharded run's but whose timing
//      fields (per-cell seconds, the "run" line) reflect the shard runs
//      that actually computed the cells.
//
// The bench's own figure CSV/stdout tables can afterwards be produced
// with zero recomputation by re-running the bench against the merged
// store (all cells hit) — compacted or not.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/json.h"
#include "core/sweep.h"
#include "store/compact.h"
#include "store/gc.h"
#include "store/manifest.h"
#include "store/result_store.h"
#include "store/stats.h"

using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("sweep_merge");
  cli.add_string("into", "",
                 "destination store spec: local:<dir>, segment:<dir> "
                 "(read-only — table emission and --list only), or a "
                 "bare directory path (created if missing)");
  cli.add_string("from", "",
                 "comma list of shard store specs (same grammar as "
                 "--into) to union into --into ('' = only emit tables "
                 "from --into)");
  cli.add_string("bench", "",
                 "bench whose grid to emit (selects the manifest; "
                 "required with --csv/--json unless --manifest is given)");
  cli.add_string("manifest", "",
                 "explicit manifest file defining the grid and its order "
                 "(overrides --bench manifest discovery)");
  cli.add_string("csv", "", "write the merged generic figure table here");
  cli.add_string("json", "", "write the merged sweep JSON summary here");
  cli.add_bool("list", false,
               "print the merged store's usage stats (records + bytes per "
               "bench, loose/segment split, provenance epoch histogram, "
               "dedup/stale counts) and its manifests");
  cli.add_string("stats-json", "",
                 "write the --list usage stats machine-readably to this "
                 "path, in the same flat-sample JSON schema as the fleet "
                 "summary's \"metrics\" block ('' = disabled)");
  cli.add_bool("prune", false,
               "garbage-collect --into after merging: delete records no "
               "manifest references and reachable records that fail "
               "re-validation; delete fully-dead segments. Run only while "
               "no sweep is writing to the store");
  cli.add_bool("compact", false,
               "pack --into's loose records into an indexed segment file "
               "(published durably before any loose copy is deleted; "
               "corrupt loose records are left for --prune). Run only "
               "while no sweep is writing to the store");
  cli.add_string("faults", "",
                 "I/O fault-injection spec (see the benches' --faults; '' "
                 "= $FALVOLT_FAULTS, none = disabled) — faults merge/"
                 "compact/prune store I/O the same way");
  if (!cli.parse(argc, argv)) return 0;
  bench::FaultScope fault_scope(cli.get_string("faults"));

  if (cli.get_string("into").empty()) {
    std::fprintf(stderr, "sweep_merge: --into is required\n%s",
                 cli.usage().c_str());
    return 1;
  }
  const std::vector<std::string> from_dirs =
      bench::split_list(cli.get_string("from"));
  // Parse every spec up front: an unknown scheme or empty path exits 1
  // with the supported list before anything is opened or created.
  store::StoreSpec into_spec;
  try {
    into_spec = store::parse_store_spec(cli.get_string("into"));
    for (const std::string& dir : from_dirs) {
      (void)store::parse_store_spec(dir);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "sweep_merge: %s\n", e.what());
    return 1;
  }
  const bool into_writable = into_spec.scheme != "segment";
  if (!into_writable &&
      (!from_dirs.empty() || cli.get_bool("prune") ||
       cli.get_bool("compact"))) {
    std::fprintf(stderr,
                 "sweep_merge: --into %s is a read-only segment: store — "
                 "merge/--prune/--compact need a writable local:<dir> or "
                 "bare-path destination\n",
                 cli.get_string("into").c_str());
    return 1;
  }
  // Creating --into is right when shard stores are being merged INTO
  // it; with no --from, every operation (prune, compact, list, table
  // emission) reads an existing store — a typo'd path must fail, not
  // materialize an empty store and report a successful no-op.
  if (from_dirs.empty() && !store::store_spec_exists(cli.get_string("into"))) {
    std::fprintf(stderr,
                 "sweep_merge: --into %s: no result store there (and no "
                 "--from to merge into it)\n",
                 cli.get_string("into").c_str());
    return 1;
  }
  // Every merge source must already BE a store with content: opening a
  // typo'd path would create an empty store there and "merge" nothing,
  // and a sharded pipeline that silently unions zero records emits an
  // empty table downstream instead of failing the merge step. Validated
  // BEFORE --into is created, so a failed merge does not leave behind
  // an empty destination husk that would satisfy the guard above next
  // time.
  for (const std::string& dir : from_dirs) {
    if (!store::store_spec_exists(dir)) {
      std::fprintf(stderr, "sweep_merge: --from %s: no result store there\n",
                   dir.c_str());
      return 1;
    }
    const auto src = store::open_store(dir, {}, /*create=*/false);
    if (src->fingerprints().empty() && src->manifests("").empty()) {
      std::fprintf(stderr,
                   "sweep_merge: --from %s: store is empty (no records, no "
                   "manifests) — did the shard run with --store?\n",
                   dir.c_str());
      return 1;
    }
  }
  // A fleet still publishing into any involved store means a merge or
  // table emission would capture a half-published shard: a "complete"
  // looking CSV missing the cells that land a second later. The sweep
  // engine and the fleet daemon hold pid-stamped in-progress markers
  // (store::InProgressGuard) for exactly this check; dead markers from
  // SIGKILLed runs are reaped, only LIVE publishers block.
  {
    std::vector<std::string> roots = {into_spec.path};
    for (const std::string& dir : from_dirs) {
      roots.push_back(store::parse_store_spec(dir).path);
    }
    bool busy = false;
    for (const std::string& root : roots) {
      for (const int pid : store::live_inprogress_pids(root)) {
        std::fprintf(stderr,
                     "sweep_merge: store %s: a sweep (pid %d) is still "
                     "publishing into it — wait for the fleet to finish "
                     "before merging or emitting tables\n",
                     root.c_str(), pid);
        busy = true;
      }
    }
    if (busy) return 1;
  }
  // The loose-objects handle (maintenance: prune/compact/list are
  // physical-layout operations; read-only for a segment: destination)
  // and the layered read chain over loose + segments (everything
  // content-addressed goes through this).
  store::LocalDirStore dst_local(into_spec.path, /*create=*/into_writable);
  const auto dst = store::open_store(cli.get_string("into"), {},
                                     /*create=*/into_writable);

  for (const std::string& dir : from_dirs) {
    const auto src = store::open_store(dir, {}, /*create=*/false);
    const store::MergeStats stats = store::merge_records(*dst, *src);
    int manifests = 0;
    for (const store::Manifest& m : src->manifests("")) {
      dst->put_manifest(m);
      ++manifests;
    }
    std::printf("[merge] %s: %d record(s) imported, %d already present, "
                "%d corrupt skipped, %d manifest(s)\n",
                dir.c_str(), stats.copied, stats.present, stats.corrupt,
                manifests);
  }

  if (cli.get_bool("prune")) {
    // The payload check decodes through the scenario-result codec, so
    // records whose frame survived but whose payload an epoch/codec
    // bump obsoleted are reclaimed as well (they could only ever read
    // as a miss).
    const store::GcStats gc =
        store::prune_store(dst_local, [](const std::string& payload) {
          core::ScenarioResult r;
          return core::decode_scenario_result(payload, r);
        });
    std::printf("[prune] %s: %s\n", dst_local.root().c_str(),
                gc.to_string().c_str());
  }

  if (cli.get_bool("compact")) {
    const store::CompactStats stats = store::compact_store(dst_local);
    std::printf("[compact] %s: %s\n", dst_local.root().c_str(),
                store::to_text(stats).c_str());
  }

  if (cli.get_bool("list") || !cli.get_string("stats-json").empty()) {
    // Compaction/dedup accounting: bytes and records per bench (charged
    // through manifest reachability), the loose/segment split, the
    // provenance epoch histogram, and the stale/unreadable populations
    // --prune would reclaim. One scan serves both the human --list block
    // and the machine-readable --stats-json dump.
    const store::StoreStats stats = store::collect_store_stats(
        dst_local,
        [](const std::string& payload) -> std::optional<std::uint32_t> {
          core::ScenarioResult r;
          if (!core::decode_scenario_result(payload, r)) return std::nullopt;
          return r.provenance.store_epoch;
        });
    if (cli.get_bool("list")) {
      std::printf("[store] %s\n", dst_local.root().c_str());
      std::fputs(stats.to_text().c_str(), stdout);
      for (const std::string& path : store::list_manifests(dst_local)) {
        const auto m = store::read_manifest(path);
        std::printf("[store]   manifest %s (%s, %zu cell(s))\n", path.c_str(),
                    m ? m->bench.c_str() : "UNREADABLE",
                    m ? m->entries.size() : 0);
      }
    }
    if (!cli.get_string("stats-json").empty()) {
      std::ofstream out(cli.get_string("stats-json"));
      if (!out) {
        std::fprintf(stderr, "sweep_merge: cannot open %s\n",
                     cli.get_string("stats-json").c_str());
        return 1;
      }
      out << "{\n  \"store\": \"" << common::json_escape(dst_local.root())
          << "\",\n  \"store_stats\": " << stats.to_json(/*indent=*/2)
          << "\n}\n";
      std::printf("[store] usage stats written to %s\n",
                  cli.get_string("stats-json").c_str());
    }
  }

  const std::string csv_path = cli.get_string("csv");
  const std::string json_path = cli.get_string("json");
  if (csv_path.empty() && json_path.empty()) return 0;

  // Locate the grid definition.
  std::optional<store::Manifest> manifest;
  if (!cli.get_string("manifest").empty()) {
    manifest = store::read_manifest(cli.get_string("manifest"));
    if (!manifest) {
      std::fprintf(stderr, "sweep_merge: cannot read manifest %s\n",
                   cli.get_string("manifest").c_str());
      return 1;
    }
  } else {
    if (cli.get_string("bench").empty()) {
      std::fprintf(stderr,
                   "sweep_merge: --csv/--json need --bench or "
                   "--manifest to define the grid\n");
      return 1;
    }
    const std::vector<std::string> candidates =
        store::list_manifests(dst_local, cli.get_string("bench"));
    if (candidates.empty()) {
      std::fprintf(stderr,
                   "sweep_merge: no manifest for bench '%s' in %s (did "
                   "the shards run with --store?)\n",
                   cli.get_string("bench").c_str(), dst_local.root().c_str());
      return 1;
    }
    if (candidates.size() > 1) {
      std::fprintf(stderr,
                   "sweep_merge: %zu grids for bench '%s' — pick one "
                   "with --manifest:\n",
                   candidates.size(), cli.get_string("bench").c_str());
      for (const std::string& c : candidates) {
        std::fprintf(stderr, "  %s\n", c.c_str());
      }
      return 1;
    }
    manifest = store::read_manifest(candidates.front());
    if (!manifest) {
      std::fprintf(stderr, "sweep_merge: cannot read manifest %s\n",
                   candidates.front().c_str());
      return 1;
    }
  }

  // Rebuild the complete grid, in manifest (= grid) order, through the
  // layered read chain (a compacted store serves every cell from its
  // segments; a freshly written segment is NOT yet visible through a
  // chain opened earlier, so reopen after --compact).
  const auto reader = store::open_store(cli.get_string("into"), {},
                                        /*create=*/into_writable);
  core::ResultTable table(manifest->entries.size());
  std::vector<std::string> missing;
  for (std::size_t i = 0; i < manifest->entries.size(); ++i) {
    const auto& [fp, key] = manifest->entries[i];
    const std::optional<std::string> payload = reader->get(fp);
    core::ScenarioResult r;
    if (!payload || !core::decode_scenario_result(*payload, r) ||
        r.scenario.key != key) {
      missing.push_back(key + " (" + fp.substr(0, 16) + "...)");
      continue;
    }
    table.put_cached(i, std::move(r));
  }
  if (!missing.empty()) {
    std::fprintf(stderr,
                 "sweep_merge: grid '%s' is missing %zu of %zu cell(s) — "
                 "did every shard run and merge?\n",
                 manifest->bench.c_str(), missing.size(),
                 manifest->entries.size());
    for (const std::string& m : missing) {
      std::fprintf(stderr, "  %s\n", m.c_str());
    }
    return 2;
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "sweep_merge: cannot open %s\n",
                   csv_path.c_str());
      return 1;
    }
    out << table.to_csv();
    std::printf("[merge] %s: %zu-cell table written to %s\n",
                manifest->bench.c_str(), table.size(), csv_path.c_str());
  }
  if (!json_path.empty()) {
    table.write_json(json_path, manifest->bench);
    std::printf("[merge] %s: JSON summary written to %s\n",
                manifest->bench.c_str(), json_path.c_str());
  }
  return 0;
}
