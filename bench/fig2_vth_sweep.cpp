// Fig. 2 — motivational case study: retraining accuracy as a function of
// a manually chosen, fixed threshold voltage.
//
// Reproduces: MNIST and DVS-Gesture classifiers, 30% and 60% faulty PEs
// (MSB sa1) on a 256x256 array, fault-aware pruning followed by
// retraining with V_th frozen at each value in {0.45, 0.5, 0.55, 0.7}.
// The paper's point: the best fixed V_th depends on the dataset AND the
// fault rate, and a wrong pick costs tens of accuracy points — which is
// what motivates learning V_th (FalVolt).

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig2_vth_sweep");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 2",
             "Retraining accuracy vs fixed threshold voltage at 30% / 60% "
             "faulty PEs (motivates FalVolt)");

  const bool fast = cli.get_bool("fast");
  const std::vector<float> vths = {0.45f, 0.5f, 0.55f, 0.7f, 1.0f};
  const std::vector<double> rates = {0.30, 0.60};

  std::vector<std::string> header = {"series"};
  for (const float v : vths) {
    header.push_back(common::TextTable::format(v, 2));
  }
  common::TextTable table(header);
  common::CsvWriter csv(fb::csv_path("fig2_vth_sweep"),
                        {"dataset", "fault_rate_percent", "vth", "accuracy"});

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kDvsGesture}) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    fb::BaselineKeeper keeper(wl);
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);

    for (const double rate : rates) {
      common::Rng rng(4000 + static_cast<int>(rate * 100));
      const systolic::ArrayConfig array = fb::experiment_array(cli);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      std::vector<double> row;
      for (const float vth : vths) {
        keeper.restore();
        core::MitigationConfig cfg;
        cfg.array = array;
        cfg.retrain_epochs = epochs;
        cfg.eval_each_epoch = false;
        const core::MitigationResult r = core::run_fixed_vth_retraining(
            wl.net, map, wl.data.train, wl.data.test, cfg, vth);
        row.push_back(r.final_accuracy);
        csv.row({std::string(core::dataset_name(kind)),
                 common::CsvWriter::format(rate * 100),
                 common::CsvWriter::format(vth),
                 common::CsvWriter::format(r.final_accuracy)});
        std::printf("  %-15s rate=%2.0f%% vth=%.2f -> %.1f%%\n",
                    core::dataset_name(kind), rate * 100, vth,
                    r.final_accuracy);
      }
      table.row_labeled(std::string(core::dataset_name(kind)) + "@" +
                            common::TextTable::format(rate * 100, 0) + "%",
                        row, 1);
    }
  }
  std::printf("\nRetrained accuracy [%%] per fixed threshold voltage:\n");
  table.print();
  std::printf("\nExpected shape (paper): best V_th differs per dataset and "
              "fault rate; a bad fixed pick loses tens of points.\n");
  return 0;
}
