// Fig. 2 — motivational case study: retraining accuracy as a function of
// a manually chosen, fixed threshold voltage.
//
// Reproduces: MNIST and DVS-Gesture classifiers, 30% and 60% faulty PEs
// (MSB sa1) on a 256x256 array, fault-aware pruning followed by
// retraining with V_th frozen at each value in {0.45, 0.5, 0.55, 0.7}.
// The paper's point: the best fixed V_th depends on the dataset AND the
// fault rate, and a wrong pick costs tens of accuracy points — which is
// what motivates learning V_th (FalVolt).
//
// Every (dataset, rate, vth) cell is an independent scenario on
// core::SweepRunner; --sweep-parallel N runs N cells at a time with
// byte-identical tables.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig2_vth_sweep");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 2",
             "Retraining accuracy vs fixed threshold voltage at 30% / 60% "
             "faulty PEs (motivates FalVolt)");

  const bool fast = cli.get_bool("fast");
  const std::vector<float> vths = {0.45f, 0.5f, 0.55f, 0.7f, 1.0f};
  const std::vector<double> rates = {0.30, 0.60};
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kDvsGesture});

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind, double rate, float vth) {
    return std::string(core::dataset_name(kind)) + "/rate=" +
           common::TextTable::format(rate * 100, 0) + "/vth=" +
           common::TextTable::format(vth, 2);
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);
    for (const double rate : rates) {
      for (const float vth : vths) {
        core::Scenario s;
        s.key = cell_key(kind, rate, vth);
        s.dataset = kind;
        s.vth = vth;
        s.fault_rate = rate;
        s.fault_seed = 4000 + static_cast<std::uint64_t>(rate * 100);
        s.retrain = true;
        s.epochs = epochs;
        scenarios.push_back(s);
      }
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig2_vth_sweep"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig2_vth_sweep"),
                        {"dataset", "fault_rate_percent", "vth", "accuracy"});
  fb::probe_sweep_json(cli, "fig2_vth_sweep");

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& ctx) {
    const core::Workload& wl = ctx.workload(s.dataset);
    snn::Network net = ctx.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    const systolic::ArrayConfig array = fb::experiment_array(cli);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = s.epochs;
    cfg.eval_each_epoch = false;
    const core::MitigationResult r = core::run_fixed_vth_retraining(
        net, map, wl.data.train, wl.data.test, cfg,
        static_cast<float>(s.vth));

    core::ScenarioResult out;
    out.metrics = {{"accuracy", r.final_accuracy}};
    out.csv_rows = {{std::string(core::dataset_name(s.dataset)),
                     common::CsvWriter::format(s.fault_rate * 100),
                     common::CsvWriter::format(s.vth),
                     common::CsvWriter::format(r.final_accuracy)}};
    fb::logf(out.log, "  %-15s rate=%2.0f%% vth=%.2f -> %.1f%%\n",
             core::dataset_name(s.dataset), s.fault_rate * 100, s.vth,
             r.final_accuracy);
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"series"};
    for (const float v : vths) {
      header.push_back(common::TextTable::format(v, 2));
    }
    common::TextTable table(header);
    for (const auto kind : kinds) {
      for (const double rate : rates) {
        std::vector<double> row;
        for (const float vth : vths) {
          row.push_back(
              results.get(cell_key(kind, rate, vth)).metrics.front().second);
        }
        table.row_labeled(std::string(core::dataset_name(kind)) + "@" +
                              common::TextTable::format(rate * 100, 0) + "%",
                          row, 1);
      }
    }
    std::printf("\nRetrained accuracy [%%] per fixed threshold voltage:\n");
    table.print();
  }
  fb::emit_sweep_summary(cli, "fig2_vth_sweep", results);
  std::printf("\nExpected shape (paper): best V_th differs per dataset and "
              "fault rate; a bad fixed pick loses tens of points.\n");
  return 0;
}
