// Fig. 2 — motivational case study: retraining accuracy as a function of
// a manually chosen, fixed threshold voltage.
//
// Reproduces: MNIST and DVS-Gesture classifiers, 30% and 60% faulty PEs
// (MSB sa1) on a 256x256 array, fault-aware pruning followed by
// retraining with V_th frozen at each value in {0.45, 0.5, 0.55, 0.7}.
// The paper's point: the best fixed V_th depends on the dataset AND the
// fault rate, and a wrong pick costs tens of accuracy points — which is
// what motivates learning V_th (FalVolt).
//
// The grid and scenario function live in bench/grids/fig2_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig2_vth_sweep");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 2", def.title);

  const std::vector<core::DatasetKind> kinds = fb::fig2::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "fault_rate_percent", "vth", "accuracy"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"series"};
    for (const float v : fb::fig2::vths()) {
      header.push_back(common::TextTable::format(v, 2));
    }
    common::TextTable table(header);
    for (const auto kind : kinds) {
      for (const double rate : fb::fig2::rates()) {
        std::vector<double> row;
        for (const float vth : fb::fig2::vths()) {
          row.push_back(results.get(fb::fig2::cell_key(kind, rate, vth))
                            .metrics.front()
                            .second);
        }
        table.row_labeled(std::string(core::dataset_name(kind)) + "@" +
                              common::TextTable::format(rate * 100, 0) + "%",
                          row, 1);
      }
    }
    std::printf("\nRetrained accuracy [%%] per fixed threshold voltage:\n");
    table.print();
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nExpected shape (paper): best V_th differs per dataset and "
              "fault rate; a bad fixed pick loses tens of points.\n");
  return 0;
}
