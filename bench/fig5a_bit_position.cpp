// Fig. 5a — classification accuracy vs stuck-at fault bit location.
//
// Reproduces: stuck-at-0 and stuck-at-1 faults injected at each output
// bit position of the PE accumulators of an (default) 256x256
// systolicSNN, 8 faulty PEs, unmitigated inference, for MNIST / N-MNIST /
// DVS-Gesture. The paper's finding: MSB faults (especially stuck-at-1 in
// the sign bit) collapse accuracy, LSB faults are nearly harmless.
//
// The grid and scenario function live in bench/grids/fig5a_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation and CSV schema.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig5a_bit_position");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 5a", def.title);

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const std::vector<int> bits = fb::fig5a::bits(array.format.total_bits());
  const int repeats = fb::fig5a::repeats(cli);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const std::vector<core::DatasetKind> kinds = fb::fig5a::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "type", "bit", "accuracy"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"series"};
    for (const int b : bits) header.push_back("bit" + std::to_string(b));
    common::TextTable table(header);

    for (const auto kind : kinds) {
      for (const auto type : fb::fig5a::types()) {
        std::vector<double> row;
        for (const int bit : bits) {
          common::RunningStats acc;
          for (int rep = 0; rep < repeats; ++rep) {
            acc.add(results.get(fb::fig5a::cell_key(kind, type, bit, rep))
                        .metrics.front()
                        .second);
          }
          row.push_back(acc.mean());
          csv.row({std::string(core::dataset_name(kind)),
                   fb::fig5a::type_name(type), std::to_string(bit),
                   common::CsvWriter::format(acc.mean())});
        }
        table.row_labeled(std::string(fb::fig5a::type_name(type)) + "-" +
                              core::dataset_name(kind),
                          row, 1);
      }
    }
    std::printf("\nAccuracy [%%] vs accumulator fault bit (%d faulty PEs, "
                "%s array):\n",
                n_faulty, array.to_string().c_str());
    table.print();
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nExpected shape (paper): accuracy near baseline at LSBs, "
              "collapse at MSBs; sa1 worse than sa0.\n");
  return 0;
}
