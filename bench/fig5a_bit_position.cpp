// Fig. 5a — classification accuracy vs stuck-at fault bit location.
//
// Reproduces: stuck-at-0 and stuck-at-1 faults injected at each output
// bit position of the PE accumulators of an (default) 256x256
// systolicSNN, 8 faulty PEs, unmitigated inference, for MNIST / N-MNIST /
// DVS-Gesture. The paper's finding: MSB faults (especially stuck-at-1 in
// the sign bit) collapse accuracy, LSB faults are nearly harmless.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5a_bit_position");
  fb::add_common_flags(cli);
  cli.add_int("faulty-pes", 8, "number of faulty PEs");
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5a",
             "Accuracy vs fault bit location (sa0/sa1, unmitigated "
             "inference on the fixed-point systolic engine)");

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const int word = array.format.total_bits();
  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 1 : 2);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));

  std::vector<int> bits;
  for (int b = 0; b < word; b += 2) bits.push_back(b);
  if (bits.back() != word - 1) bits.push_back(word - 1);  // always the MSB

  std::vector<std::string> header = {"series"};
  for (const int b : bits) header.push_back("bit" + std::to_string(b));
  common::TextTable table(header);
  common::CsvWriter csv(fb::csv_path("fig5a_bit_position"),
                        [&] {
                          std::vector<std::string> h = {"dataset", "type",
                                                        "bit", "accuracy"};
                          return h;
                        }());

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
        core::DatasetKind::kDvsGesture}) {
    core::Workload wl = core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    const data::Dataset eval_set = fb::subset(wl.data.test, eval_n);

    for (const auto type :
         {fx::StuckType::kStuckAt0, fx::StuckType::kStuckAt1}) {
      const char* tname = type == fx::StuckType::kStuckAt0 ? "sa0" : "sa1";
      std::vector<double> row;
      for (const int bit : bits) {
        common::RunningStats acc;
        for (int rep = 0; rep < repeats; ++rep) {
          // Seeded per repeat only: every bit position and stuck level is
          // evaluated on the SAME faulty-PE locations, so the x-axis
          // isolates the bit effect (as in the paper's setup).
          common::Rng rng(1000 + rep);
          fault::FaultSpec spec;
          spec.bit = bit;
          spec.word_bits = word;
          spec.type = type;
          const fault::FaultMap map = fault::random_fault_map(
              array.rows, array.cols, n_faulty, spec, rng);
          acc.add(core::evaluate_with_faults(
              wl.net, eval_set, array, map,
              systolic::SystolicGemmEngine::FaultHandling::kCorrupt));
        }
        row.push_back(acc.mean());
        csv.row({std::string(core::dataset_name(kind)), tname,
                 std::to_string(bit), common::CsvWriter::format(acc.mean())});
      }
      table.row_labeled(std::string(tname) + "-" + core::dataset_name(kind),
                        row, 1);
    }
  }
  std::printf("\nAccuracy [%%] vs accumulator fault bit (%d faulty PEs, "
              "%s array):\n",
              n_faulty, array.to_string().c_str());
  table.print();
  std::printf("\nExpected shape (paper): accuracy near baseline at LSBs, "
              "collapse at MSBs; sa1 worse than sa0.\n");
  return 0;
}
