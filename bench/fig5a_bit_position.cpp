// Fig. 5a — classification accuracy vs stuck-at fault bit location.
//
// Reproduces: stuck-at-0 and stuck-at-1 faults injected at each output
// bit position of the PE accumulators of an (default) 256x256
// systolicSNN, 8 faulty PEs, unmitigated inference, for MNIST / N-MNIST /
// DVS-Gesture. The paper's finding: MSB faults (especially stuck-at-1 in
// the sign bit) collapse accuracy, LSB faults are nearly harmless.
//
// Every (dataset, stuck level, bit, fault map) cell is an independent
// scenario on core::SweepRunner; the per-repeat accuracies are averaged
// in repeat order afterwards, so tables are byte-identical at any
// --sweep-parallel.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5a_bit_position");
  fb::add_common_flags(cli);
  cli.add_int("faulty-pes", 8, "number of faulty PEs");
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5a",
             "Accuracy vs fault bit location (sa0/sa1, unmitigated "
             "inference on the fixed-point systolic engine)");

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const int word = array.format.total_bits();
  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 1 : 2);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  std::vector<int> bits;
  for (int b = 0; b < word; b += 2) bits.push_back(b);
  if (bits.back() != word - 1) bits.push_back(word - 1);  // always the MSB

  const std::vector<fx::StuckType> types = {fx::StuckType::kStuckAt0,
                                            fx::StuckType::kStuckAt1};
  const auto type_name = [](fx::StuckType t) {
    return t == fx::StuckType::kStuckAt0 ? "sa0" : "sa1";
  };

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [&](core::DatasetKind kind, fx::StuckType type,
                            int bit, int rep) {
    return std::string(core::dataset_name(kind)) + "/" + type_name(type) +
           "/bit=" + std::to_string(bit) + "/rep=" + std::to_string(rep);
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    for (const auto type : types) {
      for (const int bit : bits) {
        for (int rep = 0; rep < repeats; ++rep) {
          core::Scenario s;
          s.key = cell_key(kind, type, bit, rep);
          s.dataset = kind;
          s.stuck = type;
          s.bit = bit;
          s.fault_count = n_faulty;
          s.repeat = rep;
          // Seeded per repeat only: every bit position and stuck level is
          // evaluated on the SAME faulty-PE locations, so the x-axis
          // isolates the bit effect (as in the paper's setup).
          s.fault_seed = 1000 + static_cast<std::uint64_t>(rep);
          scenarios.push_back(s);
        }
      }
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig5a_bit_position"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig5a_bit_position"),
                        {"dataset", "type", "bit", "accuracy"});
  fb::probe_sweep_json(cli, "fig5a_bit_position");

  fb::EvalSets eval_sets(runner.context(), eval_n);

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& c) {
    snn::Network net = c.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    fault::FaultSpec spec;
    spec.bit = s.bit;
    spec.word_bits = word;
    spec.type = s.stuck;
    const fault::FaultMap map = fault::random_fault_map(
        array.rows, array.cols, s.fault_count, spec, rng);
    const double acc = core::evaluate_with_faults(
        net, eval_sets.of(s.dataset), array, map,
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
    core::ScenarioResult out;
    out.metrics = {{"accuracy", acc}};
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"series"};
    for (const int b : bits) header.push_back("bit" + std::to_string(b));
    common::TextTable table(header);

    for (const auto kind : kinds) {
      for (const auto type : types) {
        std::vector<double> row;
        for (const int bit : bits) {
          common::RunningStats acc;
          for (int rep = 0; rep < repeats; ++rep) {
            acc.add(results.get(cell_key(kind, type, bit, rep))
                        .metrics.front()
                        .second);
          }
          row.push_back(acc.mean());
          csv.row({std::string(core::dataset_name(kind)), type_name(type),
                   std::to_string(bit),
                   common::CsvWriter::format(acc.mean())});
        }
        table.row_labeled(std::string(type_name(type)) + "-" +
                              core::dataset_name(kind),
                          row, 1);
      }
    }
    std::printf("\nAccuracy [%%] vs accumulator fault bit (%d faulty PEs, "
                "%s array):\n",
                n_faulty, array.to_string().c_str());
    table.print();
  }
  fb::emit_sweep_summary(cli, "fig5a_bit_position", results);
  std::printf("\nExpected shape (paper): accuracy near baseline at LSBs, "
              "collapse at MSBs; sa1 worse than sa0.\n");
  return 0;
}
