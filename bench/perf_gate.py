#!/usr/bin/env python3
"""Perf-trajectory gate: compare a fresh BENCH_6.json against the
committed baseline and fail CI on real regressions.

Usage:
  perf_gate.py --current bench_out/BENCH_6.json \
               --baseline bench/baselines/BENCH_6.json \
               [--fleet-json bench_out/fleet_fig5b.json] \
               [--tolerance 0.25] [--strict]

What is gated vs what is only reported:

* GATED (exit 1): machine-portable *speedup ratios* — the faulty-GEMM
  vectorized-vs-scalar speedup per (mode, array) row and the GEMM-tier
  blocked/parallel speedups per size. Both numerator and denominator
  run on the same machine in the same job, so a ratio dropping by more
  than --tolerance (default 25%) means the fast path itself regressed,
  not that CI got a slower runner.
* REPORTED (warn only, gated with --strict): absolute milliseconds and
  fleet wall-clock seconds. CI runner hardware varies run to run, so
  absolute times are tracked in the artifact trajectory but do not
  fail the job by default.

Baseline update procedure (documented in README.md "Performance"):
after an intentional perf change, regenerate with
  build/bench/micro_kernels --out_dir=bench_out --json=BENCH_6.json \
      --benchmark_filter='^$'
and commit bench_out/BENCH_6.json to bench/baselines/BENCH_6.json in
the same PR as the change, noting the measured before/after in the PR
description.
"""

import argparse
import json
import sys

BASELINE_HELP = """\
baseline update procedure (after an INTENTIONAL perf change):
  1. build/bench/micro_kernels --out_dir=bench_out --json=BENCH_6.json \\
         --benchmark_filter='^$'
  2. cp bench_out/BENCH_6.json bench/baselines/BENCH_6.json
  3. commit the new baseline in the SAME PR as the perf change, noting
     the measured before/after ratios in the PR description.
bench/baselines/BENCH_6.json is the only committed copy; CI regenerates
the current summary from scratch each push. Full rationale and identity
checks: bench/logs/faulty_gemm_speedup.md, README.md "Performance".
"""


def load(path, role):
    """Read one summary JSON; a missing or corrupt file is a usage
    error (exit 2) with the fix spelled out, not a traceback."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        fix = ("regenerate it with build/bench/micro_kernels (see --help)"
               if role == "current" else
               "restore bench/baselines/BENCH_6.json from git or "
               "regenerate it (see --help)")
        print(f"perf_gate: {role} summary {path} does not exist — {fix}",
              file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fix = ("restore it from git or regenerate it (see --help)"
               if role == "baseline" else
               "rerun the benchmark that produces it")
        print(f"perf_gate: {role} summary {path} is not valid JSON "
              f"(line {e.lineno}: {e.msg}) — {fix}", file=sys.stderr)
        sys.exit(2)


def index_rows(rows, keys):
    out = {}
    for row in rows:
        out[tuple(row[k] for k in keys)] = row
    return out


def check_ratio(label, base, cur, tolerance, failures):
    """Gate: cur must be >= base * (1 - tolerance)."""
    floor = base * (1.0 - tolerance)
    ok = cur >= floor
    status = "ok" if ok else "REGRESSION"
    print(f"  [{status:>10}] {label}: baseline {base:.2f}x -> current "
          f"{cur:.2f}x (floor {floor:.2f}x)")
    if not ok:
        failures.append(label)


def warn_abs(label, base, cur, tolerance, warnings):
    """Warn-only: absolute time grew past tolerance."""
    if base <= 0:
        return
    ratio = cur / base
    if ratio > 1.0 + tolerance:
        print(f"  [      warn] {label}: {base:.3f} -> {cur:.3f} "
              f"(+{(ratio - 1.0) * 100:.0f}%, absolute time — not gated "
              f"by default)")
        warnings.append(label)


def fleet_metric_warnings(base_m, cur_m, tolerance, warnings):
    """Warn-only comparison of two fleet metrics blocks: the store hit
    rate (cells replayed instead of recomputed) and the faulty-GEMM
    vector-path share (columns taking the 8-wide fast path). Both are
    ratios of counters from the same run, so they are machine-portable —
    but a fleet's hit rate legitimately changes with the store's warmth,
    hence warn-only, never gated. Returns True if anything printed."""

    def hit_rate(m):
        hits = sum(v for k, v in m.items()
                   if k.startswith("store.chain.layer") and k.endswith(".hit"))
        total = hits + m.get("store.chain.miss", 0)
        return hits / total if total else None

    def vector_share(m):
        vec = m.get("kernel.faulty_gemm.vector_cols", 0)
        total = (vec + m.get("kernel.faulty_gemm.scalar_cols", 0) +
                 m.get("kernel.faulty_gemm.fallback_cols", 0))
        return vec / total if total else None

    printed = False
    for label, rate in (("fleet store hit rate", hit_rate),
                        ("faulty_gemm vector-path share", vector_share)):
        b, c = rate(base_m), rate(cur_m)
        if b is None or c is None:
            continue
        printed = True
        if b - c > tolerance * max(b, 1e-9):
            print(f"  [      warn] {label}: {b:.1%} -> {c:.1%} "
                  f"(dropped beyond {tolerance:.0%} — not gated)")
            warnings.append(label)
        else:
            print(f"  [        ok] {label}: {b:.1%} -> {c:.1%}")
    return printed


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, epilog=BASELINE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--current", required=True,
                    help="freshly measured BENCH_6.json")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH_6.json")
    ap.add_argument("--fleet-json", default=None,
                    help="sweep_fleet --json output; run.total_seconds is "
                         "merged into the current summary before comparing")
    ap.add_argument("--out", default=None,
                    help="write the (fleet-merged) current summary here — "
                         "this is the artifact CI uploads")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    ap.add_argument("--strict", action="store_true",
                    help="also fail on absolute-time warnings")
    args = ap.parse_args()

    cur = load(args.current, "current")
    base = load(args.baseline, "baseline")

    if args.fleet_json:
        fleet = load(args.fleet_json, "fleet")
        cur["fleet"] = {
            "grid": "fig5b_noise_resilience",
            "total_seconds": fleet["run"]["total_seconds"],
            "workers": fleet["run"]["workers"],
            "cells_computed": fleet["run"]["cells_computed"],
        }
        # The fleet telemetry block (sweep_fleet --json "metrics"): flat
        # name -> count samples. Carried into the uploaded artifact and
        # used for the warn-only store/kernel checks below. Older fleet
        # JSONs (and the committed baseline) may predate it — absence is
        # fine, the checks just skip.
        if isinstance(fleet.get("metrics"), dict):
            cur["fleet"]["metrics"] = fleet["metrics"]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(cur, f, indent=2)
            f.write("\n")
        print(f"merged summary written to {args.out}")

    failures, warnings = [], []

    print("faulty_gemm vectorized-vs-scalar speedups (gated):")
    cur_fg = index_rows(cur["faulty_gemm"], ("mode", "array"))
    base_fg = index_rows(base["faulty_gemm"], ("mode", "array"))
    for key, brow in sorted(base_fg.items()):
        crow = cur_fg.get(key)
        if crow is None:
            print(f"  [   MISSING] faulty_gemm {key}")
            failures.append(f"faulty_gemm {key} missing")
            continue
        check_ratio(f"faulty_gemm mode={key[0]} array={key[1]}",
                    brow["speedup"], crow["speedup"], args.tolerance,
                    failures)
        warn_abs(f"faulty_gemm mode={key[0]} array={key[1]} vector_ms",
                 brow["vector_ms"], crow["vector_ms"], args.tolerance,
                 warnings)

    print("gemm_tiers blocked/parallel speedups (gated):")
    cur_gt = index_rows(cur["gemm_tiers"], ("size",))
    base_gt = index_rows(base["gemm_tiers"], ("size",))
    for key, brow in sorted(base_gt.items()):
        crow = cur_gt.get(key)
        if crow is None:
            print(f"  [   MISSING] gemm_tiers size={key[0]}")
            failures.append(f"gemm_tiers size={key[0]} missing")
            continue
        check_ratio(f"gemm_tiers size={key[0]} blocked",
                    brow["blocked_speedup"], crow["blocked_speedup"],
                    args.tolerance, failures)

    print("absolute times (reported, not gated by default):")
    cur_cs = index_rows(cur.get("cycle_sim", []), ("array",))
    for key, brow in sorted(index_rows(base.get("cycle_sim", []),
                                       ("array",)).items()):
        crow = cur_cs.get(key)
        if crow is not None:
            warn_abs(f"cycle_sim array={key[0]} ms", brow["ms"], crow["ms"],
                     args.tolerance, warnings)
    if "fleet" in base and "fleet" in cur:
        warn_abs("fleet total_seconds", base["fleet"]["total_seconds"],
                 cur["fleet"]["total_seconds"], args.tolerance, warnings)
    if not warnings:
        print("  (none)")

    print("fleet telemetry (store hit rate, kernel path mix — warn only):")
    base_m = (base.get("fleet") or {}).get("metrics")
    cur_m = (cur.get("fleet") or {}).get("metrics")
    if isinstance(base_m, dict) and isinstance(cur_m, dict):
        if not fleet_metric_warnings(base_m, cur_m, args.tolerance, warnings):
            print("  (no comparable fleet metrics)")
    else:
        # The committed baseline predates the metrics block, or the fleet
        # ran without --json: nothing to compare, nothing to warn about.
        print("  (skipped: baseline or current has no fleet metrics block)")

    if failures:
        print(f"\nperf gate FAILED: {len(failures)} ratio regression(s) "
              f"beyond {args.tolerance * 100:.0f}% tolerance")
        return 1
    if warnings and args.strict:
        print(f"\nperf gate FAILED (--strict): {len(warnings)} "
              f"absolute-time warning(s)")
        return 1
    print(f"\nperf gate passed ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
