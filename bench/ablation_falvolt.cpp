// Ablations of FalVolt's design choices (DESIGN.md §5): threshold
// granularity (A1), pruned-weight re-zero cadence (A2), surrogate
// gradient kind (A3), and accumulator width (A4).
//
// The grid, the arms, and the custom-retrain loop live in
// bench/grids/ablation_grid.cpp (registered into core::GridRegistry, so
// the sweep_fleet driver runs exactly the same cells); this main adds
// the four ablation tables and the legacy CSV grouping.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("ablation_falvolt");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Ablations", def.title);

  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"ablation", "arm", "accuracy"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  if (!fb::sweep_complete(results)) {
    fb::emit_sweep_summary(cli, def.name, results);
    return 0;
  }

  const auto acc_of = [&](const char* key) {
    return results.get(key).metrics.front().second;
  };

  // CSV rows keep the legacy grouping (A1, A2, A3, A4) rather than
  // scenario order; the A2 "every_epoch" row aliases the bit-identical
  // A1 per-layer result (see the arms table in ablation_grid.cpp).
  for (const char* arm : {"per_layer", "global", "frozen"}) {
    csv.row({"vth_granularity", arm,
             common::CsvWriter::format(
                 acc_of((std::string("vth_granularity/") + arm).c_str()))});
  }
  csv.row({"rezero", "every_epoch",
           common::CsvWriter::format(acc_of("vth_granularity/per_layer"))});
  csv.row({"rezero", "end_only",
           common::CsvWriter::format(acc_of("rezero/end_only"))});
  for (const char* arm : {"triangle", "sigmoid", "rectangle"}) {
    csv.row(results.get(std::string("surrogate/") + arm).csv_rows.front());
  }
  for (const char* arm : {"q8_8", "q16_16"}) {
    csv.row(results.get(std::string("accumulator_width/") + arm)
                .csv_rows.front());
  }

  common::TextTable a1({"vth granularity", "accuracy"});
  a1.row_labeled("per-layer (FalVolt)", {acc_of("vth_granularity/per_layer")},
                 1);
  a1.row_labeled("global (tied)", {acc_of("vth_granularity/global")}, 1);
  a1.row_labeled("frozen @1.0 (FaPIT)", {acc_of("vth_granularity/frozen")},
                 1);
  std::printf("\nA1 — threshold-voltage granularity:\n");
  a1.print();

  common::TextTable a2({"re-zero cadence", "accuracy"});
  a2.row_labeled("every epoch (Alg.1 L13)",
                 {acc_of("vth_granularity/per_layer")}, 1);
  a2.row_labeled("end of training only", {acc_of("rezero/end_only")}, 1);
  std::printf("\nA2 — pruned-weight re-zero cadence:\n");
  a2.print();

  common::TextTable a3({"surrogate", "accuracy"});
  for (const char* arm : {"triangle", "sigmoid", "rectangle"}) {
    const core::ScenarioResult& r =
        results.get(std::string("surrogate/") + arm);
    a3.row_labeled(r.csv_rows.front()[1], {r.metrics.front().second}, 1);
  }
  std::printf("\nA3 — surrogate gradient during retraining:\n");
  a3.print();

  common::TextTable a4({"accumulator", "clean acc", "8 faulty PEs (MSB sa1)"});
  for (const char* arm : {"q8_8", "q16_16"}) {
    const core::ScenarioResult& r =
        results.get(std::string("accumulator_width/") + arm);
    a4.row_labeled(r.csv_rows.front()[1],
                   {r.metrics[0].second, r.metrics[1].second}, 1);
  }
  std::printf("\nA4 — accumulator width (quantization + MSB sa1 collapse):\n");
  a4.print();

  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nTakeaways: per-layer V_th >= global >= frozen; epoch-wise "
              "re-zeroing matters because the optimizer keeps regrowing "
              "bypassed weights; the triangle surrogate (paper Eq. 2) is "
              "competitive; MSB faults collapse accuracy at either word "
              "width.\n");
  return 0;
}
