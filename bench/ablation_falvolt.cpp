// Ablations of FalVolt's design choices (DESIGN.md §5):
//   A1  per-layer learnable V_th (FalVolt)  vs  one global learnable V_th
//       vs  frozen V_th (FaPIT)
//   A2  re-zeroing pruned weights every epoch (Algorithm 1 line 13)
//       vs  only once after training
//   A3  surrogate gradient kind during retraining (triangle / sigmoid /
//       rectangle)
//   A4  accumulator width of the PE (16-bit Q8.8 vs 32-bit Q16.16) for
//       the unmitigated MSB-fault collapse
//
// All ablations run on the MNIST-like workload at 30% faulty PEs.

#include "bench_common.h"
#include "fault/prune_mask.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace fb = falvolt::bench;
using namespace falvolt;

namespace {

/// Retrain with pruning; `tie_vth` averages all hidden thresholds after
/// each epoch (the "global V_th" arm), `rezero_each_epoch` toggles
/// Algorithm 1 line 13.
double retrain_custom(core::Workload& wl, const fault::FaultMap& map,
                      int epochs, bool train_vth, bool tie_vth,
                      bool rezero_each_epoch) {
  fault::NetworkPruner pruner(wl.net, map);
  pruner.apply(wl.net);
  for (snn::Plif* p : wl.net.hidden_spiking_layers()) {
    p->set_vth(1.0f);
    p->set_train_vth(train_vth);
  }
  constexpr double kLr = 1e-2;
  snn::Adam opt(kLr);
  snn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.eval_each_epoch = false;
  const int decay_epoch = (3 * epochs) / 5;
  tc.on_epoch = [&opt, decay_epoch](const snn::EpochStats& s) {
    if (s.epoch + 1 == decay_epoch) opt.set_lr(kLr / 4.0);
  };
  tc.post_epoch = [&](snn::Network& net) {
    if (rezero_each_epoch) pruner.apply(net);
    if (tie_vth) {
      const auto layers = net.hidden_spiking_layers();
      float mean = 0.0f;
      for (snn::Plif* p : layers) mean += p->vth();
      mean /= static_cast<float>(layers.size());
      for (snn::Plif* p : layers) p->set_vth(mean);
    }
  };
  snn::Trainer trainer(wl.net, opt, wl.data.train, &wl.data.test, tc);
  trainer.run();
  pruner.apply(wl.net);  // final re-zero (hardware bypass is mandatory)
  wl.net.set_train_vth(false);
  return snn::evaluate(wl.net, wl.data.test);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags cli("ablation_falvolt");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = default)");
  cli.add_double("rate", 0.30, "fault rate");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Ablations", "FalVolt design-choice ablations (MNIST, 30% "
                          "faulty PEs unless noted)");

  core::Workload wl =
      core::prepare_workload(core::DatasetKind::kMnist,
                             fb::workload_options(cli));
  fb::print_baseline(wl);
  fb::BaselineKeeper keeper(wl);
  const bool fast = cli.get_bool("fast");
  const int epochs =
      cli.get_int("epochs") > 0
          ? static_cast<int>(cli.get_int("epochs"))
          : 2 + core::default_retrain_epochs(core::DatasetKind::kMnist,
                                             fast);

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  common::Rng rng(8000);
  const fault::FaultMap map = fault::fault_map_at_rate(
      array.rows, array.cols, cli.get_double("rate"),
      fault::worst_case_spec(array.format.total_bits()), rng);
  common::CsvWriter csv(fb::csv_path("ablation_falvolt"),
                        {"ablation", "arm", "accuracy"});

  // ---- A1: threshold granularity -------------------------------------
  common::TextTable a1({"vth granularity", "accuracy"});
  keeper.restore();
  const double per_layer = retrain_custom(wl, map, epochs, true, false, true);
  keeper.restore();
  const double global_vth = retrain_custom(wl, map, epochs, true, true, true);
  keeper.restore();
  const double frozen = retrain_custom(wl, map, epochs, false, false, true);
  a1.row_labeled("per-layer (FalVolt)", {per_layer}, 1);
  a1.row_labeled("global (tied)", {global_vth}, 1);
  a1.row_labeled("frozen @1.0 (FaPIT)", {frozen}, 1);
  csv.row({"vth_granularity", "per_layer",
           common::CsvWriter::format(per_layer)});
  csv.row({"vth_granularity", "global",
           common::CsvWriter::format(global_vth)});
  csv.row({"vth_granularity", "frozen", common::CsvWriter::format(frozen)});
  std::printf("\nA1 — threshold-voltage granularity:\n");
  a1.print();

  // ---- A2: re-zero cadence --------------------------------------------
  common::TextTable a2({"re-zero cadence", "accuracy"});
  keeper.restore();
  const double every_epoch =
      retrain_custom(wl, map, epochs, true, false, true);
  keeper.restore();
  const double end_only = retrain_custom(wl, map, epochs, true, false, false);
  a2.row_labeled("every epoch (Alg.1 L13)", {every_epoch}, 1);
  a2.row_labeled("end of training only", {end_only}, 1);
  csv.row({"rezero", "every_epoch", common::CsvWriter::format(every_epoch)});
  csv.row({"rezero", "end_only", common::CsvWriter::format(end_only)});
  std::printf("\nA2 — pruned-weight re-zero cadence:\n");
  a2.print();

  // ---- A3: surrogate kind ----------------------------------------------
  common::TextTable a3({"surrogate", "accuracy"});
  for (const auto kind :
       {snn::SurrogateKind::kTriangle, snn::SurrogateKind::kSigmoid,
        snn::SurrogateKind::kRectangle}) {
    keeper.restore();
    snn::Surrogate s;
    s.kind = kind;
    s.gamma = kind == snn::SurrogateKind::kSigmoid ? 4.0f : 2.0f;
    for (snn::Plif* p : wl.net.spiking_layers()) p->set_surrogate(s);
    const double acc = retrain_custom(wl, map, epochs, true, false, true);
    a3.row_labeled(s.to_string(), {acc}, 1);
    csv.row({"surrogate", s.to_string(), common::CsvWriter::format(acc)});
  }
  // Restore the default surrogate for any later use.
  keeper.restore();
  std::printf("\nA3 — surrogate gradient during retraining:\n");
  a3.print();

  // ---- A4: accumulator width (unmitigated MSB collapse) ---------------
  common::TextTable a4({"accumulator", "clean acc", "8 faulty PEs (MSB sa1)"});
  const data::Dataset eval_set = fb::subset(wl.data.test, 96);
  for (const auto fmt : {fx::FixedFormat::q8_8(), fx::FixedFormat::q16_16()}) {
    systolic::ArrayConfig a = array;
    a.format = fmt;
    common::Rng map_rng(8100);
    const fault::FaultMap m = fault::random_fault_map(
        a.rows, a.cols, 8, fault::worst_case_spec(fmt.total_bits()), map_rng);
    keeper.restore();
    const fault::FaultMap clean(a.rows, a.cols);
    const double acc_clean = core::evaluate_with_faults(
        wl.net, eval_set, a, clean,
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
    const double acc_faulty = core::evaluate_with_faults(
        wl.net, eval_set, a, m,
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
    a4.row_labeled(fmt.to_string(), {acc_clean, acc_faulty}, 1);
    csv.row({"accumulator_width", fmt.to_string(),
             common::CsvWriter::format(acc_faulty)});
  }
  std::printf("\nA4 — accumulator width (quantization + MSB sa1 collapse):\n");
  a4.print();

  std::printf("\nTakeaways: per-layer V_th >= global >= frozen; epoch-wise "
              "re-zeroing matters because the optimizer keeps regrowing "
              "bypassed weights; the triangle surrogate (paper Eq. 2) is "
              "competitive; MSB faults collapse accuracy at either word "
              "width.\n");
  return 0;
}
