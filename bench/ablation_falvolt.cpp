// Ablations of FalVolt's design choices (DESIGN.md §5):
//   A1  per-layer learnable V_th (FalVolt)  vs  one global learnable V_th
//       vs  frozen V_th (FaPIT)
//   A2  re-zeroing pruned weights every epoch (Algorithm 1 line 13)
//       vs  only once after training
//   A3  surrogate gradient kind during retraining (triangle / sigmoid /
//       rectangle)
//   A4  accumulator width of the PE (16-bit Q8.8 vs 32-bit Q16.16) for
//       the unmitigated MSB-fault collapse
//
// All ablations run on the MNIST-like workload at 30% faulty PEs. Every
// arm is an independent scenario on core::SweepRunner, retraining its
// own clone of the shared trained baseline.

#include "bench_common.h"
#include "fault/prune_mask.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace fb = falvolt::bench;
using namespace falvolt;

namespace {

/// Retrain `net` with pruning; `tie_vth` averages all hidden thresholds
/// after each epoch (the "global V_th" arm), `rezero_each_epoch` toggles
/// Algorithm 1 line 13.
double retrain_custom(snn::Network& net, const data::DatasetSplit& data,
                      const fault::FaultMap& map, int epochs, bool train_vth,
                      bool tie_vth, bool rezero_each_epoch) {
  fault::NetworkPruner pruner(net, map);
  pruner.apply(net);
  for (snn::Plif* p : net.hidden_spiking_layers()) {
    p->set_vth(1.0f);
    p->set_train_vth(train_vth);
  }
  constexpr double kLr = 1e-2;
  snn::Adam opt(kLr);
  snn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.eval_each_epoch = false;
  const int decay_epoch = (3 * epochs) / 5;
  tc.on_epoch = [&opt, decay_epoch](const snn::EpochStats& s) {
    if (s.epoch + 1 == decay_epoch) opt.set_lr(kLr / 4.0);
  };
  tc.post_epoch = [&](snn::Network& n) {
    if (rezero_each_epoch) pruner.apply(n);
    if (tie_vth) {
      const auto layers = n.hidden_spiking_layers();
      float mean = 0.0f;
      for (snn::Plif* p : layers) mean += p->vth();
      mean /= static_cast<float>(layers.size());
      for (snn::Plif* p : layers) p->set_vth(mean);
    }
  };
  snn::Trainer trainer(net, opt, data.train, &data.test, tc);
  trainer.run();
  pruner.apply(net);  // final re-zero (hardware bypass is mandatory)
  net.set_train_vth(false);
  return snn::evaluate(net, data.test);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags cli("ablation_falvolt");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = default)");
  cli.add_double("rate", 0.30, "fault rate");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Ablations", "FalVolt design-choice ablations (MNIST, 30% "
                          "faulty PEs unless noted)");

  // This bench's grid is MNIST-only: dataset_list rejects a --datasets
  // that asks for anything else rather than silently running MNIST.
  (void)fb::dataset_list(cli, {core::DatasetKind::kMnist});

  const bool fast = cli.get_bool("fast");
  const int epochs =
      cli.get_int("epochs") > 0
          ? static_cast<int>(cli.get_int("epochs"))
          : 2 + core::default_retrain_epochs(core::DatasetKind::kMnist,
                                             fast);
  const double rate = cli.get_double("rate");
  const systolic::ArrayConfig array = fb::experiment_array(cli);

  // Scenario grid: (ablation, arm) cells, all on the MNIST workload.
  struct Arm {
    const char* ablation;
    const char* arm;
  };
  // A2's "every epoch" arm is bit-identical to A1's per-layer arm
  // (same clone, map, and retrain_custom arguments, and scenarios are
  // deterministic), so it is aliased below instead of recomputed.
  const std::vector<Arm> arms = {
      {"vth_granularity", "per_layer"}, {"vth_granularity", "global"},
      {"vth_granularity", "frozen"},    {"rezero", "end_only"},
      {"surrogate", "triangle"},        {"surrogate", "sigmoid"},
      {"surrogate", "rectangle"},       {"accumulator_width", "q8_8"},
      {"accumulator_width", "q16_16"}};

  std::vector<core::Scenario> scenarios;
  for (const Arm& a : arms) {
    core::Scenario s;
    s.key = std::string(a.ablation) + "/" + a.arm;
    s.tag = a.arm;
    s.dataset = core::DatasetKind::kMnist;
    s.fault_rate = rate;
    s.fault_seed =
        std::string(a.ablation) == "accumulator_width" ? 8100 : 8000;
    s.retrain = std::string(a.ablation) != "accumulator_width";
    s.epochs = epochs;
    scenarios.push_back(s);
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "ablation_falvolt"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "ablation_falvolt"),
                        {"ablation", "arm", "accuracy"});
  fb::probe_sweep_json(cli, "ablation_falvolt");

  fb::EvalSets eval_sets(runner.context(), 96);

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& c) {
    const core::Workload& wl = c.workload(s.dataset);
    snn::Network net = c.clone_network(s.dataset);
    core::ScenarioResult out;

    if (s.key.rfind("accumulator_width/", 0) == 0) {
      // A4: unmitigated MSB collapse at two accumulator widths.
      const fx::FixedFormat fmt = s.tag == "q8_8" ? fx::FixedFormat::q8_8()
                                                  : fx::FixedFormat::q16_16();
      systolic::ArrayConfig a = array;
      a.format = fmt;
      common::Rng map_rng(s.fault_seed);
      const fault::FaultMap m = fault::random_fault_map(
          a.rows, a.cols, 8, fault::worst_case_spec(fmt.total_bits()),
          map_rng);
      const fault::FaultMap clean(a.rows, a.cols);
      const data::Dataset& eval_set = eval_sets.of(s.dataset);
      const double acc_clean = core::evaluate_with_faults(
          net, eval_set, a, clean,
          systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      const double acc_faulty = core::evaluate_with_faults(
          net, eval_set, a, m,
          systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      out.metrics = {{"clean_accuracy", acc_clean},
                     {"faulty_accuracy", acc_faulty}};
      out.csv_rows = {{"accumulator_width", fmt.to_string(),
                       common::CsvWriter::format(acc_faulty)}};
      return out;
    }

    common::Rng rng(s.fault_seed);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);

    if (s.key.rfind("surrogate/", 0) == 0) {
      // A3: surrogate kind during retraining.
      snn::Surrogate sg;
      sg.kind = s.tag == "sigmoid"     ? snn::SurrogateKind::kSigmoid
                : s.tag == "rectangle" ? snn::SurrogateKind::kRectangle
                                       : snn::SurrogateKind::kTriangle;
      sg.gamma = sg.kind == snn::SurrogateKind::kSigmoid ? 4.0f : 2.0f;
      for (snn::Plif* p : net.spiking_layers()) p->set_surrogate(sg);
      const double acc =
          retrain_custom(net, wl.data, map, s.epochs, true, false, true);
      out.metrics = {{"accuracy", acc}};
      out.csv_rows = {{"surrogate", sg.to_string(),
                       common::CsvWriter::format(acc)}};
      return out;
    }

    // A1/A2: threshold granularity and re-zero cadence.
    const bool train_vth = s.tag != "frozen";
    const bool tie_vth = s.tag == "global";
    const bool rezero = s.tag != "end_only";
    const double acc =
        retrain_custom(net, wl.data, map, s.epochs, train_vth, tie_vth,
                       rezero);
    out.metrics = {{"accuracy", acc}};
    const char* ablation =
        s.key.rfind("rezero/", 0) == 0 ? "rezero" : "vth_granularity";
    out.csv_rows = {{ablation, s.tag, common::CsvWriter::format(acc)}};
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  if (!fb::sweep_complete(results)) {
    fb::emit_sweep_summary(cli, "ablation_falvolt", results);
    return 0;
  }

  const auto acc_of = [&](const char* key) {
    return results.get(key).metrics.front().second;
  };

  // CSV rows keep the legacy grouping (A1, A2, A3, A4) rather than
  // scenario order; the A2 "every_epoch" row aliases the bit-identical
  // A1 per-layer result (see the arms table above).
  for (const char* arm : {"per_layer", "global", "frozen"}) {
    csv.row({"vth_granularity", arm,
             common::CsvWriter::format(
                 acc_of((std::string("vth_granularity/") + arm).c_str()))});
  }
  csv.row({"rezero", "every_epoch",
           common::CsvWriter::format(acc_of("vth_granularity/per_layer"))});
  csv.row({"rezero", "end_only",
           common::CsvWriter::format(acc_of("rezero/end_only"))});
  for (const char* arm : {"triangle", "sigmoid", "rectangle"}) {
    csv.row(results.get(std::string("surrogate/") + arm).csv_rows.front());
  }
  for (const char* arm : {"q8_8", "q16_16"}) {
    csv.row(results.get(std::string("accumulator_width/") + arm)
                .csv_rows.front());
  }

  common::TextTable a1({"vth granularity", "accuracy"});
  a1.row_labeled("per-layer (FalVolt)", {acc_of("vth_granularity/per_layer")},
                 1);
  a1.row_labeled("global (tied)", {acc_of("vth_granularity/global")}, 1);
  a1.row_labeled("frozen @1.0 (FaPIT)", {acc_of("vth_granularity/frozen")},
                 1);
  std::printf("\nA1 — threshold-voltage granularity:\n");
  a1.print();

  common::TextTable a2({"re-zero cadence", "accuracy"});
  a2.row_labeled("every epoch (Alg.1 L13)",
                 {acc_of("vth_granularity/per_layer")}, 1);
  a2.row_labeled("end of training only", {acc_of("rezero/end_only")}, 1);
  std::printf("\nA2 — pruned-weight re-zero cadence:\n");
  a2.print();

  common::TextTable a3({"surrogate", "accuracy"});
  for (const char* arm : {"triangle", "sigmoid", "rectangle"}) {
    const core::ScenarioResult& r =
        results.get(std::string("surrogate/") + arm);
    a3.row_labeled(r.csv_rows.front()[1], {r.metrics.front().second}, 1);
  }
  std::printf("\nA3 — surrogate gradient during retraining:\n");
  a3.print();

  common::TextTable a4({"accumulator", "clean acc", "8 faulty PEs (MSB sa1)"});
  for (const char* arm : {"q8_8", "q16_16"}) {
    const core::ScenarioResult& r =
        results.get(std::string("accumulator_width/") + arm);
    a4.row_labeled(r.csv_rows.front()[1],
                   {r.metrics[0].second, r.metrics[1].second}, 1);
  }
  std::printf("\nA4 — accumulator width (quantization + MSB sa1 collapse):\n");
  a4.print();

  fb::emit_sweep_summary(cli, "ablation_falvolt", results);
  std::printf("\nTakeaways: per-layer V_th >= global >= frozen; epoch-wise "
              "re-zeroing matters because the optimizer keeps regrowing "
              "bypassed weights; the triangle surrogate (paper Eq. 2) is "
              "competitive; MSB faults collapse accuracy at either word "
              "width.\n");
  return 0;
}
