// Fig. 5b — classification accuracy vs number of faulty PEs.
//
// Reproduces: worst-case (MSB stuck-at-1) faults in {0, 4, 8, 16, 32, 40,
// 48, 56, 64} randomly placed PEs of a 256x256 systolicSNN, unmitigated
// inference, averaged over several distinct fault maps (the paper runs 8
// iterations per point). Headline number: 8 faulty PEs — 0.012% of the
// array — already halves the accuracy.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5b_fault_count");
  fb::add_common_flags(cli);
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5b",
             "Accuracy vs number of faulty PEs (MSB sa1 worst case, "
             "unmitigated inference)");

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 2 : 4);
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));
  const std::vector<int> counts = {0, 4, 8, 16, 32, 40, 48, 56, 64};
  const fault::FaultSpec spec =
      fault::worst_case_spec(array.format.total_bits());

  std::vector<std::string> header = {"dataset"};
  for (const int c : counts) header.push_back(std::to_string(c));
  common::TextTable table(header);
  common::CsvWriter csv(
      fb::csv_path("fig5b_fault_count"),
      {"dataset", "faulty_pes", "fault_rate_percent", "accuracy", "stddev"});

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
        core::DatasetKind::kDvsGesture}) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    const data::Dataset eval_set = fb::subset(wl.data.test, eval_n);
    std::vector<double> row;
    for (const int count : counts) {
      common::RunningStats acc;
      for (int rep = 0; rep < repeats; ++rep) {
        common::Rng rng(2000 + 31 * count + rep);
        const fault::FaultMap map = fault::random_fault_map(
            array.rows, array.cols, count, spec, rng);
        acc.add(core::evaluate_with_faults(
            wl.net, eval_set, array, map,
            systolic::SystolicGemmEngine::FaultHandling::kCorrupt));
      }
      row.push_back(acc.mean());
      csv.row({std::string(core::dataset_name(kind)), std::to_string(count),
               common::CsvWriter::format(100.0 * count / array.total_pes()),
               common::CsvWriter::format(acc.mean()),
               common::CsvWriter::format(acc.stddev())});
    }
    table.row_labeled(core::dataset_name(kind), row, 1);
  }
  std::printf("\nAccuracy [%%] vs number of faulty PEs (avg over %d fault "
              "maps):\n",
              repeats);
  table.print();
  std::printf("\nExpected shape (paper): steep collapse by ~8 faulty PEs "
              "(0.012%% of the array); DVS-Gesture lowest throughout.\n");
  return 0;
}
