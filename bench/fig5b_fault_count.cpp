// Fig. 5b — classification accuracy vs number of faulty PEs.
//
// Reproduces: worst-case (MSB stuck-at-1) faults in {0, 4, 8, 16, 32, 40,
// 48, 56, 64} randomly placed PEs of a 256x256 systolicSNN, unmitigated
// inference, averaged over several distinct fault maps (the paper runs 8
// iterations per point). Headline number: 8 faulty PEs — 0.012% of the
// array — already halves the accuracy.
//
// Every (dataset, fault count, fault map) cell is an independent scenario
// on core::SweepRunner; per-repeat accuracies are averaged in repeat
// order afterwards, so tables are byte-identical at any --sweep-parallel.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5b_fault_count");
  fb::add_common_flags(cli);
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5b",
             "Accuracy vs number of faulty PEs (MSB sa1 worst case, "
             "unmitigated inference)");

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 2 : 4);
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));
  const std::vector<int> counts = {0, 4, 8, 16, 32, 40, 48, 56, 64};
  const fault::FaultSpec spec =
      fault::worst_case_spec(array.format.total_bits());
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind, int count, int rep) {
    return std::string(core::dataset_name(kind)) + "/faulty=" +
           std::to_string(count) + "/rep=" + std::to_string(rep);
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    for (const int count : counts) {
      for (int rep = 0; rep < repeats; ++rep) {
        core::Scenario s;
        s.key = cell_key(kind, count, rep);
        s.dataset = kind;
        s.fault_count = count;
        s.repeat = rep;
        s.fault_seed =
            2000 + static_cast<std::uint64_t>(31 * count + rep);
        scenarios.push_back(s);
      }
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig5b_fault_count"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(
      fb::csv_path(cli, "fig5b_fault_count"),
      {"dataset", "faulty_pes", "fault_rate_percent", "accuracy", "stddev"});
  fb::probe_sweep_json(cli, "fig5b_fault_count");

  fb::EvalSets eval_sets(runner.context(), eval_n);

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& c) {
    snn::Network net = c.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    const fault::FaultMap map = fault::random_fault_map(
        array.rows, array.cols, s.fault_count, spec, rng);
    const double acc = core::evaluate_with_faults(
        net, eval_sets.of(s.dataset), array, map,
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
    core::ScenarioResult out;
    out.metrics = {{"accuracy", acc}};
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"dataset"};
    for (const int c : counts) header.push_back(std::to_string(c));
    common::TextTable table(header);

    for (const auto kind : kinds) {
      std::vector<double> row;
      for (const int count : counts) {
        common::RunningStats acc;
        for (int rep = 0; rep < repeats; ++rep) {
          acc.add(results.get(cell_key(kind, count, rep))
                      .metrics.front()
                      .second);
        }
        row.push_back(acc.mean());
        csv.row({std::string(core::dataset_name(kind)),
                 std::to_string(count),
                 common::CsvWriter::format(100.0 * count /
                                           array.total_pes()),
                 common::CsvWriter::format(acc.mean()),
                 common::CsvWriter::format(acc.stddev())});
      }
      table.row_labeled(core::dataset_name(kind), row, 1);
    }
    std::printf("\nAccuracy [%%] vs number of faulty PEs (avg over %d "
                "fault maps):\n",
                repeats);
    table.print();
  }
  fb::emit_sweep_summary(cli, "fig5b_fault_count", results);
  std::printf("\nExpected shape (paper): steep collapse by ~8 faulty PEs "
              "(0.012%% of the array); DVS-Gesture lowest throughout.\n");
  return 0;
}
