// Fig. 5b — classification accuracy vs number of faulty PEs.
//
// Reproduces: worst-case (MSB stuck-at-1) faults in {0, 4, 8, 16, 32, 40,
// 48, 56, 64} randomly placed PEs of a 256x256 systolicSNN, unmitigated
// inference, averaged over several distinct fault maps (the paper runs 8
// iterations per point). Headline number: 8 faulty PEs — 0.012% of the
// array — already halves the accuracy.
//
// The grid and scenario function live in bench/grids/fig5b_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation and CSV schema.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig5b_fault_count");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 5b", def.title);

  const systolic::ArrayConfig array = fb::experiment_array(cli);
  const int repeats = fb::fig5b::repeats(cli);
  const std::vector<core::DatasetKind> kinds = fb::fig5b::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(
      fb::csv_path(cli, def.name),
      {"dataset", "faulty_pes", "fault_rate_percent", "accuracy", "stddev"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"dataset"};
    for (const int c : fb::fig5b::counts()) {
      header.push_back(std::to_string(c));
    }
    common::TextTable table(header);

    for (const auto kind : kinds) {
      std::vector<double> row;
      for (const int count : fb::fig5b::counts()) {
        common::RunningStats acc;
        for (int rep = 0; rep < repeats; ++rep) {
          acc.add(results.get(fb::fig5b::cell_key(kind, count, rep))
                      .metrics.front()
                      .second);
        }
        row.push_back(acc.mean());
        csv.row({std::string(core::dataset_name(kind)),
                 std::to_string(count),
                 common::CsvWriter::format(100.0 * count /
                                           array.total_pes()),
                 common::CsvWriter::format(acc.mean()),
                 common::CsvWriter::format(acc.stddev())});
      }
      table.row_labeled(core::dataset_name(kind), row, 1);
    }
    std::printf("\nAccuracy [%%] vs number of faulty PEs (avg over %d "
                "fault maps):\n",
                repeats);
    table.print();
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nExpected shape (paper): steep collapse by ~8 faulty PEs "
              "(0.012%% of the array); DVS-Gesture lowest throughout.\n");
  return 0;
}
