// Fig. 7 — mitigation comparison: FaP vs FaPIT vs FalVolt.
//
// Reproduces: accuracy after each mitigation at 10% / 30% / 60% faulty
// PEs (MSB sa1, 256x256 array) on MNIST, N-MNIST and DVS-Gesture. The
// paper's claim: FaP collapses as the rate grows, FaPIT recovers
// partially, and only FalVolt stays at (near-)baseline accuracy up to
// 60% faults.
//
// Every (dataset, rate, method) cell is an independent scenario on
// core::SweepRunner — all three mitigations of one rate share the same
// fault map (seeded from the rate, as before) but run on independent
// clones of the trained baseline.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig7_mitigation");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 7",
             "FaP vs FaPIT vs FalVolt accuracy at 10%/30%/60% faulty PEs");

  const bool fast = cli.get_bool("fast");
  const std::vector<double> rates = {0.10, 0.30, 0.60};
  const std::vector<std::string> methods = {"FaP", "FaPIT", "FalVolt"};
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind, double rate,
                           const std::string& method) {
    return std::string(core::dataset_name(kind)) + "/rate=" +
           common::TextTable::format(rate * 100, 0) + "/" + method;
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);
    for (const double rate : rates) {
      for (const std::string& method : methods) {
        core::Scenario s;
        s.key = cell_key(kind, rate, method);
        s.tag = method;
        s.dataset = kind;
        s.fault_rate = rate;
        s.fault_seed = 6000 + static_cast<std::uint64_t>(rate * 100);
        s.retrain = method != "FaP";
        s.epochs = epochs;
        scenarios.push_back(s);
      }
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig7_mitigation"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig7_mitigation"),
                        {"dataset", "fault_rate_percent", "method",
                         "best_accuracy", "baseline"});
  fb::probe_sweep_json(cli, "fig7_mitigation");

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& ctx) {
    const core::Workload& wl = ctx.workload(s.dataset);
    snn::Network net = ctx.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    const systolic::ArrayConfig array = fb::experiment_array(cli);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = s.epochs;
    // Per-epoch evaluation so we can report the best checkpoint — the
    // weights a deployment flow would actually keep (retraining SNNs
    // with surrogate gradients is noisy epoch to epoch).
    cfg.eval_each_epoch = true;

    double acc = 0.0;
    if (s.tag == "FaP") {
      acc = core::run_fap(net, map, wl.data.test).final_accuracy;
    } else if (s.tag == "FaPIT") {
      acc = core::run_fapit(net, map, wl.data.train, wl.data.test, cfg)
                .best_accuracy;
    } else {
      acc = core::run_falvolt(net, map, wl.data.train, wl.data.test, cfg)
                .best_accuracy;
    }

    core::ScenarioResult out;
    out.metrics = {{"best_accuracy", acc},
                   {"baseline", wl.baseline_accuracy}};
    out.csv_rows = {{std::string(core::dataset_name(s.dataset)),
                     common::CsvWriter::format(s.fault_rate * 100), s.tag,
                     common::CsvWriter::format(acc),
                     common::CsvWriter::format(wl.baseline_accuracy)}};
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    for (const auto kind : kinds) {
      // Baseline accuracy comes from the cells' own "baseline" metric,
      // not runner.context(): on a warm-store re-run no workload was
      // ever prepared, yet the replayed cells still carry it.
      const double baseline =
          results.get(cell_key(kind, rates.front(), "FaP"))
              .metrics.back()
              .second;
      common::TextTable table({"faulty", "FaP", "FaPIT", "FalVolt"});
      for (const double rate : rates) {
        const double fap =
            results.get(cell_key(kind, rate, "FaP")).metrics.front().second;
        const double fapit =
            results.get(cell_key(kind, rate, "FaPIT"))
                .metrics.front()
                .second;
        const double falvolt =
            results.get(cell_key(kind, rate, "FalVolt"))
                .metrics.front()
                .second;
        table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                          {fap, fapit, falvolt}, 1);
        std::printf("  %-15s rate=%2.0f%%  FaP %.1f | FaPIT %.1f | FalVolt "
                    "%.1f (baseline %.1f)\n",
                    core::dataset_name(kind), rate * 100, fap, fapit,
                    falvolt, baseline);
      }
      std::printf("\nAccuracy [%%] — %s (baseline %.1f%%):\n",
                  core::dataset_name(kind), baseline);
      table.print();
      std::printf("\n");
    }
  }
  fb::emit_sweep_summary(cli, "fig7_mitigation", results);
  std::printf("Reported values are best checkpoints over the retraining run.\nExpected shape (paper): FaP degrades rapidly with rate; "
              "FaPIT recovers partially; FalVolt reaches (near-)baseline "
              "even at 60%%.\n");
  return 0;
}
