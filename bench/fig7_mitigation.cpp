// Fig. 7 — mitigation comparison: FaP vs FaPIT vs FalVolt.
//
// Reproduces: accuracy after each mitigation at 10% / 30% / 60% faulty
// PEs (MSB sa1, 256x256 array) on MNIST, N-MNIST and DVS-Gesture. The
// paper's claim: FaP collapses as the rate grows, FaPIT recovers
// partially, and only FalVolt stays at (near-)baseline accuracy up to
// 60% faults.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig7_mitigation");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 7",
             "FaP vs FaPIT vs FalVolt accuracy at 10%/30%/60% faulty PEs");

  const bool fast = cli.get_bool("fast");
  const std::vector<double> rates = {0.10, 0.30, 0.60};
  common::CsvWriter csv(fb::csv_path("fig7_mitigation"),
                        {"dataset", "fault_rate_percent", "method",
                         "best_accuracy", "baseline"});

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
        core::DatasetKind::kDvsGesture}) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    fb::BaselineKeeper keeper(wl);
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);

    common::TextTable table({"faulty", "FaP", "FaPIT", "FalVolt"});
    for (const double rate : rates) {
      common::Rng rng(6000 + static_cast<int>(rate * 100));
      const systolic::ArrayConfig array = fb::experiment_array(cli);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = epochs;
      // Per-epoch evaluation so we can report the best checkpoint — the
      // weights a deployment flow would actually keep (retraining SNNs
      // with surrogate gradients is noisy epoch to epoch).
      cfg.eval_each_epoch = true;

      keeper.restore();
      const double fap =
          core::run_fap(wl.net, map, wl.data.test).final_accuracy;
      keeper.restore();
      const double fapit =
          core::run_fapit(wl.net, map, wl.data.train, wl.data.test, cfg)
              .best_accuracy;
      keeper.restore();
      const double falvolt =
          core::run_falvolt(wl.net, map, wl.data.train, wl.data.test, cfg)
              .best_accuracy;

      table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                        {fap, fapit, falvolt}, 1);
      for (const auto& [method, acc] :
           std::vector<std::pair<std::string, double>>{
               {"FaP", fap}, {"FaPIT", fapit}, {"FalVolt", falvolt}}) {
        csv.row({std::string(core::dataset_name(kind)),
                 common::CsvWriter::format(rate * 100), method,
                 common::CsvWriter::format(acc),
                 common::CsvWriter::format(wl.baseline_accuracy)});
      }
      std::printf("  %-15s rate=%2.0f%%  FaP %.1f | FaPIT %.1f | FalVolt "
                  "%.1f (baseline %.1f)\n",
                  core::dataset_name(kind), rate * 100, fap, fapit, falvolt,
                  wl.baseline_accuracy);
    }
    std::printf("\nAccuracy [%%] — %s (baseline %.1f%%):\n",
                core::dataset_name(kind), wl.baseline_accuracy);
    table.print();
    std::printf("\n");
  }
  std::printf("Reported values are best checkpoints over the retraining run.\nExpected shape (paper): FaP degrades rapidly with rate; "
              "FaPIT recovers partially; FalVolt reaches (near-)baseline "
              "even at 60%%.\n");
  return 0;
}
