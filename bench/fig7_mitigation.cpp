// Fig. 7 — mitigation comparison: FaP vs FaPIT vs FalVolt.
//
// Reproduces: accuracy after each mitigation at 10% / 30% / 60% faulty
// PEs (MSB sa1, 256x256 array) on MNIST, N-MNIST and DVS-Gesture. The
// paper's claim: FaP collapses as the rate grows, FaPIT recovers
// partially, and only FalVolt stays at (near-)baseline accuracy up to
// 60% faults.
//
// The grid and scenario function live in bench/grids/fig7_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig7_mitigation");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 7", def.title);

  const std::vector<core::DatasetKind> kinds = fb::fig7::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "fault_rate_percent", "method",
                         "best_accuracy", "baseline"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    const std::vector<double>& rates = fb::fig7::rates();
    for (const auto kind : kinds) {
      // Baseline accuracy comes from the cells' own "baseline" metric,
      // not runner.context(): on a warm-store re-run no workload was
      // ever prepared, yet the replayed cells still carry it.
      const double baseline =
          results.get(fb::fig7::cell_key(kind, rates.front(), "FaP"))
              .metrics.back()
              .second;
      common::TextTable table({"faulty", "FaP", "FaPIT", "FalVolt"});
      for (const double rate : rates) {
        const double fap =
            results.get(fb::fig7::cell_key(kind, rate, "FaP"))
                .metrics.front()
                .second;
        const double fapit =
            results.get(fb::fig7::cell_key(kind, rate, "FaPIT"))
                .metrics.front()
                .second;
        const double falvolt =
            results.get(fb::fig7::cell_key(kind, rate, "FalVolt"))
                .metrics.front()
                .second;
        table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                          {fap, fapit, falvolt}, 1);
        std::printf("  %-15s rate=%2.0f%%  FaP %.1f | FaPIT %.1f | FalVolt "
                    "%.1f (baseline %.1f)\n",
                    core::dataset_name(kind), rate * 100, fap, fapit,
                    falvolt, baseline);
      }
      std::printf("\nAccuracy [%%] — %s (baseline %.1f%%):\n",
                  core::dataset_name(kind), baseline);
      table.print();
      std::printf("\n");
    }
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("Reported values are best checkpoints over the retraining run.\nExpected shape (paper): FaP degrades rapidly with rate; "
              "FaPIT recovers partially; FalVolt reaches (near-)baseline "
              "even at 60%%.\n");
  return 0;
}
