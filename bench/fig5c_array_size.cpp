// Fig. 5c — classification accuracy vs systolic array size.
//
// Reproduces: 4 faulty PEs (MSB sa1) in arrays of 4x4 .. 256x256. Smaller
// arrays fold more weights onto each PE (higher reuse), so the same
// absolute number of faults does far more damage — the paper's
// array-reuse argument.
//
// Every (dataset, array size, fault map) cell is an independent scenario
// on core::SweepRunner; per-repeat accuracies are averaged in repeat
// order afterwards, so tables are byte-identical at any --sweep-parallel.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5c_array_size");
  fb::add_common_flags(cli);
  cli.add_int("faulty-pes", 4, "number of faulty PEs (paper: 4)");
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5c",
             "Accuracy vs total array size at a fixed number of faulty "
             "PEs (MSB sa1, unmitigated)");

  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 2 : 3);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));
  const std::vector<int> sizes = {4, 8, 16, 32, 64, 256};
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind, int n, int rep) {
    return std::string(core::dataset_name(kind)) + "/array=" +
           std::to_string(n) + "/rep=" + std::to_string(rep);
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    for (const int n : sizes) {
      for (int rep = 0; rep < repeats; ++rep) {
        core::Scenario s;
        s.key = cell_key(kind, n, rep);
        s.dataset = kind;
        s.array_size = n;
        s.fault_count = n_faulty;
        s.repeat = rep;
        s.fault_seed = 3000 + static_cast<std::uint64_t>(7 * n + rep);
        scenarios.push_back(s);
      }
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig5c_array_size"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig5c_array_size"),
                        {"dataset", "array", "total_pes", "accuracy",
                         "stddev"});
  fb::probe_sweep_json(cli, "fig5c_array_size");

  fb::EvalSets eval_sets(runner.context(), eval_n);

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& c) {
    snn::Network net = c.clone_network(s.dataset);
    systolic::ArrayConfig array;
    array.rows = array.cols = s.array_size;
    const fault::FaultSpec spec =
        fault::worst_case_spec(array.format.total_bits());
    common::Rng rng(s.fault_seed);
    const fault::FaultMap map = fault::random_fault_map(
        s.array_size, s.array_size, s.fault_count, spec, rng);
    const double acc = core::evaluate_with_faults(
        net, eval_sets.of(s.dataset), array, map,
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
    core::ScenarioResult out;
    out.metrics = {{"accuracy", acc}};
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"dataset"};
    for (const int s : sizes) {
      header.push_back(std::to_string(s * s));  // paper plots total PEs
    }
    common::TextTable table(header);

    for (const auto kind : kinds) {
      std::vector<double> row;
      for (const int n : sizes) {
        common::RunningStats acc;
        for (int rep = 0; rep < repeats; ++rep) {
          acc.add(results.get(cell_key(kind, n, rep))
                      .metrics.front()
                      .second);
        }
        row.push_back(acc.mean());
        csv.row({std::string(core::dataset_name(kind)),
                 std::to_string(n) + "x" + std::to_string(n),
                 std::to_string(n * n),
                 common::CsvWriter::format(acc.mean()),
                 common::CsvWriter::format(acc.stddev())});
      }
      table.row_labeled(core::dataset_name(kind), row, 1);
    }
    std::printf("\nAccuracy [%%] vs total number of PEs (%d faulty PEs, "
                "avg over %d maps):\n",
                n_faulty, repeats);
    table.print();
  }
  fb::emit_sweep_summary(cli, "fig5c_array_size", results);
  std::printf("\nExpected shape (paper): small arrays suffer far more from "
              "the same absolute fault count (array reuse).\n");
  return 0;
}
