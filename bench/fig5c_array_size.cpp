// Fig. 5c — classification accuracy vs systolic array size.
//
// Reproduces: 4 faulty PEs (MSB sa1) in arrays of 4x4 .. 256x256. Smaller
// arrays fold more weights onto each PE (higher reuse), so the same
// absolute number of faults does far more damage — the paper's
// array-reuse argument.
//
// The grid and scenario function live in bench/grids/fig5c_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation and CSV schema.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig5c_array_size");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 5c", def.title);

  const int repeats = fb::fig5c::repeats(cli);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const std::vector<core::DatasetKind> kinds = fb::fig5c::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "array", "total_pes", "accuracy",
                         "stddev"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  if (fb::sweep_complete(results)) {
    std::vector<std::string> header = {"dataset"};
    for (const int s : fb::fig5c::sizes()) {
      header.push_back(std::to_string(s * s));  // paper plots total PEs
    }
    common::TextTable table(header);

    for (const auto kind : kinds) {
      std::vector<double> row;
      for (const int n : fb::fig5c::sizes()) {
        common::RunningStats acc;
        for (int rep = 0; rep < repeats; ++rep) {
          acc.add(results.get(fb::fig5c::cell_key(kind, n, rep))
                      .metrics.front()
                      .second);
        }
        row.push_back(acc.mean());
        csv.row({std::string(core::dataset_name(kind)),
                 std::to_string(n) + "x" + std::to_string(n),
                 std::to_string(n * n),
                 common::CsvWriter::format(acc.mean()),
                 common::CsvWriter::format(acc.stddev())});
      }
      table.row_labeled(core::dataset_name(kind), row, 1);
    }
    std::printf("\nAccuracy [%%] vs total number of PEs (%d faulty PEs, "
                "avg over %d maps):\n",
                n_faulty, repeats);
    table.print();
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nExpected shape (paper): small arrays suffer far more from "
              "the same absolute fault count (array reuse).\n");
  return 0;
}
