// Fig. 5c — classification accuracy vs systolic array size.
//
// Reproduces: 4 faulty PEs (MSB sa1) in arrays of 4x4 .. 256x256. Smaller
// arrays fold more weights onto each PE (higher reuse), so the same
// absolute number of faults does far more damage — the paper's
// array-reuse argument.

#include "bench_common.h"
#include "core/mitigation.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig5c_array_size");
  fb::add_common_flags(cli);
  cli.add_int("faulty-pes", 4, "number of faulty PEs (paper: 4)");
  cli.add_int("eval-samples", 96, "test samples per evaluation");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 5c",
             "Accuracy vs total array size at a fixed number of faulty "
             "PEs (MSB sa1, unmitigated)");

  const int repeats =
      cli.get_int("repeats") > 0 ? static_cast<int>(cli.get_int("repeats"))
                                 : (cli.get_bool("fast") ? 2 : 3);
  const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
  const int eval_n = static_cast<int>(cli.get_int("eval-samples"));
  const std::vector<int> sizes = {4, 8, 16, 32, 64, 256};

  std::vector<std::string> header = {"dataset"};
  for (const int s : sizes) {
    header.push_back(std::to_string(s * s));  // paper plots total PEs
  }
  common::TextTable table(header);
  common::CsvWriter csv(fb::csv_path("fig5c_array_size"),
                        {"dataset", "array", "total_pes", "accuracy",
                         "stddev"});

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
        core::DatasetKind::kDvsGesture}) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    const data::Dataset eval_set = fb::subset(wl.data.test, eval_n);
    std::vector<double> row;
    for (const int n : sizes) {
      systolic::ArrayConfig array;
      array.rows = array.cols = n;
      const fault::FaultSpec spec =
          fault::worst_case_spec(array.format.total_bits());
      common::RunningStats acc;
      for (int rep = 0; rep < repeats; ++rep) {
        common::Rng rng(3000 + 7 * n + rep);
        const fault::FaultMap map =
            fault::random_fault_map(n, n, n_faulty, spec, rng);
        acc.add(core::evaluate_with_faults(
            wl.net, eval_set, array, map,
            systolic::SystolicGemmEngine::FaultHandling::kCorrupt));
      }
      row.push_back(acc.mean());
      csv.row({std::string(core::dataset_name(kind)),
               std::to_string(n) + "x" + std::to_string(n),
               std::to_string(n * n),
               common::CsvWriter::format(acc.mean()),
               common::CsvWriter::format(acc.stddev())});
    }
    table.row_labeled(core::dataset_name(kind), row, 1);
  }
  std::printf("\nAccuracy [%%] vs total number of PEs (%d faulty PEs, avg "
              "over %d maps):\n",
              n_faulty, repeats);
  table.print();
  std::printf("\nExpected shape (paper): small arrays suffer far more from "
              "the same absolute fault count (array reuse).\n");
  return 0;
}
