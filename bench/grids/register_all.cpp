#include "grids/grids.h"

namespace falvolt::bench {

void register_all_grids() {
  // Registration order = listing order in the fleet driver.
  static const bool done = [] {
    fig2::register_grid();
    fig5a::register_grid();
    fig5b::register_grid();
    fig5c::register_grid();
    fig6::register_grid();
    fig7::register_grid();
    fig8::register_grid();
    ablation::register_grid();
    chip_salvage::register_grid();
    gesture::register_grid();
    return true;
  }();
  (void)done;
}

}  // namespace falvolt::bench
