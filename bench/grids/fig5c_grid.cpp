// Fig. 5c grid — accuracy vs systolic array size at a fixed number of
// faulty PEs (MSB sa1, unmitigated). Grid + scenario function, shared
// between the fig5c_array_size main and the sweep_fleet driver.

#include <memory>

#include "bench_common.h"
#include "core/grid_registry.h"
#include "core/mitigation.h"
#include "grids/grids.h"
#include "systolic/cost_model.h"

namespace falvolt::bench::fig5c {

namespace {

// Relative eval cost of one cell at array size `n`, from the analytical
// cost model: smaller arrays tile the same layer GEMM many more times,
// so a 4x4 cell runs orders of magnitude longer than a 256x256 one.
// Normalized so the 64x64 default costs ~1 (the fleet-wide eval unit);
// feeds Scenario::cost_hint, which is scheduling-only and never enters
// a fingerprint.
double eval_cost(int n) {
  const auto latency = [](int size) {
    systolic::ArrayConfig array;
    array.rows = array.cols = size;
    // Representative hidden-layer GEMM of the CPU-scaled networks.
    return systolic::estimate_gemm(array, 64, 288, 128, 0.3).latency_us;
  };
  static const double kReference = latency(64);
  return latency(n) / kReference;
}

}  // namespace

const std::vector<int>& sizes() {
  static const std::vector<int> kSizes = {4, 8, 16, 32, 64, 256};
  return kSizes;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int repeats(const common::CliFlags& cli) {
  return cli.get_int("repeats") > 0
             ? static_cast<int>(cli.get_int("repeats"))
             : (cli.get_bool("fast") ? 2 : 3);
}

std::string cell_key(core::DatasetKind kind, int array_size, int rep) {
  return std::string(core::dataset_name(kind)) + "/array=" +
         std::to_string(array_size) + "/rep=" + std::to_string(rep);
}

void register_grid() {
  core::GridDef def;
  def.name = "fig5c_array_size";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title =
      "Accuracy vs total array size at a fixed number of faulty PEs (MSB "
      "sa1, unmitigated)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("faulty-pes", 4, "number of faulty PEs (paper: 4)");
    cli.add_int("eval-samples", 96, "test samples per evaluation");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    const int reps = repeats(cli);
    const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      for (const int n : sizes()) {
        for (int rep = 0; rep < reps; ++rep) {
          core::Scenario s;
          s.key = cell_key(kind, n, rep);
          s.dataset = kind;
          s.array_size = n;
          s.fault_count = n_faulty;
          s.repeat = rep;
          s.fault_seed = 3000 + static_cast<std::uint64_t>(7 * n + rep);
          s.cost_hint = eval_cost(n);
          scenarios.push_back(s);
        }
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext& ctx) {
    const auto eval_sets = std::make_shared<EvalSets>(
        ctx, static_cast<int>(cli.get_int("eval-samples")));
    return [eval_sets](const core::Scenario& s, const core::SweepContext& c) {
      snn::Network net = c.clone_network(s.dataset);
      systolic::ArrayConfig array;
      array.rows = array.cols = s.array_size;
      const fault::FaultSpec spec =
          fault::worst_case_spec(array.format.total_bits());
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::random_fault_map(
          s.array_size, s.array_size, s.fault_count, spec, rng);
      const double acc = core::evaluate_with_faults(
          net, eval_sets->batch(s.dataset), array, map,
          systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      core::ScenarioResult out;
      out.metrics = {{"accuracy", acc}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig5c
