// Fig. 7 grid — mitigation comparison (FaP vs FaPIT vs FalVolt) at
// 10% / 30% / 60% faulty PEs. Grid + scenario function, shared between
// the fig7_mitigation main and the sweep_fleet driver.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace falvolt::bench::fig7 {

const std::vector<double>& rates() {
  static const std::vector<double> kRates = {0.10, 0.30, 0.60};
  return kRates;
}

const std::vector<std::string>& methods() {
  static const std::vector<std::string> kMethods = {"FaP", "FaPIT",
                                                    "FalVolt"};
  return kMethods;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int epochs(const common::CliFlags& cli, core::DatasetKind kind) {
  return retrain_epochs_flag(cli, kind);
}

std::string cell_key(core::DatasetKind kind, double rate,
                     const std::string& method) {
  return std::string(core::dataset_name(kind)) + "/rate=" +
         common::TextTable::format(rate * 100, 0) + "/" + method;
}

void register_grid() {
  core::GridDef def;
  def.name = "fig7_mitigation";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title = "FaP vs FaPIT vs FalVolt accuracy at 10%/30%/60% faulty PEs";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      const int cell_epochs = epochs(cli, kind);
      for (const double rate : rates()) {
        for (const std::string& method : methods()) {
          core::Scenario s;
          s.key = cell_key(kind, rate, method);
          s.tag = method;
          s.dataset = kind;
          s.fault_rate = rate;
          s.fault_seed = 6000 + static_cast<std::uint64_t>(rate * 100);
          s.retrain = method != "FaP";
          s.epochs = cell_epochs;
          scenarios.push_back(s);
        }
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext&) {
    const systolic::ArrayConfig array = experiment_array(cli);
    return [array](const core::Scenario& s, const core::SweepContext& ctx) {
      const core::Workload& wl = ctx.workload(s.dataset);
      snn::Network net = ctx.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = s.epochs;
      // Per-epoch evaluation so we can report the best checkpoint — the
      // weights a deployment flow would actually keep (retraining SNNs
      // with surrogate gradients is noisy epoch to epoch).
      cfg.eval_each_epoch = true;

      double acc = 0.0;
      if (s.tag == "FaP") {
        acc = core::run_fap(net, map, wl.data.test).final_accuracy;
      } else if (s.tag == "FaPIT") {
        acc = core::run_fapit(net, map, wl.data.train, wl.data.test, cfg)
                  .best_accuracy;
      } else {
        acc = core::run_falvolt(net, map, wl.data.train, wl.data.test, cfg)
                  .best_accuracy;
      }

      core::ScenarioResult out;
      out.metrics = {{"best_accuracy", acc},
                     {"baseline", wl.baseline_accuracy}};
      out.csv_rows = {{std::string(core::dataset_name(s.dataset)),
                       common::CsvWriter::format(s.fault_rate * 100), s.tag,
                       common::CsvWriter::format(acc),
                       common::CsvWriter::format(wl.baseline_accuracy)}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig7
