// Fig. 5a grid — accuracy vs stuck-at fault bit location (sa0/sa1,
// unmitigated inference). Grid + scenario function, shared between the
// fig5a_bit_position main and the sweep_fleet driver.

#include <memory>

#include "bench_common.h"
#include "core/grid_registry.h"
#include "core/mitigation.h"
#include "grids/grids.h"

namespace falvolt::bench::fig5a {

const std::vector<fx::StuckType>& types() {
  static const std::vector<fx::StuckType> kTypes = {
      fx::StuckType::kStuckAt0, fx::StuckType::kStuckAt1};
  return kTypes;
}

const char* type_name(fx::StuckType t) {
  return t == fx::StuckType::kStuckAt0 ? "sa0" : "sa1";
}

std::vector<int> bits(int word_bits) {
  std::vector<int> out;
  for (int b = 0; b < word_bits; b += 2) out.push_back(b);
  if (out.back() != word_bits - 1) out.push_back(word_bits - 1);  // the MSB
  return out;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int repeats(const common::CliFlags& cli) {
  return cli.get_int("repeats") > 0
             ? static_cast<int>(cli.get_int("repeats"))
             : (cli.get_bool("fast") ? 1 : 2);
}

std::string cell_key(core::DatasetKind kind, fx::StuckType type, int bit,
                     int rep) {
  return std::string(core::dataset_name(kind)) + "/" + type_name(type) +
         "/bit=" + std::to_string(bit) + "/rep=" + std::to_string(rep);
}

void register_grid() {
  core::GridDef def;
  def.name = "fig5a_bit_position";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title =
      "Accuracy vs fault bit location (sa0/sa1, unmitigated inference on "
      "the fixed-point systolic engine)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("faulty-pes", 8, "number of faulty PEs");
    cli.add_int("eval-samples", 96, "test samples per evaluation");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    const systolic::ArrayConfig array = experiment_array(cli);
    const int word = array.format.total_bits();
    const int reps = repeats(cli);
    const int n_faulty = static_cast<int>(cli.get_int("faulty-pes"));
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      for (const auto type : types()) {
        for (const int bit : bits(word)) {
          for (int rep = 0; rep < reps; ++rep) {
            core::Scenario s;
            s.key = cell_key(kind, type, bit, rep);
            s.dataset = kind;
            s.stuck = type;
            s.bit = bit;
            s.fault_count = n_faulty;
            s.repeat = rep;
            // Seeded per repeat only: every bit position and stuck level
            // is evaluated on the SAME faulty-PE locations, so the x-axis
            // isolates the bit effect (as in the paper's setup).
            s.fault_seed = 1000 + static_cast<std::uint64_t>(rep);
            scenarios.push_back(s);
          }
        }
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext& ctx) {
    const systolic::ArrayConfig array = experiment_array(cli);
    const int word = array.format.total_bits();
    const auto eval_sets = std::make_shared<EvalSets>(
        ctx, static_cast<int>(cli.get_int("eval-samples")));
    return [array, word, eval_sets](const core::Scenario& s,
                                    const core::SweepContext& c) {
      snn::Network net = c.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      fault::FaultSpec spec;
      spec.bit = s.bit;
      spec.word_bits = word;
      spec.type = s.stuck;
      const fault::FaultMap map = fault::random_fault_map(
          array.rows, array.cols, s.fault_count, spec, rng);
      const double acc = core::evaluate_with_faults(
          net, eval_sets->batch(s.dataset), array, map,
          systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      core::ScenarioResult out;
      out.metrics = {{"accuracy", acc}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig5a
