// Fig. 5b grid — accuracy vs number of faulty PEs (MSB sa1 worst case,
// unmitigated inference). Grid + scenario function, shared between the
// fig5b_fault_count main and the sweep_fleet driver.

#include <memory>

#include "bench_common.h"
#include "core/grid_registry.h"
#include "core/mitigation.h"
#include "grids/grids.h"

namespace falvolt::bench::fig5b {

const std::vector<int>& counts() {
  static const std::vector<int> kCounts = {0, 4, 8, 16, 32, 40, 48, 56, 64};
  return kCounts;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int repeats(const common::CliFlags& cli) {
  return cli.get_int("repeats") > 0
             ? static_cast<int>(cli.get_int("repeats"))
             : (cli.get_bool("fast") ? 2 : 4);
}

std::string cell_key(core::DatasetKind kind, int count, int rep) {
  return std::string(core::dataset_name(kind)) + "/faulty=" +
         std::to_string(count) + "/rep=" + std::to_string(rep);
}

void register_grid() {
  core::GridDef def;
  def.name = "fig5b_fault_count";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title =
      "Accuracy vs number of faulty PEs (MSB sa1 worst case, unmitigated "
      "inference)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("eval-samples", 96, "test samples per evaluation");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    std::vector<core::Scenario> scenarios;
    const int reps = repeats(cli);
    for (const auto kind : kinds(cli)) {
      for (const int count : counts()) {
        for (int rep = 0; rep < reps; ++rep) {
          core::Scenario s;
          s.key = cell_key(kind, count, rep);
          s.dataset = kind;
          s.fault_count = count;
          s.repeat = rep;
          s.fault_seed = 2000 + static_cast<std::uint64_t>(31 * count + rep);
          scenarios.push_back(s);
        }
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext& ctx) {
    const systolic::ArrayConfig array = experiment_array(cli);
    const fault::FaultSpec spec =
        fault::worst_case_spec(array.format.total_bits());
    const auto eval_sets = std::make_shared<EvalSets>(
        ctx, static_cast<int>(cli.get_int("eval-samples")));
    return [array, spec, eval_sets](const core::Scenario& s,
                                    const core::SweepContext& c) {
      snn::Network net = c.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::random_fault_map(
          array.rows, array.cols, s.fault_count, spec, rng);
      const double acc = core::evaluate_with_faults(
          net, eval_sets->batch(s.dataset), array, map,
          systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      core::ScenarioResult out;
      out.metrics = {{"accuracy", acc}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig5b
