// Gesture-pipeline grid — the battery-driven edge scenario from the
// paper's introduction (examples/gesture_pipeline.cpp) as registered
// scenarios: an event-camera gesture classifier on a systolic SNN
// accelerator that developed permanent faults in the field, swept over
// in-field fault rates with and without FalVolt recalibration.
//
// Cells: (fault rate) x (unmitigated | falvolt) on the DVS-Gesture
// workload. The falvolt arm retrains a clone against the damage map
// (field recalibration); the unmitigated arm is the accuracy the device
// limps along at until it does.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace falvolt::bench::gesture {

const std::vector<double>& rates() {
  static const std::vector<double> kRates = {0.10, 0.20, 0.30};
  return kRates;
}

const std::vector<std::string>& methods() {
  static const std::vector<std::string> kMethods = {"unmitigated",
                                                    "falvolt"};
  return kMethods;
}

std::string cell_key(double rate, const std::string& method) {
  return "rate=" + common::TextTable::format(rate * 100, 0) + "/" + method;
}

void register_grid() {
  core::GridDef def;
  def.name = "gesture_pipeline";
  def.datasets = {core::DatasetKind::kDvsGesture};
  def.title =
      "In-field gesture pipeline on a damaged edge accelerator: accuracy "
      "vs fault rate, unmitigated vs FalVolt recalibration (DVS-Gesture)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0,
                "recalibration retraining epochs (0 = per-dataset default)");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    (void)dataset_list(cli, {core::DatasetKind::kDvsGesture});
    const int epochs =
        retrain_epochs_flag(cli, core::DatasetKind::kDvsGesture);
    std::vector<core::Scenario> scenarios;
    for (const double rate : rates()) {
      for (const std::string& method : methods()) {
        core::Scenario s;
        s.key = cell_key(rate, method);
        s.tag = method;
        s.dataset = core::DatasetKind::kDvsGesture;
        s.fault_rate = rate;
        // Both arms face the SAME damage map at a given rate — the
        // comparison is mitigation, not fault placement.
        s.fault_seed = 9900 + static_cast<std::uint64_t>(rate * 100);
        s.retrain = method == "falvolt";
        s.epochs = s.retrain ? epochs : 0;
        scenarios.push_back(s);
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext& ctx) {
    const systolic::ArrayConfig array = experiment_array(cli);
    // n = 0: the FULL test split, as one shared prebuilt batch.
    const auto eval_sets = std::make_shared<EvalSets>(ctx, 0);
    return [array, eval_sets](const core::Scenario& s,
                              const core::SweepContext& c) {
      const core::Workload& wl = c.workload(s.dataset);
      snn::Network net = c.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::ScenarioResult out;
      double acc = 0.0;
      // BOTH arms score on the full test split, exactly like the
      // example this grid reproduces — the recovery delta must not mix
      // evaluation protocols.
      if (s.retrain) {
        core::MitigationConfig cfg;
        cfg.array = array;
        cfg.retrain_epochs = s.epochs;
        cfg.eval_each_epoch = false;
        const core::MitigationResult r = core::run_falvolt(
            net, map, wl.data.train, wl.data.test, cfg);
        acc = r.final_accuracy;
      } else {
        acc = core::evaluate_with_faults(
            net, eval_sets->batch(s.dataset), array, map,
            systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
      }
      out.metrics = {{"accuracy", acc}};
      out.csv_rows = {{common::CsvWriter::format(s.fault_rate * 100),
                       s.tag, common::CsvWriter::format(acc)}};
      logf(out.log, "  rate=%2.0f%% %-12s -> %.1f%%\n",
           s.fault_rate * 100, s.tag.c_str(), acc);
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::gesture
