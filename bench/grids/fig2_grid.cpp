// Fig. 2 grid — retraining accuracy vs fixed threshold voltage at
// 30% / 60% faulty PEs. Grid + scenario function, shared between the
// fig2_vth_sweep main and the sweep_fleet driver.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace falvolt::bench::fig2 {

const std::vector<float>& vths() {
  static const std::vector<float> kVths = {0.45f, 0.5f, 0.55f, 0.7f, 1.0f};
  return kVths;
}

const std::vector<double>& rates() {
  static const std::vector<double> kRates = {0.30, 0.60};
  return kRates;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kDvsGesture});
}

int epochs(const common::CliFlags& cli, core::DatasetKind kind) {
  return retrain_epochs_flag(cli, kind);
}

std::string cell_key(core::DatasetKind kind, double rate, float vth) {
  return std::string(core::dataset_name(kind)) + "/rate=" +
         common::TextTable::format(rate * 100, 0) + "/vth=" +
         common::TextTable::format(vth, 2);
}

void register_grid() {
  core::GridDef def;
  def.name = "fig2_vth_sweep";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kDvsGesture};
  def.title =
      "Retraining accuracy vs fixed threshold voltage at 30% / 60% faulty "
      "PEs (motivates FalVolt)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      const int cell_epochs = epochs(cli, kind);
      for (const double rate : rates()) {
        for (const float vth : vths()) {
          core::Scenario s;
          s.key = cell_key(kind, rate, vth);
          s.dataset = kind;
          s.vth = vth;
          s.fault_rate = rate;
          s.fault_seed = 4000 + static_cast<std::uint64_t>(rate * 100);
          s.retrain = true;
          s.epochs = cell_epochs;
          scenarios.push_back(s);
        }
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext&) {
    const systolic::ArrayConfig array = experiment_array(cli);
    return [array](const core::Scenario& s, const core::SweepContext& ctx) {
      const core::Workload& wl = ctx.workload(s.dataset);
      snn::Network net = ctx.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = s.epochs;
      cfg.eval_each_epoch = false;
      const core::MitigationResult r = core::run_fixed_vth_retraining(
          net, map, wl.data.train, wl.data.test, cfg,
          static_cast<float>(s.vth));

      core::ScenarioResult out;
      out.metrics = {{"accuracy", r.final_accuracy}};
      out.csv_rows = {{std::string(core::dataset_name(s.dataset)),
                       common::CsvWriter::format(s.fault_rate * 100),
                       common::CsvWriter::format(s.vth),
                       common::CsvWriter::format(r.final_accuracy)}};
      logf(out.log, "  %-15s rate=%2.0f%% vth=%.2f -> %.1f%%\n",
           core::dataset_name(s.dataset), s.fault_rate * 100, s.vth,
           r.final_accuracy);
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig2
