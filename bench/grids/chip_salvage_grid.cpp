// Chip-salvage triage grid — the yield-recovery workload from the
// paper's introduction (examples/chip_salvage_triage.cpp), expressed as
// registered scenarios so the fleet can sweep, cache, and shard it like
// any figure grid.
//
// Each cell is one manufactured chip of the lot: its defect map is
// scan-tested post-fab, a clean die ships as grade A, a defective die
// runs FalVolt against its recovered map and is salvaged (grade B) when
// it recovers to within --accept-drop points of the golden-model
// baseline. Unlike the narrative example — which threads one lot RNG
// through every chip — each cell derives its defect population from its
// own seed, so cells are order-independent and content-addressable.


#include "bench_common.h"
#include "core/grid_registry.h"
#include "fault/post_fab_test.h"
#include "grids/grids.h"

namespace falvolt::bench::chip_salvage {

std::string cell_key(int chip) { return "chip=" + std::to_string(chip); }

/// Deterministic defect count of one chip: ~30% of dies are clean, the
/// rest carry 1..(defect_rate * total_pes) random stuck-bit defects.
/// Shared by the grid builder (which needs it up front to tag retrain
/// cost) and the scenario key scheme.
int chip_defects(int chip, double defect_rate, int total_pes) {
  common::Rng lot(9000 + static_cast<std::uint64_t>(chip));
  if (!lot.bernoulli(0.7)) return 0;
  const std::uint64_t ceiling = static_cast<std::uint64_t>(
      defect_rate * static_cast<double>(total_pes));
  // A rate/array small enough that the ceiling truncates to zero still
  // means "defective die": it carries the minimum one defect
  // (Rng::uniform_int(0) would throw).
  if (ceiling == 0) return 1;
  return 1 + static_cast<int>(lot.uniform_int(ceiling));
}

void register_grid() {
  core::GridDef def;
  def.name = "chip_salvage_triage";
  def.datasets = {core::DatasetKind::kMnist};
  def.title =
      "Yield recovery over a fab lot: post-fab scan test + FalVolt "
      "salvage per defective die (MNIST)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("chips", 6, "chips in the manufactured lot");
    cli.add_double("defect-rate", 0.18,
                   "mean fraction of defective PEs on a bad die");
    cli.add_int("epochs", 0, "salvage retraining epochs (0 = default)");
    cli.add_double("accept-drop", 2.0,
                   "max accuracy drop vs baseline (points) to still ship "
                   "a salvaged die");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    (void)dataset_list(cli, {core::DatasetKind::kMnist});
    const systolic::ArrayConfig array = experiment_array(cli);
    const double defect_rate = cli.get_double("defect-rate");
    const int epochs =
        retrain_epochs_flag(cli, core::DatasetKind::kMnist);
    std::vector<core::Scenario> scenarios;
    for (int chip = 0; chip < static_cast<int>(cli.get_int("chips"));
         ++chip) {
      const int defects =
          chip_defects(chip, defect_rate, array.total_pes());
      core::Scenario s;
      s.key = cell_key(chip);
      s.tag = defects == 0 ? "clean" : "defective";
      s.dataset = core::DatasetKind::kMnist;
      s.fault_count = defects;
      s.repeat = chip;
      s.fault_seed = 9000 + static_cast<std::uint64_t>(chip);
      // A clean die never retrains — it is a pure scan test — so only
      // defective dies are tagged with the salvage retraining cost.
      s.retrain = defects > 0;
      s.epochs = defects > 0 ? epochs : 0;
      scenarios.push_back(s);
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext&) {
    const systolic::ArrayConfig array = experiment_array(cli);
    const double accept_drop = cli.get_double("accept-drop");
    return [array, accept_drop](const core::Scenario& s,
                                const core::SweepContext& c) {
      const core::Workload& wl = c.workload(s.dataset);
      // Manufacture this die: random stuck types across the word, count
      // fixed by the scenario (derived in the grid builder).
      fault::FaultSpec spec;
      spec.bit = -1;
      spec.word_bits = array.format.total_bits();
      spec.random_type = true;
      common::Rng defect_rng(s.fault_seed);
      const fault::FabricatedChip chip(
          fault::random_fault_map(array.rows, array.cols, s.fault_count,
                                  spec, defect_rng),
          array.format);

      // Post-fab test recovers the map from scan patterns.
      const fault::TestOutcome tested = fault::run_post_fab_test(chip);
      core::ScenarioResult out;
      logf(out.log, "  chip %d: %d faulty PEs detected (%d scan ops)",
           s.repeat, tested.recovered.num_faulty_pes(),
           tested.scan_operations);
      if (tested.recovered.empty()) {
        logf(out.log, " -> grade A\n");
        out.metrics = {{"detected_faults", 0.0},
                       {"accuracy", wl.baseline_accuracy},
                       {"salvaged", 1.0},
                       {"grade_a", 1.0}};
        out.csv_rows = {{std::to_string(s.repeat), "A", "0",
                         common::CsvWriter::format(wl.baseline_accuracy)}};
        return out;
      }

      // FalVolt against this die's unique recovered map.
      snn::Network net = c.clone_network(s.dataset);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = s.epochs;
      cfg.eval_each_epoch = false;
      const core::MitigationResult r = core::run_falvolt(
          net, tested.recovered, wl.data.train, wl.data.test, cfg);
      const bool salvaged =
          r.final_accuracy >= wl.baseline_accuracy - accept_drop;
      logf(out.log, "; FaP %.1f%% -> FalVolt %.1f%% -> %s\n",
           r.pruned_accuracy, r.final_accuracy,
           salvaged ? "grade B (salvaged)" : "scrap");
      out.metrics = {
          {"detected_faults",
           static_cast<double>(tested.recovered.num_faulty_pes())},
          {"accuracy", r.final_accuracy},
          {"salvaged", salvaged ? 1.0 : 0.0},
          {"grade_a", 0.0}};
      out.csv_rows = {{std::to_string(s.repeat), salvaged ? "B" : "scrap",
                       std::to_string(tested.recovered.num_faulty_pes()),
                       common::CsvWriter::format(r.final_accuracy)}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::chip_salvage
