#pragma once
// The figure benches' grid definitions, registered into
// core::GridRegistry (see grid_registry.h for why).
//
// Each figN namespace is that bench's single source of truth for its
// grid axes and scenario-key scheme: the GridDef's grid builder AND the
// bench main's table aggregation both go through these helpers, so the
// two can never disagree — and the sweep_fleet driver, which runs the
// registered GridDefs, addresses exactly the cells the standalone bench
// would.

#include <string>
#include <vector>

#include "common/cli.h"
#include "core/experiment.h"
#include "fixed/stuck_bits.h"

namespace falvolt::bench {

/// Register every grid — the seven figure benches, the design-choice
/// ablation, and the example-derived workloads — into
/// core::GridRegistry::instance(). Idempotent — every bench main and
/// every driver calls it first.
void register_all_grids();

namespace fig2 {
const std::vector<float>& vths();
const std::vector<double>& rates();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int epochs(const common::CliFlags& cli, core::DatasetKind kind);
std::string cell_key(core::DatasetKind kind, double rate, float vth);
void register_grid();
}  // namespace fig2

namespace fig5a {
const std::vector<fx::StuckType>& types();
const char* type_name(fx::StuckType t);
std::vector<int> bits(int word_bits);
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int repeats(const common::CliFlags& cli);
std::string cell_key(core::DatasetKind kind, fx::StuckType type, int bit,
                     int rep);
void register_grid();
}  // namespace fig5a

namespace fig5b {
const std::vector<int>& counts();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int repeats(const common::CliFlags& cli);
std::string cell_key(core::DatasetKind kind, int count, int rep);
void register_grid();
}  // namespace fig5b

namespace fig5c {
const std::vector<int>& sizes();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int repeats(const common::CliFlags& cli);
std::string cell_key(core::DatasetKind kind, int array_size, int rep);
void register_grid();
}  // namespace fig5c

namespace fig6 {
const std::vector<double>& rates();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int epochs(const common::CliFlags& cli, core::DatasetKind kind);
std::string cell_key(core::DatasetKind kind, double rate);
void register_grid();
}  // namespace fig6

namespace fig7 {
const std::vector<double>& rates();
const std::vector<std::string>& methods();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int epochs(const common::CliFlags& cli, core::DatasetKind kind);
std::string cell_key(core::DatasetKind kind, double rate,
                     const std::string& method);
void register_grid();
}  // namespace fig7

namespace fig8 {
const std::vector<std::string>& methods();
std::vector<core::DatasetKind> kinds(const common::CliFlags& cli);
int horizon(const common::CliFlags& cli, core::DatasetKind kind);
std::string cell_key(core::DatasetKind kind, const std::string& method);
void register_grid();
}  // namespace fig8

// FalVolt design-choice ablations (MNIST at 30% faulty PEs); see
// ablation_grid.cpp for the arm definitions.
namespace ablation {
struct Arm {
  const char* ablation;
  const char* arm;
};
const std::vector<Arm>& arms();
int epochs(const common::CliFlags& cli);
std::string cell_key(const std::string& ablation, const std::string& arm);
void register_grid();
}  // namespace ablation

// Example-derived workload: chip-salvage triage over a fab lot (one
// cell per manufactured die; MNIST).
namespace chip_salvage {
std::string cell_key(int chip);
int chip_defects(int chip, double defect_rate, int total_pes);
void register_grid();
}  // namespace chip_salvage

// Example-derived workload: in-field gesture pipeline on a damaged edge
// accelerator (fault-rate x mitigation cells; DVS-Gesture).
namespace gesture {
const std::vector<double>& rates();
const std::vector<std::string>& methods();
std::string cell_key(double rate, const std::string& method);
void register_grid();
}  // namespace gesture

}  // namespace falvolt::bench
