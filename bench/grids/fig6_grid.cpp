// Fig. 6 grid — optimized per-layer threshold voltages returned by
// FalVolt at 10% / 30% / 60% faulty PEs. Grid + scenario function,
// shared between the fig6_vth_layers main and the sweep_fleet driver.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace falvolt::bench::fig6 {

const std::vector<double>& rates() {
  static const std::vector<double> kRates = {0.10, 0.30, 0.60};
  return kRates;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int epochs(const common::CliFlags& cli, core::DatasetKind kind) {
  return retrain_epochs_flag(cli, kind);
}

std::string cell_key(core::DatasetKind kind, double rate) {
  return std::string(core::dataset_name(kind)) + "/rate=" +
         common::TextTable::format(rate * 100, 0);
}

void register_grid() {
  core::GridDef def;
  def.name = "fig6_vth_layers";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title =
      "Optimized per-layer threshold voltage after FalVolt at 10%/30%/60% "
      "faulty PEs";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      const int cell_epochs = epochs(cli, kind);
      for (const double rate : rates()) {
        core::Scenario s;
        s.key = cell_key(kind, rate);
        s.dataset = kind;
        s.fault_rate = rate;
        s.fault_seed = 5000 + static_cast<std::uint64_t>(rate * 100);
        s.retrain = true;
        s.epochs = cell_epochs;
        scenarios.push_back(s);
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext&) {
    const systolic::ArrayConfig array = experiment_array(cli);
    return [array](const core::Scenario& s, const core::SweepContext& ctx) {
      const core::Workload& wl = ctx.workload(s.dataset);
      snn::Network net = ctx.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = s.epochs;
      cfg.eval_each_epoch = false;
      const core::MitigationResult r =
          core::run_falvolt(net, map, wl.data.train, wl.data.test, cfg);

      core::ScenarioResult out;
      out.metrics = {{"accuracy", r.final_accuracy}};
      for (const auto& v : r.vth_per_layer) {
        out.metrics.emplace_back("vth:" + v.layer, v.vth);
        out.csv_rows.push_back(
            {std::string(core::dataset_name(s.dataset)),
             common::CsvWriter::format(s.fault_rate * 100), v.layer,
             common::CsvWriter::format(v.vth),
             common::CsvWriter::format(r.final_accuracy)});
      }
      logf(out.log, "  %-15s rate=%2.0f%% -> accuracy %.1f%%\n",
           core::dataset_name(s.dataset), s.fault_rate * 100,
           r.final_accuracy);
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig6
