// Fig. 8 grid — convergence of FaPIT vs FalVolt at 30% faulty PEs
// (per-epoch accuracy curves). Grid + scenario function, shared between
// the fig8_convergence main and the sweep_fleet driver.

#include <cstdio>

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace falvolt::bench::fig8 {

namespace {

std::string epoch_metric(int epoch) {  // 1-based, zero-padded
  char buf[16];
  std::snprintf(buf, sizeof(buf), "epoch%03d", epoch);
  return buf;
}

}  // namespace

const std::vector<std::string>& methods() {
  static const std::vector<std::string> kMethods = {"FaPIT", "FalVolt"};
  return kMethods;
}

std::vector<core::DatasetKind> kinds(const common::CliFlags& cli) {
  return dataset_list(cli, {core::DatasetKind::kMnist,
                            core::DatasetKind::kNMnist,
                            core::DatasetKind::kDvsGesture});
}

int horizon(const common::CliFlags& cli, core::DatasetKind kind) {
  // Long enough that the slower method also converges.
  return cli.get_int("epochs") > 0
             ? static_cast<int>(cli.get_int("epochs"))
             : 2 * core::default_retrain_epochs(kind, cli.get_bool("fast"));
}

std::string cell_key(core::DatasetKind kind, const std::string& method) {
  return std::string(core::dataset_name(kind)) + "/" + method;
}

void register_grid() {
  core::GridDef def;
  def.name = "fig8_convergence";
  def.datasets = {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                  core::DatasetKind::kDvsGesture};
  def.title =
      "Accuracy vs retraining epochs at 30% faulty PEs (FaPIT vs FalVolt; "
      "the 2x-faster claim)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0,
                "retraining epochs (0 = 2x per-dataset default)");
    cli.add_double("rate", 0.30, "fault rate (paper: 0.30)");
    cli.add_double("target-drop", 3.0,
                   "convergence target = baseline - this many points");
  };
  // --target-drop only moves the post-sweep epochs-to-target summary,
  // never a curve value: exempting it keeps the expensive retraining
  // cells cached while the convergence target is re-picked.
  def.aggregation_only = {"target-drop"};
  def.scenarios = [](const common::CliFlags& cli) {
    const double rate = cli.get_double("rate");
    std::vector<core::Scenario> scenarios;
    for (const auto kind : kinds(cli)) {
      for (const std::string& method : methods()) {
        core::Scenario s;
        s.key = cell_key(kind, method);
        s.tag = method;
        s.dataset = kind;
        s.fault_rate = rate;
        s.fault_seed = 7000;  // both methods retrain against the SAME map
        s.retrain = true;
        s.epochs = horizon(cli, kind);
        scenarios.push_back(s);
      }
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext&) {
    const systolic::ArrayConfig array = experiment_array(cli);
    return [array](const core::Scenario& s, const core::SweepContext& ctx) {
      const core::Workload& wl = ctx.workload(s.dataset);
      snn::Network net = ctx.clone_network(s.dataset);
      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = s.epochs;
      cfg.eval_each_epoch = true;  // the whole point of this figure

      const core::MitigationResult r =
          s.tag == "FaPIT"
              ? core::run_fapit(net, map, wl.data.train, wl.data.test, cfg)
              : core::run_falvolt(net, map, wl.data.train, wl.data.test,
                                  cfg);

      core::ScenarioResult out;
      out.metrics = {{"baseline", wl.baseline_accuracy}};
      for (int e = 0; e < s.epochs; ++e) {
        const double acc =
            r.curve[static_cast<std::size_t>(e)].test_accuracy;
        out.metrics.emplace_back(epoch_metric(e + 1), acc);
        out.csv_rows.push_back(
            {std::string(core::dataset_name(s.dataset)), s.tag,
             std::to_string(e + 1), common::CsvWriter::format(acc)});
      }
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::fig8
