// Ablation grid — FalVolt design-choice ablations (DESIGN.md §5), all
// on the MNIST workload at 30% faulty PEs:
//   A1  per-layer learnable V_th (FalVolt)  vs  one global learnable V_th
//       vs  frozen V_th (FaPIT)
//   A2  re-zeroing pruned weights every epoch (Algorithm 1 line 13)
//       vs  only once after training
//   A3  surrogate gradient kind during retraining (triangle / sigmoid /
//       rectangle)
//   A4  accumulator width of the PE (16-bit Q8.8 vs 32-bit Q16.16) for
//       the unmitigated MSB-fault collapse
//
// Grid + scenario function (including the custom-retrain loop the arms
// share), registered into core::GridRegistry so the sweep_fleet driver
// runs exactly the cells the standalone ablation_falvolt bench does;
// the bench main keeps only its table aggregation.

#include <memory>

#include "bench_common.h"
#include "core/grid_registry.h"
#include "fault/prune_mask.h"
#include "grids/grids.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace falvolt::bench::ablation {

namespace {

/// Retrain `net` with pruning; `tie_vth` averages all hidden thresholds
/// after each epoch (the "global V_th" arm), `rezero_each_epoch` toggles
/// Algorithm 1 line 13.
double retrain_custom(snn::Network& net, const data::DatasetSplit& data,
                      const fault::FaultMap& map, int epochs, bool train_vth,
                      bool tie_vth, bool rezero_each_epoch) {
  fault::NetworkPruner pruner(net, map);
  pruner.apply(net);
  for (snn::Plif* p : net.hidden_spiking_layers()) {
    p->set_vth(1.0f);
    p->set_train_vth(train_vth);
  }
  constexpr double kLr = 1e-2;
  snn::Adam opt(kLr);
  snn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.eval_each_epoch = false;
  const int decay_epoch = (3 * epochs) / 5;
  tc.on_epoch = [&opt, decay_epoch](const snn::EpochStats& s) {
    if (s.epoch + 1 == decay_epoch) opt.set_lr(kLr / 4.0);
  };
  tc.post_epoch = [&](snn::Network& n) {
    if (rezero_each_epoch) pruner.apply(n);
    if (tie_vth) {
      const auto layers = n.hidden_spiking_layers();
      float mean = 0.0f;
      for (snn::Plif* p : layers) mean += p->vth();
      mean /= static_cast<float>(layers.size());
      for (snn::Plif* p : layers) p->set_vth(mean);
    }
  };
  snn::Trainer trainer(net, opt, data.train, &data.test, tc);
  trainer.run();
  pruner.apply(net);  // final re-zero (hardware bypass is mandatory)
  net.set_train_vth(false);
  return snn::evaluate(net, data.test);
}

}  // namespace

const std::vector<Arm>& arms() {
  // A2's "every epoch" arm is bit-identical to A1's per-layer arm (same
  // clone, map, and retrain_custom arguments, and scenarios are
  // deterministic), so it is aliased by the bench's aggregation instead
  // of recomputed.
  static const std::vector<Arm> kArms = {
      {"vth_granularity", "per_layer"}, {"vth_granularity", "global"},
      {"vth_granularity", "frozen"},    {"rezero", "end_only"},
      {"surrogate", "triangle"},        {"surrogate", "sigmoid"},
      {"surrogate", "rectangle"},       {"accumulator_width", "q8_8"},
      {"accumulator_width", "q16_16"}};
  return kArms;
}

int epochs(const common::CliFlags& cli) {
  // The ablation arms retrain from a harsher start than the figures, so
  // the default gets two extra epochs.
  return retrain_epochs_flag(cli, core::DatasetKind::kMnist, /*extra=*/2);
}

std::string cell_key(const std::string& ablation, const std::string& arm) {
  return ablation + "/" + arm;
}

void register_grid() {
  core::GridDef def;
  def.name = "ablation_falvolt";
  def.datasets = {core::DatasetKind::kMnist};
  def.title =
      "FalVolt design-choice ablations (MNIST, 30% faulty PEs unless "
      "noted)";
  def.add_flags = [](common::CliFlags& cli) {
    cli.add_int("epochs", 0, "retraining epochs (0 = default)");
    cli.add_double("rate", 0.30, "fault rate");
  };
  def.scenarios = [](const common::CliFlags& cli) {
    // This grid is MNIST-only: dataset_list rejects a --datasets that
    // asks for anything else rather than silently running MNIST.
    (void)dataset_list(cli, {core::DatasetKind::kMnist});
    const int cell_epochs = epochs(cli);
    const double rate = cli.get_double("rate");
    std::vector<core::Scenario> scenarios;
    for (const Arm& a : arms()) {
      core::Scenario s;
      s.key = cell_key(a.ablation, a.arm);
      s.tag = a.arm;
      s.dataset = core::DatasetKind::kMnist;
      s.fault_rate = rate;
      s.fault_seed =
          std::string(a.ablation) == "accumulator_width" ? 8100 : 8000;
      s.retrain = std::string(a.ablation) != "accumulator_width";
      s.epochs = cell_epochs;
      scenarios.push_back(s);
    }
    return scenarios;
  };
  def.scenario_fn = [](const common::CliFlags& cli,
                       const core::SweepContext& ctx) {
    const systolic::ArrayConfig array = experiment_array(cli);
    const auto eval_sets = std::make_shared<EvalSets>(ctx, 96);
    return [array, eval_sets](const core::Scenario& s,
                              const core::SweepContext& c) {
      const core::Workload& wl = c.workload(s.dataset);
      snn::Network net = c.clone_network(s.dataset);
      core::ScenarioResult out;

      if (s.key.rfind("accumulator_width/", 0) == 0) {
        // A4: unmitigated MSB collapse at two accumulator widths.
        const fx::FixedFormat fmt = s.tag == "q8_8"
                                        ? fx::FixedFormat::q8_8()
                                        : fx::FixedFormat::q16_16();
        systolic::ArrayConfig a = array;
        a.format = fmt;
        common::Rng map_rng(s.fault_seed);
        const fault::FaultMap m = fault::random_fault_map(
            a.rows, a.cols, 8, fault::worst_case_spec(fmt.total_bits()),
            map_rng);
        const fault::FaultMap clean(a.rows, a.cols);
        const snn::EvalBatch& eval_set = eval_sets->batch(s.dataset);
        const double acc_clean = core::evaluate_with_faults(
            net, eval_set, a, clean,
            systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
        const double acc_faulty = core::evaluate_with_faults(
            net, eval_set, a, m,
            systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
        out.metrics = {{"clean_accuracy", acc_clean},
                       {"faulty_accuracy", acc_faulty}};
        out.csv_rows = {{"accumulator_width", fmt.to_string(),
                         common::CsvWriter::format(acc_faulty)}};
        return out;
      }

      common::Rng rng(s.fault_seed);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, s.fault_rate,
          fault::worst_case_spec(array.format.total_bits()), rng);

      if (s.key.rfind("surrogate/", 0) == 0) {
        // A3: surrogate kind during retraining.
        snn::Surrogate sg;
        sg.kind = s.tag == "sigmoid"     ? snn::SurrogateKind::kSigmoid
                  : s.tag == "rectangle" ? snn::SurrogateKind::kRectangle
                                         : snn::SurrogateKind::kTriangle;
        sg.gamma = sg.kind == snn::SurrogateKind::kSigmoid ? 4.0f : 2.0f;
        for (snn::Plif* p : net.spiking_layers()) p->set_surrogate(sg);
        const double acc =
            retrain_custom(net, wl.data, map, s.epochs, true, false, true);
        out.metrics = {{"accuracy", acc}};
        out.csv_rows = {{"surrogate", sg.to_string(),
                         common::CsvWriter::format(acc)}};
        return out;
      }

      // A1/A2: threshold granularity and re-zero cadence.
      const bool train_vth = s.tag != "frozen";
      const bool tie_vth = s.tag == "global";
      const bool rezero = s.tag != "end_only";
      const double acc = retrain_custom(net, wl.data, map, s.epochs,
                                        train_vth, tie_vth, rezero);
      out.metrics = {{"accuracy", acc}};
      const char* ablation =
          s.key.rfind("rezero/", 0) == 0 ? "rezero" : "vth_granularity";
      out.csv_rows = {{ablation, s.tag, common::CsvWriter::format(acc)}};
      return out;
    };
  };
  core::GridRegistry::instance().add(std::move(def));
}

}  // namespace falvolt::bench::ablation
