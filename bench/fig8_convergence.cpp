// Fig. 8 — convergence: accuracy vs retraining epoch, FaPIT vs FalVolt.
//
// Reproduces: 30% faulty PEs (MSB sa1, 256x256 array); per-epoch test
// accuracy of FaPIT (V_th = 1.0) and FalVolt. The paper's claim: FalVolt
// reaches the baseline-accuracy band in about half the epochs of FaPIT
// ("2x faster").

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig8_convergence");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = 2x per-dataset default)");
  cli.add_double("rate", 0.30, "fault rate (paper: 0.30)");
  cli.add_double("target-drop", 3.0,
                 "convergence target = baseline - this many points");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 8",
             "Accuracy vs retraining epochs at 30% faulty PEs "
             "(FaPIT vs FalVolt; the 2x-faster claim)");

  const bool fast = cli.get_bool("fast");
  const double rate = cli.get_double("rate");
  common::CsvWriter csv(fb::csv_path("fig8_convergence"),
                        {"dataset", "method", "epoch", "accuracy"});

  common::TextTable summary({"dataset", "FaPIT epochs-to-target",
                             "FalVolt epochs-to-target", "speedup"});

  // Unlike the grid figures, the convergence curves run serially per
  // dataset (two long retraining runs each) — --datasets is honored,
  // --sweep-parallel/--sweep-json are no-ops here.
  for (const auto kind : fb::dataset_list(
           cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
                 core::DatasetKind::kDvsGesture})) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    fb::BaselineKeeper keeper(wl);
    // Long enough horizon that the slower method also converges.
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : 2 * core::default_retrain_epochs(kind, fast);

    common::Rng rng(7000);
    const systolic::ArrayConfig array = fb::experiment_array(cli);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = epochs;
    cfg.eval_each_epoch = true;  // the whole point of this figure

    keeper.restore();
    const core::MitigationResult fapit =
        core::run_fapit(wl.net, map, wl.data.train, wl.data.test, cfg);
    keeper.restore();
    const core::MitigationResult falvolt =
        core::run_falvolt(wl.net, map, wl.data.train, wl.data.test, cfg);

    common::TextTable curve({"epoch", "FaPIT", "FalVolt"});
    for (int e = 0; e < epochs; ++e) {
      curve.row_labeled(std::to_string(e + 1),
                        {fapit.curve[static_cast<std::size_t>(e)].test_accuracy,
                         falvolt.curve[static_cast<std::size_t>(e)]
                             .test_accuracy},
                        1);
      csv.row({std::string(core::dataset_name(kind)), "FaPIT",
               std::to_string(e + 1),
               common::CsvWriter::format(
                   fapit.curve[static_cast<std::size_t>(e)].test_accuracy)});
      csv.row({std::string(core::dataset_name(kind)), "FalVolt",
               std::to_string(e + 1),
               common::CsvWriter::format(
                   falvolt.curve[static_cast<std::size_t>(e)]
                       .test_accuracy)});
    }
    std::printf("\nAccuracy [%%] per retraining epoch — %s:\n",
                core::dataset_name(kind));
    curve.print();

    const double target =
        wl.baseline_accuracy - cli.get_double("target-drop");
    const int e_fapit = fapit.epochs_to_reach(target);
    const int e_falvolt = falvolt.epochs_to_reach(target);
    const std::string speedup =
        (e_fapit > 0 && e_falvolt > 0)
            ? common::TextTable::format(
                  static_cast<double>(e_fapit) / e_falvolt, 2) + "x"
            : "n/a";
    summary.row({std::string(core::dataset_name(kind)),
                 e_fapit > 0 ? std::to_string(e_fapit) : ">horizon",
                 e_falvolt > 0 ? std::to_string(e_falvolt) : ">horizon",
                 speedup});
    std::printf("\n");
  }
  std::printf("Epochs to reach (baseline - %.1f) points:\n",
              cli.get_double("target-drop"));
  summary.print();
  std::printf("\nExpected shape (paper): FalVolt converges in about half "
              "the epochs of FaPIT.\n");
  return 0;
}
