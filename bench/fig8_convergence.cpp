// Fig. 8 — convergence: accuracy vs retraining epoch, FaPIT vs FalVolt.
//
// Reproduces: 30% faulty PEs (MSB sa1, 256x256 array); per-epoch test
// accuracy of FaPIT (V_th = 1.0) and FalVolt. The paper's claim: FalVolt
// reaches the baseline-accuracy band in about half the epochs of FaPIT
// ("2x faster").
//
// Every (dataset, method) curve is an independent scenario on
// core::SweepRunner (both methods of one dataset retrain an independent
// clone against the SAME fault map, seeded from the scenario), so the
// bench gets --sweep-parallel, --store caching, --shard, and --resume
// like the grid figures. The per-epoch accuracies ride in the scenario
// metrics ("epoch001", ...), the convergence summary is rebuilt from
// them afterwards.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

namespace {

std::string epoch_metric(int epoch) {  // 1-based, zero-padded
  char buf[16];
  std::snprintf(buf, sizeof(buf), "epoch%03d", epoch);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags cli("fig8_convergence");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = 2x per-dataset default)");
  cli.add_double("rate", 0.30, "fault rate (paper: 0.30)");
  cli.add_double("target-drop", 3.0,
                 "convergence target = baseline - this many points");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 8",
             "Accuracy vs retraining epochs at 30% faulty PEs "
             "(FaPIT vs FalVolt; the 2x-faster claim)");

  const bool fast = cli.get_bool("fast");
  const double rate = cli.get_double("rate");
  const std::vector<std::string> methods = {"FaPIT", "FalVolt"};
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  // Long enough horizon that the slower method also converges.
  const auto horizon = [&](core::DatasetKind kind) {
    return cli.get_int("epochs") > 0
               ? static_cast<int>(cli.get_int("epochs"))
               : 2 * core::default_retrain_epochs(kind, fast);
  };

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind,
                           const std::string& method) {
    return std::string(core::dataset_name(kind)) + "/" + method;
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    for (const std::string& method : methods) {
      core::Scenario s;
      s.key = cell_key(kind, method);
      s.tag = method;
      s.dataset = kind;
      s.fault_rate = rate;
      s.fault_seed = 7000;  // both methods retrain against the SAME map
      s.retrain = true;
      s.epochs = horizon(kind);
      scenarios.push_back(s);
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  // --target-drop only moves the post-sweep epochs-to-target summary,
  // never a curve value: exempting it keeps the expensive retraining
  // cells cached while the convergence target is re-picked.
  runner.set_store(
      fb::store_options(cli, "fig8_convergence", {"target-drop"}));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig8_convergence"),
                        {"dataset", "method", "epoch", "accuracy"});
  fb::probe_sweep_json(cli, "fig8_convergence");

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& ctx) {
    const core::Workload& wl = ctx.workload(s.dataset);
    snn::Network net = ctx.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    const systolic::ArrayConfig array = fb::experiment_array(cli);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = s.epochs;
    cfg.eval_each_epoch = true;  // the whole point of this figure

    const core::MitigationResult r =
        s.tag == "FaPIT"
            ? core::run_fapit(net, map, wl.data.train, wl.data.test, cfg)
            : core::run_falvolt(net, map, wl.data.train, wl.data.test,
                                cfg);

    core::ScenarioResult out;
    out.metrics = {{"baseline", wl.baseline_accuracy}};
    for (int e = 0; e < s.epochs; ++e) {
      const double acc =
          r.curve[static_cast<std::size_t>(e)].test_accuracy;
      out.metrics.emplace_back(epoch_metric(e + 1), acc);
      out.csv_rows.push_back({std::string(core::dataset_name(s.dataset)),
                              s.tag, std::to_string(e + 1),
                              common::CsvWriter::format(acc)});
    }
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    common::TextTable summary({"dataset", "FaPIT epochs-to-target",
                               "FalVolt epochs-to-target", "speedup"});
    for (const auto kind : kinds) {
      const core::ScenarioResult& fapit =
          results.get(cell_key(kind, "FaPIT"));
      const core::ScenarioResult& falvolt =
          results.get(cell_key(kind, "FalVolt"));
      const int epochs = horizon(kind);

      // metrics[0] is "baseline", metrics[e] is epoch e (1-based) — the
      // scenario function writes them in exactly that order.
      const auto epoch_acc = [&](const core::ScenarioResult& r, int e) {
        return r.metrics[static_cast<std::size_t>(e)].second;
      };
      common::TextTable curve({"epoch", "FaPIT", "FalVolt"});
      for (int e = 1; e <= epochs; ++e) {
        curve.row_labeled(std::to_string(e),
                          {epoch_acc(fapit, e), epoch_acc(falvolt, e)}, 1);
      }
      std::printf("\nAccuracy [%%] per retraining epoch — %s:\n",
                  core::dataset_name(kind));
      curve.print();

      // Same contract as MitigationResult::epochs_to_reach: first
      // 1-based epoch at or above the target, -1 when never reached.
      const double target =
          fapit.metrics.front().second - cli.get_double("target-drop");
      const auto epochs_to_reach = [&](const core::ScenarioResult& r) {
        for (int e = 1; e <= epochs; ++e) {
          if (epoch_acc(r, e) >= target) return e;
        }
        return -1;
      };
      const int e_fapit = epochs_to_reach(fapit);
      const int e_falvolt = epochs_to_reach(falvolt);
      const std::string speedup =
          (e_fapit > 0 && e_falvolt > 0)
              ? common::TextTable::format(
                    static_cast<double>(e_fapit) / e_falvolt, 2) + "x"
              : "n/a";
      summary.row({std::string(core::dataset_name(kind)),
                   e_fapit > 0 ? std::to_string(e_fapit) : ">horizon",
                   e_falvolt > 0 ? std::to_string(e_falvolt) : ">horizon",
                   speedup});
      std::printf("\n");
    }
    std::printf("Epochs to reach (baseline - %.1f) points:\n",
                cli.get_double("target-drop"));
    summary.print();
  }
  fb::emit_sweep_summary(cli, "fig8_convergence", results);
  std::printf("\nExpected shape (paper): FalVolt converges in about half "
              "the epochs of FaPIT.\n");
  return 0;
}
