// Fig. 8 — convergence: accuracy vs retraining epoch, FaPIT vs FalVolt.
//
// Reproduces: 30% faulty PEs (MSB sa1, 256x256 array); per-epoch test
// accuracy of FaPIT (V_th = 1.0) and FalVolt. The paper's claim: FalVolt
// reaches the baseline-accuracy band in about half the epochs of FaPIT
// ("2x faster").
//
// The grid and scenario function live in bench/grids/fig8_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main rebuilds the convergence summary
// from the per-epoch metrics ("epoch001", ...) afterwards.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig8_convergence");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 8", def.title);

  const std::vector<core::DatasetKind> kinds = fb::fig8::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "method", "epoch", "accuracy"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  fb::write_scenario_rows(csv, results);

  if (fb::sweep_complete(results)) {
    common::TextTable summary({"dataset", "FaPIT epochs-to-target",
                               "FalVolt epochs-to-target", "speedup"});
    for (const auto kind : kinds) {
      const core::ScenarioResult& fapit =
          results.get(fb::fig8::cell_key(kind, "FaPIT"));
      const core::ScenarioResult& falvolt =
          results.get(fb::fig8::cell_key(kind, "FalVolt"));
      const int epochs = fb::fig8::horizon(cli, kind);

      // metrics[0] is "baseline", metrics[e] is epoch e (1-based) — the
      // scenario function writes them in exactly that order.
      const auto epoch_acc = [&](const core::ScenarioResult& r, int e) {
        return r.metrics[static_cast<std::size_t>(e)].second;
      };
      common::TextTable curve({"epoch", "FaPIT", "FalVolt"});
      for (int e = 1; e <= epochs; ++e) {
        curve.row_labeled(std::to_string(e),
                          {epoch_acc(fapit, e), epoch_acc(falvolt, e)}, 1);
      }
      std::printf("\nAccuracy [%%] per retraining epoch — %s:\n",
                  core::dataset_name(kind));
      curve.print();

      // Same contract as MitigationResult::epochs_to_reach: first
      // 1-based epoch at or above the target, -1 when never reached.
      const double target =
          fapit.metrics.front().second - cli.get_double("target-drop");
      const auto epochs_to_reach = [&](const core::ScenarioResult& r) {
        for (int e = 1; e <= epochs; ++e) {
          if (epoch_acc(r, e) >= target) return e;
        }
        return -1;
      };
      const int e_fapit = epochs_to_reach(fapit);
      const int e_falvolt = epochs_to_reach(falvolt);
      const std::string speedup =
          (e_fapit > 0 && e_falvolt > 0)
              ? common::TextTable::format(
                    static_cast<double>(e_fapit) / e_falvolt, 2) + "x"
              : "n/a";
      summary.row({std::string(core::dataset_name(kind)),
                   e_fapit > 0 ? std::to_string(e_fapit) : ">horizon",
                   e_falvolt > 0 ? std::to_string(e_falvolt) : ">horizon",
                   speedup});
      std::printf("\n");
    }
    std::printf("Epochs to reach (baseline - %.1f) points:\n",
                cli.get_double("target-drop"));
    summary.print();
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("\nExpected shape (paper): FalVolt converges in about half "
              "the epochs of FaPIT.\n");
  return 0;
}
