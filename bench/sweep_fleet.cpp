// sweep_fleet — run several figure grids as ONE cross-bench sweep.
//
// Every registered figure grid (core::GridRegistry, populated by
// bench/grids/) is enumerated, its cells fingerprinted exactly as the
// standalone bench would fingerprint them, and the union of all pending
// cells run through one work-stealing queue of N workers against one
// shared store: a worker that finishes fig5b's cheap eval cells
// immediately steals fig8's expensive retrain cells instead of idling,
// and a dataset baseline is trained (or cache-loaded) once per fleet
// run no matter how many grids need it.
//
// Because fingerprints are shared, the store is interchangeable with
// per-bench runs: after a fleet run, `fig5b_fault_count --store <dir>`
// replays every cell (cells_computed: 0) and emits its figure tables
// byte-identical to a standalone run — the fleet computes values, the
// benches own their presentation. Per-grid shard specs compose
// (--shard i/n partitions every grid), so fleets can span machines and
// be unioned with sweep_merge like any other sweep.
//
//   sweep_fleet --store fleet_store --workers 8 --fast
//     --grids fig5b_fault_count,fig2_vth_sweep
//     --set fig5b_fault_count.eval-samples=24,fig2_vth_sweep.epochs=1
//
// Common flags (--fast, --seed, --datasets, --repeats, ...) apply to
// every grid; bench-specific flags are set per grid with --set.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/grid_registry.h"
#include "grids/grids.h"
#include "store/result_store.h"

namespace fb = falvolt::bench;
using namespace falvolt;

namespace {

// Per-grid flag overrides from --set "bench.flag=value[,...]". Flags
// the fleet itself manages (the shared store, shard spec, worker
// counts) and the shared workload identity (fast/seed — the fleet has
// ONE baseline context) must not be overridden per grid: a diverted
// --store, for example, would silently publish a grid's records away
// from the advertised shared store.
std::map<std::string, std::vector<std::string>> parse_overrides(
    const std::string& spec) {
  static const std::set<std::string> kFleetManaged = {
      "store", "shard",          "fast",       "seed",
      "threads", "sweep-parallel", "sweep-json", "list-scenarios",
      "substituters", "trace", "metrics-json", "faults"};
  std::map<std::string, std::vector<std::string>> out;
  for (const std::string& entry : fb::split_list(spec)) {
    const std::size_t dot = entry.find('.');
    const std::size_t eq = entry.find('=', dot == std::string::npos ? 0 : dot);
    if (dot == std::string::npos || eq == std::string::npos || dot == 0 ||
        eq <= dot + 1) {
      throw std::invalid_argument(
          "--set entries must be bench.flag=value, got '" + entry + "'");
    }
    const std::string flag = entry.substr(dot + 1, eq - dot - 1);
    if (kFleetManaged.count(flag)) {
      throw std::invalid_argument(
          "--set must not override fleet-managed flag --" + flag +
          " per grid (set it at the fleet level instead)");
    }
    out[entry.substr(0, dot)].push_back("--" + entry.substr(dot + 1));
  }
  return out;
}

// One grid, fully resolved from the fleet command line.
struct FleetGridSpec {
  const core::GridDef* def = nullptr;
  common::CliFlags cli;
  std::vector<core::Scenario> scenarios;
  core::SweepStoreOptions store;
};

}  // namespace

int main(int argc, char** argv) try {
  fb::register_all_grids();
  const core::GridRegistry& registry = core::GridRegistry::instance();

  common::CliFlags cli("sweep_fleet");
  fb::add_common_flags(cli);
  cli.add_int("workers", 0,
              "concurrent cells across ALL grids (overrides "
              "--sweep-parallel when > 0; 0 = --sweep-parallel resolution)");
  cli.add_string("grids", "all",
                 "comma list of registered figure grids to sweep "
                 "(all = every registered grid)");
  cli.add_string("set", "",
                 "per-grid bench-specific flag overrides, "
                 "'bench.flag=value[,bench.flag=value...]' (e.g. "
                 "fig5b_fault_count.eval-samples=24)");
  cli.add_string("json", "",
                 "fleet summary JSON path ('' = disabled). Per-bench "
                 "sweep JSONs come from warm bench re-runs against the "
                 "fleet store");
  cli.add_string("schedule", "cost",
                 "work-queue ordering: 'cost' claims the most expensive "
                 "cells first (shortest fleet tail on heterogeneous "
                 "grids), 'claim' keeps legacy grid-major order. Tables "
                 "are byte-identical either way");
  if (!cli.parse(argc, argv)) return 0;
  fb::ObsScope obs_scope(cli);
  const core::SchedulePolicy schedule =
      core::parse_schedule_policy(cli.get_string("schedule"));

  const std::string store_dir = fb::resolve_store_dir(cli);
  if (store_dir.empty()) {
    std::fprintf(stderr,
                 "sweep_fleet: --store (or $FALVOLT_STORE) is required — "
                 "the whole point of a fleet is the shared store\n");
    return 1;
  }

  // Grid selection, registration order preserved for "all". An unknown
  // name is a hard error up front — a typo'd --grids must not silently
  // sweep the wrong subset for hours.
  const bool implicit_all = cli.get_string("grids") == "all";
  const std::vector<core::DatasetKind> dataset_filter =
      fb::parse_dataset_spec(cli.get_string("datasets"));
  std::vector<std::string> names;
  if (implicit_all) {
    names = registry.names();
    // A dataset filter SKIPS non-intersecting grids of the implicit
    // "all" selection (e.g. --datasets mnist skips the DVS-only gesture
    // grid) — running their builders would trip the per-bench
    // strict-subset error, which is right only for a grid the user
    // named explicitly.
    const std::vector<core::DatasetKind>& filter = dataset_filter;
    if (!filter.empty()) {
      std::vector<std::string> kept;
      for (const std::string& name : names) {
        const std::vector<core::DatasetKind>& axis =
            registry.get(name).datasets;
        const bool overlaps =
            axis.empty() ||
            std::any_of(axis.begin(), axis.end(), [&](core::DatasetKind k) {
              return std::find(filter.begin(), filter.end(), k) !=
                     filter.end();
            });
        if (overlaps) {
          kept.push_back(name);
        } else {
          std::fprintf(stderr,
                       "[fleet] skipping %s: its dataset axis has no "
                       "overlap with --datasets %s\n",
                       name.c_str(), cli.get_string("datasets").c_str());
        }
      }
      names = std::move(kept);
    }
  } else {
    for (const std::string& name : fb::split_list(cli.get_string("grids"))) {
      if (!registry.find(name)) {
        std::string known;
        for (const std::string& n : registry.names()) {
          known += known.empty() ? "" : ", ";
          known += n;
        }
        std::fprintf(stderr,
                     "sweep_fleet: --grids names unknown grid '%s' "
                     "(registered: %s)\n",
                     name.c_str(), known.c_str());
        return 1;
      }
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);  // a repeated name must not double-compute
      }
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "sweep_fleet: no grids selected\n");
    return 1;
  }
  std::map<std::string, std::vector<std::string>> overrides =
      parse_overrides(cli.get_string("set"));
  for (const auto& [bench, tokens] : overrides) {
    (void)tokens;
    if (std::find(names.begin(), names.end(), bench) == names.end()) {
      std::fprintf(stderr,
                   "sweep_fleet: --set names '%s', which is not among the "
                   "selected grids\n",
                   bench.c_str());
      return 1;
    }
  }

  // Common flags forwarded verbatim to every grid (the "--name=value"
  // form survives empty values). Derived from the fleet's own flag set
  // minus the fleet-only/fleet-managed ones, so a common flag added
  // later is forwarded automatically — and a future fleet-only flag
  // missing from this denylist fails each grid's parse loudly
  // ("unknown flag") instead of being dropped. A grid parses common +
  // its own flags, then its --set overrides, so its fingerprint config
  // is exactly what the standalone bench would compute for the same
  // invocation.
  static const std::set<std::string> kNotForwarded = {
      "store",     // forwarded below as the resolved shared store dir
      "datasets",  // forwarded per grid, narrowed to the grid's axis
      "sweep-json", "list-scenarios",  // fleet-handled, not per-grid
      "trace", "metrics-json",  // one telemetry session, owned by the fleet
      "faults",  // one process-wide injection session, armed by the fleet
      "workers", "grids", "set", "json", "schedule"};  // fleet-only flags
  std::vector<std::string> forwards;
  for (const auto& [flag, value] : cli.items()) {
    if (!kNotForwarded.count(flag)) {
      forwards.push_back("--" + flag + "=" + value);
    }
  }
  forwards.push_back("--store=" + store_dir);

  // Per-grid --datasets forward. Under the implicit "all" selection a
  // partially overlapping grid gets the INTERSECTION of the filter with
  // its axis (e.g. --datasets mnist,nmnist reaches fig2 — whose axis is
  // mnist+dvs — as just "mnist"): the fleet sweeps the cells that
  // apply instead of tripping the grid's strict-subset error. An
  // explicitly named grid gets the raw spec, keeping the standalone
  // contract that asking a bench for a foreign dataset is an error.
  const auto datasets_for = [&](const core::GridDef& def) -> std::string {
    const std::string& raw = cli.get_string("datasets");
    if (!implicit_all || dataset_filter.empty() || def.datasets.empty()) {
      return raw;
    }
    std::string spec;
    for (const core::DatasetKind kind : def.datasets) {
      if (std::find(dataset_filter.begin(), dataset_filter.end(), kind) !=
          dataset_filter.end()) {
        spec += spec.empty() ? "" : ",";
        spec += fb::dataset_flag_token(kind);
      }
    }
    return spec;  // non-empty: zero-overlap grids were skipped above
  };

  const core::WorkloadOptions fleet_opts = fb::workload_options(cli);
  std::vector<FleetGridSpec> specs;
  for (const std::string& name : names) {
    const core::GridDef& def = registry.get(name);
    FleetGridSpec spec{&def, common::CliFlags(def.name), {}, {}};
    fb::add_common_flags(spec.cli);
    def.add_flags(spec.cli);
    std::vector<std::string> args = {def.name};
    args.insert(args.end(), forwards.begin(), forwards.end());
    args.push_back("--datasets=" + datasets_for(def));
    const auto it = overrides.find(name);
    if (it != overrides.end()) {
      args.insert(args.end(), it->second.begin(), it->second.end());
    }
    std::vector<const char*> argv_g;
    argv_g.reserve(args.size());
    for (const std::string& a : args) argv_g.push_back(a.c_str());
    try {
      spec.cli.parse(static_cast<int>(argv_g.size()), argv_g.data());
      spec.scenarios = def.scenarios(spec.cli);
      spec.store =
          fb::store_options(spec.cli, def.name, def.aggregation_only);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep_fleet: grid %s: %s\n", name.c_str(),
                   e.what());
      return 1;
    }
    specs.push_back(std::move(spec));
  }

  // Shard-planning dry run: the full cross-bench cell listing, computed
  // with the same fingerprints the sweep would use. Like the benches'
  // --list-scenarios it never creates store directories.
  if (cli.get_bool("list-scenarios")) {
    std::unique_ptr<store::StoreApi> rs;
    if (store::store_exists(store_dir)) {
      rs = store::open_store(store_dir,
                             fb::split_list(cli.get_string("substituters")),
                             /*create=*/false);
    }
    std::size_t total = 0;
    for (const FleetGridSpec& spec : specs) total += spec.scenarios.size();
    std::printf("# %zu grid(s), %zu cell(s), store %s\n", specs.size(),
                total, store_dir.c_str());
    std::printf("%-5s %-6s %-6s %-16s %s\n", "idx", "shard", "store",
                "fingerprint", "bench:key");
    std::size_t index = 0;
    for (const FleetGridSpec& spec : specs) {
      index = fb::list_scenario_rows(
          spec.store, spec.scenarios,
          [&spec, &fleet_opts](const core::Scenario& s) {
            return core::fingerprint_cell(spec.store, fleet_opts, s);
          },
          rs.get(), spec.def->name, index);
    }
    return 0;
  }

  // Probe the summary path BEFORE the sweep: an unwritable --json must
  // fail now, not after hours of retraining (same fail-fast contract as
  // the bench mains' CSV writers). Append mode leaves any previous
  // summary intact should this run die mid-sweep.
  if (!cli.get_string("json").empty()) {
    std::ofstream probe(cli.get_string("json"), std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "sweep_fleet: cannot open %s\n",
                   cli.get_string("json").c_str());
      return 1;
    }
  }

  core::WorkloadOptions opts = fleet_opts;
  if (cli.get_int("workers") > 0) {
    opts.sweep_parallel = static_cast<int>(cli.get_int("workers"));
  }

  core::FleetRunner fleet(opts);
  fleet.set_on_baseline(fb::print_baseline);
  fleet.set_schedule(schedule);
  for (FleetGridSpec& spec : specs) {
    fleet.add_grid(core::FleetGrid{
        spec.store, spec.scenarios,
        spec.def->scenario_fn(spec.cli, fleet.context())});
  }

  std::printf("=== sweep_fleet ===\n%zu grid(s) against store %s "
              "(%s-ordered queue)\n\n",
              specs.size(), store_dir.c_str(),
              core::schedule_policy_name(schedule));
  const std::vector<core::ResultTable> tables = fleet.run();

  std::size_t computed = 0, cached = 0, absent = 0;
  for (std::size_t g = 0; g < tables.size(); ++g) {
    const core::ResultTable& t = tables[g];
    computed += t.computed_cells();
    cached += t.cached_cells();
    absent += t.absent_cells();
    std::printf("[fleet] %-22s %3zu cell(s): %zu computed, %zu cached, "
                "%zu left to other shards\n",
                specs[g].def->name.c_str(), t.size(), t.computed_cells(),
                t.cached_cells(), t.absent_cells());
  }
  std::printf("[fleet] total: %zu computed, %zu cached, %zu absent in "
              "%.1f s at %d worker(s)\n",
              computed, cached, absent,
              tables.empty() ? 0.0 : tables.front().total_seconds(),
              tables.empty() ? 0 : tables.front().sweep_parallel());
  // Per-worker tail utilization: the cost-ordered queue exists so no
  // worker shows a near-zero busy fraction while one drains a late
  // retrain cell.
  const double total_seconds =
      tables.empty() ? 0.0 : tables.front().total_seconds();
  const std::vector<core::WorkerStats>& workers = fleet.worker_stats();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    std::printf("[fleet] worker %zu: %zu cell(s), %.1f s busy (%.0f%% "
                "utilization)\n",
                w, workers[w].cells, workers[w].busy_seconds,
                total_seconds > 0.0
                    ? 100.0 * workers[w].busy_seconds / total_seconds
                    : 0.0);
  }
  std::printf("[fleet] figure tables: re-run each bench with --store %s "
              "(replays every cell) or use sweep_merge\n",
              store_dir.c_str());

  if (!cli.get_string("json").empty()) {
    std::ofstream out(cli.get_string("json"));
    if (!out) {
      std::fprintf(stderr, "sweep_fleet: cannot open %s\n",
                   cli.get_string("json").c_str());
      return 1;
    }
    out << "{\n  \"driver\": \"sweep_fleet\",\n  \"store\": \""
        << common::json_escape(store_dir)
        << "\",\n  \"schedule\": \"" << core::schedule_policy_name(schedule)
        << "\",\n  \"run\": {\"workers\": "
        << (tables.empty() ? 0 : tables.front().sweep_parallel())
        << ", \"total_seconds\": "
        << (tables.empty() ? 0.0 : tables.front().total_seconds())
        << ", \"cells_computed\": " << computed
        << ", \"cells_cached\": " << cached
        << ", \"cells_absent\": " << absent << "},\n  \"workers\": [\n";
    for (std::size_t w = 0; w < workers.size(); ++w) {
      out << "    {\"worker\": " << w << ", \"cells\": " << workers[w].cells
          << ", \"busy_seconds\": " << workers[w].busy_seconds
          << ", \"utilization\": "
          << (total_seconds > 0.0
                  ? workers[w].busy_seconds / total_seconds
                  : 0.0)
          << "}" << (w + 1 == workers.size() ? "\n" : ",\n");
    }
    out << "  ],\n  \"grids\": [\n";
    for (std::size_t g = 0; g < tables.size(); ++g) {
      out << "    {\"bench\": \"" << specs[g].def->name
          << "\", \"cells\": " << tables[g].size()
          << ", \"computed\": " << tables[g].computed_cells()
          << ", \"cached\": " << tables[g].cached_cells()
          << ", \"absent\": " << tables[g].absent_cells() << "}"
          << (g + 1 == tables.size() ? "\n" : ",\n");
    }
    // The full metrics registry rides along in the (already volatile)
    // fleet summary: store hit/miss per layer, kernel path mix, pool and
    // sweep counters — everything perf_gate.py and the nightly job
    // summary read. Figure tables and cell records never carry it.
    out << "  ],\n  \"metrics\": "
        << obs::encode_metrics_json(obs::snapshot_metrics(), 2) << "\n}\n";
    std::printf("[fleet] summary JSON written to %s\n",
                cli.get_string("json").c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "sweep_fleet: %s\n", e.what());
  return 1;
}
