// sweep_fleet — run several figure grids as ONE cross-bench sweep.
//
// Every registered figure grid (core::GridRegistry, populated by
// bench/grids/) is enumerated, its cells fingerprinted exactly as the
// standalone bench would fingerprint them, and the union of all pending
// cells run through one work-stealing queue of N workers against one
// shared store: a worker that finishes fig5b's cheap eval cells
// immediately steals fig8's expensive retrain cells instead of idling,
// and a dataset baseline is trained (or cache-loaded) once per fleet
// run no matter how many grids need it.
//
// Because fingerprints are shared, the store is interchangeable with
// per-bench runs: after a fleet run, `fig5b_fault_count --store <dir>`
// replays every cell (cells_computed: 0) and emits its figure tables
// byte-identical to a standalone run — the fleet computes values, the
// benches own their presentation. Per-grid shard specs compose
// (--shard i/n partitions every grid), so fleets can span machines and
// be unioned with sweep_merge like any other sweep.
//
//   sweep_fleet --store fleet_store --workers 8 --fast
//     --grids fig5b_fault_count,fig2_vth_sweep
//     --set fig5b_fault_count.eval-samples=24,fig2_vth_sweep.epochs=1
//
// Common flags (--fast, --seed, --datasets, --repeats, ...) apply to
// every grid; bench-specific flags are set per grid with --set.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/grid_registry.h"
#include "fleet/daemon.h"
#include "fleet/worker.h"
#include "grids/grids.h"
#include "io/env.h"
#include "store/result_store.h"
#include "store/store_api.h"

namespace fb = falvolt::bench;
using namespace falvolt;

namespace {

// Per-grid flag overrides from --set "bench.flag=value[,...]". Flags
// the fleet itself manages (the shared store, shard spec, worker
// counts) and the shared workload identity (fast/seed — the fleet has
// ONE baseline context) must not be overridden per grid: a diverted
// --store, for example, would silently publish a grid's records away
// from the advertised shared store.
std::map<std::string, std::vector<std::string>> parse_overrides(
    const std::string& spec) {
  static const std::set<std::string> kFleetManaged = {
      "store", "shard",          "fast",       "seed",
      "threads", "sweep-parallel", "sweep-json", "list-scenarios",
      "substituters"};
  std::map<std::string, std::vector<std::string>> out;
  for (const std::string& entry : fb::split_list(spec)) {
    const std::size_t dot = entry.find('.');
    const std::size_t eq = entry.find('=', dot == std::string::npos ? 0 : dot);
    if (dot == std::string::npos || eq == std::string::npos || dot == 0 ||
        eq <= dot + 1) {
      throw std::invalid_argument(
          "--set entries must be bench.flag=value, got '" + entry + "'");
    }
    const std::string flag = entry.substr(dot + 1, eq - dot - 1);
    // Every exec-table flag (telemetry, faults, process layout) is
    // fleet-managed by definition: one table keeps this list honest.
    if (kFleetManaged.count(flag) || fb::is_exec_flag(flag)) {
      throw std::invalid_argument(
          "--set must not override fleet-managed flag --" + flag +
          " per grid (set it at the fleet level instead)");
    }
    out[entry.substr(0, dot)].push_back("--" + entry.substr(dot + 1));
  }
  return out;
}

// One grid, fully resolved from the fleet command line.
struct FleetGridSpec {
  const core::GridDef* def = nullptr;
  common::CliFlags cli;
  std::vector<core::Scenario> scenarios;
  core::SweepStoreOptions store;
};

}  // namespace

int main(int argc, char** argv) try {
  fb::register_all_grids();
  const core::GridRegistry& registry = core::GridRegistry::instance();

  common::CliFlags cli("sweep_fleet");
  fb::add_common_flags(cli);
  fb::add_exec_flags(cli, fb::kExecFleet);
  cli.add_int("workers", 0,
              "concurrent cells across ALL grids (overrides "
              "--sweep-parallel when > 0; 0 = --sweep-parallel resolution)");
  cli.add_string("grids", "all",
                 "comma list of registered figure grids to sweep "
                 "(all = every registered grid)");
  cli.add_string("set", "",
                 "per-grid bench-specific flag overrides, "
                 "'bench.flag=value[,bench.flag=value...]' (e.g. "
                 "fig5b_fault_count.eval-samples=24)");
  cli.add_string("json", "",
                 "fleet summary JSON path ('' = disabled). Per-bench "
                 "sweep JSONs come from warm bench re-runs against the "
                 "fleet store");
  cli.add_string("schedule", "cost",
                 "work-queue ordering: 'cost' claims the most expensive "
                 "cells first (shortest fleet tail on heterogeneous "
                 "grids), 'claim' keeps legacy grid-major order. Tables "
                 "are byte-identical either way");
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs_scope(cli);
  const core::SchedulePolicy schedule =
      core::parse_schedule_policy(cli.get_string("schedule"));

  // Process layout (the kExecFleet exec flags): --hosts N runs this
  // invocation as the scheduler daemon forking N workers; a forked
  // worker re-runs this binary with --daemon-socket set (and --hosts 0)
  // and claims cells over the socket instead of its local queue.
  const int hosts = static_cast<int>(cli.get_int("hosts"));
  const std::string socket_flag = cli.get_string("daemon-socket");
  const bool daemon_mode = hosts > 0;
  const bool worker_mode = !daemon_mode && !socket_flag.empty();
  if (hosts < 0) {
    std::fprintf(stderr, "sweep_fleet: --hosts must be >= 0\n");
    return 1;
  }
  int fault_worker = -1;  // --worker-faults "i:spec": arm worker i only
  std::string fault_spec;
  if (!cli.get_string("worker-faults").empty()) {
    if (!daemon_mode) {
      std::fprintf(stderr,
                   "sweep_fleet: --worker-faults needs --hosts (it names a "
                   "forked worker)\n");
      return 1;
    }
    const std::string& wf = cli.get_string("worker-faults");
    const std::size_t colon = wf.find(':');
    bool ok = colon != std::string::npos && colon > 0 && colon + 1 < wf.size();
    if (ok) {
      try {
        std::size_t used = 0;
        fault_worker = std::stoi(wf.substr(0, colon), &used);
        ok = used == colon && fault_worker >= 0 && fault_worker < hosts;
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "sweep_fleet: --worker-faults must be "
                   "'<worker-index>:<fault-spec>' with the index below "
                   "--hosts, got '%s'\n",
                   wf.c_str());
      return 1;
    }
    fault_spec = wf.substr(colon + 1);
  }

  const std::string store_dir = fb::resolve_store_dir(cli);
  if (store_dir.empty()) {
    std::fprintf(stderr,
                 "sweep_fleet: --store (or $FALVOLT_STORE) is required — "
                 "the whole point of a fleet is the shared store\n");
    return 1;
  }

  // Grid selection, registration order preserved for "all". An unknown
  // name is a hard error up front — a typo'd --grids must not silently
  // sweep the wrong subset for hours.
  const bool implicit_all = cli.get_string("grids") == "all";
  const std::vector<core::DatasetKind> dataset_filter =
      fb::parse_dataset_spec(cli.get_string("datasets"));
  std::vector<std::string> names;
  if (implicit_all) {
    names = registry.names();
    // A dataset filter SKIPS non-intersecting grids of the implicit
    // "all" selection (e.g. --datasets mnist skips the DVS-only gesture
    // grid) — running their builders would trip the per-bench
    // strict-subset error, which is right only for a grid the user
    // named explicitly.
    const std::vector<core::DatasetKind>& filter = dataset_filter;
    if (!filter.empty()) {
      std::vector<std::string> kept;
      for (const std::string& name : names) {
        const std::vector<core::DatasetKind>& axis =
            registry.get(name).datasets;
        const bool overlaps =
            axis.empty() ||
            std::any_of(axis.begin(), axis.end(), [&](core::DatasetKind k) {
              return std::find(filter.begin(), filter.end(), k) !=
                     filter.end();
            });
        if (overlaps) {
          kept.push_back(name);
        } else {
          std::fprintf(stderr,
                       "[fleet] skipping %s: its dataset axis has no "
                       "overlap with --datasets %s\n",
                       name.c_str(), cli.get_string("datasets").c_str());
        }
      }
      names = std::move(kept);
    }
  } else {
    for (const std::string& name : fb::split_list(cli.get_string("grids"))) {
      if (!registry.find(name)) {
        std::string known;
        for (const std::string& n : registry.names()) {
          known += known.empty() ? "" : ", ";
          known += n;
        }
        std::fprintf(stderr,
                     "sweep_fleet: --grids names unknown grid '%s' "
                     "(registered: %s)\n",
                     name.c_str(), known.c_str());
        return 1;
      }
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);  // a repeated name must not double-compute
      }
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "sweep_fleet: no grids selected\n");
    return 1;
  }
  std::map<std::string, std::vector<std::string>> overrides =
      parse_overrides(cli.get_string("set"));
  for (const auto& [bench, tokens] : overrides) {
    (void)tokens;
    if (std::find(names.begin(), names.end(), bench) == names.end()) {
      std::fprintf(stderr,
                   "sweep_fleet: --set names '%s', which is not among the "
                   "selected grids\n",
                   bench.c_str());
      return 1;
    }
  }

  // Common flags forwarded verbatim to every grid (the "--name=value"
  // form survives empty values). Derived from the fleet's own flag set
  // minus the fleet-only/fleet-managed ones, so a common flag added
  // later is forwarded automatically — and a future fleet-only flag
  // missing from this denylist fails each grid's parse loudly
  // ("unknown flag") instead of being dropped. A grid parses common +
  // its own flags, then its --set overrides, so its fingerprint config
  // is exactly what the standalone bench would compute for the same
  // invocation.
  static const std::set<std::string> kNotForwarded = {
      "store",     // forwarded below as the resolved shared store dir
      "datasets",  // forwarded per grid, narrowed to the grid's axis
      "sweep-json", "list-scenarios",  // fleet-handled, not per-grid
      "workers", "grids", "set", "json", "schedule"};  // fleet-only flags
  std::vector<std::string> forwards;
  for (const auto& [flag, value] : cli.items()) {
    // Exec-table flags (telemetry, fault injection, process layout) are
    // one-per-fleet-process by definition and the grid CLIs don't even
    // register the fleet group — never forwarded.
    if (!kNotForwarded.count(flag) && !fb::is_exec_flag(flag)) {
      forwards.push_back("--" + flag + "=" + value);
    }
  }
  forwards.push_back("--store=" + store_dir);

  // Per-grid --datasets forward. Under the implicit "all" selection a
  // partially overlapping grid gets the INTERSECTION of the filter with
  // its axis (e.g. --datasets mnist,nmnist reaches fig2 — whose axis is
  // mnist+dvs — as just "mnist"): the fleet sweeps the cells that
  // apply instead of tripping the grid's strict-subset error. An
  // explicitly named grid gets the raw spec, keeping the standalone
  // contract that asking a bench for a foreign dataset is an error.
  const auto datasets_for = [&](const core::GridDef& def) -> std::string {
    const std::string& raw = cli.get_string("datasets");
    if (!implicit_all || dataset_filter.empty() || def.datasets.empty()) {
      return raw;
    }
    std::string spec;
    for (const core::DatasetKind kind : def.datasets) {
      if (std::find(dataset_filter.begin(), dataset_filter.end(), kind) !=
          dataset_filter.end()) {
        spec += spec.empty() ? "" : ",";
        spec += fb::dataset_flag_token(kind);
      }
    }
    return spec;  // non-empty: zero-overlap grids were skipped above
  };

  const core::WorkloadOptions fleet_opts = fb::workload_options(cli);
  std::vector<FleetGridSpec> specs;
  for (const std::string& name : names) {
    const core::GridDef& def = registry.get(name);
    FleetGridSpec spec{&def, common::CliFlags(def.name), {}, {}};
    fb::add_common_flags(spec.cli);
    def.add_flags(spec.cli);
    std::vector<std::string> args = {def.name};
    args.insert(args.end(), forwards.begin(), forwards.end());
    args.push_back("--datasets=" + datasets_for(def));
    const auto it = overrides.find(name);
    if (it != overrides.end()) {
      args.insert(args.end(), it->second.begin(), it->second.end());
    }
    std::vector<const char*> argv_g;
    argv_g.reserve(args.size());
    for (const std::string& a : args) argv_g.push_back(a.c_str());
    try {
      spec.cli.parse(static_cast<int>(argv_g.size()), argv_g.data());
      spec.scenarios = def.scenarios(spec.cli);
      spec.store =
          fb::store_options(spec.cli, def.name, def.aggregation_only);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep_fleet: grid %s: %s\n", name.c_str(),
                   e.what());
      return 1;
    }
    specs.push_back(std::move(spec));
  }

  // Shard-planning dry run: the full cross-bench cell listing, computed
  // with the same fingerprints the sweep would use. Like the benches'
  // --list-scenarios it never creates store directories.
  if (cli.get_bool("list-scenarios")) {
    std::unique_ptr<store::StoreApi> rs;
    if (store::store_spec_exists(store_dir)) {
      rs = store::open_store(store_dir,
                             fb::split_list(cli.get_string("substituters")),
                             /*create=*/false);
    }
    std::size_t total = 0;
    for (const FleetGridSpec& spec : specs) total += spec.scenarios.size();
    std::printf("# %zu grid(s), %zu cell(s), store %s\n", specs.size(),
                total, store_dir.c_str());
    std::printf("%-5s %-6s %-6s %-16s %s\n", "idx", "shard", "store",
                "fingerprint", "bench:key");
    std::size_t index = 0;
    for (const FleetGridSpec& spec : specs) {
      index = fb::list_scenario_rows(
          spec.store, spec.scenarios,
          [&spec, &fleet_opts](const core::Scenario& s) {
            return core::fingerprint_cell(spec.store, fleet_opts, s);
          },
          rs.get(), spec.def->name, index);
    }
    return 0;
  }

  // Probe the summary path BEFORE the sweep: an unwritable --json must
  // fail now, not after hours of retraining (same fail-fast contract as
  // the bench mains' CSV writers). Append mode leaves any previous
  // summary intact should this run die mid-sweep.
  if (!cli.get_string("json").empty()) {
    std::ofstream probe(cli.get_string("json"), std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "sweep_fleet: cannot open %s\n",
                   cli.get_string("json").c_str());
      return 1;
    }
  }

  core::WorkloadOptions opts = fleet_opts;
  if (cli.get_int("workers") > 0) {
    opts.sweep_parallel = static_cast<int>(cli.get_int("workers"));
  }

  core::FleetRunner fleet(opts);
  fleet.set_on_baseline(fb::print_baseline);
  fleet.set_schedule(schedule);
  for (FleetGridSpec& spec : specs) {
    fleet.add_grid(core::FleetGrid{
        spec.store, spec.scenarios,
        spec.def->scenario_fn(spec.cli, fleet.context())});
  }

  // Worker mode (--daemon-socket without --hosts, i.e. a process the
  // daemon forked): build the same grids the daemon did, register every
  // cell under its wire name, and let the engine's claim loop pull work
  // over the socket instead of its in-process queue. Workers publish
  // records directly to the shared store — the daemon only ever sees
  // metadata — then exit without tables or summaries of their own.
  if (worker_mode) {
    fleet::SocketCellQueue queue(socket_flag,
                                 "worker-" + std::to_string(getpid()));
    for (std::size_t g = 0; g < specs.size(); ++g) {
      const FleetGridSpec& spec = specs[g];
      for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
        queue.register_cell(
            spec.def->name, spec.scenarios[i].key,
            core::fingerprint_cell(spec.store, fleet_opts, spec.scenarios[i]),
            static_cast<int>(g), static_cast<int>(i));
      }
    }
    queue.connect_and_hello();
    fleet.set_cell_queue(&queue);
    fleet.run();
    return 0;
  }

  // Daemon phase (--hosts N): triage the union of owned cells HERE,
  // serve the misses to N forked worker processes over the socket
  // protocol, then fall through to the normal in-process run below —
  // with every miss now published it is a warm replay, so the tables
  // and figure CSVs are byte-identical to a --hosts 0 run by
  // construction.
  fleet::DaemonStats dstats;
  double daemon_seconds = 0.0;
  std::size_t triage_cached = 0;
  std::string daemon_socket_path;
  if (daemon_mode) {
    std::vector<fleet::DaemonCell> cells;
    {
      const std::unique_ptr<store::StoreApi> rs = store::open_store(
          store_dir, fb::split_list(cli.get_string("substituters")),
          /*create=*/true);
      for (const FleetGridSpec& spec : specs) {
        std::vector<double> costs(spec.scenarios.size(), 0.0);
        for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
          costs[i] = core::scenario_cost_estimate(spec.scenarios[i]);
        }
        const std::vector<int> owners =
            core::shard_partition(costs, spec.store.shard_count);
        for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
          if (spec.store.shard_count > 1 &&
              owners[i] != spec.store.shard_index) {
            continue;  // another machine's shard; unioned by sweep_merge
          }
          const std::string fp = core::fingerprint_cell(
              spec.store, fleet_opts, spec.scenarios[i]);
          if (spec.store.resume) {
            if (const std::optional<std::string> payload = rs->get(fp)) {
              core::ScenarioResult prior;
              if (core::decode_scenario_result(*payload, prior) &&
                  prior.scenario.key == spec.scenarios[i].key) {
                ++triage_cached;
                continue;  // already paid for — nothing to schedule
              }
            }
          }
          cells.push_back(fleet::DaemonCell{
              spec.def->name, spec.scenarios[i].key, fp, costs[i]});
        }
      }
    }

    const std::size_t misses = cells.size();
    if (misses == 0) {
      std::printf("[fleet] daemon: every owned cell already published "
                  "(%zu replayed at triage) — no workers forked\n",
                  triage_cached);
    } else {
      // The pid-stamped marker lets a concurrent sweep_merge see a live
      // fleet mid-publish and refuse to emit half-baked tables.
      store::InProgressGuard inprogress(
          store::parse_store_spec(store_dir).path);
      daemon_socket_path =
          socket_flag.empty()
              ? "/tmp/falvolt-fleet-" + std::to_string(getpid()) + ".sock"
              : socket_flag;
      fleet::Daemon daemon(fleet::DaemonOptions{daemon_socket_path},
                           std::move(cells));
      daemon.bind_and_listen();  // before fork: no worker can race the bind

      // The worker command line is this command line minus the exec
      // flags and daemon-only outputs, plus the fixed worker layout:
      // the resolved store, ONE claim slot (fleet/worker.h), a fair
      // share of the machine's threads, and the daemon socket.
      static const std::set<std::string> kNotReexeced = {
          "hosts", "daemon-socket", "worker-faults",   // layout, set below
          "trace", "metrics-json", "faults",  // telemetry owned by daemon
          "json", "list-scenarios",           // daemon-only outputs
          "store", "sweep-parallel", "workers", "threads"};  // forced below
      const long want_threads = cli.get_int("threads");
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      const int worker_threads =
          want_threads > 0
              ? static_cast<int>(want_threads)
              : static_cast<int>(
                    std::max(1u, hw / static_cast<unsigned>(hosts)));
      std::vector<std::string> wargs = {std::string(argv[0])};
      for (const auto& [flag, value] : cli.items()) {
        if (!kNotReexeced.count(flag)) {
          wargs.push_back("--" + flag + "=" + value);
        }
      }
      wargs.push_back("--store=" + store_dir);
      wargs.push_back("--sweep-parallel=1");
      wargs.push_back("--threads=" + std::to_string(worker_threads));
      wargs.push_back("--daemon-socket=" + daemon_socket_path);

      std::vector<pid_t> pids;
      std::vector<bool> reaped;
      for (int w = 0; w < hosts; ++w) {
        const pid_t pid = fork();
        if (pid < 0) {
          std::fprintf(stderr, "sweep_fleet: fork: %s\n",
                       std::strerror(errno));
          for (const pid_t p : pids) kill(p, SIGTERM);
          for (const pid_t p : pids) waitpid(p, nullptr, 0);
          return 1;
        }
        if (pid == 0) {
          // Child. Fault injection is strictly per-worker: the fleet's
          // own $FALVOLT_FAULTS must not arm every worker, and
          // --worker-faults "i:spec" arms exactly worker i.
          unsetenv("FALVOLT_FAULTS");
          if (w == fault_worker) setenv("FALVOLT_FAULTS", fault_spec.c_str(), 1);
          std::vector<char*> cargv;
          cargv.reserve(wargs.size() + 1);
          for (std::string& a : wargs) cargv.push_back(a.data());
          cargv.push_back(nullptr);
          execv("/proc/self/exe", cargv.data());
          std::fprintf(stderr, "sweep_fleet: execv: %s\n",
                       std::strerror(errno));
          _exit(127);
        }
        pids.push_back(pid);
        reaped.push_back(false);
      }

      // Parent-side liveness for the daemon's poll loop: reap any dead
      // worker (so a SIGKILLed one never lingers as a zombie) and count
      // the rest. Zero live + cells remaining = unrecoverable, and
      // serve() throws instead of hanging forever.
      const auto live_workers = [&pids, &reaped]() {
        int alive = 0;
        for (std::size_t i = 0; i < pids.size(); ++i) {
          if (reaped[i]) continue;
          const pid_t r = waitpid(pids[i], nullptr, WNOHANG);
          if (r == 0) {
            ++alive;
          } else {
            reaped[i] = true;  // exited (or ECHILD) — gone either way
          }
        }
        return alive;
      };

      std::printf("[fleet] daemon: %zu miss(es) over %d worker(s) on %s "
                  "(%zu replayed at triage)\n",
                  misses, hosts, daemon_socket_path.c_str(), triage_cached);
      common::Timer wall;
      try {
        dstats = daemon.serve(live_workers);
      } catch (const std::exception& e) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
          if (!reaped[i]) kill(pids[i], SIGTERM);
        }
        for (std::size_t i = 0; i < pids.size(); ++i) {
          if (!reaped[i]) waitpid(pids[i], nullptr, 0);
        }
        std::fprintf(stderr, "sweep_fleet: daemon: %s\n", e.what());
        return 1;
      }
      daemon_seconds = wall.seconds();
      for (std::size_t i = 0; i < pids.size(); ++i) {
        if (!reaped[i]) waitpid(pids[i], nullptr, 0);  // clean SHUTDOWN exits
      }
      std::printf("[fleet] daemon: %d computed, %d cached, %d re-queued "
                  "after %d worker death(s) in %.1f s\n",
                  dstats.computed, dstats.cached, dstats.requeued,
                  dstats.worker_deaths, daemon_seconds);
      for (const fleet::DaemonStats::WorkerLoad& wl : dstats.workers) {
        std::printf("[fleet] worker %d (%s): %d cell(s), %.1f s busy\n",
                    wl.worker_id, wl.name.c_str(), wl.cells,
                    wl.busy_seconds);
      }
    }
  }

  std::printf("=== sweep_fleet ===\n%zu grid(s) against store %s "
              "(%s-ordered queue)\n\n",
              specs.size(), store_dir.c_str(),
              core::schedule_policy_name(schedule));
  const std::vector<core::ResultTable> tables = fleet.run();

  std::size_t computed = 0, cached = 0, absent = 0;
  for (std::size_t g = 0; g < tables.size(); ++g) {
    const core::ResultTable& t = tables[g];
    computed += t.computed_cells();
    cached += t.cached_cells();
    absent += t.absent_cells();
    std::printf("[fleet] %-22s %3zu cell(s): %zu computed, %zu cached, "
                "%zu left to other shards\n",
                specs[g].def->name.c_str(), t.size(), t.computed_cells(),
                t.cached_cells(), t.absent_cells());
  }
  std::printf("[fleet] total: %zu computed, %zu cached, %zu absent in "
              "%.1f s at %d worker(s)\n",
              computed, cached, absent,
              tables.empty() ? 0.0 : tables.front().total_seconds(),
              tables.empty() ? 0 : tables.front().sweep_parallel());
  // Per-worker tail utilization: the cost-ordered queue exists so no
  // worker shows a near-zero busy fraction while one drains a late
  // retrain cell.
  const double total_seconds =
      tables.empty() ? 0.0 : tables.front().total_seconds();
  const std::vector<core::WorkerStats>& workers = fleet.worker_stats();
  if (!daemon_mode) {  // daemon mode printed its socket workers above
    for (std::size_t w = 0; w < workers.size(); ++w) {
      std::printf("[fleet] worker %zu: %zu cell(s), %.1f s busy (%.0f%% "
                  "utilization)\n",
                  w, workers[w].cells, workers[w].busy_seconds,
                  total_seconds > 0.0
                      ? 100.0 * workers[w].busy_seconds / total_seconds
                      : 0.0);
    }
  }

  // Auto-merge: a table with no absent cells means the LAST shard just
  // landed — emit the figure CSV straight from the shared store so a
  // multi-host fleet needs no manual sweep_merge step. Earlier shards
  // still see foreign cells absent and leave emission to the finisher.
  const store::StoreSpec store_spec = store::parse_store_spec(store_dir);
  bool emitted_tables = false;
  if (store_spec.scheme != "segment") {
    for (std::size_t g = 0; g < tables.size(); ++g) {
      if (!tables[g].complete() || tables[g].size() == 0) continue;
      const std::string table_dir = store_spec.path + "/tables";
      const std::string path = table_dir + "/" + specs[g].def->name + ".csv";
      if (!io::env().mkdirs(table_dir) ||
          !io::env().write_file(path, tables[g].to_csv())) {
        std::fprintf(stderr, "sweep_fleet: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("[fleet] %s complete — table written to %s\n",
                  specs[g].def->name.c_str(), path.c_str());
      emitted_tables = true;
    }
  }
  if (!emitted_tables) {
    std::printf("[fleet] figure tables: re-run each bench with --store %s "
                "(replays every cell) or use sweep_merge\n",
                store_dir.c_str());
  }

  if (!cli.get_string("json").empty()) {
    std::ofstream out(cli.get_string("json"));
    if (!out) {
      std::fprintf(stderr, "sweep_fleet: cannot open %s\n",
                   cli.get_string("json").c_str());
      return 1;
    }
    // In daemon mode the run block reports the DAEMON's ledger — what
    // the forked workers actually computed — not the parent's warm
    // replay (which by construction computes zero cells).
    const long run_workers =
        daemon_mode ? hosts
                    : (tables.empty() ? 0 : tables.front().sweep_parallel());
    const double run_seconds = daemon_mode ? daemon_seconds : total_seconds;
    const std::size_t run_computed =
        daemon_mode ? static_cast<std::size_t>(dstats.computed) : computed;
    const std::size_t run_cached =
        daemon_mode ? triage_cached + static_cast<std::size_t>(dstats.cached)
                    : cached;
    out << "{\n  \"driver\": \"sweep_fleet\",\n  \"store\": \""
        << common::json_escape(store_dir)
        << "\",\n  \"schedule\": \"" << core::schedule_policy_name(schedule)
        << "\",\n  \"run\": {\"workers\": " << run_workers
        << ", \"total_seconds\": " << run_seconds
        << ", \"cells_computed\": " << run_computed
        << ", \"cells_cached\": " << run_cached
        << ", \"cells_absent\": " << absent << "},\n";
    if (daemon_mode) {
      out << "  \"daemon\": {\"socket\": \""
          << common::json_escape(daemon_socket_path)
          << "\", \"hosts\": " << hosts
          << ", \"requeued\": " << dstats.requeued
          << ", \"worker_deaths\": " << dstats.worker_deaths << "},\n";
    }
    out << "  \"workers\": [\n";
    if (daemon_mode) {
      for (std::size_t w = 0; w < dstats.workers.size(); ++w) {
        const fleet::DaemonStats::WorkerLoad& wl = dstats.workers[w];
        out << "    {\"worker\": " << wl.worker_id << ", \"name\": \""
            << common::json_escape(wl.name) << "\", \"cells\": " << wl.cells
            << ", \"busy_seconds\": " << wl.busy_seconds
            << ", \"utilization\": "
            << (daemon_seconds > 0.0 ? wl.busy_seconds / daemon_seconds : 0.0)
            << "}" << (w + 1 == dstats.workers.size() ? "\n" : ",\n");
      }
    } else {
      for (std::size_t w = 0; w < workers.size(); ++w) {
        out << "    {\"worker\": " << w << ", \"cells\": " << workers[w].cells
            << ", \"busy_seconds\": " << workers[w].busy_seconds
            << ", \"utilization\": "
            << (total_seconds > 0.0
                    ? workers[w].busy_seconds / total_seconds
                    : 0.0)
            << "}" << (w + 1 == workers.size() ? "\n" : ",\n");
      }
    }
    out << "  ],\n  \"grids\": [\n";
    for (std::size_t g = 0; g < tables.size(); ++g) {
      out << "    {\"bench\": \"" << specs[g].def->name
          << "\", \"cells\": " << tables[g].size()
          << ", \"computed\": " << tables[g].computed_cells()
          << ", \"cached\": " << tables[g].cached_cells()
          << ", \"absent\": " << tables[g].absent_cells() << "}"
          << (g + 1 == tables.size() ? "\n" : ",\n");
    }
    // The full metrics registry rides along in the (already volatile)
    // fleet summary: store hit/miss per layer, kernel path mix, pool and
    // sweep counters — everything perf_gate.py and the nightly job
    // summary read. Figure tables and cell records never carry it.
    out << "  ],\n  \"metrics\": "
        << obs::encode_metrics_json(obs::snapshot_metrics(), 2) << "\n}\n";
    std::printf("[fleet] summary JSON written to %s\n",
                cli.get_string("json").c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "sweep_fleet: %s\n", e.what());
  return 1;
}
