// Fig. 6 — optimized per-layer threshold voltages returned by FalVolt.
//
// Reproduces: FalVolt run at 10% / 30% / 60% faulty PEs (MSB sa1, 256x256
// array) for all three datasets; reports the learned V_th of every hidden
// convolutional and fully connected spiking layer.
//
// The grid and scenario function live in bench/grids/fig6_grid.cpp
// (registered into core::GridRegistry, so the sweep_fleet driver runs
// exactly the same cells); this main adds the figure's own table
// aggregation.

#include "bench_common.h"
#include "core/grid_registry.h"
#include "grids/grids.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  fb::register_all_grids();
  const core::GridDef& def =
      core::GridRegistry::instance().get("fig6_vth_layers");
  common::CliFlags cli(def.name);
  fb::add_common_flags(cli);
  def.add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  fb::ExecScope obs(cli);

  fb::banner("Fig. 6", def.title);

  const std::vector<core::DatasetKind> kinds = fb::fig6::kinds(cli);
  const std::vector<core::Scenario> scenarios = def.scenarios(cli);

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, def.name, def.aggregation_only));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, def.name),
                        {"dataset", "fault_rate_percent", "layer", "vth",
                         "final_accuracy"});
  fb::probe_sweep_json(cli, def.name);

  const core::ResultTable results =
      runner.run(scenarios, def.scenario_fn(cli, runner.context()));

  fb::write_scenario_rows(csv, results);

  // One table per dataset: rows = fault rates, cols = hidden layers
  // (names recovered from the "vth:<layer>" metric labels).
  if (fb::sweep_complete(results)) {
    for (const auto kind : kinds) {
      std::vector<std::string> header = {"faulty"};
      const auto& first_metrics =
          results.get(fb::fig6::cell_key(kind, fb::fig6::rates().front()))
              .metrics;
      for (std::size_t m = 1; m < first_metrics.size(); ++m) {
        header.push_back(first_metrics[m].first.substr(4));
      }
      common::TextTable table(header);
      for (const double rate : fb::fig6::rates()) {
        const core::ScenarioResult& r =
            results.get(fb::fig6::cell_key(kind, rate));
        std::vector<double> row;
        for (std::size_t m = 1; m < r.metrics.size(); ++m) {
          row.push_back(r.metrics[m].second);
        }
        table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                          row, 3);
      }
      std::printf("\nOptimized V_th per hidden layer — %s:\n",
                  core::dataset_name(kind));
      table.print();
      std::printf("\n");
    }
  }
  fb::emit_sweep_summary(cli, def.name, results);
  std::printf("Expected shape (paper): early conv / first FC layers keep "
              "higher thresholds than later layers so redundant spikes do "
              "not reach the output.\n");
  return 0;
}
