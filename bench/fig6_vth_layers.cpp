// Fig. 6 — optimized per-layer threshold voltages returned by FalVolt.
//
// Reproduces: FalVolt run at 10% / 30% / 60% faulty PEs (MSB sa1, 256x256
// array) for all three datasets; reports the learned V_th of every hidden
// convolutional and fully connected spiking layer.
//
// Every (dataset, rate) cell is an independent FalVolt run on
// core::SweepRunner; --sweep-parallel N runs N cells at a time with
// byte-identical tables.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig6_vth_layers");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 6",
             "Optimized per-layer threshold voltage after FalVolt at "
             "10%/30%/60% faulty PEs");

  const bool fast = cli.get_bool("fast");
  const std::vector<double> rates = {0.10, 0.30, 0.60};
  const std::vector<core::DatasetKind> kinds = fb::dataset_list(
      cli, {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
            core::DatasetKind::kDvsGesture});

  // Single source of truth for scenario keys: the same lambda builds
  // the grid and rebuilds the tables, so they can never disagree.
  const auto cell_key = [](core::DatasetKind kind, double rate) {
    return std::string(core::dataset_name(kind)) + "/rate=" +
           common::TextTable::format(rate * 100, 0);
  };

  std::vector<core::Scenario> scenarios;
  for (const auto kind : kinds) {
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);
    for (const double rate : rates) {
      core::Scenario s;
      s.key = cell_key(kind, rate);
      s.dataset = kind;
      s.fault_rate = rate;
      s.fault_seed = 5000 + static_cast<std::uint64_t>(rate * 100);
      s.retrain = true;
      s.epochs = epochs;
      scenarios.push_back(s);
    }
  }

  core::SweepRunner runner(fb::workload_options(cli));
  runner.set_on_baseline(fb::print_baseline);
  runner.set_store(fb::store_options(cli, "fig6_vth_layers"));
  if (fb::list_scenarios(cli, runner, scenarios)) return 0;

  // Outputs open before the sweep so an unwritable CWD fails fast.
  common::CsvWriter csv(fb::csv_path(cli, "fig6_vth_layers"),
                        {"dataset", "fault_rate_percent", "layer", "vth",
                         "final_accuracy"});
  fb::probe_sweep_json(cli, "fig6_vth_layers");

  const auto fn = [&](const core::Scenario& s,
                      const core::SweepContext& ctx) {
    const core::Workload& wl = ctx.workload(s.dataset);
    snn::Network net = ctx.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    const systolic::ArrayConfig array = fb::experiment_array(cli);
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = s.epochs;
    cfg.eval_each_epoch = false;
    const core::MitigationResult r =
        core::run_falvolt(net, map, wl.data.train, wl.data.test, cfg);

    core::ScenarioResult out;
    out.metrics = {{"accuracy", r.final_accuracy}};
    for (const auto& v : r.vth_per_layer) {
      out.metrics.emplace_back("vth:" + v.layer, v.vth);
      out.csv_rows.push_back(
          {std::string(core::dataset_name(s.dataset)),
           common::CsvWriter::format(s.fault_rate * 100), v.layer,
           common::CsvWriter::format(v.vth),
           common::CsvWriter::format(r.final_accuracy)});
    }
    fb::logf(out.log, "  %-15s rate=%2.0f%% -> accuracy %.1f%%\n",
             core::dataset_name(s.dataset), s.fault_rate * 100,
             r.final_accuracy);
    return out;
  };

  const core::ResultTable results = runner.run(scenarios, fn);

  fb::write_scenario_rows(csv, results);

  // One table per dataset: rows = fault rates, cols = hidden layers
  // (names recovered from the "vth:<layer>" metric labels).
  if (fb::sweep_complete(results)) {
    for (const auto kind : kinds) {
      std::vector<std::string> header = {"faulty"};
      const auto& first_metrics =
          results.get(cell_key(kind, rates.front())).metrics;
      for (std::size_t m = 1; m < first_metrics.size(); ++m) {
        header.push_back(first_metrics[m].first.substr(4));
      }
      common::TextTable table(header);
      for (const double rate : rates) {
        const core::ScenarioResult& r = results.get(cell_key(kind, rate));
        std::vector<double> row;
        for (std::size_t m = 1; m < r.metrics.size(); ++m) {
          row.push_back(r.metrics[m].second);
        }
        table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                          row, 3);
      }
      std::printf("\nOptimized V_th per hidden layer — %s:\n",
                  core::dataset_name(kind));
      table.print();
      std::printf("\n");
    }
  }
  fb::emit_sweep_summary(cli, "fig6_vth_layers", results);
  std::printf("Expected shape (paper): early conv / first FC layers keep "
              "higher thresholds than later layers so redundant spikes do "
              "not reach the output.\n");
  return 0;
}
