// Fig. 6 — optimized per-layer threshold voltages returned by FalVolt.
//
// Reproduces: FalVolt run at 10% / 30% / 60% faulty PEs (MSB sa1, 256x256
// array) for all three datasets; reports the learned V_th of every hidden
// convolutional and fully connected spiking layer.

#include "bench_common.h"

namespace fb = falvolt::bench;
using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("fig6_vth_layers");
  fb::add_common_flags(cli);
  cli.add_int("epochs", 0, "retraining epochs (0 = per-dataset default)");
  if (!cli.parse(argc, argv)) return 0;

  fb::banner("Fig. 6",
             "Optimized per-layer threshold voltage after FalVolt at "
             "10%/30%/60% faulty PEs");

  const bool fast = cli.get_bool("fast");
  const std::vector<double> rates = {0.10, 0.30, 0.60};
  common::CsvWriter csv(fb::csv_path("fig6_vth_layers"),
                        {"dataset", "fault_rate_percent", "layer", "vth",
                         "final_accuracy"});

  for (const auto kind :
       {core::DatasetKind::kMnist, core::DatasetKind::kNMnist,
        core::DatasetKind::kDvsGesture}) {
    core::Workload wl =
        core::prepare_workload(kind, fb::workload_options(cli));
    fb::print_baseline(wl);
    fb::BaselineKeeper keeper(wl);
    const int epochs =
        cli.get_int("epochs") > 0
            ? static_cast<int>(cli.get_int("epochs"))
            : core::default_retrain_epochs(kind, fast);

    // One table per dataset: rows = fault rates, cols = hidden layers.
    std::vector<std::string> header = {"faulty"};
    for (snn::Plif* p : wl.net.hidden_spiking_layers()) {
      header.push_back(p->name());
    }
    common::TextTable table(header);

    for (const double rate : rates) {
      common::Rng rng(5000 + static_cast<int>(rate * 100));
      const systolic::ArrayConfig array = fb::experiment_array(cli);
      const fault::FaultMap map = fault::fault_map_at_rate(
          array.rows, array.cols, rate,
          fault::worst_case_spec(array.format.total_bits()), rng);
      keeper.restore();
      core::MitigationConfig cfg;
      cfg.array = array;
      cfg.retrain_epochs = epochs;
      cfg.eval_each_epoch = false;
      const core::MitigationResult r = core::run_falvolt(
          wl.net, map, wl.data.train, wl.data.test, cfg);
      std::vector<double> row;
      for (const auto& v : r.vth_per_layer) {
        row.push_back(v.vth);
        csv.row({std::string(core::dataset_name(kind)),
                 common::CsvWriter::format(rate * 100), v.layer,
                 common::CsvWriter::format(v.vth),
                 common::CsvWriter::format(r.final_accuracy)});
      }
      table.row_labeled(common::TextTable::format(rate * 100, 0) + "%",
                        row, 3);
      std::printf("  %-15s rate=%2.0f%% -> accuracy %.1f%%\n",
                  core::dataset_name(kind), rate * 100, r.final_accuracy);
    }
    std::printf("\nOptimized V_th per hidden layer — %s:\n",
                core::dataset_name(kind));
    table.print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper): early conv / first FC layers keep "
              "higher thresholds than later layers so redundant spikes do "
              "not reach the output.\n");
  return 0;
}
