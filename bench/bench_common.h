#pragma once
// Shared plumbing for the figure-reproduction benches: workload loading
// (with on-disk baseline caching), scenario-sweep orchestration, result
// tables, and CSV/JSON output.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "core/fap.h"
#include "core/sweep.h"
#include "fault/fault_generator.h"

namespace falvolt::bench {

/// Standard flags shared by every figure bench.
inline void add_common_flags(common::CliFlags& cli) {
  cli.add_bool("fast", common::fast_mode(),
               "shrink datasets/epochs ~2x (also via FALVOLT_FAST=1)");
  cli.add_int("seed", 7, "workload seed");
  cli.add_int("repeats", 0, "fault maps per point (0 = bench default)");
  cli.add_int("array-size", 64,
              "systolic array dimension N (NxN). The paper uses 256x256 "
              "with ~128-channel networks (~50% column utilization); our "
              "CPU-scaled networks are ~16x narrower, so the default "
              "array is scaled to 64x64 to preserve utilization — see "
              "EXPERIMENTS.md");
  cli.add_int("threads", 0,
              "compute worker threads (0 = $FALVOLT_THREADS, else the "
              "hardware concurrency)");
  cli.add_int("sweep-parallel", 0,
              "concurrent scenarios of the figure grid (1 = serial; 0 = "
              "$FALVOLT_SWEEP_PARALLEL, else the hardware concurrency). "
              "Result tables are byte-identical at any value");
  cli.add_string("datasets", "all",
                 "comma list of mnist,nmnist,dvs to subset the grid "
                 "(all = the bench's paper grid)");
  cli.add_string("sweep-json", "",
                 "machine-readable sweep summary path ('' = "
                 "<bench>_sweep.json, none = disabled)");
}

/// The experiment array: paper-equivalent geometry at our network scale.
inline systolic::ArrayConfig experiment_array(const common::CliFlags& cli) {
  systolic::ArrayConfig array;
  array.rows = array.cols = static_cast<int>(cli.get_int("array-size"));
  return array;
}

inline core::WorkloadOptions workload_options(const common::CliFlags& cli) {
  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.threads = static_cast<int>(cli.get_int("threads"));
  opts.sweep_parallel = static_cast<int>(cli.get_int("sweep-parallel"));
  return opts;
}

/// The bench's dataset axis, optionally subset by --datasets (handy for
/// CI smoke runs and quick local iterations). Strictly a subset: asking
/// for a dataset the bench's paper grid does not contain is an error,
/// never a silent grid extension.
inline std::vector<core::DatasetKind> dataset_list(
    const common::CliFlags& cli, std::vector<core::DatasetKind> def) {
  const std::string& spec = cli.get_string("datasets");
  if (spec.empty() || spec == "all") return def;
  std::vector<core::DatasetKind> requested;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (tok == "mnist") {
      requested.push_back(core::DatasetKind::kMnist);
    } else if (tok == "nmnist") {
      requested.push_back(core::DatasetKind::kNMnist);
    } else if (tok == "dvs" || tok == "dvs-gesture") {
      requested.push_back(core::DatasetKind::kDvsGesture);
    } else {
      throw std::invalid_argument("--datasets: unknown dataset '" + tok +
                                  "' (want mnist,nmnist,dvs)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  for (const auto kind : requested) {
    if (std::find(def.begin(), def.end(), kind) == def.end()) {
      throw std::invalid_argument(
          std::string("--datasets: ") + core::dataset_name(kind) +
          " is not part of this bench's grid");
    }
  }
  std::vector<core::DatasetKind> out;  // keep the bench's axis order
  for (const auto kind : def) {
    if (std::find(requested.begin(), requested.end(), kind) !=
        requested.end()) {
      out.push_back(kind);
    }
  }
  return out;
}

/// Append a printf-formatted line to a scenario's buffered log.
inline void logf(std::string& log, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void logf(std::string& log, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log += buf;
}

/// CSV file next to the executable's working directory.
inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

/// Resolved --sweep-json path; empty string disables the summary.
inline std::string sweep_json_path(const common::CliFlags& cli,
                                   const std::string& bench_name) {
  const std::string& p = cli.get_string("sweep-json");
  if (p == "none") return "";
  return p.empty() ? bench_name + "_sweep.json" : p;
}

/// Validate that the sweep JSON summary path is writable. Call BEFORE
/// the sweep runs: an unwritable CWD must fail before hours of compute,
/// not after (the benches likewise construct their CsvWriter up front
/// for the same reason).
inline void probe_sweep_json(const common::CliFlags& cli,
                             const std::string& bench_name) {
  const std::string path = sweep_json_path(cli, bench_name);
  if (path.empty()) return;
  // Append mode: tests writability without clobbering the previous
  // run's summary should this run die mid-sweep.
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw std::runtime_error("cannot open sweep summary path " + path);
  }
}

/// Write the sweep JSON summary (if enabled) and print where it went.
inline void emit_sweep_summary(const common::CliFlags& cli,
                               const std::string& bench_name,
                               const core::ResultTable& results) {
  const std::string path = sweep_json_path(cli, bench_name);
  if (path.empty()) return;
  results.write_json(path, bench_name);
  std::printf("[sweep] %zu scenarios in %.1f s at sweep-parallel=%d — "
              "JSON summary written to %s\n",
              results.size(), results.total_seconds(),
              results.sweep_parallel(), path.c_str());
}

/// Append the per-scenario CSV rows to an already-open writer, in
/// scenario order (byte-identical at any sweep parallelism).
inline void write_scenario_rows(common::CsvWriter& csv,
                                const core::ResultTable& results) {
  for (const core::ScenarioResult& r : results.rows()) {
    for (const auto& row : r.csv_rows) csv.row(row);
  }
}

/// Banner printed by every bench so logs are self-describing.
inline void banner(const std::string& name, const std::string& what) {
  std::printf("=== %s ===\n%s\n\n", name.c_str(), what.c_str());
}

inline void print_baseline(const core::Workload& w) {
  std::printf("[%s] baseline accuracy %.2f%% (train %d / test %d, T=%d)\n",
              core::dataset_name(w.kind), w.baseline_accuracy,
              w.data.train.size(), w.data.test.size(),
              w.data.train.time_steps());
}

/// Restore a workload's network to its trained baseline parameters.
class BaselineKeeper {
 public:
  explicit BaselineKeeper(core::Workload& w)
      : net_(w.net), snapshot_(w.net.snapshot_params()) {}
  /// Reset weights AND thresholds to the trained baseline.
  void restore() {
    net_.restore_params(snapshot_);
    for (snn::Plif* p : net_.spiking_layers()) {
      p->set_train_vth(false);
    }
  }

 private:
  snn::Network& net_;
  std::vector<tensor::Tensor> snapshot_;
};

/// First `n` samples of a dataset (vulnerability sweeps evaluate through
/// the bit-level engine, so a subset keeps runtimes reasonable; samples
/// are class-round-robin, so any prefix is balanced).
inline data::Dataset subset(const data::Dataset& ds, int n) {
  data::Dataset out(ds.name() + "-subset", ds.num_classes(),
                    ds.time_steps(), ds.channels(), ds.height(), ds.width());
  const int count = std::min(n, ds.size());
  for (int i = 0; i < count; ++i) out.add(ds[i]);
  return out;
}

/// Shared, read-only test-set subsets for every dataset a sweep
/// prepared — built once on the main thread, then read concurrently by
/// the scenario functions.
inline std::map<core::DatasetKind, data::Dataset> eval_subsets(
    const core::SweepContext& ctx, int n) {
  std::map<core::DatasetKind, data::Dataset> out;
  for (const auto kind : ctx.kinds()) {
    out.emplace(kind, subset(ctx.workload(kind).data.test, n));
  }
  return out;
}

}  // namespace falvolt::bench
