#pragma once
// Shared plumbing for the figure-reproduction benches: workload loading
// (with on-disk baseline caching), scenario-sweep orchestration, result
// tables, and CSV/JSON output.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "core/fap.h"
#include "core/sweep.h"
#include "fault/fault_generator.h"
#include "io/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/result_store.h"  // store_exists + the StoreApi chain

namespace falvolt::bench {

/// Split a separator-joined list, dropping empty tokens — the one
/// tokenizer behind --datasets, --grids, --set, and --from.
inline std::vector<std::string> split_list(const std::string& spec,
                                           char sep = ',') {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t next = spec.find(sep, pos);
    const std::string tok =
        spec.substr(pos, next == std::string::npos ? next : next - pos);
    if (!tok.empty()) out.push_back(tok);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

// ----------------------------------------------------- execution flags
// Execution-only flags — knobs that change HOW a run executes (where
// telemetry goes, how processes are laid out, what I/O faults are
// injected), never WHAT any cell computes. Declaring one here is the
// whole job: registration (add_exec_flags), the fingerprint exemption
// (flag_affects_results), and the fleet driver's managed/not-forwarded
// bookkeeping all read this one table. Adding a new execution-only
// flag anywhere else is a bug.

enum ExecFlagGroup : unsigned {
  kExecObs = 1u << 0,    ///< telemetry + fault injection (every driver)
  kExecFleet = 1u << 1,  ///< daemon/worker process layout (sweep_fleet)
};

struct ExecFlagDef {
  const char* name;
  enum Kind { kString, kBool, kInt } kind;
  const char* str_default;
  int int_default;
  unsigned groups;
  const char* help;
};

inline const std::vector<ExecFlagDef>& exec_flag_defs() {
  static const std::vector<ExecFlagDef> defs = {
      {"trace", ExecFlagDef::kString, "", 0, kExecObs,
       "Chrome trace-event JSON output path ('' = $FALVOLT_TRACE, "
       "else disabled; none = disabled). Spans cover baselines, "
       "cells, and store I/O; load the file in Perfetto or "
       "chrome://tracing. Observation only — tables and "
       "fingerprints are byte-identical with tracing on or off"},
      {"metrics-json", ExecFlagDef::kString, "", 0, kExecObs,
       "write the process metrics registry (counters/timers) as "
       "JSON to this path on exit ('' = disabled)"},
      {"faults", ExecFlagDef::kString, "", 0, kExecObs,
       "I/O fault-injection spec, e.g. "
       "'mode=independent,p=0.01,seed=7' or "
       "'mode=runlength,runlen=12,kill=1' ('' = $FALVOLT_FAULTS, "
       "else disabled; none = disabled). Tears/bit-flips store "
       "writes and arms PullThePlug process-kill points to "
       "exercise the store's crash-safety guarantees. Execution "
       "only: never fingerprinted, and surviving output is "
       "byte-identical to an uninjected run"},
      {"hosts", ExecFlagDef::kInt, nullptr, 0, kExecFleet,
       "run the fleet as a scheduler daemon over N forked worker "
       "processes claiming cells over a UNIX socket (0 = in-process; "
       "results are byte-identical either way)"},
      {"daemon-socket", ExecFlagDef::kString, "", 0, kExecFleet,
       "fleet daemon socket path. With --hosts: where the daemon "
       "listens ('' = /tmp/falvolt-fleet-<pid>.sock). Without "
       "--hosts: run as a WORKER claiming cells from the daemon at "
       "this path (workers are normally forked by the daemon, not "
       "launched by hand)"},
      {"worker-faults", ExecFlagDef::kString, "", 0, kExecFleet,
       "per-worker fault-injection spec 'i:spec' applied (via "
       "$FALVOLT_FAULTS) to forked worker i only, e.g. "
       "'1:mode=runlength,runlen=30,kill=1' — the crash-harness "
       "hook for killing one fleet worker while the rest run clean"},
  };
  return defs;
}

/// Register the execution-only flags of the given groups.
inline void add_exec_flags(common::CliFlags& cli,
                           unsigned groups = kExecObs) {
  for (const ExecFlagDef& def : exec_flag_defs()) {
    if (!(def.groups & groups)) continue;
    switch (def.kind) {
      case ExecFlagDef::kString:
        cli.add_string(def.name, def.str_default, def.help);
        break;
      case ExecFlagDef::kBool:
        cli.add_bool(def.name, def.int_default != 0, def.help);
        break;
      case ExecFlagDef::kInt:
        cli.add_int(def.name, def.int_default, def.help);
        break;
    }
  }
}

/// True when `name` is declared in the exec-flag table (any group by
/// default).
inline bool is_exec_flag(const std::string& name, unsigned groups = ~0u) {
  for (const ExecFlagDef& def : exec_flag_defs()) {
    if ((def.groups & groups) && name == def.name) return true;
  }
  return false;
}

/// Standard flags shared by every figure bench.
inline void add_common_flags(common::CliFlags& cli) {
  cli.add_bool("fast", common::fast_mode(),
               "shrink datasets/epochs ~2x (also via FALVOLT_FAST=1)");
  cli.add_int("seed", 7, "workload seed");
  cli.add_int("repeats", 0, "fault maps per point (0 = bench default)");
  cli.add_int("array-size", 64,
              "systolic array dimension N (NxN). The paper uses 256x256 "
              "with ~128-channel networks (~50% column utilization); our "
              "CPU-scaled networks are ~16x narrower, so the default "
              "array is scaled to 64x64 to preserve utilization — see "
              "EXPERIMENTS.md");
  cli.add_int("threads", 0,
              "compute worker threads (0 = $FALVOLT_THREADS, else the "
              "hardware concurrency)");
  cli.add_int("sweep-parallel", 0,
              "concurrent scenarios of the figure grid (1 = serial; 0 = "
              "$FALVOLT_SWEEP_PARALLEL, else the hardware concurrency). "
              "Result tables are byte-identical at any value");
  cli.add_string("datasets", "all",
                 "comma list of mnist,nmnist,dvs to subset the grid "
                 "(all = the bench's paper grid)");
  cli.add_string("sweep-json", "",
                 "machine-readable sweep summary path ('' = "
                 "<bench>_sweep.json, none = disabled)");
  cli.add_string("store", "",
                 "content-addressed scenario result store spec: "
                 "local:<dir>, segment:<dir> (read-only compacted "
                 "archive), or a bare directory path ('' = "
                 "$FALVOLT_STORE, else disabled; none = disabled). Cells "
                 "already in the store are replayed instead of recomputed");
  cli.add_string("substituters", "",
                 "comma list of read-only store specs (same grammar as "
                 "--store) consulted in order behind it: cells computed "
                 "elsewhere replay from the first substituter that has "
                 "them, exactly like local hits. Needs --store; "
                 "substituters are never written to and must already "
                 "exist");
  cli.add_bool("resume", true,
               "replay cells already present in --store; 'false' "
               "recomputes every owned cell and overwrites its record");
  cli.add_string("shard", "",
                 "deterministic grid partition 'i/n': this run computes "
                 "only cells with grid index % n == i ('' = whole grid). "
                 "Union the shard stores with the sweep_merge tool");
  cli.add_bool("list-scenarios", false,
               "print the scenario grid (index, owning shard, "
               "fingerprint, store status) and exit without computing");
  add_exec_flags(cli, kExecObs);
}

/// Flags that never change a cell's value — execution knobs and output
/// paths. Everything else a bench registers is hashed into the cell
/// fingerprints, so forgetting to list a new result-affecting flag here
/// costs only spurious recomputes, never a stale hit.
inline bool flag_affects_results(const std::string& name) {
  static const std::set<std::string> kExecutionOnly = {
      "threads",  "sweep-parallel", "sweep-json",     "datasets",
      "repeats",  "store",          "resume",         "shard",
      "list-scenarios", "substituters"};
  if (is_exec_flag(name)) return false;
  // --substituters only changes WHERE a fingerprint-addressed record is
  // read from, never what any cell computes, so it must not split the
  // cache (see SweepStoreOptions::substituters).
  // --faults corrupts I/O, never values: damaged records degrade to
  // recompute and the recompute produces the same bytes, so an injected
  // run must address (and eventually publish) the SAME cells as a clean
  // run — fingerprinting the spec would defeat the resume harness.
  // --datasets subsets the grid and --repeats sizes it; neither changes
  // what any one (dataset, ..., rep) cell computes, so shards/subsets
  // of a grid share cache entries with the full run.
  return kExecutionOnly.find(name) == kExecutionOnly.end();
}

/// The (flag, value) pairs hashed into every cell fingerprint.
/// `aggregation_only` lets a bench exempt flags that shape only its
/// post-sweep summary, never a cell value (e.g. fig8's --target-drop) —
/// hashing those would recompute expensive cells to change a label.
inline std::vector<std::pair<std::string, std::string>> fingerprint_config(
    const common::CliFlags& cli,
    const std::set<std::string>& aggregation_only = {}) {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [name, value] : cli.items()) {
    if (flag_affects_results(name) && !aggregation_only.count(name)) {
      out.emplace_back(name, value);
    }
  }
  return out;
}

/// Resolved --faults spec; empty string disables injection.
inline std::string resolve_fault_spec(const std::string& flag_value) {
  if (flag_value == "none") return "";
  if (!flag_value.empty()) return flag_value;
  const std::string env = common::env_or("FALVOLT_FAULTS", "");
  return env == "none" ? "" : env;
}

/// RAII fault-injection session: parses the resolved --faults /
/// $FALVOLT_FAULTS spec and arms io::FaultInjector for the process
/// lifetime; on destruction disarms and prints the FaultTestReport-style
/// summary line. A malformed spec exits 1 immediately — injection
/// misconfiguration must never be discovered hours into a sweep (and a
/// typo'd spec silently running clean would be worse). No-op when the
/// spec is empty.
class FaultScope {
 public:
  explicit FaultScope(const std::string& flag_value) {
    const std::string spec = resolve_fault_spec(flag_value);
    if (spec.empty()) return;
    io::FaultSpec parsed;
    try {
      parsed = io::parse_fault_spec(spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(1);
    }
    if (!parsed.enabled()) return;
    io::arm_faults(parsed);
    armed_ = true;
    std::fprintf(stderr, "[faults] armed: %s\n",
                 io::to_string(parsed).c_str());
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
  ~FaultScope() {
    if (!armed_) return;
    io::disarm_faults();
    std::fprintf(stderr, "%s\n", io::fault_report_line().c_str());
  }

 private:
  bool armed_ = false;
};

/// RAII session for the exec-flag table's kExecObs group — THE scope
/// helper a driver constructs right after CliFlags::parse so every
/// baseline/cell/store span lands inside the session: starts Chrome
/// tracing when --trace (or $FALVOLT_TRACE) names a file, and on
/// destruction stops the trace and dumps the process metrics registry
/// to --metrics-json when set. All knobs are execution-only
/// (flag_affects_results) — they never reach a cell fingerprint, and
/// with none set this is a no-op.
///
/// Also owns the process's FaultScope (--faults / $FALVOLT_FAULTS):
/// every bench driver that constructs an ExecScope gets fault injection
/// armed before any store I/O and the injection report on exit, with
/// the io.faults.* counters landing in the same --metrics-json dump.
class ExecScope {
 public:
  explicit ExecScope(const common::CliFlags& cli)
      : faults_(cli.get_string("faults")),
        metrics_path_(cli.get_string("metrics-json")) {
    const std::string path =
        obs::resolve_trace_path(cli.get_string("trace"));
    if (!path.empty()) {
      obs::trace_start(path);  // fail-fast: bad path dies before compute
      trace_path_ = path;
    }
  }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;
  ~ExecScope() {
    if (!trace_path_.empty()) {
      const std::size_t events = obs::trace_stop();
      std::fprintf(stderr, "[obs] %zu trace event(s) written to %s\n",
                   events, trace_path_.c_str());
    }
    if (metrics_path_.empty()) return;
    try {
      obs::write_metrics_json(metrics_path_);
      std::fprintf(stderr, "[obs] metrics written to %s\n",
                   metrics_path_.c_str());
    } catch (const std::exception& e) {
      // The bench's results are already on disk; a failed metrics dump
      // must not turn a finished sweep into an error exit.
      std::fprintf(stderr, "[obs] metrics dump failed: %s\n", e.what());
    }
  }

 private:
  FaultScope faults_;  // first member: armed before, disarmed after,
                       // everything else in the session
  std::string metrics_path_;
  std::string trace_path_;
};

/// Resolved --store directory; empty string disables the store.
inline std::string resolve_store_dir(const common::CliFlags& cli) {
  const std::string& dir = cli.get_string("store");
  if (dir == "none") return "";
  if (!dir.empty()) return dir;
  return common::env_or("FALVOLT_STORE", "");
}

/// Build the SweepRunner store/shard configuration from the CLI.
inline core::SweepStoreOptions store_options(
    const common::CliFlags& cli, const std::string& bench_name,
    const std::set<std::string>& aggregation_only = {}) {
  core::SweepStoreOptions st;
  st.dir = resolve_store_dir(cli);
  st.bench = bench_name;
  st.config = fingerprint_config(cli, aggregation_only);
  st.substituters = split_list(cli.get_string("substituters"));
  st.resume = cli.get_bool("resume");
  const auto [index, count] = core::parse_shard_spec(cli.get_string("shard"));
  st.shard_index = index;
  st.shard_count = count;
  if (st.dir.empty() && count > 1) {
    throw std::invalid_argument(
        "--shard needs --store (or $FALVOLT_STORE): a shard's results "
        "are only useful once published to a store");
  }
  if (st.dir.empty() && !st.substituters.empty()) {
    throw std::invalid_argument(
        "--substituters needs --store (or $FALVOLT_STORE): substituted "
        "cells replay through the local store's read chain");
  }
  return st;
}

/// Print one grid's --list-scenarios rows (the row format shared by the
/// bench dry run and sweep_fleet's cross-bench listing). `fp_of`
/// computes the cell fingerprint; `rs` is null when the store does not
/// exist yet (every cell then lists as MISS, or "-" with no store at
/// all). Cross-grid listings pass a bench `label` (rows print as
/// "bench:key") and thread a running `start_index` through so every row
/// of the combined listing has a unique index. Returns the index after
/// the last row.
inline std::size_t list_scenario_rows(
    const core::SweepStoreOptions& st,
    const std::vector<core::Scenario>& scenarios,
    const std::function<std::string(const core::Scenario&)>& fp_of,
    const falvolt::store::StoreApi* rs, const std::string& label = "",
    std::size_t start_index = 0) {
  // The same cost-balanced partition (greedy LPT over static cost
  // estimates) the engine computes — the listing's "shard" column IS
  // the plan every independently launched shard follows.
  std::vector<double> costs(scenarios.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = core::scenario_cost_estimate(scenarios[i]);
  }
  const std::vector<int> owners =
      core::shard_partition(costs, st.shard_count);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::string fp = fp_of(scenarios[i]);
    const int owner = owners[i];
    const char* status = rs          ? (rs->contains(fp) ? "HIT" : "MISS")
                         : st.dir.empty() ? "-"
                                          : "MISS";
    const std::string key = label.empty()
                                ? scenarios[i].key
                                : label + ":" + scenarios[i].key;
    std::printf("%-5zu %-6d %-6s %-16s %s\n", start_index + i, owner,
                status, fp.substr(0, 16).c_str(), key.c_str());
  }
  return start_index + scenarios.size();
}

/// Handle --list-scenarios: print the grid with fingerprints, owning
/// shards, and store status (for shard planning), then tell the caller
/// to exit. A pure dry run: computes nothing, writes no outputs, and —
/// unlike an actual sweep — does not even create the store directories
/// (a store that does not exist yet simply lists every cell as MISS).
inline bool list_scenarios(const common::CliFlags& cli,
                           const core::SweepRunner& runner,
                           const std::vector<core::Scenario>& scenarios) {
  if (!cli.get_bool("list-scenarios")) return false;
  const core::SweepStoreOptions& st = runner.store();
  std::unique_ptr<falvolt::store::StoreApi> rs;
  if (!st.dir.empty() && falvolt::store::store_spec_exists(st.dir)) {
    rs = falvolt::store::open_store(st.dir, st.substituters,
                                    /*create=*/false);
  }
  std::printf("# %zu scenario(s), shard %d/%d%s%s\n", scenarios.size(),
              st.shard_index, st.shard_count,
              st.dir.empty() ? "" : ", store ", st.dir.c_str());
  std::printf("%-5s %-6s %-6s %-16s %s\n", "idx", "shard", "store",
              "fingerprint", "key");
  list_scenario_rows(
      st, scenarios,
      [&runner](const core::Scenario& s) { return runner.fingerprint(s); },
      rs.get());
  return true;
}

/// True when the table covers the full grid; otherwise print the shard
/// hand-off notice (the caller skips its figure aggregation — only
/// sweep_merge, or a warm re-run against the merged store, can emit the
/// complete table).
inline bool sweep_complete(const core::ResultTable& results) {
  if (results.complete()) return true;
  std::printf(
      "\n[sweep] shard %d/%d: %zu cell(s) computed, %zu replayed, %zu "
      "left to other shards — figure tables are emitted by sweep_merge "
      "(or a re-run against the merged store), not by a partial shard.\n",
      results.shard_index(), results.shard_count(),
      results.computed_cells(), results.cached_cells(),
      results.absent_cells());
  return false;
}

/// Shared, read-only per-dataset eval subsets, built lazily on first use
/// by a scenario function. Lazy matters: on a warm store re-run no
/// scenario computes, so no dataset is prepared and no subset is built —
/// eagerly touching ctx.workload() there would either throw or force
/// baseline preparation the sweep proved unnecessary.
class EvalSets {
 public:
  /// `n` samples per dataset; n <= 0 means the full test split.
  EvalSets(const core::SweepContext& ctx, int n) : ctx_(ctx), n_(n) {}

  /// Thread-safe: scenario functions call this concurrently.
  const data::Dataset& of(core::DatasetKind kind);

  /// The same subset as one prebuilt whole-set EvalBatch (batched eval
  /// mode): built once per dataset and shared read-only by every
  /// scenario cell, so the per-time-step batch tensors are assembled
  /// once per grid instead of once per evaluation and each cell's
  /// engine resolves one fault plan per time step for ALL samples.
  /// Thread-safe like of().
  const snn::EvalBatch& batch(core::DatasetKind kind);

 private:
  const data::Dataset& of_locked(core::DatasetKind kind);

  const core::SweepContext& ctx_;
  int n_;
  std::mutex mu_;
  std::map<core::DatasetKind, data::Dataset> sets_;
  std::map<core::DatasetKind, snn::EvalBatch> batches_;
};

/// The experiment array: paper-equivalent geometry at our network scale.
inline systolic::ArrayConfig experiment_array(const common::CliFlags& cli) {
  systolic::ArrayConfig array;
  array.rows = array.cols = static_cast<int>(cli.get_int("array-size"));
  return array;
}

inline core::WorkloadOptions workload_options(const common::CliFlags& cli) {
  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.threads = static_cast<int>(cli.get_int("threads"));
  opts.sweep_parallel = static_cast<int>(cli.get_int("sweep-parallel"));
  return opts;
}

/// Parse a --datasets spec into dataset kinds. An empty or "all" spec
/// returns an empty vector, meaning "no filter". Throws on unknown
/// tokens. Shared by dataset_list (per-bench strict subsetting) and the
/// fleet driver (which uses the filter to SKIP grids whose axis does
/// not intersect it).
inline std::vector<core::DatasetKind> parse_dataset_spec(
    const std::string& spec) {
  std::vector<core::DatasetKind> requested;
  if (spec.empty() || spec == "all") return requested;
  for (const std::string& tok : split_list(spec)) {
    if (tok == "mnist") {
      requested.push_back(core::DatasetKind::kMnist);
    } else if (tok == "nmnist") {
      requested.push_back(core::DatasetKind::kNMnist);
    } else if (tok == "dvs" || tok == "dvs-gesture") {
      requested.push_back(core::DatasetKind::kDvsGesture);
    } else {
      throw std::invalid_argument("--datasets: unknown dataset '" + tok +
                                  "' (want mnist,nmnist,dvs)");
    }
  }
  if (requested.empty()) {
    throw std::invalid_argument("--datasets: no datasets in '" + spec + "'");
  }
  return requested;
}

/// The --datasets token naming a kind (inverse of parse_dataset_spec).
inline const char* dataset_flag_token(core::DatasetKind kind) {
  switch (kind) {
    case core::DatasetKind::kMnist:
      return "mnist";
    case core::DatasetKind::kNMnist:
      return "nmnist";
    default:
      return "dvs";
  }
}

/// Resolve a bench's --epochs flag: the explicit value when positive,
/// else `extra` + the dataset's default retrain epochs — the defaulting
/// rule shared by every retraining grid (ablation passes extra = 2).
inline int retrain_epochs_flag(const common::CliFlags& cli,
                               core::DatasetKind kind, int extra = 0) {
  return cli.get_int("epochs") > 0
             ? static_cast<int>(cli.get_int("epochs"))
             : extra + core::default_retrain_epochs(kind,
                                                    cli.get_bool("fast"));
}

/// The bench's dataset axis, optionally subset by --datasets (handy for
/// CI smoke runs and quick local iterations). Strictly a subset: asking
/// for a dataset the bench's paper grid does not contain is an error,
/// never a silent grid extension.
inline std::vector<core::DatasetKind> dataset_list(
    const common::CliFlags& cli, std::vector<core::DatasetKind> def) {
  const std::vector<core::DatasetKind> requested =
      parse_dataset_spec(cli.get_string("datasets"));
  if (requested.empty()) return def;
  for (const auto kind : requested) {
    if (std::find(def.begin(), def.end(), kind) == def.end()) {
      throw std::invalid_argument(
          std::string("--datasets: ") + core::dataset_name(kind) +
          " is not part of this bench's grid");
    }
  }
  std::vector<core::DatasetKind> out;  // keep the bench's axis order
  for (const auto kind : def) {
    if (std::find(requested.begin(), requested.end(), kind) !=
        requested.end()) {
      out.push_back(kind);
    }
  }
  return out;
}

/// Append a printf-formatted line to a scenario's buffered log.
inline void logf(std::string& log, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void logf(std::string& log, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log += buf;
}

/// "" for a whole-grid run, ".shard<i>of<n>" for a shard — shard runs
/// produce partial outputs and must never truncate a complete table a
/// previous full run left in the CWD.
inline std::string shard_suffix(const common::CliFlags& cli) {
  const auto [index, count] = core::parse_shard_spec(cli.get_string("shard"));
  if (count <= 1) return "";
  return ".shard" + std::to_string(index) + "of" + std::to_string(count);
}

/// CSV file next to the executable's working directory.
inline std::string csv_path(const common::CliFlags& cli,
                            const std::string& bench_name) {
  return bench_name + shard_suffix(cli) + ".csv";
}

/// Resolved --sweep-json path; empty string disables the summary. The
/// default path is shard-suffixed like the CSV; an explicit --sweep-json
/// is the user's choice and used verbatim.
inline std::string sweep_json_path(const common::CliFlags& cli,
                                   const std::string& bench_name) {
  const std::string& p = cli.get_string("sweep-json");
  if (p == "none") return "";
  return p.empty() ? bench_name + shard_suffix(cli) + "_sweep.json" : p;
}

/// Validate that the sweep JSON summary path is writable. Call BEFORE
/// the sweep runs: an unwritable CWD must fail before hours of compute,
/// not after (the benches likewise construct their CsvWriter up front
/// for the same reason).
inline void probe_sweep_json(const common::CliFlags& cli,
                             const std::string& bench_name) {
  const std::string path = sweep_json_path(cli, bench_name);
  if (path.empty()) return;
  // Append mode: tests writability without clobbering the previous
  // run's summary should this run die mid-sweep.
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw std::runtime_error("cannot open sweep summary path " + path);
  }
}

/// Write the sweep JSON summary (if enabled) and print where it went.
inline void emit_sweep_summary(const common::CliFlags& cli,
                               const std::string& bench_name,
                               const core::ResultTable& results) {
  const std::string path = sweep_json_path(cli, bench_name);
  if (path.empty()) return;
  results.write_json(path, bench_name);
  std::printf("[sweep] %zu scenarios in %.1f s at sweep-parallel=%d — "
              "JSON summary written to %s\n",
              results.size(), results.total_seconds(),
              results.sweep_parallel(), path.c_str());
}

/// Append the per-scenario CSV rows to an already-open writer, in
/// scenario order (byte-identical at any sweep parallelism).
inline void write_scenario_rows(common::CsvWriter& csv,
                                const core::ResultTable& results) {
  for (const core::ScenarioResult& r : results.rows()) {
    for (const auto& row : r.csv_rows) csv.row(row);
  }
}

/// Banner printed by every bench so logs are self-describing.
inline void banner(const std::string& name, const std::string& what) {
  std::printf("=== %s ===\n%s\n\n", name.c_str(), what.c_str());
}

inline void print_baseline(const core::Workload& w) {
  std::printf("[%s] baseline accuracy %.2f%% (train %d / test %d, T=%d)\n",
              core::dataset_name(w.kind), w.baseline_accuracy,
              w.data.train.size(), w.data.test.size(),
              w.data.train.time_steps());
}

/// First `n` samples of a dataset (vulnerability sweeps evaluate through
/// the bit-level engine, so a subset keeps runtimes reasonable; samples
/// are class-round-robin, so any prefix is balanced).
inline data::Dataset subset(const data::Dataset& ds, int n) {
  data::Dataset out(ds.name() + "-subset", ds.num_classes(),
                    ds.time_steps(), ds.channels(), ds.height(), ds.width());
  const int count = std::min(n, ds.size());
  for (int i = 0; i < count; ++i) out.add(ds[i]);
  return out;
}

inline const data::Dataset& EvalSets::of_locked(core::DatasetKind kind) {
  auto it = sets_.find(kind);
  if (it == sets_.end()) {
    const data::Dataset& test = ctx_.workload(kind).data.test;
    it = sets_.emplace(kind, subset(test, n_ > 0 ? n_ : test.size()))
             .first;
  }
  return it->second;
}

inline const data::Dataset& EvalSets::of(core::DatasetKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  return of_locked(kind);
}

inline const snn::EvalBatch& EvalSets::batch(core::DatasetKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = batches_.find(kind);
  if (it == batches_.end()) {
    it = batches_.emplace(kind, snn::make_eval_batch(of_locked(kind)))
             .first;
  }
  return it->second;
}

}  // namespace falvolt::bench
