#pragma once
// Shared plumbing for the figure-reproduction benches: workload loading
// (with on-disk baseline caching), result tables, and CSV output.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "core/fap.h"
#include "fault/fault_generator.h"

namespace falvolt::bench {

/// Standard flags shared by every figure bench.
inline void add_common_flags(common::CliFlags& cli) {
  cli.add_bool("fast", common::fast_mode(),
               "shrink datasets/epochs ~2x (also via FALVOLT_FAST=1)");
  cli.add_int("seed", 7, "workload seed");
  cli.add_int("repeats", 0, "fault maps per point (0 = bench default)");
  cli.add_int("array-size", 64,
              "systolic array dimension N (NxN). The paper uses 256x256 "
              "with ~128-channel networks (~50% column utilization); our "
              "CPU-scaled networks are ~16x narrower, so the default "
              "array is scaled to 64x64 to preserve utilization — see "
              "EXPERIMENTS.md");
  cli.add_int("threads", 0,
              "compute worker threads (0 = $FALVOLT_THREADS, else the "
              "hardware concurrency)");
}

/// The experiment array: paper-equivalent geometry at our network scale.
inline systolic::ArrayConfig experiment_array(const common::CliFlags& cli) {
  systolic::ArrayConfig array;
  array.rows = array.cols = static_cast<int>(cli.get_int("array-size"));
  return array;
}

inline core::WorkloadOptions workload_options(const common::CliFlags& cli) {
  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.threads = static_cast<int>(cli.get_int("threads"));
  return opts;
}

/// Banner printed by every bench so logs are self-describing.
inline void banner(const std::string& name, const std::string& what) {
  std::printf("=== %s ===\n%s\n\n", name.c_str(), what.c_str());
}

inline void print_baseline(const core::Workload& w) {
  std::printf("[%s] baseline accuracy %.2f%% (train %d / test %d, T=%d)\n",
              core::dataset_name(w.kind), w.baseline_accuracy,
              w.data.train.size(), w.data.test.size(),
              w.data.train.time_steps());
}

/// Restore a workload's network to its trained baseline parameters.
class BaselineKeeper {
 public:
  explicit BaselineKeeper(core::Workload& w)
      : net_(w.net), snapshot_(w.net.snapshot_params()) {}
  /// Reset weights AND thresholds to the trained baseline.
  void restore() {
    net_.restore_params(snapshot_);
    for (snn::Plif* p : net_.spiking_layers()) {
      p->set_train_vth(false);
    }
  }

 private:
  snn::Network& net_;
  std::vector<tensor::Tensor> snapshot_;
};

/// CSV file next to the executable's working directory.
inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

/// First `n` samples of a dataset (vulnerability sweeps evaluate through
/// the bit-level engine, so a subset keeps runtimes reasonable; samples
/// are class-round-robin, so any prefix is balanced).
inline data::Dataset subset(const data::Dataset& ds, int n) {
  data::Dataset out(ds.name() + "-subset", ds.num_classes(),
                    ds.time_steps(), ds.channels(), ds.height(), ds.width());
  const int count = std::min(n, ds.size());
  for (int i = 0; i < count; ++i) out.add(ds[i]);
  return out;
}

}  // namespace falvolt::bench
