#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace falvolt::common {
namespace {

TEST(Summarize, EmptyIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
  EXPECT_EQ(rs.count(), 1000u);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  for (int i = 0; i < 100; ++i) rs.add(1e9 + i % 2);
  EXPECT_NEAR(rs.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace falvolt::common
