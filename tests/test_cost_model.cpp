#include "systolic/cost_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "systolic/cycle_sim.h"
#include "tensor/tensor.h"

namespace falvolt::systolic {
namespace {

TEST(CostModel, BypassOverheadMatchesPaperClaim) {
  ArrayConfig cfg;
  const AreaReport r = estimate_area(cfg);
  EXPECT_NEAR(r.bypass_overhead_fraction, 0.08, 1e-9);
}

TEST(CostModel, SnnPeSmallerThanAnnMacArray) {
  ArrayConfig cfg;
  const AreaReport r = estimate_area(cfg);
  EXPECT_LT(r.array_area_mm2, r.ann_mac_array_area_mm2);
  // The adder-only PE should be several times cheaper.
  EXPECT_GT(r.ann_mac_array_area_mm2 / r.array_area_mm2, 2.0);
}

TEST(CostModel, AreaScalesWithArraySize) {
  ArrayConfig small;
  small.rows = small.cols = 16;
  ArrayConfig big;
  big.rows = big.cols = 256;
  const double ratio = estimate_area(big).array_area_mm2 /
                       estimate_area(small).array_area_mm2;
  EXPECT_NEAR(ratio, 256.0, 1e-6);
}

TEST(CostModel, GemmCyclesMatchCycleSimulator) {
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  const int m = 9, k = 11, n = 6;
  const GemmCost cost = estimate_gemm(cfg, m, k, n, 0.5);

  common::Rng rng(1);
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  tensor::Tensor w({k, n});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  SystolicArraySim sim(cfg, nullptr);
  CycleStats stats;
  sim.matmul(a, w, &stats);
  EXPECT_EQ(cost.cycles, stats.cycles);
  EXPECT_EQ(cost.tiles, stats.tiles);
}

TEST(CostModel, EnergyGrowsWithSpikeDensity) {
  ArrayConfig cfg;
  const GemmCost sparse = estimate_gemm(cfg, 64, 128, 32, 0.1);
  const GemmCost dense = estimate_gemm(cfg, 64, 128, 32, 0.9);
  EXPECT_GT(dense.energy_nj, sparse.energy_nj);
  EXPECT_EQ(dense.cycles, sparse.cycles);  // latency is density-agnostic
}

TEST(CostModel, UtilizationBounded) {
  ArrayConfig cfg;
  const GemmCost c = estimate_gemm(cfg, 64, 100, 16, 0.5);
  EXPECT_GE(c.utilization, 0.0);
  EXPECT_LE(c.utilization, 1.0);
}

TEST(CostModel, ReexecutionScalesLinearly) {
  ArrayConfig cfg;
  const GemmCost base = estimate_gemm(cfg, 64, 128, 32, 0.5);
  const GemmCost triple = estimate_reexecution(base, 3);
  EXPECT_EQ(triple.cycles, base.cycles * 3);
  EXPECT_DOUBLE_EQ(triple.energy_nj, base.energy_nj * 3);
  EXPECT_THROW(estimate_reexecution(base, 0), std::invalid_argument);
}

TEST(CostModel, Validation) {
  ArrayConfig cfg;
  EXPECT_THROW(estimate_gemm(cfg, 0, 1, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(estimate_gemm(cfg, 1, 1, 1, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::systolic
