#include "fault/weight_faults.h"

#include <gtest/gtest.h>

#include <cmath>

#include "snn/conv2d.h"
#include "snn/linear.h"
#include "tensor/tensor_ops.h"

namespace falvolt::fault {
namespace {

snn::Network tiny_net(std::uint64_t seed = 1) {
  common::Rng rng(seed);
  snn::Network net("t");
  net.emplace<snn::Conv2d>("Conv1", 1, 4, 3, 1, rng);
  net.emplace<snn::Linear>("FC1", 16, 8, rng);
  return net;
}

TEST(WeightBitFlips, ZeroProbabilityChangesNothing) {
  common::Rng rng(2);
  tensor::Tensor w({100});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const tensor::Tensor before = w;
  WeightBitFlipSpec spec;
  spec.flip_probability = 0.0;
  EXPECT_EQ(inject_weight_bit_flips(w, spec, rng), 0u);
  EXPECT_EQ(tensor::max_abs_diff(w, before), 0.0);
}

TEST(WeightBitFlips, FullProbabilityFlipsEveryWeight) {
  common::Rng rng(3);
  tensor::Tensor w({64});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  WeightBitFlipSpec spec;
  spec.flip_probability = 1.0;
  EXPECT_EQ(inject_weight_bit_flips(w, spec, rng), w.size());
}

TEST(WeightBitFlips, LsbFlipIsOneResolutionStep) {
  common::Rng rng(4);
  tensor::Tensor w({1}, {0.5f});
  WeightBitFlipSpec spec;
  spec.flip_probability = 1.0;
  spec.bit = 0;
  inject_weight_bit_flips(w, spec, rng);
  EXPECT_NEAR(std::fabs(w[0] - 0.5f), spec.format.resolution(), 1e-6);
}

TEST(WeightBitFlips, SignBitFlipIsLarge) {
  common::Rng rng(5);
  tensor::Tensor w({1}, {0.5f});
  WeightBitFlipSpec spec;
  spec.flip_probability = 1.0;
  spec.bit = 15;
  inject_weight_bit_flips(w, spec, rng);
  EXPECT_LT(w[0], -100.0f);  // 0.5 - 128 in Q8.8
}

TEST(WeightBitFlips, FlipRateMatchesProbability) {
  common::Rng rng(6);
  tensor::Tensor w({20000}, 0.25f);
  WeightBitFlipSpec spec;
  spec.flip_probability = 0.1;
  const std::size_t flipped = inject_weight_bit_flips(w, spec, rng);
  EXPECT_NEAR(static_cast<double>(flipped), 2000.0, 200.0);
}

TEST(WeightBitFlips, Validation) {
  common::Rng rng(7);
  tensor::Tensor w({4});
  WeightBitFlipSpec spec;
  spec.flip_probability = 1.5;
  EXPECT_THROW(inject_weight_bit_flips(w, spec, rng),
               std::invalid_argument);
  spec.flip_probability = 0.5;
  spec.bit = 16;  // outside Q8.8
  EXPECT_THROW(inject_weight_bit_flips(w, spec, rng),
               std::invalid_argument);
}

TEST(WeightBitFlips, NetworkInjectionTouchesAllLayers) {
  snn::Network net = tiny_net();
  common::Rng rng(8);
  const auto before0 = net.matmul_layers()[0]->weight_param().value;
  const auto before1 = net.matmul_layers()[1]->weight_param().value;
  WeightBitFlipSpec spec;
  spec.flip_probability = 1.0;
  const std::size_t flipped =
      inject_network_weight_faults(net, spec, rng);
  EXPECT_EQ(flipped, before0.size() + before1.size());
  EXPECT_GT(tensor::max_abs_diff(
                net.matmul_layers()[0]->weight_param().value, before0),
            0.0);
  EXPECT_GT(tensor::max_abs_diff(
                net.matmul_layers()[1]->weight_param().value, before1),
            0.0);
}

TEST(DeadSynapses, KillsRequestedFraction) {
  snn::Network net = tiny_net();
  common::Rng rng(9);
  std::size_t total = 0;
  for (auto* l : net.matmul_layers()) total += l->weight_param().size();
  const std::size_t killed = inject_dead_synapses(net, 0.5, rng);
  EXPECT_NEAR(static_cast<double>(killed), total * 0.5, total * 0.2);
  // Killed synapses are exactly zero.
  std::size_t zeros = 0;
  for (auto* l : net.matmul_layers()) {
    const auto& w = l->weight_param().value;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] == 0.0f) ++zeros;
    }
  }
  EXPECT_GE(zeros, killed);
}

TEST(DeadSynapses, FullDeathZeroesEverything) {
  snn::Network net = tiny_net();
  common::Rng rng(10);
  inject_dead_synapses(net, 1.0, rng);
  for (auto* l : net.matmul_layers()) {
    EXPECT_EQ(tensor::count_nonzero(l->weight_param().value), 0u);
  }
}

TEST(DeadSynapses, Validation) {
  snn::Network net = tiny_net();
  common::Rng rng(11);
  EXPECT_THROW(inject_dead_synapses(net, -0.1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::fault
