// Store usage statistics (store/stats.h): bytes and records charged per
// bench through manifest reachability, dedup of shared manifest
// references, the provenance epoch histogram over a MIXED-epoch store,
// and the stale/unreadable populations a prune would reclaim — the
// accounting sweep_merge --list prints.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/sweep.h"
#include "store/manifest.h"
#include "store/result_store.h"
#include "store/stats.h"

namespace fs = std::filesystem;

namespace falvolt::store {
namespace {

// Epoch probe exactly as sweep_merge --list wires it.
std::optional<std::uint32_t> epoch_of(const std::string& payload) {
  core::ScenarioResult r;
  if (!core::decode_scenario_result(payload, r)) return std::nullopt;
  return r.provenance.store_epoch;
}

std::string fp_of(char c) { return std::string(64, c); }

// A record whose provenance claims store epoch `epoch` — mixed-epoch
// stores arise when several build generations write into one store.
std::string record(const std::string& key, std::uint32_t epoch) {
  core::ScenarioResult r;
  r.scenario.key = key;
  r.metrics = {{"value", 1.0}};
  r.provenance.host = "host";
  r.provenance.version = "test";
  r.provenance.unix_time = 1;
  r.provenance.store_epoch = epoch;
  return core::encode_scenario_result(r);
}

class StoreStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_stats_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StoreStatsTest, ChargesBenchesThroughManifestsOverMixedEpochs) {
  LocalDirStore rs(dir_);
  // bench_a owns a, b (epochs 1 and 2); bench_b owns c (epoch 2) and
  // ALSO references b (deduplicated); d is unreferenced (epoch 1).
  rs.put(fp_of('a'), record("a=0", 1));
  rs.put(fp_of('b'), record("b=0", 2));
  rs.put(fp_of('c'), record("c=0", 2));
  rs.put(fp_of('d'), record("d=0", 1));
  Manifest ma;
  ma.bench = "bench_a";
  ma.entries = {{fp_of('a'), "a=0"}, {fp_of('b'), "b=0"}};
  write_manifest(rs, ma);
  Manifest mb;
  mb.bench = "bench_b";
  mb.entries = {{fp_of('c'), "c=0"}, {fp_of('b'), "b=0"}};
  write_manifest(rs, mb);

  const StoreStats stats = collect_store_stats(rs, epoch_of);
  EXPECT_EQ(stats.total_records, 4u);
  EXPECT_GT(stats.total_bytes, 0u);

  ASSERT_EQ(stats.benches.size(), 3u);
  EXPECT_EQ(stats.benches[0].bench, "bench_a");
  EXPECT_EQ(stats.benches[0].records, 2u);
  EXPECT_GT(stats.benches[0].bytes, 0u);
  EXPECT_EQ(stats.benches[1].bench, "bench_b");
  EXPECT_EQ(stats.benches[1].records, 1u);
  EXPECT_EQ(stats.benches[2].bench, "(unreferenced)");
  EXPECT_EQ(stats.benches[2].records, 1u);
  EXPECT_EQ(stats.deduplicated_refs, 1u);

  std::uint64_t charged = 0;
  for (const StoreStats::BenchUsage& b : stats.benches) charged += b.bytes;
  EXPECT_EQ(charged, stats.total_bytes)
      << "every byte is charged exactly once";

  // The epoch histogram comes from record provenance, not manifests.
  ASSERT_EQ(stats.epoch_histogram.size(), 2u);
  EXPECT_EQ(stats.epoch_histogram.at(1), 2u);
  EXPECT_EQ(stats.epoch_histogram.at(2), 2u);
  EXPECT_EQ(stats.stale_payloads, 0u);
  EXPECT_EQ(stats.unreadable_records, 0u);

  const std::string text = stats.to_text();
  EXPECT_NE(text.find("bench_a"), std::string::npos);
  EXPECT_NE(text.find("(unreferenced)"), std::string::npos);
  EXPECT_NE(text.find("epoch 1: 2 record(s)"), std::string::npos);
  EXPECT_NE(text.find("epoch 2: 2 record(s)"), std::string::npos);
}

TEST_F(StoreStatsTest, CountsStaleAndUnreadableRecords) {
  LocalDirStore rs(dir_);
  rs.put(fp_of('a'), record("a=0", 2));
  // Valid frame, foreign payload codec: readable but stale.
  rs.put(fp_of('b'), "not a scenario-result payload");
  // Frame damage: flip one payload byte on disk behind the checksum.
  rs.put(fp_of('c'), record("c=0", 2));
  {
    const std::string path = rs.object_path(fp_of('c'));
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(-1, std::ios::end);
    const char last = static_cast<char>(f.get());
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ '\x5a'));
  }

  const StoreStats stats = collect_store_stats(rs, epoch_of);
  EXPECT_EQ(stats.total_records, 3u);
  EXPECT_EQ(stats.epoch_histogram.at(2), 1u);
  EXPECT_EQ(stats.stale_payloads, 1u);
  EXPECT_EQ(stats.unreadable_records, 1u);
  const std::string text = stats.to_text();
  EXPECT_NE(text.find("1 stale-codec payload(s)"), std::string::npos);
  EXPECT_NE(text.find("1 unreadable record(s)"), std::string::npos);
}

TEST_F(StoreStatsTest, EmptyStoreYieldsZeroes) {
  LocalDirStore rs(dir_);
  const StoreStats stats = collect_store_stats(rs, epoch_of);
  EXPECT_EQ(stats.total_records, 0u);
  EXPECT_EQ(stats.total_bytes, 0u);
  EXPECT_TRUE(stats.benches.empty());
  EXPECT_TRUE(stats.epoch_histogram.empty());
}

}  // namespace
}  // namespace falvolt::store
