#include <gtest/gtest.h>

#include "snn/dropout.h"
#include "snn/flatten.h"
#include "snn/pooling.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::snn {
namespace {

using falvolt::testutil::random_tensor;

TEST(AvgPool, Averages2x2Windows) {
  AvgPool2d pool("p");
  pool.reset_state();
  tensor::Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const tensor::Tensor y = pool.forward(x, 0, Mode::kEval);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool, PreservesSpikeRateMass) {
  common::Rng rng(1);
  AvgPool2d pool("p");
  pool.reset_state();
  tensor::Tensor x = random_tensor({2, 3, 8, 8}, rng, 0.0, 1.0);
  const tensor::Tensor y = pool.forward(x, 0, Mode::kEval);
  EXPECT_NEAR(tensor::sum(y) * 4.0, tensor::sum(x), 1e-3);
}

TEST(AvgPool, BackwardDistributesEvenly) {
  AvgPool2d pool("p");
  pool.reset_state();
  tensor::Tensor x({1, 1, 2, 2});
  pool.forward(x, 0, Mode::kTrain);
  tensor::Tensor g({1, 1, 1, 1}, {8.0f});
  const tensor::Tensor gi = pool.backward(g, 0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gi[i], 2.0f);
}

TEST(AvgPool, IndivisibleSizeThrows) {
  AvgPool2d pool("p");
  pool.reset_state();
  EXPECT_THROW(pool.forward(tensor::Tensor({1, 1, 3, 4}), 0, Mode::kEval),
               std::invalid_argument);
  EXPECT_THROW(AvgPool2d("bad", 0), std::invalid_argument);
}

TEST(Dropout, EvalIsIdentity) {
  Dropout d("d", 0.5f, 42);
  d.reset_state();
  common::Rng rng(2);
  tensor::Tensor x = random_tensor({4, 8}, rng);
  const tensor::Tensor y = d.forward(x, 0, Mode::kEval);
  EXPECT_EQ(tensor::max_abs_diff(x, y), 0.0);
}

TEST(Dropout, TrainZerosSomeAndRescales) {
  Dropout d("d", 0.5f, 42);
  d.reset_state();
  tensor::Tensor x({1, 1000}, 1.0f);
  const tensor::Tensor y = d.forward(x, 0, Mode::kTrain);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(y[i] == 0.0f || y[i] == 2.0f);  // 1/(1-0.5) scaling
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 60.0);
}

TEST(Dropout, MaskSharedAcrossTimeSteps) {
  Dropout d("d", 0.5f, 7);
  d.reset_state();
  tensor::Tensor x({1, 64}, 1.0f);
  const tensor::Tensor y0 = d.forward(x, 0, Mode::kTrain);
  const tensor::Tensor y1 = d.forward(x, 1, Mode::kTrain);
  EXPECT_EQ(tensor::max_abs_diff(y0, y1), 0.0);
}

TEST(Dropout, NewMaskEachSequence) {
  Dropout d("d", 0.5f, 7);
  tensor::Tensor x({1, 256}, 1.0f);
  d.reset_state();
  const tensor::Tensor a = d.forward(x, 0, Mode::kTrain);
  d.reset_state();
  const tensor::Tensor b = d.forward(x, 0, Mode::kTrain);
  EXPECT_GT(tensor::max_abs_diff(a, b), 0.0);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d("d", 0.5f, 9);
  d.reset_state();
  tensor::Tensor x({1, 32}, 1.0f);
  const tensor::Tensor y = d.forward(x, 0, Mode::kTrain);
  tensor::Tensor g({1, 32}, 1.0f);
  const tensor::Tensor gi = d.backward(g, 0);
  EXPECT_EQ(tensor::max_abs_diff(y, gi), 0.0);  // same mask, same scale
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout("d", -0.1f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout("d", 1.0f, 1), std::invalid_argument);
}

TEST(Dropout, ZeroProbabilityIsIdentityInTrain) {
  Dropout d("d", 0.0f, 1);
  d.reset_state();
  common::Rng rng(3);
  tensor::Tensor x = random_tensor({2, 4}, rng);
  EXPECT_EQ(tensor::max_abs_diff(d.forward(x, 0, Mode::kTrain), x), 0.0);
}

TEST(Flatten, RoundTrip) {
  Flatten f("f");
  f.reset_state();
  common::Rng rng(4);
  tensor::Tensor x = random_tensor({2, 3, 4, 5}, rng);
  const tensor::Tensor y = f.forward(x, 0, Mode::kTrain);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  const tensor::Tensor back = f.backward(y, 0);
  EXPECT_EQ(back.shape(), x.shape());
  EXPECT_EQ(tensor::max_abs_diff(back, x), 0.0);
}

TEST(Flatten, RequiresRank4) {
  Flatten f("f");
  f.reset_state();
  EXPECT_THROW(f.forward(tensor::Tensor({2, 3}), 0, Mode::kEval),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::snn
