#include "core/retrain.h"

#include <gtest/gtest.h>

#include "core/fap.h"
#include "data/synthetic_mnist.h"
#include "fault/fault_generator.h"
#include "snn/model_zoo.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace falvolt::core {
namespace {

snn::ZooConfig tiny_zoo() {
  snn::ZooConfig z;
  z.channels = 8;
  z.fc_hidden = 32;
  return z;
}

struct Fixture {
  Fixture() {
    data::SyntheticMnistConfig dc;
    dc.train_size = 160;
    dc.test_size = 80;
    dc.time_steps = 4;
    split = data::make_synthetic_mnist(dc);
    net = snn::make_digit_classifier("d", 1, 16, 10, tiny_zoo());
    snn::Adam opt(2e-2);
    snn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 16;
    tc.eval_each_epoch = false;
    snn::Trainer trainer(net, opt, split.train, &split.test, tc);
    trainer.run();
    snapshot = net.snapshot_params();
    baseline = snn::evaluate(net, split.test);
  }
  snn::Network fresh_copy() {
    snn::Network n = snn::make_digit_classifier("d", 1, 16, 10, tiny_zoo());
    n.restore_params(snapshot);
    return n;
  }
  data::DatasetSplit split{data::Dataset("a", 1, 1, 1, 1, 1),
                           data::Dataset("b", 1, 1, 1, 1, 1)};
  snn::Network net;
  std::vector<tensor::Tensor> snapshot;
  double baseline = 0.0;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

MitigationConfig small_cfg(bool optimize_vth) {
  MitigationConfig cfg;
  cfg.array.rows = cfg.array.cols = 16;
  cfg.retrain_epochs = 4;
  cfg.batch_size = 16;
  cfg.optimize_vth = optimize_vth;
  return cfg;
}

TEST(Retrain, ImprovesOverFap) {
  Fixture& f = fixture();
  common::Rng rng(1);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);

  snn::Network fap_net = f.fresh_copy();
  const MitigationResult fap = run_fap(fap_net, map, f.split.test);

  snn::Network re_net = f.fresh_copy();
  const MitigationResult re = run_fault_aware_retraining(
      re_net, map, f.split.train, f.split.test, small_cfg(false), "FaPIT");
  EXPECT_GE(re.final_accuracy, fap.final_accuracy);
  EXPECT_EQ(re.curve.size(), 4u);
  // Retraining starts from the pruned state.
  EXPECT_NEAR(re.pruned_accuracy, fap.final_accuracy, 1e-9);
}

TEST(Retrain, PrunedWeightsStayZeroAfterRetraining) {
  Fixture& f = fixture();
  common::Rng rng(2);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  run_fault_aware_retraining(net, map, f.split.train, f.split.test,
                             small_cfg(true), "FalVolt");
  fault::NetworkPruner pruner(net, map);
  EXPECT_TRUE(pruner.is_pruned(net));
}

TEST(Retrain, VthMovesOnlyWhenOptimized) {
  Fixture& f = fixture();
  common::Rng rng(3);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);

  snn::Network frozen = f.fresh_copy();
  const MitigationResult fapit = run_fault_aware_retraining(
      frozen, map, f.split.train, f.split.test, small_cfg(false), "FaPIT");
  for (const auto& v : fapit.vth_per_layer) {
    EXPECT_FLOAT_EQ(v.vth, 1.0f);  // frozen at the configured value
  }

  snn::Network learned = f.fresh_copy();
  const MitigationResult falvolt = run_fault_aware_retraining(
      learned, map, f.split.train, f.split.test, small_cfg(true), "FalVolt");
  bool any_moved = false;
  for (const auto& v : falvolt.vth_per_layer) {
    if (std::abs(v.vth - 1.0f) > 1e-4f) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(Retrain, RetrainVthInitializesAllHiddenLayers) {
  Fixture& f = fixture();
  common::Rng rng(4);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.1, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  MitigationConfig cfg = small_cfg(false);
  cfg.retrain_epochs = 0;  // only the initialization runs
  cfg.retrain_vth = 0.6f;
  const MitigationResult r = run_fault_aware_retraining(
      net, map, f.split.train, f.split.test, cfg, "init-check");
  for (const auto& v : r.vth_per_layer) {
    EXPECT_FLOAT_EQ(v.vth, 0.6f);
  }
}

TEST(Retrain, ZeroEpochsEqualsFap) {
  // The paper: "setting the re-training epochs to zero makes FalVolt
  // equivalent to simple fault-aware pruning".
  Fixture& f = fixture();
  common::Rng rng(5);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  snn::Network fap_net = f.fresh_copy();
  const MitigationResult fap = run_fap(fap_net, map, f.split.test);
  snn::Network re_net = f.fresh_copy();
  MitigationConfig cfg = small_cfg(true);
  cfg.retrain_epochs = 0;
  cfg.retrain_vth = 1.0f;  // keep inference-equivalent thresholds
  const MitigationResult re = run_fault_aware_retraining(
      re_net, map, f.split.train, f.split.test, cfg, "FalVolt-0");
  EXPECT_DOUBLE_EQ(re.final_accuracy, fap.final_accuracy);
}

TEST(Retrain, NetworkLeftInInferenceState) {
  Fixture& f = fixture();
  common::Rng rng(6);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.1, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  run_fault_aware_retraining(net, map, f.split.train, f.split.test,
                             small_cfg(true), "FalVolt");
  for (snn::Plif* p : net.spiking_layers()) {
    EXPECT_FALSE(p->train_vth());
  }
}

TEST(MitigationResult, EpochsToReach) {
  MitigationResult r;
  snn::EpochStats e;
  e.test_accuracy = 50.0;
  r.curve.push_back(e);
  e.test_accuracy = 80.0;
  r.curve.push_back(e);
  e.test_accuracy = 95.0;
  r.curve.push_back(e);
  EXPECT_EQ(r.epochs_to_reach(75.0), 2);
  EXPECT_EQ(r.epochs_to_reach(95.0), 3);
  EXPECT_EQ(r.epochs_to_reach(99.0), -1);
  EXPECT_EQ(r.epochs_to_reach(10.0), 1);
}

}  // namespace
}  // namespace falvolt::core
