#include "systolic/mapping.h"

#include <gtest/gtest.h>

namespace falvolt::systolic {
namespace {

TEST(Mapping, FoldsOverBothDimensions) {
  ArrayConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  EXPECT_EQ(pe_for_weight(0, 0, cfg), (PeCoord{0, 0}));
  EXPECT_EQ(pe_for_weight(5, 2, cfg), (PeCoord{1, 2}));
  EXPECT_EQ(pe_for_weight(4, 4, cfg), (PeCoord{0, 0}));
  EXPECT_EQ(pe_for_weight(15, 9, cfg), (PeCoord{3, 1}));
}

TEST(Mapping, NegativeIndexThrows) {
  ArrayConfig cfg;
  EXPECT_THROW(pe_for_weight(-1, 0, cfg), std::invalid_argument);
}

TEST(Mapping, WeightsOnPeCountsFolds) {
  ArrayConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  // K=10, M=6: PE row 0 holds k in {0,4,8} (3 folds); PE col 0 holds
  // m in {0,4} (2 folds) -> 6 weights.
  EXPECT_EQ(weights_on_pe(10, 6, {0, 0}, cfg), 6);
  // PE row 2 holds k in {2,6}; col 5 does not exist for M=6? col index 1
  // holds m in {1,5}.
  EXPECT_EQ(weights_on_pe(10, 6, {2, 1}, cfg), 4);
  // A PE beyond both extents holds nothing.
  EXPECT_EQ(weights_on_pe(2, 2, {3, 3}, cfg), 0);
}

TEST(Mapping, SmallerArrayMeansMoreWeightsPerPe) {
  // The Fig. 5c mechanism: folding increases with smaller arrays.
  const int k = 64, m = 32;
  ArrayConfig small;
  small.rows = small.cols = 4;
  ArrayConfig big;
  big.rows = big.cols = 32;
  EXPECT_GT(weights_on_pe(k, m, {0, 0}, small),
            weights_on_pe(k, m, {0, 0}, big));
  EXPECT_EQ(weights_on_pe(k, m, {0, 0}, small), 16 * 8);
  EXPECT_EQ(weights_on_pe(k, m, {0, 0}, big), 2 * 1);
}

TEST(Mapping, PaddedKRoundsUpToWholeColumns) {
  ArrayConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  EXPECT_EQ(padded_k(1, cfg), 8);
  EXPECT_EQ(padded_k(8, cfg), 8);
  EXPECT_EQ(padded_k(9, cfg), 16);
  EXPECT_THROW(padded_k(0, cfg), std::invalid_argument);
}

TEST(Mapping, OutOfRangePeThrows) {
  ArrayConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  EXPECT_THROW(weights_on_pe(8, 8, {4, 0}, cfg), std::invalid_argument);
}

TEST(Mapping, ConfigToString) {
  ArrayConfig cfg;
  EXPECT_EQ(cfg.to_string(), "256x256 Q7.8 (16-bit)");
  EXPECT_EQ(cfg.total_pes(), 65536);
}

}  // namespace
}  // namespace falvolt::systolic
