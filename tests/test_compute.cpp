// Tests for the unified compute backend: thread pool semantics, blocked
// kernel correctness against the naive reference, the determinism
// regression (parallel output bit-identical to single-thread output for
// every kernel and for the faulty systolic engine), and EngineRegistry
// dispatch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "compute/engine_registry.h"
#include "compute/gemm_kernels.h"
#include "compute/thread_pool.h"
#include "fault/fault_generator.h"
#include "systolic/faulty_gemm.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::compute {
namespace {

using falvolt::testutil::random_tensor;

tensor::Tensor random_spikes(int m, int k, common::Rng& rng, double p = 0.4) {
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return a;
}

void expect_bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, 257, 1, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.parallel_for(0, 100, 1, [&](int lo, int hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 100);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, 1, [&](int, int) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, 1, [&](int lo, int hi) {
    pool.parallel_for(lo, hi, 1,
                      [&](int l, int h) { total += h - l; });
  });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> total{0};
    pool.parallel_for(0, 64, 1, [&](int lo, int hi) { total += hi - lo; });
    ASSERT_EQ(total.load(), 64);
  }
}

TEST(ThreadPool, GlobalPoolResize) {
  const int before = global_threads();
  set_global_threads(2);
  EXPECT_EQ(global_threads(), 2);
  set_global_threads(0);  // restore the default sizing
  EXPECT_EQ(global_threads(), default_threads());
  set_global_threads(before);
}

// --------------------------------------------------- kernel correctness

// Double-accumulated reference.
void ref_gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class BlockedShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedShapes, BlockedMatchesReference) {
  const auto [m, k, n] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 10 + n));
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor c({m, n});
  tensor::Tensor ref({m, n});
  gemm_blocked(a.data(), b.data(), c.data(), m, k, n);
  ref_gemm(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 2e-3f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{7, 5, 3},
                      std::tuple{8, 8, 8}, std::tuple{9, 17, 9},
                      std::tuple{33, 70, 23}, std::tuple{64, 300, 40},
                      std::tuple{100, 64, 100}));

TEST(BlockedGemm, AccumulateAddsIntoC) {
  common::Rng rng(11);
  const int m = 12, k = 20, n = 12;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor c({m, n}, 1.0f);
  tensor::Tensor once({m, n});
  gemm_blocked(a.data(), b.data(), once.data(), m, k, n);
  gemm_blocked(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/true);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], once[i] + 1.0f, 1e-5f);
  }
}

TEST(BlockedGemm, AtBMatchesNaive) {
  common::Rng rng(12);
  const int k = 37, m = 21, n = 18;
  tensor::Tensor a = random_tensor({k, m}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor c({m, n});
  tensor::Tensor ref({m, n});
  gemm_at_b_blocked(a.data(), b.data(), c.data(), k, m, n);
  gemm_at_b_naive(a.data(), b.data(), ref.data(), k, m, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST(BlockedGemm, ABtMatchesNaive) {
  common::Rng rng(13);
  const int m = 19, k = 41, n = 17;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({n, k}, rng);
  tensor::Tensor c({m, n});
  tensor::Tensor ref({m, n});
  gemm_a_bt_blocked(a.data(), b.data(), c.data(), m, k, n);
  gemm_a_bt_naive(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-4f);
  }
}

// ------------------------------------------------ determinism regression
//
// The library's core reproducibility guarantee: for a fixed seed, the
// parallel kernels and engines produce output BIT-IDENTICAL to their
// single-thread runs, so experiment results never depend on --threads.

class ThreadScope {
 public:
  explicit ThreadScope(int threads) : saved_(global_threads()) {
    set_global_threads(threads);
  }
  ~ThreadScope() { set_global_threads(saved_); }

 private:
  int saved_;
};

TEST(Determinism, BlockedGemmParallelBitIdentical) {
  ThreadScope scope(4);
  common::Rng rng(21);
  const int m = 83, k = 150, n = 37;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor serial({m, n});
  tensor::Tensor parallel({m, n});
  gemm_blocked(a.data(), b.data(), serial.data(), m, k, n, false, 1);
  gemm_blocked(a.data(), b.data(), parallel.data(), m, k, n, false, 4);
  expect_bit_identical(serial, parallel);
}

TEST(Determinism, NaiveGemmParallelBitIdentical) {
  // The auto dispatcher row-partitions the naive kernel for sparse spike
  // inputs; partitioning must not change any row.
  ThreadScope scope(4);
  common::Rng rng(22);
  const int m = 140, k = 90, n = 30;
  tensor::Tensor a = random_spikes(m, k, rng, 0.1);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor serial({m, n});
  gemm_naive(a.data(), b.data(), serial.data(), m, k, n);
  tensor::Tensor parallel({m, n});
  gemm_auto(a.data(), b.data(), parallel.data(), m, k, n);
  expect_bit_identical(serial, parallel);
}

TEST(Determinism, AtBParallelBitIdentical) {
  ThreadScope scope(4);
  common::Rng rng(23);
  const int k = 120, m = 64, n = 33;
  tensor::Tensor a = random_tensor({k, m}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor serial({m, n});
  tensor::Tensor parallel({m, n});
  gemm_at_b_blocked(a.data(), b.data(), serial.data(), k, m, n, false, 1);
  gemm_at_b_blocked(a.data(), b.data(), parallel.data(), k, m, n, false, 4);
  expect_bit_identical(serial, parallel);
}

TEST(Determinism, ABtParallelBitIdentical) {
  ThreadScope scope(4);
  common::Rng rng(24);
  const int m = 90, k = 75, n = 41;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({n, k}, rng);
  tensor::Tensor serial({m, n});
  tensor::Tensor parallel({m, n});
  gemm_a_bt_blocked(a.data(), b.data(), serial.data(), m, k, n, false, 1);
  gemm_a_bt_blocked(a.data(), b.data(), parallel.data(), m, k, n, false, 4);
  expect_bit_identical(serial, parallel);
}

TEST(Determinism, TensorWrappersBitIdenticalAcrossThreadCounts) {
  // The public tensor:: entry points, evaluated under different global
  // pool sizes, must agree bit-for-bit.
  common::Rng rng(25);
  const int m = 96, k = 110, n = 48;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor b = random_tensor({k, n}, rng);
  tensor::Tensor c1({m, n});
  tensor::Tensor c4({m, n});
  {
    ThreadScope scope(1);
    tensor::gemm(a.data(), b.data(), c1.data(), m, k, n);
  }
  {
    ThreadScope scope(4);
    tensor::gemm(a.data(), b.data(), c4.data(), m, k, n);
  }
  expect_bit_identical(c1, c4);
}

class EngineDeterminism
    : public ::testing::TestWithParam<
          systolic::SystolicGemmEngine::FaultHandling> {};

TEST_P(EngineDeterminism, SystolicEngineParallelBitIdentical) {
  const auto handling = GetParam();
  common::Rng rng(26);
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const fault::FaultMap map = fault::random_fault_map(
      8, 8, 12, fault::worst_case_spec(cfg.format.total_bits()), rng);
  const int m = 64, k = 20, n = 13;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);

  systolic::SystolicGemmEngine serial(cfg, &map, handling);
  serial.set_threads(1);
  tensor::Tensor c_serial({m, n});
  serial.run(a.data(), w.data(), c_serial.data(), m, k, n, "L");

  ThreadScope scope(4);
  systolic::SystolicGemmEngine parallel(cfg, &map, handling);
  tensor::Tensor c_parallel({m, n});
  parallel.run(a.data(), w.data(), c_parallel.data(), m, k, n, "L");

  expect_bit_identical(c_serial, c_parallel);
  // Telemetry is scheduling-independent too: both runs execute the same
  // accumulate steps.
  EXPECT_EQ(serial.accumulate_steps(), parallel.accumulate_steps());
}

INSTANTIATE_TEST_SUITE_P(
    Handling, EngineDeterminism,
    ::testing::Values(
        systolic::SystolicGemmEngine::FaultHandling::kCorrupt,
        systolic::SystolicGemmEngine::FaultHandling::kBypass));

// --------------------------------------------------------- EngineRegistry

TEST(EngineRegistry, ResolvesAllBuiltinEngines) {
  auto& reg = EngineRegistry::instance();
  for (const char* name : {"naive", "blocked", "parallel", "systolic"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_NE(reg.create(name), nullptr) << name;
  }
}

TEST(EngineRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    EngineRegistry::instance().create("gpu");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("blocked"), std::string::npos);
  }
}

TEST(EngineRegistry, FloatEnginesAgreeWithinTolerance) {
  common::Rng rng(31);
  const int m = 40, k = 64, n = 24;
  tensor::Tensor a = random_tensor({m, k}, rng);
  tensor::Tensor w = random_tensor({k, n}, rng);
  auto& reg = EngineRegistry::instance();
  tensor::Tensor ref({m, n});
  reg.create("naive")->run(a.data(), w.data(), ref.data(), m, k, n, "L");
  for (const char* name : {"blocked", "parallel"}) {
    tensor::Tensor c({m, n});
    reg.create(name)->run(a.data(), w.data(), c.data(), m, k, n, "L");
    EXPECT_LT(tensor::max_abs_diff(c, ref), 1e-3) << name;
  }
}

TEST(EngineRegistry, SystolicEngineHonorsOptions) {
  common::Rng rng(32);
  EngineOptions opts;
  opts.array_rows = 4;
  opts.array_cols = 4;
  const fault::FaultMap map =
      fault::random_fault_map(4, 4, 3, fault::worst_case_spec(16), rng);
  opts.fault_map = &map;
  opts.bypass_faulty = true;
  auto engine = EngineRegistry::instance().create("systolic", opts);
  auto* sys = dynamic_cast<systolic::SystolicGemmEngine*>(engine.get());
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->config().rows, 4);
  EXPECT_EQ(sys->handling(),
            systolic::SystolicGemmEngine::FaultHandling::kBypass);
}

TEST(EngineRegistry, CustomFactoryRegistersAndOverrides) {
  auto& reg = EngineRegistry::instance();
  reg.register_factory("custom-test", [](const EngineOptions&) {
    return std::make_unique<NaiveGemmEngine>();
  });
  EXPECT_TRUE(reg.contains("custom-test"));
  EXPECT_NE(reg.create("custom-test"), nullptr);
}

}  // namespace
}  // namespace falvolt::compute
