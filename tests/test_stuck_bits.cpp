#include "fixed/stuck_bits.h"

#include <gtest/gtest.h>

namespace falvolt::fx {
namespace {

TEST(StuckBits, DefaultIsClean) {
  StuckBits b;
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0);
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(b.apply(1234, f), 1234);
}

TEST(StuckBits, Sa1ForcesBitOn) {
  StuckBits b;
  b.set(3, StuckType::kStuckAt1);
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(b.apply(0, f), 8);
  EXPECT_EQ(b.apply(8, f), 8);
  EXPECT_EQ(b.apply(1, f), 9);
}

TEST(StuckBits, Sa0ForcesBitOff) {
  StuckBits b;
  b.set(0, StuckType::kStuckAt0);
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(b.apply(1, f), 0);
  EXPECT_EQ(b.apply(3, f), 2);
  EXPECT_EQ(b.apply(2, f), 2);
}

TEST(StuckBits, MsbSa1MakesValueNegative) {
  // The paper's worst case: stuck-at-1 in the sign bit.
  StuckBits b;
  b.set(15, StuckType::kStuckAt1);
  const FixedFormat f = FixedFormat::q8_8();
  const std::int32_t corrupted = b.apply(100, f);
  EXPECT_LT(corrupted, 0);
  EXPECT_EQ(corrupted, 100 - 32768);
}

TEST(StuckBits, MsbSa0ClampsNegativeToPositive) {
  StuckBits b;
  b.set(15, StuckType::kStuckAt0);
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(b.apply(-1, f), 32767);
  EXPECT_GE(b.apply(-32768, f), 0);
}

TEST(StuckBits, ApplyIsIdempotent) {
  StuckBits b;
  b.set(15, StuckType::kStuckAt1);
  b.set(2, StuckType::kStuckAt0);
  const FixedFormat f = FixedFormat::q8_8();
  for (std::int32_t v : {-32768, -1000, -1, 0, 1, 77, 32767}) {
    const std::int32_t once = b.apply(v, f);
    EXPECT_EQ(b.apply(once, f), once) << v;
  }
}

TEST(StuckBits, ConflictingLevelsThrow) {
  StuckBits b;
  b.set(4, StuckType::kStuckAt0);
  EXPECT_THROW(b.set(4, StuckType::kStuckAt1), std::invalid_argument);
}

TEST(StuckBits, OutOfRangeBitThrows) {
  StuckBits b;
  EXPECT_THROW(b.set(-1, StuckType::kStuckAt0), std::invalid_argument);
  EXPECT_THROW(b.set(32, StuckType::kStuckAt1), std::invalid_argument);
}

TEST(StuckBits, ClearRemovesFault) {
  StuckBits b;
  b.set(5, StuckType::kStuckAt1);
  EXPECT_TRUE(b.is_stuck(5));
  b.clear(5);
  EXPECT_FALSE(b.is_stuck(5));
  EXPECT_TRUE(b.none());
}

TEST(StuckBits, CountTallriesBothTypes) {
  StuckBits b;
  b.set(0, StuckType::kStuckAt0);
  b.set(1, StuckType::kStuckAt1);
  b.set(9, StuckType::kStuckAt1);
  EXPECT_EQ(b.count(), 3);
}

TEST(StuckBits, MasksOutsideWordAreIgnored) {
  // A 32-bit mask applied to a 16-bit register must not touch the
  // canonical (sign-extended) high bits.
  StuckBits b;
  b.set(20, StuckType::kStuckAt1);
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(b.apply(100, f), 100);
  EXPECT_EQ(b.apply(-100, f), -100);
}

TEST(StuckBits, ToStringListsFaults) {
  StuckBits b;
  b.set(15, StuckType::kStuckAt1);
  b.set(3, StuckType::kStuckAt0);
  EXPECT_EQ(b.to_string(), "sa1@15,sa0@3");
  EXPECT_EQ(StuckBits{}.to_string(), "none");
}

// Property over all bit positions: corruption error magnitude of a single
// stuck bit is bounded by the bit weight.
class BitSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitSweep, ErrorBoundedByBitWeight) {
  const int bit = GetParam();
  const FixedFormat f = FixedFormat::q8_8();
  for (const StuckType type :
       {StuckType::kStuckAt0, StuckType::kStuckAt1}) {
    StuckBits b;
    b.set(bit, type);
    for (std::int32_t v : {-20000, -3000, -1, 0, 1, 42, 9999, 32767}) {
      const std::int64_t err =
          static_cast<std::int64_t>(b.apply(v, f)) - v;
      // Flipping one bit of a two's-complement word changes it by
      // exactly 0 or +/- 2^bit (sign bit flips look like -2^15 offset).
      EXPECT_LE(std::abs(err), std::int64_t{1} << 15) << bit << " " << v;
      const std::int64_t weight = std::int64_t{1} << bit;
      EXPECT_TRUE(err == 0 || err == weight || err == -weight)
          << "bit=" << bit << " v=" << v << " err=" << err;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, BitSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace falvolt::fx
