#include "core/fap.h"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.h"
#include "fault/fault_generator.h"
#include "snn/model_zoo.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace falvolt::core {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticMnistConfig dc;
    dc.train_size = 160;
    dc.test_size = 80;
    dc.time_steps = 4;
    split = data::make_synthetic_mnist(dc);
    snn::ZooConfig zc;
    zc.channels = 8;
    zc.fc_hidden = 32;
    net = snn::make_digit_classifier("d", 1, 16, 10, zc);
    snn::Adam opt(2e-2);
    snn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 16;
    tc.eval_each_epoch = false;
    snn::Trainer trainer(net, opt, split.train, &split.test, tc);
    trainer.run();
    baseline = snn::evaluate(net, split.test);
  }
  data::DatasetSplit split{data::Dataset("a", 1, 1, 1, 1, 1),
                           data::Dataset("b", 1, 1, 1, 1, 1)};
  snn::Network net;
  double baseline = 0.0;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Fap, ZeroFaultsKeepsAccuracy) {
  Fixture& f = fixture();
  snn::Network net = snn::make_digit_classifier("d", 1, 16, 10,
                                                [] {
                                                  snn::ZooConfig z;
                                                  z.channels = 8;
                                                  z.fc_hidden = 32;
                                                  return z;
                                                }());
  net.restore_params(f.net.snapshot_params());
  fault::FaultMap clean(16, 16);
  const MitigationResult r = run_fap(net, clean, f.split.test);
  EXPECT_EQ(r.method, "FaP");
  EXPECT_DOUBLE_EQ(r.final_accuracy, f.baseline);
  for (const auto& rep : r.prune_report) {
    EXPECT_EQ(rep.pruned_weights, 0u);
  }
}

TEST(Fap, HighFaultRateDegradesAccuracy) {
  Fixture& f = fixture();
  snn::Network net = snn::make_digit_classifier("d", 1, 16, 10,
                                                [] {
                                                  snn::ZooConfig z;
                                                  z.channels = 8;
                                                  z.fc_hidden = 32;
                                                  return z;
                                                }());
  net.restore_params(f.net.snapshot_params());
  common::Rng rng(1);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.6, fault::worst_case_spec(16), rng);
  const MitigationResult r = run_fap(net, map, f.split.test);
  EXPECT_LT(r.final_accuracy, f.baseline - 5.0);
  // FaP never retrains: pruned == final, curve empty.
  EXPECT_DOUBLE_EQ(r.pruned_accuracy, r.final_accuracy);
  EXPECT_TRUE(r.curve.empty());
}

TEST(Fap, PruneReportNonEmpty) {
  Fixture& f = fixture();
  snn::Network net = snn::make_digit_classifier("d", 1, 16, 10,
                                                [] {
                                                  snn::ZooConfig z;
                                                  z.channels = 8;
                                                  z.fc_hidden = 32;
                                                  return z;
                                                }());
  net.restore_params(f.net.snapshot_params());
  common::Rng rng(2);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  const MitigationResult r = run_fap(net, map, f.split.test);
  ASSERT_EQ(r.prune_report.size(), 5u);  // 5 matmul layers
  std::size_t total = 0;
  for (const auto& rep : r.prune_report) total += rep.pruned_weights;
  EXPECT_GT(total, 0u);
  // ~30% of PEs faulty -> roughly 30% of weights pruned in large layers.
  EXPECT_NEAR(r.prune_report[1].pruned_fraction(), 0.3, 0.15);
}

TEST(Fap, VthReportedAtTrainingDefault) {
  Fixture& f = fixture();
  snn::Network net = snn::make_digit_classifier("d", 1, 16, 10,
                                                [] {
                                                  snn::ZooConfig z;
                                                  z.channels = 8;
                                                  z.fc_hidden = 32;
                                                  return z;
                                                }());
  net.restore_params(f.net.snapshot_params());
  fault::FaultMap clean(16, 16);
  const MitigationResult r = run_fap(net, clean, f.split.test);
  ASSERT_EQ(r.vth_per_layer.size(), 4u);
  for (const auto& v : r.vth_per_layer) {
    EXPECT_FLOAT_EQ(v.vth, 1.0f);
  }
}

}  // namespace
}  // namespace falvolt::core
