#include "common/cli.h"

#include <gtest/gtest.h>

namespace falvolt::common {
namespace {

CliFlags make_flags() {
  CliFlags cli("prog");
  cli.add_int("epochs", 8, "epochs");
  cli.add_double("lr", 1e-3, "learning rate");
  cli.add_string("dataset", "mnist", "dataset name");
  cli.add_bool("fast", false, "fast mode");
  return cli;
}

TEST(Cli, Defaults) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("epochs"), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 1e-3);
  EXPECT_EQ(cli.get_string("dataset"), "mnist");
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs", "12", "--lr", "0.01"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("epochs"), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.01);
}

TEST(Cli, EqualsForm) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--dataset=dvs", "--epochs=3"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("dataset"), "dvs");
  EXPECT_EQ(cli.get_int("epochs"), 3);
}

TEST(Cli, BoolSwitchWithoutValue) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, BoolExplicitValue) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast=false"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MalformedNumberThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueBeforeAnotherFlagThrows) {
  // `--dataset --fast` must not swallow --fast as the dataset value.
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--dataset", "--fast"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, TypeMismatchOnGetThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get_int("dataset"), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("lr"), std::invalid_argument);
  EXPECT_THROW(cli.get_int("not-registered"), std::invalid_argument);
}

TEST(Cli, BoolTwoTokenForm) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast", "false"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("fast"));

  CliFlags cli2 = make_flags();
  const char* argv2[] = {"prog", "--fast", "true"};
  EXPECT_TRUE(cli2.parse(3, argv2));
  EXPECT_TRUE(cli2.get_bool("fast"));
}

TEST(Cli, BoolSwitchStillComposesWithFollowingFlags) {
  // A following token that is not true/false must NOT be consumed.
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast", "--epochs", "3"};
  EXPECT_TRUE(cli.parse(4, argv));
  EXPECT_TRUE(cli.get_bool("fast"));
  EXPECT_EQ(cli.get_int("epochs"), 3);
}

TEST(Cli, UsageReportsRegisteredDefaultAfterParse) {
  // parse() mutates Flag::value; usage() must keep showing the default.
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs", "12", "--fast"};
  EXPECT_TRUE(cli.parse(4, argv));
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--epochs (default 8)"), std::string::npos) << u;
  EXPECT_NE(u.find("--fast (default false)"), std::string::npos) << u;
  // The parsed values are still what get_* returns.
  EXPECT_EQ(cli.get_int("epochs"), 12);
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, DoubleDefaultRoundTripsExactly) {
  // The default ostringstream precision (6 significant digits) used to
  // truncate registered defaults like these.
  const double values[] = {0.1234567890123456, 1e-7, 2.0 / 3.0, 1e-3};
  for (const double v : values) {
    CliFlags cli("prog");
    cli.add_double("x", v, "value");
    const char* argv[] = {"prog"};
    EXPECT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.get_double("x"), v);
  }
}

TEST(Cli, UsageListsFlags) {
  CliFlags cli = make_flags();
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--epochs"), std::string::npos);
  EXPECT_NE(u.find("--fast"), std::string::npos);
}

}  // namespace
}  // namespace falvolt::common
