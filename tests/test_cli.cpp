#include "common/cli.h"

#include <gtest/gtest.h>

namespace falvolt::common {
namespace {

CliFlags make_flags() {
  CliFlags cli("prog");
  cli.add_int("epochs", 8, "epochs");
  cli.add_double("lr", 1e-3, "learning rate");
  cli.add_string("dataset", "mnist", "dataset name");
  cli.add_bool("fast", false, "fast mode");
  return cli;
}

TEST(Cli, Defaults) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("epochs"), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 1e-3);
  EXPECT_EQ(cli.get_string("dataset"), "mnist");
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs", "12", "--lr", "0.01"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("epochs"), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.01);
}

TEST(Cli, EqualsForm) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--dataset=dvs", "--epochs=3"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("dataset"), "dvs");
  EXPECT_EQ(cli.get_int("epochs"), 3);
}

TEST(Cli, BoolSwitchWithoutValue) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, BoolExplicitValue) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--fast=false"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MalformedNumberThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--epochs"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, TypeMismatchOnGetThrows) {
  CliFlags cli = make_flags();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get_int("dataset"), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("lr"), std::invalid_argument);
  EXPECT_THROW(cli.get_int("not-registered"), std::invalid_argument);
}

TEST(Cli, UsageListsFlags) {
  CliFlags cli = make_flags();
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--epochs"), std::string::npos);
  EXPECT_NE(u.find("--fast"), std::string::npos);
}

}  // namespace
}  // namespace falvolt::common
