#include "snn/conv2d.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::snn {
namespace {

using falvolt::testutil::analytic_grads;
using falvolt::testutil::numeric_grad;
using falvolt::testutil::random_tensor;

TEST(Conv2d, OutputShapeSamePadding) {
  common::Rng rng(1);
  Conv2d conv("c", 2, 4, 3, 1, rng);
  conv.reset_state();
  tensor::Tensor x = random_tensor({3, 2, 8, 8}, rng);
  const tensor::Tensor y = conv.forward(x, 0, Mode::kEval);
  EXPECT_EQ(y.shape(), (tensor::Shape{3, 4, 8, 8}));
}

TEST(Conv2d, GemmDimensionsExposed) {
  common::Rng rng(2);
  Conv2d conv("c", 2, 4, 3, 1, rng);
  EXPECT_EQ(conv.gemm_k(), 18);  // 2 * 3 * 3
  EXPECT_EQ(conv.gemm_m(), 4);
  EXPECT_EQ(conv.weight_param().value.shape(), (tensor::Shape{18, 4}));
}

TEST(Conv2d, KnownConvolutionResult) {
  common::Rng rng(3);
  Conv2d conv("c", 1, 1, 3, 1, rng, /*bias=*/false);
  // Identity kernel: only the center tap is 1.
  conv.weight_param().value.zero();
  conv.weight_param().value.at2(4, 0) = 1.0f;
  conv.reset_state();
  tensor::Tensor x = random_tensor({1, 1, 5, 5}, rng);
  const tensor::Tensor y = conv.forward(x, 0, Mode::kEval);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, BiasAdds) {
  common::Rng rng(4);
  Conv2d conv("c", 1, 2, 1, 0, rng);
  conv.weight_param().value.zero();
  auto params = conv.params();
  ASSERT_EQ(params.size(), 2u);
  params[1]->value[0] = 1.5f;
  params[1]->value[1] = -0.5f;
  conv.reset_state();
  tensor::Tensor x({1, 1, 2, 2});
  const tensor::Tensor y = conv.forward(x, 0, Mode::kEval);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -0.5f);
}

TEST(Conv2d, InputValidation) {
  common::Rng rng(5);
  Conv2d conv("c", 2, 4, 3, 1, rng);
  conv.reset_state();
  tensor::Tensor wrong_channels({1, 3, 8, 8});
  EXPECT_THROW(conv.forward(wrong_channels, 0, Mode::kEval),
               std::invalid_argument);
  EXPECT_THROW(Conv2d("bad", 0, 1, 3, 1, rng), std::invalid_argument);
}

TEST(Conv2d, WeightGradientMatchesFiniteDifference) {
  common::Rng rng(6);
  Conv2d conv("c", 2, 3, 3, 1, rng);
  const int T = 2;
  std::vector<tensor::Tensor> xs, ys;
  for (int t = 0; t < T; ++t) {
    xs.push_back(random_tensor({2, 2, 5, 5}, rng));
    ys.push_back(random_tensor({2, 3, 5, 5}, rng));
  }
  analytic_grads(conv, xs, ys);
  Param& w = conv.weight_param();
  // Spot check a handful of weights.
  for (const std::size_t i :
       {std::size_t{0}, std::size_t{7}, std::size_t{23}, std::size_t{50},
        w.value.size() - 1}) {
    const double num = numeric_grad(conv, xs, ys, &w.value[i], 1e-3);
    EXPECT_NEAR(w.grad[i], num, 2e-2 * std::max(1.0, std::abs(num))) << i;
  }
}

TEST(Conv2d, InputGradientMatchesFiniteDifference) {
  common::Rng rng(7);
  Conv2d conv("c", 1, 2, 3, 1, rng);
  const int T = 2;
  std::vector<tensor::Tensor> xs, ys;
  for (int t = 0; t < T; ++t) {
    xs.push_back(random_tensor({1, 1, 4, 4}, rng));
    ys.push_back(random_tensor({1, 2, 4, 4}, rng));
  }
  const auto grads = analytic_grads(conv, xs, ys);
  for (int t = 0; t < T; ++t) {
    for (const std::size_t i : {0u, 5u, 15u}) {
      const double num = numeric_grad(conv, xs, ys, &xs[t][i], 1e-3);
      EXPECT_NEAR(grads[t][i], num, 2e-2 * std::max(1.0, std::abs(num)));
    }
  }
}

TEST(Conv2d, BiasGradientIsSumOfOutputGrad) {
  common::Rng rng(8);
  Conv2d conv("c", 1, 1, 1, 0, rng);
  std::vector<tensor::Tensor> xs{random_tensor({1, 1, 3, 3}, rng)};
  std::vector<tensor::Tensor> ys{tensor::Tensor({1, 1, 3, 3}, 1.0f)};
  analytic_grads(conv, xs, ys);
  EXPECT_FLOAT_EQ(conv.params()[1]->grad[0], 9.0f);
}

TEST(Conv2d, GemmEngineIsPluggable) {
  // A counting engine proves the layer routes its GEMM through the hook.
  class CountingEngine final : public GemmEngine {
   public:
    void run(const float* a, const float* w, float* c, int m, int k, int n,
             const std::string& tag) override {
      FloatGemmEngine::instance().run(a, w, c, m, k, n, tag);
      ++calls;
      last_tag = tag;
    }
    int calls = 0;
    std::string last_tag;
  };
  common::Rng rng(9);
  Conv2d conv("my_conv", 1, 2, 3, 1, rng);
  CountingEngine engine;
  conv.set_gemm_engine(&engine);
  conv.reset_state();
  tensor::Tensor x = random_tensor({1, 1, 4, 4}, rng);
  const tensor::Tensor with_engine = conv.forward(x, 0, Mode::kEval);
  EXPECT_EQ(engine.calls, 1);
  EXPECT_EQ(engine.last_tag, "my_conv");
  conv.set_gemm_engine(nullptr);
  conv.reset_state();
  const tensor::Tensor without = conv.forward(x, 0, Mode::kEval);
  EXPECT_EQ(tensor::max_abs_diff(with_engine, without), 0.0);
}

TEST(Conv2d, SpatialSizeChangeMidSequenceThrows) {
  common::Rng rng(10);
  Conv2d conv("c", 1, 1, 3, 1, rng);
  conv.reset_state();
  conv.forward(tensor::Tensor({1, 1, 4, 4}), 0, Mode::kTrain);
  EXPECT_THROW(conv.forward(tensor::Tensor({1, 1, 6, 6}), 1, Mode::kTrain),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::snn
