// End-to-end integration tests: fabricate a defective chip, recover its
// fault map with post-fab testing, measure the unmitigated collapse, then
// mitigate with FaP / FaPIT / FalVolt — the full tool flow of the paper's
// Fig. 4 on a scaled-down workload.

#include <gtest/gtest.h>

#include "core/falvolt.h"
#include "core/fap.h"
#include "data/synthetic_mnist.h"
#include "fault/fault_generator.h"
#include "fault/post_fab_test.h"
#include "snn/model_zoo.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"
#include "systolic/faulty_gemm.h"

namespace falvolt {
namespace {

struct Pipeline {
  Pipeline() {
    data::SyntheticMnistConfig dc;
    dc.train_size = 160;
    dc.test_size = 80;
    dc.time_steps = 4;
    split = data::make_synthetic_mnist(dc);
    snn::ZooConfig zc;
    zc.channels = 8;
    zc.fc_hidden = 32;
    snn::Network net = snn::make_digit_classifier("d", 1, 16, 10, zc);
    snn::Adam opt(2e-2);
    snn::TrainConfig tc;
    // 16 epochs (the seed used 12): the blocked/FMA GEMM backend changes
    // float summation order, and this tiny 160-sample run needs the extra
    // budget to clear the accuracy bar under both SIMD and scalar builds.
    tc.epochs = 16;
    tc.batch_size = 16;
    tc.eval_each_epoch = false;
    snn::Trainer trainer(net, opt, split.train, &split.test, tc);
    trainer.run();
    snapshot = net.snapshot_params();
    baseline = snn::evaluate(net, split.test);
  }
  snn::Network fresh_copy() {
    snn::ZooConfig zc;
    zc.channels = 8;
    zc.fc_hidden = 32;
    snn::Network n = snn::make_digit_classifier("d", 1, 16, 10, zc);
    n.restore_params(snapshot);
    return n;
  }
  data::DatasetSplit split{data::Dataset("a", 1, 1, 1, 1, 1),
                           data::Dataset("b", 1, 1, 1, 1, 1)};
  std::vector<tensor::Tensor> snapshot;
  double baseline = 0.0;
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, BaselineIsWellTrained) {
  EXPECT_GT(pipeline().baseline, 70.0);
}

TEST(Integration, FullChipSalvageFlow) {
  Pipeline& p = pipeline();
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;

  // 1. Fabricate a chip with hidden defects (MSB faults, worst case).
  common::Rng rng(11);
  fault::FaultMap defects = fault::random_fault_map(
      16, 16, 26, fault::worst_case_spec(16), rng);  // ~10% of 256 PEs
  fault::FabricatedChip chip(std::move(defects), array.format);

  // 2. Post-fabrication test recovers the fault map.
  const fault::TestOutcome tested = fault::run_post_fab_test(chip);
  EXPECT_EQ(tested.recovered.num_faulty_pes(), 26);

  // 3. Unmitigated chip: accuracy collapses.
  snn::Network net = p.fresh_copy();
  const double faulty = core::evaluate_with_faults(
      net, p.split.test, array, tested.recovered,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  EXPECT_LT(faulty, p.baseline - 25.0);

  // 4. FalVolt against the *recovered* map restores accuracy.
  core::MitigationConfig cfg;
  cfg.array = array;
  cfg.retrain_epochs = 5;
  cfg.batch_size = 16;
  const core::MitigationResult r =
      core::run_falvolt(net, tested.recovered, p.split.train, p.split.test,
                        cfg);
  EXPECT_GT(r.final_accuracy, faulty);
  EXPECT_GT(r.final_accuracy, p.baseline - 20.0);
}

TEST(Integration, MethodOrderingAt30Percent) {
  // The paper's Fig. 7 ordering: FaP <= FaPIT <= FalVolt (allowing noise
  // tolerance on the small workload).
  Pipeline& p = pipeline();
  common::Rng rng(13);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  core::MitigationConfig cfg;
  cfg.array.rows = cfg.array.cols = 16;
  cfg.retrain_epochs = 5;
  cfg.batch_size = 16;

  snn::Network fap_net = p.fresh_copy();
  const double fap = core::run_fap(fap_net, map, p.split.test).final_accuracy;
  snn::Network fapit_net = p.fresh_copy();
  const double fapit =
      core::run_fapit(fapit_net, map, p.split.train, p.split.test, cfg)
          .final_accuracy;
  snn::Network fv_net = p.fresh_copy();
  const double falvolt =
      core::run_falvolt(fv_net, map, p.split.train, p.split.test, cfg)
          .final_accuracy;

  EXPECT_GE(fapit + 10.0, fap);      // retraining should not hurt much
  EXPECT_GE(falvolt + 10.0, fapit);  // vth optimization should not hurt
  EXPECT_GT(falvolt, fap - 1e-9);    // and FalVolt strictly >= FaP
}

TEST(Integration, WholeNetworkInferenceThroughSystolicEngine) {
  // Quantized golden-chip inference must stay close to float inference.
  Pipeline& p = pipeline();
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  const fault::FaultMap clean(16, 16);
  snn::Network net = p.fresh_copy();
  const double quantized = core::evaluate_with_faults(
      net, p.split.test, array, clean,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  EXPECT_NEAR(quantized, p.baseline, 15.0);
}

TEST(Integration, MitigationDeterministicEndToEnd) {
  Pipeline& p = pipeline();
  common::Rng rng(17);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  core::MitigationConfig cfg;
  cfg.array.rows = cfg.array.cols = 16;
  cfg.retrain_epochs = 3;
  cfg.batch_size = 16;

  auto run_once = [&]() {
    snn::Network net = p.fresh_copy();
    return core::run_falvolt(net, map, p.split.train, p.split.test, cfg)
        .final_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Integration, BypassChipMatchesPrunedFloatNetwork) {
  // Hardware bypass (systolic engine) and software pruning (zeroed
  // weights on the float path) must agree up to quantization error.
  Pipeline& p = pipeline();
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  common::Rng rng(19);
  const fault::FaultMap map = fault::random_fault_map(
      16, 16, 26, fault::worst_case_spec(16), rng);

  snn::Network pruned = p.fresh_copy();
  fault::NetworkPruner pruner(pruned, map);
  pruner.apply(pruned);
  const double soft = snn::evaluate(pruned, p.split.test);

  snn::Network hw = p.fresh_copy();
  const double hard = core::evaluate_with_faults(
      hw, p.split.test, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kBypass);
  EXPECT_NEAR(soft, hard, 15.0);
}

}  // namespace
}  // namespace falvolt
