// Bit-identity of the vectorized saturation-free fast path against the
// forced-scalar reference (FALVOLT_FORCE_SCALAR / set_force_scalar):
// the same engine must produce byte-for-byte identical output tables
// and identical accumulate_steps telemetry on both paths, across fault
// handling modes, fixed-point formats that straddle the overflow
// headroom proof, folding/padding shapes, and activation kinds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "fault/fault_generator.h"
#include "systolic/faulty_gemm.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace falvolt::systolic {
namespace {

using falvolt::testutil::random_tensor;

tensor::Tensor random_spikes(int m, int k, common::Rng& rng, double p = 0.4) {
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return a;
}

struct PathCase {
  ArrayConfig cfg;
  const fault::FaultMap* map = nullptr;
  SystolicGemmEngine::FaultHandling handling =
      SystolicGemmEngine::FaultHandling::kCorrupt;
  tensor::Tensor a;
  tensor::Tensor w;
};

// Run the case on a fresh engine twice — vectorized then forced-scalar —
// and require byte-identical tables and equal step telemetry.
void expect_paths_identical(const PathCase& pc) {
  const int m = pc.a.shape()[0], k = pc.a.shape()[1], n = pc.w.shape()[1];
  SystolicGemmEngine engine(pc.cfg, pc.map, pc.handling);
  tensor::Tensor c_vec({m, n});
  engine.set_force_scalar(false);
  const std::uint64_t s0 = engine.accumulate_steps();
  engine.run(pc.a.data(), pc.w.data(), c_vec.data(), m, k, n, "L");
  const std::uint64_t vec_steps = engine.accumulate_steps() - s0;

  tensor::Tensor c_ref({m, n});
  engine.set_force_scalar(true);
  const std::uint64_t s1 = engine.accumulate_steps();
  engine.run(pc.a.data(), pc.w.data(), c_ref.data(), m, k, n, "L");
  const std::uint64_t ref_steps = engine.accumulate_steps() - s1;

  EXPECT_EQ(0, std::memcmp(c_vec.data(), c_ref.data(),
                           static_cast<std::size_t>(m) * n * sizeof(float)));
  EXPECT_EQ(vec_steps, ref_steps);
}

TEST(FaultyGemmPaths, CleanChipBinarySpikes) {
  common::Rng rng(11);
  PathCase pc;
  pc.cfg.rows = pc.cfg.cols = 8;
  pc.a = random_spikes(16, 24, rng);
  pc.w = random_tensor({24, 13}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, RandomFaultMapsCorruptAndBypass) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    common::Rng rng(seed);
    ArrayConfig cfg;
    cfg.rows = cfg.cols = 8;
    const fault::FaultMap map = fault::random_fault_map(
        8, 8, static_cast<int>(1 + seed % 10),
        fault::worst_case_spec(cfg.format.total_bits()), rng);
    for (const auto handling :
         {SystolicGemmEngine::FaultHandling::kCorrupt,
          SystolicGemmEngine::FaultHandling::kBypass}) {
      PathCase pc;
      pc.cfg = cfg;
      pc.map = &map;
      pc.handling = handling;
      pc.a = random_spikes(12, 40, rng);
      pc.w = random_tensor({40, 11}, rng, -0.5, 0.5);
      expect_paths_identical(pc);
    }
  }
}

TEST(FaultyGemmPaths, NarrowFormatStraddlesHeadroomProof) {
  // 10-bit format, max_raw = 511: at k=100 binary spikes the |qweight|
  // column sums routinely exceed the headroom bound, so some columns
  // take the saturating reference while others pass the proof — the
  // exact boundary the fast path must get right.
  common::Rng rng(31);
  PathCase pc;
  pc.cfg.rows = pc.cfg.cols = 16;
  pc.cfg.format = fx::FixedFormat(10, 4);
  pc.a = random_spikes(10, 100, rng, 0.6);
  pc.w = random_tensor({100, 12}, rng, -0.9, 0.9);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, DeliberatelySaturatingWeights) {
  // Every column saturates: the headroom proof must reject them all and
  // the result must still match the reference exactly.
  common::Rng rng(32);
  PathCase pc;
  pc.cfg.rows = pc.cfg.cols = 8;
  pc.cfg.format = fx::FixedFormat(10, 4);
  pc.a = tensor::Tensor({6, 64}, 1.0f);
  pc.w = tensor::Tensor({64, 9}, 1.9f);  // q = 30; 64 * 30 >> 511
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, SaturatingWithFaultsCorrupt) {
  common::Rng rng(33);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  cfg.format = fx::FixedFormat(12, 5);
  const fault::FaultMap map = fault::random_fault_map(
      8, 8, 6, fault::worst_case_spec(cfg.format.total_bits()), rng);
  PathCase pc;
  pc.cfg = cfg;
  pc.map = &map;
  pc.a = random_spikes(8, 80, rng, 0.7);
  pc.w = random_tensor({80, 10}, rng, -1.5, 1.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, FoldingKLargerThanRows) {
  // k = 70 on a 16x16 array: the psum traverses the PE column 5 times
  // (padded_k = 80), so fault events repeat per fold.
  common::Rng rng(34);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 16;
  const fault::FaultMap map = fault::random_fault_map(
      16, 16, 12, fault::worst_case_spec(cfg.format.total_bits()), rng);
  PathCase pc;
  pc.cfg = cfg;
  pc.map = &map;
  pc.a = random_spikes(9, 70, rng);
  pc.w = random_tensor({70, 20}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, PaddingKSmallerThanRows) {
  // k = 3 on an 8x8 array: positions 3..7 are padding rows whose faults
  // still corrupt the passing psum.
  common::Rng rng(35);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  fault::FaultMap map(8, 8);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(6, 2, bits);  // padding row of PE column 2
  PathCase pc;
  pc.cfg = cfg;
  pc.map = &map;
  pc.a = random_spikes(5, 3, rng, 0.8);
  pc.w = random_tensor({3, 8}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, RealValuedActivationsTakeReferenceBothWays) {
  common::Rng rng(36);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const fault::FaultMap map = fault::random_fault_map(
      8, 8, 4, fault::worst_case_spec(cfg.format.total_bits()), rng);
  PathCase pc;
  pc.cfg = cfg;
  pc.map = &map;
  pc.a = random_tensor({7, 30}, rng, 0.0, 1.0);  // encoder-style rates
  pc.w = random_tensor({30, 9}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, MixedBinaryAndRealRows) {
  common::Rng rng(37);
  PathCase pc;
  pc.cfg.rows = pc.cfg.cols = 8;
  pc.a = random_spikes(10, 25, rng);
  for (int kk = 0; kk < 25; ++kk) pc.a.at2(4, kk) = 0.37f;  // one real row
  pc.w = random_tensor({25, 10}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, WideNExercisesSimdGroupsAndTail) {
  // n = 27: three full 8-column SIMD groups plus a 3-column tail, with
  // output columns folding onto 8 PE columns.
  common::Rng rng(38);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const fault::FaultMap map = fault::random_fault_map(
      8, 8, 3, fault::worst_case_spec(cfg.format.total_bits()), rng);
  PathCase pc;
  pc.cfg = cfg;
  pc.map = &map;
  pc.a = random_spikes(14, 32, rng);
  pc.w = random_tensor({32, 27}, rng, -0.5, 0.5);
  expect_paths_identical(pc);
}

TEST(FaultyGemmPaths, ForceScalarEnvPickup) {
  ::setenv("FALVOLT_FORCE_SCALAR", "1", 1);
  {
    SystolicGemmEngine engine(ArrayConfig{}, nullptr);
    EXPECT_TRUE(engine.force_scalar());
  }
  ::setenv("FALVOLT_FORCE_SCALAR", "0", 1);
  {
    SystolicGemmEngine engine(ArrayConfig{}, nullptr);
    EXPECT_FALSE(engine.force_scalar());
  }
  ::unsetenv("FALVOLT_FORCE_SCALAR");
  {
    SystolicGemmEngine engine(ArrayConfig{}, nullptr);
    EXPECT_FALSE(engine.force_scalar());
  }
}

TEST(FaultyGemmPaths, ThreadedRunMatchesSerialOnBothPaths) {
  common::Rng rng(39);
  ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const fault::FaultMap map = fault::random_fault_map(
      8, 8, 5, fault::worst_case_spec(cfg.format.total_bits()), rng);
  const tensor::Tensor a = random_spikes(33, 40, rng);
  const tensor::Tensor w = random_tensor({40, 12}, rng, -0.5, 0.5);
  for (const bool scalar : {false, true}) {
    SystolicGemmEngine serial(cfg, &map);
    serial.set_threads(1);
    serial.set_force_scalar(scalar);
    tensor::Tensor c1({33, 12});
    serial.run(a.data(), w.data(), c1.data(), 33, 40, 12, "L");
    SystolicGemmEngine pooled(cfg, &map);
    pooled.set_threads(4);
    pooled.set_force_scalar(scalar);
    tensor::Tensor c2({33, 12});
    pooled.run(a.data(), w.data(), c2.data(), 33, 40, 12, "L");
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             33u * 12u * sizeof(float)));
  }
}

}  // namespace
}  // namespace falvolt::systolic
