#include "systolic/cycle_sim.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/fault_generator.h"
#include "systolic/faulty_gemm.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::systolic {
namespace {

using falvolt::testutil::random_tensor;

ArrayConfig array(int n) {
  ArrayConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

tensor::Tensor random_spikes(int m, int k, common::Rng& rng, double p = 0.5) {
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return a;
}

TEST(CycleSim, GoldenMatchesQuantizedGemm) {
  common::Rng rng(1);
  SystolicArraySim sim(array(4), nullptr);
  const int m = 5, k = 4, n = 4;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  CycleStats stats;
  const tensor::Tensor c = sim.matmul(a, w, &stats);
  SystolicGemmEngine func(array(4), nullptr);
  tensor::Tensor ref({m, n});
  func.run(a.data(), w.data(), ref.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c, ref), 0.0);
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_EQ(stats.tiles, 1u);
}

TEST(CycleSim, TiledKMatchesFunctional) {
  common::Rng rng(2);
  const int m = 6, k = 19, n = 3;  // K spans 5 tiles of a 4-row array
  SystolicArraySim sim(array(4), nullptr);
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.4, 0.4);
  const tensor::Tensor c = sim.matmul(a, w);
  SystolicGemmEngine func(array(4), nullptr);
  tensor::Tensor ref({m, n});
  func.run(a.data(), w.data(), ref.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c, ref), 0.0);
}

TEST(CycleSim, TiledNMatchesFunctional) {
  common::Rng rng(3);
  const int m = 4, k = 6, n = 11;  // N spans 3 column tiles
  SystolicArraySim sim(array(4), nullptr);
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.4, 0.4);
  const tensor::Tensor c = sim.matmul(a, w);
  SystolicGemmEngine func(array(4), nullptr);
  tensor::Tensor ref({m, n});
  func.run(a.data(), w.data(), ref.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c, ref), 0.0);
}

// The core fidelity claim: the register-level simulator and the fast
// functional engine are BIT-IDENTICAL under faults, across fault types,
// bit positions and fault counts.
class FaultEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FaultEquivalence, CycleSimBitIdenticalToFunctional) {
  const auto [bit, num_faults, seed] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(seed));
  const ArrayConfig cfg = array(4);
  fault::FaultSpec spec;
  spec.bit = bit;
  spec.word_bits = 16;
  spec.random_type = (seed % 2 == 0);
  const fault::FaultMap map =
      fault::random_fault_map(4, 4, num_faults, spec, rng);

  const int m = 5, k = 10, n = 6;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);

  SystolicArraySim sim(cfg, &map);
  const tensor::Tensor c_cycle = sim.matmul(a, w);
  SystolicGemmEngine func(cfg, &map);
  tensor::Tensor c_func({m, n});
  func.run(a.data(), w.data(), c_func.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c_cycle, c_func), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultEquivalence,
    ::testing::Combine(::testing::Values(0, 3, 8, 14, 15),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(1, 2)));

TEST(CycleSim, BypassMatchesFunctionalBypass) {
  common::Rng rng(5);
  const ArrayConfig cfg = array(4);
  const fault::FaultMap map =
      fault::random_fault_map(4, 4, 4, fault::worst_case_spec(16), rng);
  const int m = 4, k = 9, n = 5;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  SystolicArraySim sim(cfg, &map, /*bypass_faulty=*/true);
  const tensor::Tensor c_cycle = sim.matmul(a, w);
  SystolicGemmEngine func(cfg, &map,
                          SystolicGemmEngine::FaultHandling::kBypass);
  tensor::Tensor c_func({m, n});
  func.run(a.data(), w.data(), c_func.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c_cycle, c_func), 0.0);
}

TEST(CycleSim, CycleCountMatchesAnalyticalFormula) {
  common::Rng rng(6);
  const int m = 7, k = 4, n = 4;
  SystolicArraySim sim(array(4), nullptr);
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng);
  CycleStats stats;
  sim.matmul(a, w, &stats);
  // One tile: m + rows + width - 1 cycles.
  EXPECT_EQ(stats.cycles, static_cast<std::uint64_t>(m + 4 + 4 - 1));
}

TEST(CycleSim, SpikesCountedCorrectly) {
  SystolicArraySim sim(array(2), nullptr);
  tensor::Tensor a({2, 2}, {1, 0, 1, 1});
  tensor::Tensor w({2, 2}, 0.5f);
  CycleStats stats;
  sim.matmul(a, w, &stats);
  EXPECT_EQ(stats.spikes_in, 3u);
}

TEST(CycleSim, NonBinaryInputThrows) {
  SystolicArraySim sim(array(2), nullptr);
  tensor::Tensor a({1, 2}, {0.5f, 1.0f});
  tensor::Tensor w({2, 1}, 1.0f);
  EXPECT_THROW(sim.matmul(a, w), std::invalid_argument);
}

TEST(CycleSim, ShapeMismatchThrows) {
  SystolicArraySim sim(array(2), nullptr);
  tensor::Tensor a({1, 3});
  tensor::Tensor w({2, 1});
  EXPECT_THROW(sim.matmul(a, w), std::invalid_argument);
}

TEST(CycleSim, MismatchedFaultMapThrows) {
  fault::FaultMap map(8, 8);
  EXPECT_THROW(SystolicArraySim(array(4), &map), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::systolic
