#include "snn/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"
#include "snn/model_zoo.h"
#include "snn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace falvolt::snn {
namespace {

data::DatasetSplit small_mnist() {
  data::SyntheticMnistConfig cfg;
  cfg.train_size = 160;
  cfg.test_size = 64;
  cfg.time_steps = 4;
  return data::make_synthetic_mnist(cfg);
}

TEST(Trainer, MakeBatchLayout) {
  const data::DatasetSplit split = small_mnist();
  const auto steps = make_batch(split.train, {0, 3, 5});
  ASSERT_EQ(steps.size(), 4u);  // T = 4
  EXPECT_EQ(steps[0].shape(), (tensor::Shape{3, 1, 16, 16}));
  // Element (1, ...) of step t must equal sample 3's frame t.
  const data::Sample& s3 = split.train[3];
  const std::size_t plane = 256;
  for (int t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < plane; ++i) {
      ASSERT_EQ(steps[static_cast<std::size_t>(t)][plane + i],
                s3.frames[static_cast<std::size_t>(t) * plane + i]);
    }
  }
}

TEST(Trainer, BatchLabels) {
  const data::DatasetSplit split = small_mnist();
  const auto labels = batch_labels(split.train, {0, 1, 2});
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2}));  // round-robin classes
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.eval_each_epoch = false;
  Trainer trainer(net, opt, split.train, &split.test, tc);
  const auto stats = trainer.run();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
}

TEST(Trainer, AccuracyImprovesOverChance) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  const double before = evaluate(net, split.test);
  Adam opt(2e-2);
  TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 16;
  tc.eval_each_epoch = false;
  Trainer trainer(net, opt, split.train, &split.test, tc);
  trainer.run();
  const double after = evaluate(net, split.test);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 40.0);  // well above the 10% chance level
}

TEST(Trainer, PostEpochHookRunsEveryEpoch) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  int hook_calls = 0;
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  tc.eval_each_epoch = false;
  tc.post_epoch = [&hook_calls](Network&) { ++hook_calls; };
  Trainer trainer(net, opt, split.train, &split.test, tc);
  trainer.run();
  EXPECT_EQ(hook_calls, 3);
}

TEST(Trainer, OnEpochCallbackSeesMonotoneEpochIndex) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  std::vector<int> epochs;
  TrainConfig tc;
  tc.epochs = 3;
  tc.eval_each_epoch = false;
  tc.on_epoch = [&epochs](const EpochStats& s) { epochs.push_back(s.epoch); };
  Trainer trainer(net, opt, split.train, &split.test, tc);
  trainer.run();
  EXPECT_EQ(epochs, (std::vector<int>{0, 1, 2}));
}

TEST(Trainer, EvalEachEpochReportsAccuracy) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  TrainConfig tc;
  tc.epochs = 1;
  tc.eval_each_epoch = true;
  Trainer trainer(net, opt, split.train, &split.test, tc);
  const auto stats = trainer.run();
  EXPECT_FALSE(std::isnan(stats[0].test_accuracy));
  tc.eval_each_epoch = false;
  Network net2 = make_digit_classifier("d2", 1, 16, 10);
  Adam opt2(2e-2);
  Trainer t2(net2, opt2, split.train, &split.test, tc);
  EXPECT_TRUE(std::isnan(t2.run()[0].test_accuracy));
}

TEST(Trainer, DeterministicGivenSeeds) {
  const data::DatasetSplit split = small_mnist();
  auto run_once = [&]() {
    Network net = make_digit_classifier("d", 1, 16, 10);
    Adam opt(2e-2);
    TrainConfig tc;
    tc.epochs = 2;
    tc.eval_each_epoch = false;
    tc.shuffle_seed = 99;
    Trainer trainer(net, opt, split.train, &split.test, tc);
    trainer.run();
    return evaluate(net, split.test);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Trainer, InferRatesShape) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  const tensor::Tensor rates = infer_rates(net, split.test, {0, 1, 2, 3});
  EXPECT_EQ(rates.shape(), (tensor::Shape{4, 10}));
  // Rates are mean spike counts per step: within [0, 1].
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_GE(rates[i], 0.0f);
    EXPECT_LE(rates[i], 1.0f);
  }
}

TEST(Trainer, BatchedEvalIdenticalAtAnyBatchSize) {
  // Output rows are independent through the whole eval stack (GEMM rows,
  // eval-mode batchnorm uses running stats, dropout is identity), so
  // accuracy is bit-identical whether the test set is scored in
  // mini-batches, as one whole-set batch, or via a prebuilt EvalBatch.
  // Content-addressed store cells and CI CSV diffs rely on this.
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  TrainConfig tc;
  tc.epochs = 1;
  tc.eval_each_epoch = false;
  Trainer trainer(net, opt, split.train, &split.test, tc);
  trainer.run();
  const double acc_minibatch = evaluate(net, split.test, 16);
  const double acc_default = evaluate(net, split.test);
  const double acc_whole = evaluate(net, split.test, 0);
  const EvalBatch batch = make_eval_batch(split.test);
  const double acc_prebuilt = evaluate(net, batch);
  EXPECT_DOUBLE_EQ(acc_minibatch, acc_whole);
  EXPECT_DOUBLE_EQ(acc_default, acc_whole);
  EXPECT_DOUBLE_EQ(acc_prebuilt, acc_whole);
}

TEST(Trainer, EvalBatchLayout) {
  const data::DatasetSplit split = small_mnist();
  const EvalBatch batch = make_eval_batch(split.test);
  ASSERT_EQ(batch.steps.size(), 4u);  // T = 4
  EXPECT_EQ(batch.steps[0].shape()[0],
            static_cast<int>(split.test.size()));
  ASSERT_EQ(batch.labels.size(), split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(batch.labels[i], split.test[i].label);
  }
}

TEST(Trainer, BadConfigThrows) {
  const data::DatasetSplit split = small_mnist();
  Network net = make_digit_classifier("d", 1, 16, 10);
  Adam opt(2e-2);
  TrainConfig tc;
  tc.batch_size = 0;
  EXPECT_THROW(Trainer(net, opt, split.train, &split.test, tc),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::snn
