// Compiles the umbrella header and exercises a minimal end-to-end flow
// through the public API only — the "does the library actually compose"
// test a downstream user cares about.

#include "falvolt/falvolt.h"

#include <gtest/gtest.h>

namespace {

using namespace falvolt;

TEST(PublicApi, UmbrellaHeaderEndToEnd) {
  // Dataset.
  data::SyntheticMnistConfig dc;
  dc.train_size = 40;
  dc.test_size = 20;
  dc.time_steps = 3;
  const data::DatasetSplit split = data::make_synthetic_mnist(dc);

  // Model + short training.
  snn::ZooConfig zc;
  zc.channels = 4;
  zc.fc_hidden = 16;
  snn::Network net = snn::make_digit_classifier("api", 1, 16, 10, zc);
  snn::Adam opt(2e-2);
  snn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 10;
  tc.eval_each_epoch = false;
  snn::Trainer trainer(net, opt, split.train, &split.test, tc);
  const auto stats = trainer.run();
  EXPECT_EQ(stats.size(), 2u);

  // Fault injection + post-fab test round trip.
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  common::Rng rng(3);
  fault::FaultMap defects = fault::random_fault_map(
      16, 16, 10, fault::worst_case_spec(array.format.total_bits()), rng);
  const fault::FabricatedChip chip(std::move(defects), array.format);
  const fault::TestOutcome outcome = fault::run_post_fab_test(chip);
  EXPECT_EQ(outcome.recovered.num_faulty_pes(), 10);

  // Fault-map persistence round trip.
  const fault::FaultMap reloaded =
      fault::fault_map_from_text(fault::fault_map_to_text(outcome.recovered));
  EXPECT_EQ(reloaded.num_faulty_pes(), 10);

  // Unmitigated vs mitigated accuracy.
  const double faulty = core::evaluate_with_faults(
      net, split.test, array, reloaded,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  core::MitigationConfig cfg;
  cfg.array = array;
  cfg.retrain_epochs = 1;
  cfg.eval_each_epoch = false;
  const core::MitigationResult r =
      core::run_falvolt(net, reloaded, split.train, split.test, cfg);
  EXPECT_GE(r.final_accuracy, 0.0);
  EXPECT_LE(faulty, 100.0);
  EXPECT_EQ(r.method, "FalVolt");

  // Cost model.
  const systolic::AreaReport area = systolic::estimate_area(array);
  EXPECT_GT(area.array_area_mm2, 0.0);
  const systolic::NetworkCostReport cost =
      systolic::estimate_network_cost(net, array, split.test);
  EXPECT_FALSE(cost.layers.empty());
}

TEST(PublicApi, EncodersComposeWithDatasets) {
  common::Rng rng(4);
  const tensor::Tensor img = data::render_glyph(5, rng);
  const tensor::Tensor as_chw = img.reshaped({1, 16, 16});
  const tensor::Tensor rate = data::rate_encode(as_chw, 6, rng);
  const tensor::Tensor latency = data::latency_encode(as_chw, 6);
  const tensor::Tensor direct = data::direct_encode(as_chw, 6);
  EXPECT_EQ(rate.shape(), latency.shape());
  EXPECT_EQ(rate.shape(), direct.shape());
  // Rate coding of a binary-ish glyph fires roughly per intensity.
  const tensor::Tensor mean_rate = data::spike_rate(rate);
  EXPECT_LE(tensor::max_value(mean_rate), 1.0f);
}

TEST(PublicApi, CycleSimulatorAccessibleThroughUmbrella) {
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  systolic::SystolicArraySim sim(cfg, nullptr);
  tensor::Tensor a({2, 4}, {1, 0, 1, 0, 0, 1, 0, 1});
  tensor::Tensor w({4, 2}, 0.5f);
  systolic::CycleStats stats;
  const tensor::Tensor c = sim.matmul(a, w, &stats);
  EXPECT_EQ(c.shape(), (tensor::Shape{2, 2}));
  EXPECT_GT(stats.cycles, 0u);
}

}  // namespace
