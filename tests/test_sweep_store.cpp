// SweepRunner x LocalDirStore integration: resume/warm-run semantics,
// deterministic sharding, fingerprint invalidation, and the codec the
// records travel through. Uses workload-free scenario functions so the
// store machinery is exercised without training anything.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/sweep.h"
#include "store/compact.h"
#include "store/manifest.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::core {
namespace {

// Strip the volatile single-line "run" object: everything else in the
// sweep JSON is deterministic for a fixed set of computed cell values.
std::string without_run_line(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"run\": {") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class SweepStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_sweep_store_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<Scenario> grid(int n = 6) {
    std::vector<Scenario> scenarios;
    for (int i = 0; i < n; ++i) {
      Scenario s;
      s.key = "cell=" + std::to_string(i);
      s.fault_count = i;
      s.fault_seed = 100 + static_cast<std::uint64_t>(i);
      scenarios.push_back(s);
    }
    return scenarios;
  }

  static SweepStoreOptions store_opts(const std::string& dir,
                                      int shard_index = 0,
                                      int shard_count = 1) {
    SweepStoreOptions st;
    st.dir = dir;
    st.bench = "grid_test";
    st.config = {{"epochs", "4"}};
    st.shard_index = shard_index;
    st.shard_count = shard_count;
    return st;
  }

  // Deterministic cell computation whose invocations we can count.
  SweepRunner::ScenarioFn counting_fn(std::atomic<int>& computed) {
    return [&computed](const Scenario& s, const SweepContext&) {
      ++computed;
      ScenarioResult out;
      out.metrics = {
          {"value", 10.0 * static_cast<double>(s.fault_count)}};
      out.csv_rows = {{s.key, "row"}};
      out.log = "log " + s.key + "\n";
      return out;
    };
  }

  SweepRunner runner(const SweepStoreOptions& st) {
    SweepRunner r{WorkloadOptions{}};
    r.set_prepare_baselines(false);
    r.set_store(st);
    return r;
  }

  std::string dir_;
};

TEST_F(SweepStoreTest, WarmRerunComputesNothingAndIsByteIdentical) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};

  SweepRunner cold = runner(store_opts(dir_));
  const ResultTable t_cold = cold.run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);
  EXPECT_TRUE(t_cold.complete());
  EXPECT_EQ(t_cold.computed_cells(), 6u);
  EXPECT_EQ(t_cold.cached_cells(), 0u);

  SweepRunner warm = runner(store_opts(dir_));
  const ResultTable t_warm = warm.run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6) << "warm run must not recompute";
  EXPECT_TRUE(t_warm.complete());
  EXPECT_EQ(t_warm.computed_cells(), 0u);
  EXPECT_EQ(t_warm.cached_cells(), 6u);

  EXPECT_EQ(t_cold.to_csv(), t_warm.to_csv());
  EXPECT_EQ(without_run_line(t_cold.to_json("grid_test")),
            without_run_line(t_warm.to_json("grid_test")));
  // Replayed cells reproduce the original compute seconds exactly.
  for (std::size_t i = 0; i < t_cold.size(); ++i) {
    EXPECT_EQ(t_cold.at(i).seconds, t_warm.at(i).seconds);
    EXPECT_EQ(t_cold.at(i).log, t_warm.at(i).log);
    EXPECT_EQ(t_cold.at(i).csv_rows, t_warm.at(i).csv_rows);
  }
}

TEST_F(SweepStoreTest, ResumeFalseRecomputesEverything) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  SweepStoreOptions st = store_opts(dir_);
  st.resume = false;
  const ResultTable t = runner(st).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 12);
  EXPECT_EQ(t.computed_cells(), 6u);
}

TEST_F(SweepStoreTest, ShardsPartitionDeterministicallyAndMergeExactly) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};

  // The unsharded reference table.
  const ResultTable t_full =
      runner(store_opts(dir_ + "_u")).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);

  // Two shards, separate stores (separate machines).
  const ResultTable t0 = runner(store_opts(dir_ + "_a", 0, 2))
                             .run(scenarios, counting_fn(computed));
  const ResultTable t1 = runner(store_opts(dir_ + "_b", 1, 2))
                             .run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6 + 6);  // each shard computed half
  EXPECT_FALSE(t0.complete());
  EXPECT_FALSE(t1.complete());
  EXPECT_EQ(t0.computed_cells(), 3u);  // indices 0, 2, 4
  EXPECT_EQ(t1.computed_cells(), 3u);  // indices 1, 3, 5
  EXPECT_EQ(t0.absent_cells(), 3u);
  EXPECT_TRUE(t0.is_filled(0));
  EXPECT_FALSE(t0.is_filled(1));

  // Union the shard stores and rebuild the grid from the manifest —
  // exactly what the sweep_merge tool does.
  store::LocalDirStore merged(dir_ + "_m");
  const store::LocalDirStore a(dir_ + "_a"), b(dir_ + "_b");
  store::merge_records(merged, a);
  store::merge_records(merged, b);
  const auto manifest =
      store::read_manifest(store::list_manifests(a, "grid_test").front());
  ASSERT_TRUE(manifest.has_value());
  ASSERT_EQ(manifest->entries.size(), scenarios.size());

  ResultTable rebuilt(manifest->entries.size());
  for (std::size_t i = 0; i < manifest->entries.size(); ++i) {
    const std::optional<std::string> payload =
        merged.get(manifest->entries[i].first);
    ASSERT_TRUE(payload.has_value()) << manifest->entries[i].second;
    ScenarioResult r;
    ASSERT_TRUE(decode_scenario_result(*payload, r));
    rebuilt.put_cached(i, std::move(r));
  }
  EXPECT_TRUE(rebuilt.complete());
  EXPECT_EQ(rebuilt.to_csv(), t_full.to_csv());

  for (const std::string suffix : {"_u", "_a", "_b", "_m"}) {
    fs::remove_all(dir_ + suffix);
  }
}

TEST_F(SweepStoreTest, ResumeComputesOnlyTheMissingCells) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  // A "killed" sweep: only shard 0/2's cells made it into the store.
  runner(store_opts(dir_, 0, 2)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 3);
  // The rerun resumes: replays the 3 cached cells, computes the rest.
  const ResultTable t =
      runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.cached_cells(), 3u);
  EXPECT_EQ(t.computed_cells(), 3u);
}

TEST_F(SweepStoreTest, ForeignShardCachedCellsAreReplayed) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  // Shard 1's cells land in the SHARED store first...
  runner(store_opts(dir_, 1, 2)).run(scenarios, counting_fn(computed));
  // ...so shard 0 pointed at the same store replays them for free and
  // its table is already complete.
  const ResultTable t =
      runner(store_opts(dir_, 0, 2)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.cached_cells(), 3u);
}

TEST_F(SweepStoreTest, FingerprintInvalidationOnConfigAndRetrainChange) {
  std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);

  // Result-affecting bench config changed (e.g. --epochs 4 -> 8): every
  // cell re-addresses, nothing stale hits.
  SweepStoreOptions st = store_opts(dir_);
  st.config = {{"epochs", "8"}};
  runner(st).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 12);

  // Per-scenario retrain config changed: only via the fingerprint.
  SweepRunner probe = runner(store_opts(dir_));
  Scenario s = scenarios[0];
  const std::string base = probe.fingerprint(s);
  s.epochs = 9;
  EXPECT_NE(probe.fingerprint(s), base);
  s = scenarios[0];
  s.retrain = true;
  EXPECT_NE(probe.fingerprint(s), base);
  s = scenarios[0];
  s.vth = 0.55;
  EXPECT_NE(probe.fingerprint(s), base);
  EXPECT_EQ(probe.fingerprint(scenarios[0]), base);

  // Workload seed is part of the address too (it retrains the baseline).
  WorkloadOptions other_seed;
  other_seed.seed = 8;
  SweepRunner seeded{other_seed};
  seeded.set_prepare_baselines(false);
  seeded.set_store(store_opts(dir_));
  EXPECT_NE(seeded.fingerprint(scenarios[0]), base);
}

TEST_F(SweepStoreTest, CorruptRecordIsRecomputedNotTrusted) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  SweepRunner cold = runner(store_opts(dir_));
  cold.run(scenarios, counting_fn(computed));

  // Truncate one record in place (mid-download crash, disk rot...).
  const store::LocalDirStore rs(dir_);
  const std::string fp = cold.fingerprint(scenarios[2]);
  ASSERT_TRUE(rs.contains(fp));
  fs::resize_file(rs.object_path(fp), 20);

  const ResultTable t =
      runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 7);  // exactly the damaged cell
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.cached_cells(), 5u);
  EXPECT_EQ(t.computed_cells(), 1u);
  EXPECT_TRUE(rs.get(fp).has_value()) << "record must be healed";
}

TEST_F(SweepStoreTest, CompactedStoreWarmRerunComputesNothing) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  const ResultTable t_cold =
      runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);

  // Pack every cell into a segment; no loose record remains.
  const store::LocalDirStore rs(dir_);
  const store::CompactStats stats = store::compact_store(rs);
  EXPECT_EQ(stats.packed, 6);
  EXPECT_TRUE(rs.fingerprints().empty());

  // The warm run is served entirely from the segment — zero cells
  // computed, tables byte-identical to the loose-store run.
  const ResultTable t_warm =
      runner(store_opts(dir_)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6) << "compacted store must not recompute";
  EXPECT_TRUE(t_warm.complete());
  EXPECT_EQ(t_warm.computed_cells(), 0u);
  EXPECT_EQ(t_warm.cached_cells(), 6u);
  EXPECT_EQ(t_cold.to_csv(), t_warm.to_csv());
  EXPECT_EQ(without_run_line(t_cold.to_json("grid_test")),
            without_run_line(t_warm.to_json("grid_test")));
}

TEST_F(SweepStoreTest, SubstitutersServeCellsComputedElsewhere) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};
  // Machine A computes the grid into its own store (then compacts, so
  // the substituter path is exercised through segments too).
  const std::string dir_a = dir_ + "_a";
  const ResultTable t_a =
      runner(store_opts(dir_a)).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6);
  store::compact_store(store::LocalDirStore(dir_a));

  // Machine B starts empty but substitutes from A: zero recompute, and
  // nothing is ever written into A.
  SweepStoreOptions st_b = store_opts(dir_);
  st_b.substituters = {dir_a};
  const ResultTable t_b = runner(st_b).run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6) << "every cell substituted";
  EXPECT_TRUE(t_b.complete());
  EXPECT_EQ(t_b.computed_cells(), 0u);
  EXPECT_EQ(t_b.cached_cells(), 6u);
  EXPECT_EQ(t_a.to_csv(), t_b.to_csv());
  EXPECT_TRUE(store::LocalDirStore(dir_a, /*create=*/false)
                  .fingerprints()
                  .empty())
      << "substituter stays read-only (records live in its segment)";

  // A typo'd substituter fails loudly instead of missing everything.
  SweepStoreOptions st_typo = store_opts(dir_ + "_fresh");
  st_typo.substituters = {dir_ + "_nope"};
  EXPECT_THROW(runner(st_typo).run(scenarios, counting_fn(computed)),
               std::invalid_argument);
  fs::remove_all(dir_a);
  fs::remove_all(dir_ + "_fresh");
}

TEST(SweepStoreCodec, RoundTripsEveryField) {
  ScenarioResult r;
  r.scenario.key = "MNIST/rate=30/vth=0.45";
  r.scenario.tag = "FalVolt";
  r.scenario.dataset = DatasetKind::kDvsGesture;
  r.scenario.vth = 0.45;
  r.scenario.fault_rate = 0.30;
  r.scenario.fault_count = 8;
  r.scenario.bit = 15;
  r.scenario.stuck = fx::StuckType::kStuckAt0;
  r.scenario.array_size = 64;
  r.scenario.repeat = 3;
  r.scenario.fault_seed = 0xdeadbeefcafeULL;
  r.scenario.retrain = true;
  r.scenario.epochs = 8;
  r.fingerprint = std::string(64, 'a');
  r.metrics = {{"accuracy", 97.25}, {"vth:conv1", 0.5}};
  r.csv_rows = {{"a", "b,c", "d\"e"}, {}};
  r.log = "line1\nline2\n";
  r.seconds = 12.5;
  r.provenance.host = "fleet-node-07";
  r.provenance.version = "0.4.0";
  r.provenance.unix_time = 1753660800;
  r.provenance.store_epoch = 1;

  ScenarioResult back;
  ASSERT_TRUE(decode_scenario_result(encode_scenario_result(r), back));
  EXPECT_EQ(back.scenario.key, r.scenario.key);
  EXPECT_EQ(back.scenario.tag, r.scenario.tag);
  EXPECT_EQ(back.scenario.dataset, r.scenario.dataset);
  EXPECT_EQ(back.scenario.vth, r.scenario.vth);
  EXPECT_EQ(back.scenario.fault_rate, r.scenario.fault_rate);
  EXPECT_EQ(back.scenario.fault_count, r.scenario.fault_count);
  EXPECT_EQ(back.scenario.bit, r.scenario.bit);
  EXPECT_EQ(back.scenario.stuck, r.scenario.stuck);
  EXPECT_EQ(back.scenario.array_size, r.scenario.array_size);
  EXPECT_EQ(back.scenario.repeat, r.scenario.repeat);
  EXPECT_EQ(back.scenario.fault_seed, r.scenario.fault_seed);
  EXPECT_EQ(back.scenario.retrain, r.scenario.retrain);
  EXPECT_EQ(back.scenario.epochs, r.scenario.epochs);
  EXPECT_EQ(back.fingerprint, r.fingerprint);
  EXPECT_EQ(back.metrics, r.metrics);
  EXPECT_EQ(back.csv_rows, r.csv_rows);
  EXPECT_EQ(back.log, r.log);
  EXPECT_EQ(back.seconds, r.seconds);
  EXPECT_EQ(back.provenance.host, r.provenance.host);
  EXPECT_EQ(back.provenance.version, r.provenance.version);
  EXPECT_EQ(back.provenance.unix_time, r.provenance.unix_time);
  EXPECT_EQ(back.provenance.store_epoch, r.provenance.store_epoch);
}

TEST(SweepStoreCodec, RejectsDamageInsteadOfThrowing) {
  ScenarioResult r;
  r.scenario.key = "k";
  r.metrics = {{"m", 1.0}};
  const std::string bytes = encode_scenario_result(r);
  ScenarioResult out;
  EXPECT_FALSE(decode_scenario_result("", out));
  EXPECT_FALSE(decode_scenario_result("garbage", out));
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                                 std::size_t{5}}) {
    EXPECT_FALSE(decode_scenario_result(bytes.substr(0, keep), out))
        << "kept " << keep;
  }
  EXPECT_FALSE(decode_scenario_result(bytes + "x", out));  // trailing
  // Foreign codec version.
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(99);
  EXPECT_FALSE(decode_scenario_result(wrong_version, out));
}

TEST(SweepShard, ParseShardSpec) {
  EXPECT_EQ(parse_shard_spec(""), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(parse_shard_spec("0/1"), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(parse_shard_spec("2/4"), (std::pair<int, int>{2, 4}));
  EXPECT_THROW(parse_shard_spec("2"), std::invalid_argument);
  EXPECT_THROW(parse_shard_spec("4/4"), std::invalid_argument);
  EXPECT_THROW(parse_shard_spec("-1/4"), std::invalid_argument);
  EXPECT_THROW(parse_shard_spec("0/0"), std::invalid_argument);
  EXPECT_THROW(parse_shard_spec("a/b"), std::invalid_argument);
  EXPECT_THROW(parse_shard_spec("1/2x"), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::core
