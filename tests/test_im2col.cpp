#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace falvolt::tensor {
namespace {

// Direct convolution reference (stride 1).
Tensor ref_conv(const Tensor& input, const Tensor& weight,
                const ConvGeometry& g, int out_channels) {
  Tensor out({out_channels, g.out_h(), g.out_w()});
  for (int oc = 0; oc < out_channels; ++oc) {
    for (int oy = 0; oy < g.out_h(); ++oy) {
      for (int ox = 0; ox < g.out_w(); ++ox) {
        double acc = 0.0;
        int col = 0;
        for (int c = 0; c < g.in_channels; ++c) {
          for (int ky = 0; ky < g.kernel_h; ++ky) {
            for (int kx = 0; kx < g.kernel_w; ++kx, ++col) {
              const int iy = oy * g.stride + ky - g.pad;
              const int ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              acc += static_cast<double>(
                         input[(static_cast<std::size_t>(c) * g.in_h + iy) *
                                   g.in_w +
                               ix]) *
                     weight.at2(col, oc);
            }
          }
        }
        out[(static_cast<std::size_t>(oc) * g.out_h() + oy) * g.out_w() +
            ox] = static_cast<float>(acc);
      }
    }
  }
  return out;
}

ConvGeometry make_geom(int c, int h, int w, int kernel, int pad) {
  ConvGeometry g;
  g.in_channels = c;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = kernel;
  g.kernel_w = kernel;
  g.stride = 1;
  g.pad = pad;
  return g;
}

TEST(Im2col, GeometryMath) {
  const ConvGeometry g = make_geom(3, 16, 16, 3, 1);
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.patch_size(), 27);
  EXPECT_EQ(g.out_pixels(), 256);
}

TEST(Im2col, NoPadShrinksOutput) {
  const ConvGeometry g = make_geom(1, 5, 5, 3, 0);
  EXPECT_EQ(g.out_h(), 3);
  EXPECT_EQ(g.out_w(), 3);
}

TEST(Im2col, IdentityKernelExtractsCenter) {
  const ConvGeometry g = make_geom(1, 4, 4, 1, 0);
  Tensor in({1, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  Tensor cols({g.out_pixels(), g.patch_size()});
  im2col(in.data(), g, cols.data());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(cols[i], static_cast<float>(i));
}

TEST(Im2col, PaddingReadsZero) {
  const ConvGeometry g = make_geom(1, 2, 2, 3, 1);
  Tensor in({1, 2, 2}, {1, 2, 3, 4});
  Tensor cols({g.out_pixels(), g.patch_size()});
  im2col(in.data(), g, cols.data());
  // Output pixel (0,0): its 3x3 window's top row is entirely padding.
  EXPECT_EQ(cols.at2(0, 0), 0.0f);
  EXPECT_EQ(cols.at2(0, 1), 0.0f);
  EXPECT_EQ(cols.at2(0, 4), 1.0f);  // window center = input (0,0)
}

TEST(Im2col, GemmEquivalentToDirectConv) {
  common::Rng rng(21);
  const ConvGeometry g = make_geom(2, 8, 8, 3, 1);
  const int out_channels = 4;
  Tensor in({2, 8, 8});
  for (auto& v : in) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor w({g.patch_size(), out_channels});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Tensor cols({g.out_pixels(), g.patch_size()});
  im2col(in.data(), g, cols.data());
  const Tensor prod = matmul(cols, w);  // [pixels x out_channels]

  const Tensor ref = ref_conv(in, w, g, out_channels);
  for (int oc = 0; oc < out_channels; ++oc) {
    for (int pix = 0; pix < g.out_pixels(); ++pix) {
      EXPECT_NEAR(prod.at2(pix, oc),
                  ref[static_cast<std::size_t>(oc) * g.out_pixels() + pix],
                  1e-4f);
    }
  }
}

TEST(Im2col, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y (adjoint property that
  // guarantees the conv backward pass is the true gradient).
  common::Rng rng(22);
  const ConvGeometry g = make_geom(2, 6, 5, 3, 1);
  Tensor x({2, 6, 5});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor y({g.out_pixels(), g.patch_size()});
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Tensor cols({g.out_pixels(), g.patch_size()});
  im2col(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }

  Tensor back({2, 6, 5});
  col2im(y.data(), g, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, Col2imAccumulates) {
  const ConvGeometry g = make_geom(1, 3, 3, 1, 0);
  Tensor y({9, 1}, 1.0f);
  Tensor grad({1, 3, 3}, 5.0f);  // pre-existing content must be kept
  col2im(y.data(), g, grad.data());
  for (std::size_t i = 0; i < grad.size(); ++i) EXPECT_EQ(grad[i], 6.0f);
}

}  // namespace
}  // namespace falvolt::tensor
