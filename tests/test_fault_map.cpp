#include "fault/fault_map.h"

#include <gtest/gtest.h>

namespace falvolt::fault {
namespace {

fx::StuckBits sa1(int bit) {
  fx::StuckBits b;
  b.set(bit, fx::StuckType::kStuckAt1);
  return b;
}

fx::StuckBits sa0(int bit) {
  fx::StuckBits b;
  b.set(bit, fx::StuckType::kStuckAt0);
  return b;
}

TEST(FaultMap, EmptyByDefault) {
  FaultMap m(4, 4);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.num_faulty_pes(), 0);
  EXPECT_DOUBLE_EQ(m.fault_rate(), 0.0);
  EXPECT_EQ(m.at(0, 0), nullptr);
}

TEST(FaultMap, AddAndLookup) {
  FaultMap m(4, 4);
  m.add(1, 2, sa1(15));
  EXPECT_TRUE(m.is_faulty(1, 2));
  EXPECT_FALSE(m.is_faulty(2, 1));
  ASSERT_NE(m.at(1, 2), nullptr);
  EXPECT_TRUE(m.at(1, 2)->is_stuck(15));
  EXPECT_EQ(m.num_faulty_pes(), 1);
  EXPECT_DOUBLE_EQ(m.fault_rate(), 1.0 / 16.0);
}

TEST(FaultMap, MergeSamePe) {
  FaultMap m(4, 4);
  m.add(0, 0, sa1(3));
  m.add(0, 0, sa0(5));
  EXPECT_EQ(m.num_faulty_pes(), 1);
  EXPECT_TRUE(m.at(0, 0)->is_stuck(3));
  EXPECT_TRUE(m.at(0, 0)->is_stuck(5));
}

TEST(FaultMap, ConflictingMergeThrows) {
  FaultMap m(4, 4);
  m.add(0, 0, sa1(3));
  EXPECT_THROW(m.add(0, 0, sa0(3)), std::invalid_argument);
}

TEST(FaultMap, BothLevelsInOneAddThrows) {
  FaultMap m(4, 4);
  fx::StuckBits bad;
  bad.sa0_mask = 1;
  bad.sa1_mask = 1;
  EXPECT_THROW(m.add(0, 0, bad), std::invalid_argument);
}

TEST(FaultMap, EmptyBitsThrow) {
  FaultMap m(4, 4);
  EXPECT_THROW(m.add(0, 0, fx::StuckBits{}), std::invalid_argument);
}

TEST(FaultMap, OutOfRangeThrows) {
  FaultMap m(4, 4);
  EXPECT_THROW(m.add(4, 0, sa1(0)), std::out_of_range);
  EXPECT_THROW(m.at(0, -1), std::out_of_range);
  EXPECT_THROW(FaultMap(0, 4), std::invalid_argument);
}

TEST(FaultMap, FaultsEnumeration) {
  FaultMap m(8, 8);
  m.add(1, 2, sa1(15));
  m.add(7, 0, sa0(3));
  const auto faults = m.faults();
  EXPECT_EQ(faults.size(), 2u);
  int seen = 0;
  for (const auto& f : faults) {
    if (f.row == 1 && f.col == 2) {
      EXPECT_TRUE(f.bits.is_stuck(15));
      ++seen;
    }
    if (f.row == 7 && f.col == 0) {
      EXPECT_TRUE(f.bits.is_stuck(3));
      ++seen;
    }
  }
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace falvolt::fault
