#include "fault/prune_mask.h"

#include <gtest/gtest.h>

#include "fault/fault_generator.h"
#include "snn/conv2d.h"
#include "snn/linear.h"
#include "systolic/mapping.h"
#include "tensor/tensor_ops.h"

namespace falvolt::fault {
namespace {

fx::StuckBits sa1_msb() {
  fx::StuckBits b;
  b.set(15, fx::StuckType::kStuckAt1);
  return b;
}

TEST(PruneMask, CleanMapKeepsEverything) {
  FaultMap m(4, 4);
  const tensor::Tensor mask = build_prune_mask(m, 10, 6);
  EXPECT_EQ(count_pruned(mask), 0u);
}

TEST(PruneMask, SingleFaultPrunesAllFolds) {
  FaultMap m(4, 4);
  m.add(1, 2, sa1_msb());
  const tensor::Tensor mask = build_prune_mask(m, 10, 6);
  // k % 4 == 1 -> k in {1, 5, 9}; m % 4 == 2 -> m in {2}. 3 weights.
  EXPECT_EQ(count_pruned(mask), 3u);
  EXPECT_EQ(mask.at2(1, 2), 0.0f);
  EXPECT_EQ(mask.at2(5, 2), 0.0f);
  EXPECT_EQ(mask.at2(9, 2), 0.0f);
  EXPECT_EQ(mask.at2(1, 1), 1.0f);
}

TEST(PruneMask, MatchesWeightsOnPeFormula) {
  common::Rng rng(1);
  FaultSpec spec;
  const FaultMap map = random_fault_map(8, 8, 12, spec, rng);
  systolic::ArrayConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const int k = 37, m = 19;
  const tensor::Tensor mask = build_prune_mask(map, k, m);
  std::size_t expected = 0;
  for (const auto& f : map.faults()) {
    expected += static_cast<std::size_t>(
        systolic::weights_on_pe(k, m, {f.row, f.col}, cfg));
  }
  EXPECT_EQ(count_pruned(mask), expected);
}

TEST(PruneMask, SmallerArrayPrunesMore) {
  // Direct check of the Fig. 5c mechanism at the mask level.
  common::Rng rng(2);
  FaultSpec spec;
  const int k = 72, m = 16;
  const FaultMap small = random_fault_map(4, 4, 4, spec, rng);
  const FaultMap big = random_fault_map(64, 64, 4, spec, rng);
  EXPECT_GT(count_pruned(build_prune_mask(small, k, m)),
            count_pruned(build_prune_mask(big, k, m)));
}

TEST(PruneMask, BadDimensionsThrow) {
  FaultMap m(4, 4);
  EXPECT_THROW(build_prune_mask(m, 0, 5), std::invalid_argument);
}

class NetworkPrunerTest : public ::testing::Test {
 protected:
  NetworkPrunerTest() : rng_(3) {
    net_.emplace<snn::Conv2d>("Conv1", 1, 4, 3, 1, rng_);
    net_.emplace<snn::Linear>("FC1", 16, 8, rng_);
  }
  common::Rng rng_;
  snn::Network net_;
};

TEST_F(NetworkPrunerTest, ApplyZeroesMappedWeights) {
  FaultMap map(4, 4);
  map.add(0, 0, sa1_msb());
  NetworkPruner pruner(net_, map);
  pruner.apply(net_);
  EXPECT_TRUE(pruner.is_pruned(net_));
  EXPECT_GT(pruner.total_pruned(), 0u);
  // Conv1 weight (0, 0) maps to PE (0, 0) and must be zero.
  EXPECT_EQ(net_.matmul_layers()[0]->weight_param().value.at2(0, 0), 0.0f);
}

TEST_F(NetworkPrunerTest, ReportCoversAllLayers) {
  FaultMap map(4, 4);
  map.add(1, 1, sa1_msb());
  NetworkPruner pruner(net_, map);
  const auto& report = pruner.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].layer, "Conv1");
  EXPECT_EQ(report[0].total_weights, 9u * 4u);
  EXPECT_EQ(report[1].layer, "FC1");
  EXPECT_GT(report[0].pruned_fraction(), 0.0);
}

TEST_F(NetworkPrunerTest, ApplyIsIdempotent) {
  FaultMap map(4, 4);
  map.add(2, 3, sa1_msb());
  NetworkPruner pruner(net_, map);
  pruner.apply(net_);
  const auto snap = net_.snapshot_params();
  pruner.apply(net_);
  const auto snap2 = net_.snapshot_params();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    ASSERT_EQ(tensor::max_abs_diff(snap[i], snap2[i]), 0.0);
  }
}

TEST_F(NetworkPrunerTest, IsPrunedDetectsRegrowth) {
  FaultMap map(4, 4);
  map.add(0, 0, sa1_msb());
  NetworkPruner pruner(net_, map);
  pruner.apply(net_);
  EXPECT_TRUE(pruner.is_pruned(net_));
  // Simulate an optimizer step writing into a pruned weight.
  net_.matmul_layers()[0]->weight_param().value.at2(0, 0) = 0.5f;
  EXPECT_FALSE(pruner.is_pruned(net_));
  pruner.apply(net_);
  EXPECT_TRUE(pruner.is_pruned(net_));
}

TEST_F(NetworkPrunerTest, FullFaultRatePrunesEverything) {
  common::Rng rng(4);
  const FaultMap map = random_fault_map(4, 4, 16, FaultSpec{}, rng);
  NetworkPruner pruner(net_, map);
  pruner.apply(net_);
  for (const auto& r : pruner.report()) {
    EXPECT_EQ(r.pruned_weights, r.total_weights);
  }
}

}  // namespace
}  // namespace falvolt::fault
