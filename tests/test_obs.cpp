// obs telemetry: counter correctness under concurrent writers, the
// shared metrics JSON encoder, the Chrome-trace emitter's lifecycle and
// event shape, and — the contract everything else rests on — byte
// identity of sweep tables and fingerprints with tracing on vs off.
// The whole file also runs under the ASan/UBSan job, which is what
// makes the multi-threaded counter/span tests load-bearing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_char(const std::string& s, char c) {
  std::size_t n = 0;
  for (const char x : s) {
    if (x == c) ++n;
  }
  return n;
}

// ------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterSumsConcurrentAddsExactly) {
  Counter& c = counter("test.obs.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetrics, RegistryReturnsOneImmortalInstancePerName) {
  Counter& a = counter("test.obs.identity");
  Counter& b = counter("test.obs.identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = gauge("test.obs.gauge");
  Gauge& g2 = gauge("test.obs.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsMetrics, GaugeIsLastWriteWins) {
  Gauge& g = gauge("test.obs.gauge_lww");
  g.set(3);
  g.set(17);
  EXPECT_EQ(g.value(), 17u);
}

TEST(ObsMetrics, ScopedTimerAccumulatesNsAndCount) {
  Counter& ns = counter("test.obs.timer.ns");
  Counter& count = counter("test.obs.timer.count");
  ns.reset();
  count.reset();
  { ScopedTimer t(ns, count); }
  { ScopedTimer t(ns, count); }
  EXPECT_EQ(count.value(), 2u);
}

TEST(ObsMetrics, SnapshotIsSortedAndMergesShards) {
  counter("test.obs.snap.b").reset();
  counter("test.obs.snap.a").reset();
  counter("test.obs.snap.b").add(5);
  counter("test.obs.snap.a").add(2);
  gauge("test.obs.snap.g").set(9);

  const std::vector<MetricSample> samples = snapshot_metrics();
  std::uint64_t a = 0, b = 0, g = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name)
        << "snapshot must be strictly name-sorted";
  }
  for (const MetricSample& s : samples) {
    if (s.name == "test.obs.snap.a") a = s.value;
    if (s.name == "test.obs.snap.b") b = s.value;
    if (s.name == "test.obs.snap.g") g = s.value;
  }
  EXPECT_EQ(a, 2u);
  EXPECT_EQ(b, 5u);
  EXPECT_EQ(g, 9u);
}

TEST(ObsMetrics, EncodeMetricsJsonShape) {
  EXPECT_EQ(encode_metrics_json({}), "{}");
  const std::vector<MetricSample> samples = {{"a.b", 1}, {"c \"q\"", 2}};
  EXPECT_EQ(encode_metrics_json(samples),
            "{\n  \"a.b\": 1,\n  \"c \\\"q\\\"\": 2\n}");
  EXPECT_EQ(encode_metrics_json(samples, 2),
            "{\n    \"a.b\": 1,\n    \"c \\\"q\\\"\": 2\n  }");
}

TEST(ObsMetrics, WriteMetricsJsonWritesWrapperAndFailsFast) {
  const std::string path =
      ::testing::TempDir() + "falvolt_obs_metrics_dump.json";
  counter("test.obs.dump").add(1);
  write_metrics_json(path);
  const std::string body = read_file(path);
  EXPECT_NE(body.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(body.find("\"test.obs.dump\""), std::string::npos);
  fs::remove(path);

  EXPECT_THROW(
      write_metrics_json("/nonexistent_dir_for_obs_test/metrics.json"),
      std::runtime_error);
}

// --------------------------------------------------------------- trace

TEST(ObsTrace, ResolveTracePathPrecedence) {
  unsetenv("FALVOLT_TRACE");
  EXPECT_EQ(resolve_trace_path(""), "");
  EXPECT_EQ(resolve_trace_path("none"), "");
  EXPECT_EQ(resolve_trace_path("a.json"), "a.json");
  setenv("FALVOLT_TRACE", "env.json", 1);
  EXPECT_EQ(resolve_trace_path(""), "env.json");
  EXPECT_EQ(resolve_trace_path("flag.json"), "flag.json")
      << "an explicit flag must beat the environment";
  EXPECT_EQ(resolve_trace_path("none"), "")
      << "--trace none must disable even with $FALVOLT_TRACE set";
  unsetenv("FALVOLT_TRACE");
}

TEST(ObsTrace, SpansAreInertWhileOff) {
  ASSERT_FALSE(trace_enabled());
  EXPECT_EQ(trace_stop(), 0u) << "stop without start is a no-op";
  TraceSpan span("test", "inert");
  span.arg("k", "v");
  span.arg("n", 42);
  set_trace_thread_name("nobody");  // no-op while off
}

TEST(ObsTrace, StartFailsFastOnBadPathAndDoubleStart) {
  EXPECT_THROW(trace_start("/nonexistent_dir_for_obs_test/t.json"),
               std::runtime_error);
  EXPECT_FALSE(trace_enabled());

  const std::string path = ::testing::TempDir() + "falvolt_obs_double.json";
  trace_start(path);
  EXPECT_TRUE(trace_enabled());
  EXPECT_THROW(trace_start(path), std::logic_error);
  trace_stop();
  EXPECT_FALSE(trace_enabled());
  fs::remove(path);
}

TEST(ObsTrace, ConcurrentSpansProduceLoadableChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "falvolt_obs_trace.json";
  trace_start(path);
  set_trace_thread_name("main");
  {
    TraceSpan top("test", "top");
    top.arg("str", std::string("value"));
    top.arg("lit", "literal");
    top.arg("u64", std::uint64_t{7});
    top.arg("i", -3);
    top.arg("flag", true);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([t] {
        set_trace_thread_name("worker " + std::to_string(t));
        for (int i = 0; i < 50; ++i) {
          TraceSpan span("test", "unit");
          span.arg("worker", t);
          span.arg("i", i);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const std::size_t events = trace_stop();
  EXPECT_FALSE(trace_enabled());
  // 1 enclosing span + 4 workers x 50 spans ("M" metadata records are
  // written to the file but not counted).
  EXPECT_EQ(events, 201u);

  const std::string body = read_file(path);
  // Structural Chrome trace-event checks (format per the spec's JSON
  // Object variant): the envelope, complete events, thread metadata,
  // args, and balanced nesting. Perfetto-level validation runs in CI
  // with a real JSON parser.
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(body.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(body.find("\"worker 3\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(body.find("\"flag\": true"), std::string::npos);
  EXPECT_NE(body.find("\"i\": -3"), std::string::npos);
  EXPECT_EQ(count_char(body, '{'), count_char(body, '}'));
  EXPECT_EQ(count_char(body, '['), count_char(body, ']'));
  fs::remove(path);
}

TEST(ObsTrace, ThreadIdsAreStableWithinAThread) {
  const int id1 = trace_thread_id();
  const int id2 = trace_thread_id();
  EXPECT_EQ(id1, id2);
  int other = id1;
  std::thread([&other] { other = trace_thread_id(); }).join();
  EXPECT_NE(other, id1);
}

}  // namespace
}  // namespace falvolt::obs

// ------------------------------------------- trace-on/off byte identity
//
// The telemetry layer's core promise: tables, CSVs, and fingerprints are
// byte-identical with tracing on or off. Mirrors the fixture patterns of
// test_sweep_store.cpp (workload-free scenario functions, a throwaway
// store per run).

namespace falvolt::core {
namespace {

std::string without_run_line(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"run\": {") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class ObsByteIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_obs_identity_test";
    fs::remove_all(dir_);
    trace_path_ = ::testing::TempDir() + "falvolt_obs_identity_trace.json";
  }
  void TearDown() override {
    if (obs::trace_enabled()) obs::trace_stop();  // failed-ASSERT hygiene
    fs::remove_all(dir_);
    fs::remove(trace_path_);
  }

  // `retrain` mirrors the two grid families the figure benches run:
  // eval-only scenarios and retrain (mitigation) scenarios.
  static std::vector<Scenario> grid(bool retrain, int n = 6) {
    std::vector<Scenario> scenarios;
    for (int i = 0; i < n; ++i) {
      Scenario s;
      s.key = "cell=" + std::to_string(i);
      s.fault_count = i;
      s.fault_seed = 100 + static_cast<std::uint64_t>(i);
      s.retrain = retrain;
      scenarios.push_back(s);
    }
    return scenarios;
  }

  static SweepStoreOptions store_opts(const std::string& dir) {
    SweepStoreOptions st;
    st.dir = dir;
    st.bench = "grid_test";
    st.config = {{"epochs", "4"}};
    return st;
  }

  static SweepRunner::ScenarioFn cell_fn() {
    return [](const Scenario& s, const SweepContext&) {
      ScenarioResult out;
      out.metrics = {{"value", 10.0 * static_cast<double>(s.fault_count)},
                     {"retrained", s.retrain ? 1.0 : 0.0}};
      out.csv_rows = {{s.key, "row"}};
      out.log = "log " + s.key + "\n";
      return out;
    };
  }

  // Scenario-parallel runner so spans/counters are exercised from
  // concurrent workers, as in a real fleet shard.
  static SweepRunner runner(const SweepStoreOptions& st) {
    WorkloadOptions wo;
    wo.sweep_parallel = 4;
    SweepRunner r{wo};
    r.set_prepare_baselines(false);
    r.set_store(st);
    return r;
  }

  std::string dir_;
  std::string trace_path_;
};

TEST_F(ObsByteIdentityTest, ColdRunTablesMatchWithTracingOnOrOff) {
  for (const bool retrain : {false, true}) {
    SCOPED_TRACE(retrain ? "retrain grid" : "eval grid");
    const std::vector<Scenario> scenarios = grid(retrain);
    const std::string dir_off = dir_ + (retrain ? "/r_off" : "/e_off");
    const std::string dir_on = dir_ + (retrain ? "/r_on" : "/e_on");

    const ResultTable t_off =
        runner(store_opts(dir_off)).run(scenarios, cell_fn());

    obs::trace_start(trace_path_);
    const ResultTable t_on =
        runner(store_opts(dir_on)).run(scenarios, cell_fn());
    const std::size_t events = obs::trace_stop();

    ASSERT_TRUE(t_off.complete());
    ASSERT_TRUE(t_on.complete());
    EXPECT_GT(events, 0u) << "a traced sweep must emit spans";

    // Two independent cold runs: the CSV table (key/tag/dataset/metrics
    // — no timing columns) must match byte-for-byte, and every cell
    // must land on the same content address.
    EXPECT_EQ(t_off.to_csv(), t_on.to_csv());
    ASSERT_EQ(t_off.size(), t_on.size());
    for (std::size_t i = 0; i < t_off.size(); ++i) {
      EXPECT_EQ(t_off.at(i).fingerprint, t_on.at(i).fingerprint);
      EXPECT_EQ(t_off.at(i).metrics, t_on.at(i).metrics);
      EXPECT_EQ(t_off.at(i).csv_rows, t_on.at(i).csv_rows);
      EXPECT_EQ(t_off.at(i).log, t_on.at(i).log);
    }
  }
}

TEST_F(ObsByteIdentityTest, TracedWarmReplayIsByteIdenticalIncludingJson) {
  // Per-cell seconds are measured on compute and replayed from the
  // store, so full-JSON identity (minus the volatile "run" line) is the
  // cold-vs-warm contract — here with telemetry OFF for the cold run
  // and ON for the warm one, proving the trace layer perturbs neither
  // the replay path nor the serialized tables.
  for (const bool retrain : {false, true}) {
    SCOPED_TRACE(retrain ? "retrain grid" : "eval grid");
    const std::vector<Scenario> scenarios = grid(retrain);
    const std::string dir = dir_ + (retrain ? "/r_warm" : "/e_warm");

    const ResultTable t_cold =
        runner(store_opts(dir)).run(scenarios, cell_fn());

    obs::trace_start(trace_path_);
    const ResultTable t_warm =
        runner(store_opts(dir)).run(scenarios, cell_fn());
    obs::trace_stop();

    ASSERT_TRUE(t_warm.complete());
    EXPECT_EQ(t_warm.computed_cells(), 0u)
        << "tracing must not invalidate cached cells";
    EXPECT_EQ(t_warm.cached_cells(), scenarios.size());
    EXPECT_EQ(t_cold.to_csv(), t_warm.to_csv());
    EXPECT_EQ(without_run_line(t_cold.to_json("grid_test")),
              without_run_line(t_warm.to_json("grid_test")));
  }
}

TEST_F(ObsByteIdentityTest, SweepCountersReconcileWithCellsComputed) {
  // The fleet-summary consistency the perf gate relies on: cells
  // computed/cached as counted by the metrics registry must reconcile
  // with what the tables report.
  obs::counter("sweep.cells.computed").reset();
  obs::counter("sweep.cells.cached").reset();
  obs::counter("store.chain.miss").reset();

  const std::vector<Scenario> scenarios = grid(/*retrain=*/false);
  const std::string dir = dir_ + "/counters";
  const ResultTable t_cold =
      runner(store_opts(dir)).run(scenarios, cell_fn());
  const ResultTable t_warm =
      runner(store_opts(dir)).run(scenarios, cell_fn());

  EXPECT_EQ(obs::counter("sweep.cells.computed").value(),
            t_cold.computed_cells());
  EXPECT_EQ(obs::counter("sweep.cells.cached").value(),
            t_warm.cached_cells());
  EXPECT_GE(obs::counter("store.chain.miss").value(),
            t_cold.computed_cells())
      << "every computed cell was first a store miss";
}

}  // namespace
}  // namespace falvolt::core
