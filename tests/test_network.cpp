#include "snn/network.h"

#include <gtest/gtest.h>

#include "snn/conv2d.h"
#include "snn/flatten.h"
#include "snn/linear.h"
#include "snn/model_zoo.h"
#include "snn/plif.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::snn {
namespace {

Network tiny_net(std::uint64_t seed = 1) {
  common::Rng rng(seed);
  Network net("tiny");
  net.emplace<Conv2d>("SEncConv", 1, 2, 3, 1, rng);
  net.emplace<Plif>("SEncPLIF");
  net.emplace<Conv2d>("Conv1", 2, 2, 3, 1, rng);
  net.emplace<Plif>("PLIF1");
  net.emplace<Flatten>("Flatten");
  net.emplace<Linear>("FC1", 2 * 4 * 4, 3, rng);
  net.emplace<Plif>("PLIF_FC1");
  return net;
}

TEST(Network, ForwardProducesClassOutputs) {
  Network net = tiny_net();
  net.reset_state();
  common::Rng rng(2);
  tensor::Tensor x = falvolt::testutil::random_tensor({2, 1, 4, 4}, rng,
                                                      0.0, 1.0);
  const tensor::Tensor y = net.forward(x, 0, Mode::kEval);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 3}));
}

TEST(Network, ParamsCollectsAllLayers) {
  Network net = tiny_net();
  // SEncConv(w, b) + SEncPLIF(vth, w_tau) + Conv1(w, b) + PLIF1(2) +
  // FC1(w, b) + PLIF_FC1(2) = 12 params.
  EXPECT_EQ(net.params().size(), 12u);
}

TEST(Network, ZeroGradClearsAll) {
  Network net = tiny_net();
  for (Param* p : net.params()) p->grad.fill(3.0f);
  net.zero_grad();
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      ASSERT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST(Network, SpikingLayerDiscovery) {
  Network net = tiny_net();
  EXPECT_EQ(net.spiking_layers().size(), 3u);
  // The encoder PLIF must be excluded from the hidden set (Fig. 6 reports
  // only hidden conv/FC thresholds).
  const auto hidden = net.hidden_spiking_layers();
  ASSERT_EQ(hidden.size(), 2u);
  EXPECT_EQ(hidden[0]->name(), "PLIF1");
  EXPECT_EQ(hidden[1]->name(), "PLIF_FC1");
}

TEST(Network, MatmulLayerDiscovery) {
  Network net = tiny_net();
  const auto mm = net.matmul_layers();
  ASSERT_EQ(mm.size(), 3u);
  EXPECT_EQ(mm[0]->matmul_name(), "SEncConv");
  EXPECT_EQ(mm[2]->matmul_name(), "FC1");
}

TEST(Network, SetTrainVthOnlyTouchesHiddenLayers) {
  Network net = tiny_net();
  net.set_train_vth(true);
  for (Plif* p : net.hidden_spiking_layers()) {
    EXPECT_TRUE(p->train_vth());
  }
  // Encoder layer stays frozen.
  EXPECT_FALSE(net.spiking_layers()[0]->train_vth());
  net.set_train_vth(false);
  for (Plif* p : net.spiking_layers()) EXPECT_FALSE(p->train_vth());
}

TEST(Network, SnapshotRestoreRoundTrip) {
  Network net = tiny_net();
  const auto snap = net.snapshot_params();
  const auto params = net.params();
  params[0]->value.fill(9.0f);
  net.restore_params(snap);
  EXPECT_EQ(tensor::max_abs_diff(params[0]->value, snap[0]), 0.0);
}

TEST(Network, RestoreRejectsWrongInventory) {
  Network net = tiny_net();
  auto snap = net.snapshot_params();
  snap.pop_back();
  EXPECT_THROW(net.restore_params(snap), std::invalid_argument);
}

TEST(Network, DeterministicGivenSeedAndInput) {
  Network a = tiny_net(5);
  Network b = tiny_net(5);
  common::Rng rng(3);
  tensor::Tensor x = falvolt::testutil::random_tensor({1, 1, 4, 4}, rng,
                                                      0.0, 1.0);
  a.reset_state();
  b.reset_state();
  const tensor::Tensor ya = a.forward(x, 0, Mode::kEval);
  const tensor::Tensor yb = b.forward(x, 0, Mode::kEval);
  EXPECT_EQ(tensor::max_abs_diff(ya, yb), 0.0);
}

TEST(Network, NumTrainableScalarsExcludesFrozen) {
  Network net = tiny_net();
  const std::size_t all = net.num_trainable_scalars();
  net.set_train_vth(true);
  // vth params were already counted? They are Params with trainable flag;
  // enabling training on 2 hidden layers adds 2 scalars.
  EXPECT_EQ(net.num_trainable_scalars(), all + 2);
}

TEST(ModelZoo, DigitClassifierShapes) {
  Network net = make_digit_classifier("digit", 1, 16, 10);
  net.reset_state();
  tensor::Tensor x({2, 1, 16, 16}, 0.5f);
  const tensor::Tensor y = net.forward(x, 0, Mode::kEval);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
  // Fig. 6a layout: exactly 4 hidden spiking layers Conv1/Conv2/FC1/FC2.
  const auto hidden = net.hidden_spiking_layers();
  ASSERT_EQ(hidden.size(), 4u);
  EXPECT_EQ(hidden[0]->name(), "PLIF1");
  EXPECT_EQ(hidden[3]->name(), "PLIF_FC2");
}

TEST(ModelZoo, GestureClassifierShapes) {
  Network net = make_gesture_classifier("gesture", 2, 24, 11);
  net.reset_state();
  tensor::Tensor x({1, 2, 24, 24}, 0.0f);
  const tensor::Tensor y = net.forward(x, 0, Mode::kEval);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 11}));
  // Fig. 6c layout: Conv1..Conv5 + FC1 + FC2 -> 7 hidden spiking layers.
  EXPECT_EQ(net.hidden_spiking_layers().size(), 7u);
}

TEST(ModelZoo, CanvasValidation) {
  EXPECT_THROW(make_digit_classifier("d", 1, 18, 10), std::invalid_argument);
  EXPECT_THROW(make_gesture_classifier("g", 2, 20, 11),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::snn
