#include "fault/fault_map_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "fault/fault_generator.h"

namespace falvolt::fault {
namespace {

bool maps_equal(const FaultMap& a, const FaultMap& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.num_faulty_pes() != b.num_faulty_pes()) return false;
  for (const auto& f : a.faults()) {
    const fx::StuckBits* other = b.at(f.row, f.col);
    if (!other || !(*other == f.bits)) return false;
  }
  return true;
}

TEST(FaultMapIo, EmptyMapRoundTrip) {
  const FaultMap m(8, 16);
  const FaultMap back = fault_map_from_text(fault_map_to_text(m));
  EXPECT_TRUE(maps_equal(m, back));
  EXPECT_EQ(back.rows(), 8);
  EXPECT_EQ(back.cols(), 16);
}

TEST(FaultMapIo, RandomMapRoundTrip) {
  common::Rng rng(1);
  FaultSpec spec;
  spec.random_type = true;
  spec.bits_per_pe = 2;
  const FaultMap m = random_fault_map(32, 32, 40, spec, rng);
  const FaultMap back = fault_map_from_text(fault_map_to_text(m));
  EXPECT_TRUE(maps_equal(m, back));
}

TEST(FaultMapIo, TextFormatIsCanonical) {
  FaultMap m(4, 4);
  fx::StuckBits b1;
  b1.set(15, fx::StuckType::kStuckAt1);
  fx::StuckBits b2;
  b2.set(0, fx::StuckType::kStuckAt0);
  b2.set(3, fx::StuckType::kStuckAt1);
  m.add(2, 1, b1);
  m.add(0, 3, b2);
  const std::string text = fault_map_to_text(m);
  EXPECT_EQ(text,
            "falvolt-faultmap v1\n"
            "dims 4 4\n"
            "pe 0 3 sa0 0 sa1 3\n"
            "pe 2 1 sa1 15\n");
}

TEST(FaultMapIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# produced by tester 7\n"
      "falvolt-faultmap v1\n"
      "# die A-113\n"
      "dims 4 4\n"
      "pe 1 1 sa1 5\n";
  const FaultMap m = fault_map_from_text(text);
  EXPECT_EQ(m.num_faulty_pes(), 1);
  EXPECT_TRUE(m.at(1, 1)->is_stuck(5));
}

TEST(FaultMapIo, MalformedInputsThrowWithLineNumbers) {
  EXPECT_THROW(fault_map_from_text(""), std::runtime_error);
  EXPECT_THROW(fault_map_from_text("wrong header\n"), std::runtime_error);
  EXPECT_THROW(fault_map_from_text("falvolt-faultmap v1\n"),
               std::runtime_error);
  EXPECT_THROW(fault_map_from_text("falvolt-faultmap v1\ndims 0 4\n"),
               std::runtime_error);
  EXPECT_THROW(
      fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 1 1\n"),
      std::runtime_error);
  EXPECT_THROW(
      fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 1 1 sa2 3\n"),
      std::runtime_error);
  EXPECT_THROW(
      fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 9 1 sa1 3\n"),
      std::runtime_error);
  // A bit stuck at both levels must be rejected via FaultMap::add.
  EXPECT_THROW(
      fault_map_from_text(
          "falvolt-faultmap v1\ndims 4 4\npe 1 1 sa0 3 sa1 3\n"),
      std::runtime_error);
}

TEST(FaultMapIo, MissingBitIndexReportedAsMalformedNotEmpty) {
  // `pe R C sa0` (level token without a bit index) used to be reported
  // as "pe line without faults"; it must be diagnosed as a malformed
  // trailing token instead.
  try {
    fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 1 1 sa0\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing a bit index"), std::string::npos) << what;
    EXPECT_EQ(what.find("without faults"), std::string::npos) << what;
  }
  // Same for a level whose bit index is garbled mid-list.
  try {
    fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 1 1 sa0 x\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing a bit index"), std::string::npos) << what;
  }
  // A genuinely empty fault list keeps its dedicated diagnostic.
  try {
    fault_map_from_text("falvolt-faultmap v1\ndims 4 4\npe 1 1\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("without faults"),
              std::string::npos);
  }
}

TEST(FaultMapIo, FileRoundTrip) {
  common::Rng rng(2);
  const FaultMap m =
      random_fault_map(16, 16, 12, worst_case_spec(16), rng);
  const std::string path = ::testing::TempDir() + "falvolt_map_io.txt";
  save_fault_map(m, path);
  const FaultMap back = load_fault_map(path);
  EXPECT_TRUE(maps_equal(m, back));
  std::filesystem::remove(path);
}

TEST(FaultMapIo, MissingFileThrows) {
  EXPECT_THROW(load_fault_map("/nonexistent/map.txt"), std::runtime_error);
}

}  // namespace
}  // namespace falvolt::fault
