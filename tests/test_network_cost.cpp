#include "systolic/network_cost.h"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.h"
#include "snn/model_zoo.h"

namespace falvolt::systolic {
namespace {

struct Fixture {
  Fixture() {
    data::SyntheticMnistConfig dc;
    dc.train_size = 10;
    dc.test_size = 10;
    split = data::make_synthetic_mnist(dc);
    net = snn::make_digit_classifier("d", 1, 16, 10);
  }
  data::DatasetSplit split{data::Dataset("a", 1, 1, 1, 1, 1),
                           data::Dataset("b", 1, 1, 1, 1, 1)};
  snn::Network net;
};

TEST(NetworkCost, CoversEveryMatmulLayerInOrder) {
  Fixture f;
  ArrayConfig array;
  array.rows = array.cols = 64;
  const NetworkCostReport r =
      estimate_network_cost(f.net, array, f.split.test);
  ASSERT_EQ(r.layers.size(), 5u);
  EXPECT_EQ(r.layers[0].layer, "SEncConv");
  EXPECT_EQ(r.layers[1].layer, "Conv1");
  EXPECT_EQ(r.layers[4].layer, "FC2");
}

TEST(NetworkCost, GeometryMatchesLayers) {
  Fixture f;
  ArrayConfig array;
  array.rows = array.cols = 64;
  const NetworkCostReport r =
      estimate_network_cost(f.net, array, f.split.test);
  // Conv1: 16x16 output pixels, K = 8*3*3, N = 8 channels.
  EXPECT_EQ(r.layers[1].gemm_m, 256);
  EXPECT_EQ(r.layers[1].gemm_k, 72);
  EXPECT_EQ(r.layers[1].gemm_n, 8);
  // FC2: one row (batch 1), K = 32 hidden, N = 10 classes.
  EXPECT_EQ(r.layers[4].gemm_m, 1);
  EXPECT_EQ(r.layers[4].gemm_k, 32);
  EXPECT_EQ(r.layers[4].gemm_n, 10);
}

TEST(NetworkCost, TotalsAreLayerSums) {
  Fixture f;
  ArrayConfig array;
  array.rows = array.cols = 64;
  const NetworkCostReport r =
      estimate_network_cost(f.net, array, f.split.test);
  std::uint64_t cycles = 0;
  double energy = 0.0;
  for (const auto& l : r.layers) {
    cycles += l.cost.cycles;
    energy += l.cost.energy_nj;
  }
  EXPECT_EQ(r.total_cycles, cycles);
  EXPECT_NEAR(r.total_energy_nj, energy, 1e-9);
  EXPECT_EQ(r.time_steps, f.split.test.time_steps());
  EXPECT_NEAR(r.inference_latency_us(),
              r.total_latency_us * r.time_steps, 1e-9);
}

TEST(NetworkCost, MeasuredDensitiesAreSane) {
  Fixture f;
  const auto densities = measure_spike_densities(f.net, f.split.test, 4);
  ASSERT_EQ(densities.size(), 5u);
  for (const double d : densities) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // The encoder conv sees the analog glyph input: sparse but nonzero.
  EXPECT_GT(densities[0], 0.0);
  EXPECT_LT(densities[0], 0.6);
}

TEST(NetworkCost, ZeroDensityRequestsMeasurement) {
  Fixture f;
  ArrayConfig array;
  array.rows = array.cols = 64;
  const NetworkCostReport measured =
      estimate_network_cost(f.net, array, f.split.test, /*density=*/0.0);
  for (const auto& l : measured.layers) {
    EXPECT_GE(l.spike_density, 0.0);
    EXPECT_LE(l.spike_density, 1.0);
  }
}

TEST(NetworkCost, LargerArrayReducesCycles) {
  Fixture f;
  ArrayConfig small;
  small.rows = small.cols = 8;
  ArrayConfig big;
  big.rows = big.cols = 128;
  const auto cost_small =
      estimate_network_cost(f.net, small, f.split.test);
  const auto cost_big = estimate_network_cost(f.net, big, f.split.test);
  EXPECT_GT(cost_small.total_cycles, cost_big.total_cycles);
}

TEST(NetworkCost, EmptyDatasetThrows) {
  Fixture f;
  data::Dataset empty("e", 10, 4, 1, 16, 16);
  ArrayConfig array;
  EXPECT_THROW(estimate_network_cost(f.net, array, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::systolic
