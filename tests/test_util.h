#pragma once
// Shared helpers for the test suite: random tensor filling and
// finite-difference gradient checking of layers trained through BPTT.

#include <functional>
#include <vector>

#include "common/rng.h"
#include "snn/layer.h"
#include "tensor/tensor.h"

namespace falvolt::testutil {

inline void fill_random(tensor::Tensor& t, common::Rng& rng, double lo = -1.0,
                        double hi = 1.0) {
  for (auto& v : t) v = static_cast<float>(rng.uniform(lo, hi));
}

inline tensor::Tensor random_tensor(tensor::Shape shape, common::Rng& rng,
                                    double lo = -1.0, double hi = 1.0) {
  tensor::Tensor t(std::move(shape));
  fill_random(t, rng, lo, hi);
  return t;
}

/// Scalar loss of a layer run over T time steps: sum of c[t] . y[t] where
/// y[t] is a fixed random cotangent. Returns the loss; used both for the
/// analytic backward (y[t] is the output gradient) and for finite
/// differences.
inline double sequence_loss(snn::Layer& layer,
                            const std::vector<tensor::Tensor>& inputs,
                            const std::vector<tensor::Tensor>& cotangents,
                            snn::Mode mode = snn::Mode::kTrain) {
  layer.reset_state();
  double loss = 0.0;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const tensor::Tensor out =
        layer.forward(inputs[t], static_cast<int>(t), mode);
    for (std::size_t i = 0; i < out.size(); ++i) {
      loss += static_cast<double>(out[i]) * cotangents[t][i];
    }
  }
  return loss;
}

/// Analytic input gradients via the layer's backward pass (returns
/// d(loss)/d(input[t]) for every t). Parameter gradients accumulate into
/// the layer's Param::grad fields (zero them first).
inline std::vector<tensor::Tensor> analytic_grads(
    snn::Layer& layer, const std::vector<tensor::Tensor>& inputs,
    const std::vector<tensor::Tensor>& cotangents) {
  for (snn::Param* p : layer.params()) p->zero_grad();
  sequence_loss(layer, inputs, cotangents);
  std::vector<tensor::Tensor> grads(inputs.size());
  for (int t = static_cast<int>(inputs.size()) - 1; t >= 0; --t) {
    grads[static_cast<std::size_t>(t)] =
        layer.backward(cotangents[static_cast<std::size_t>(t)], t);
  }
  return grads;
}

/// Central finite difference of `sequence_loss` w.r.t. one scalar.
inline double numeric_grad(snn::Layer& layer,
                           std::vector<tensor::Tensor>& inputs,
                           const std::vector<tensor::Tensor>& cotangents,
                           float* scalar, double eps = 1e-3) {
  const float saved = *scalar;
  *scalar = static_cast<float>(saved + eps);
  const double plus = sequence_loss(layer, inputs, cotangents);
  *scalar = static_cast<float>(saved - eps);
  const double minus = sequence_loss(layer, inputs, cotangents);
  *scalar = saved;
  return (plus - minus) / (2.0 * eps);
}

}  // namespace falvolt::testutil
