#include "data/encoders.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace falvolt::data {
namespace {

tensor::Tensor gradient_image() {
  tensor::Tensor img({1, 4, 4});
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<float>(i) / 15.0f;
  }
  return img;
}

TEST(RateEncode, OutputBinaryAndShape) {
  common::Rng rng(1);
  const tensor::Tensor frames = rate_encode(gradient_image(), 8, rng);
  EXPECT_EQ(frames.shape(), (tensor::Shape{8, 1, 4, 4}));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(frames[i] == 0.0f || frames[i] == 1.0f);
  }
}

TEST(RateEncode, FiringRateTracksIntensity) {
  common::Rng rng(2);
  tensor::Tensor img({1, 1, 2});
  img[0] = 0.1f;
  img[1] = 0.9f;
  const int T = 2000;
  const tensor::Tensor frames = rate_encode(img, T, rng);
  const tensor::Tensor rate = spike_rate(frames);
  EXPECT_NEAR(rate[0], 0.1f, 0.03f);
  EXPECT_NEAR(rate[1], 0.9f, 0.03f);
}

TEST(RateEncode, ZeroAndOnePixelsAreDeterministic) {
  common::Rng rng(3);
  tensor::Tensor img({1, 1, 2});
  img[0] = 0.0f;
  img[1] = 1.0f;
  const tensor::Tensor frames = rate_encode(img, 50, rng);
  const tensor::Tensor rate = spike_rate(frames);
  EXPECT_EQ(rate[0], 0.0f);
  EXPECT_EQ(rate[1], 1.0f);
}

TEST(LatencyEncode, BrighterSpikesEarlier) {
  tensor::Tensor img({1, 1, 3});
  img[0] = 1.0f;   // earliest
  img[1] = 0.5f;   // middle
  img[2] = 0.05f;  // late
  const int T = 11;
  const tensor::Tensor frames = latency_encode(img, T);
  // Each nonzero pixel spikes exactly once.
  EXPECT_EQ(tensor::count_nonzero(frames), 3u);
  int first_t = -1, mid_t = -1, late_t = -1;
  for (int t = 0; t < T; ++t) {
    const std::size_t off = static_cast<std::size_t>(t) * 3;
    if (frames[off + 0] == 1.0f) first_t = t;
    if (frames[off + 1] == 1.0f) mid_t = t;
    if (frames[off + 2] == 1.0f) late_t = t;
  }
  EXPECT_EQ(first_t, 0);
  EXPECT_LT(first_t, mid_t);
  EXPECT_LT(mid_t, late_t);
}

TEST(LatencyEncode, ZeroPixelNeverSpikes) {
  tensor::Tensor img({1, 1, 1});
  const tensor::Tensor frames = latency_encode(img, 5);
  EXPECT_EQ(tensor::count_nonzero(frames), 0u);
}

TEST(DirectEncode, RepeatsImage) {
  const tensor::Tensor img = gradient_image();
  const tensor::Tensor frames = direct_encode(img, 3);
  for (int t = 0; t < 3; ++t) {
    for (std::size_t i = 0; i < img.size(); ++i) {
      EXPECT_EQ(frames[static_cast<std::size_t>(t) * img.size() + i],
                img[i]);
    }
  }
}

TEST(SpikeRate, AveragesOverTime) {
  tensor::Tensor frames({2, 1, 1, 1});
  frames[0] = 1.0f;
  frames[1] = 0.0f;
  const tensor::Tensor rate = spike_rate(frames);
  EXPECT_FLOAT_EQ(rate[0], 0.5f);
}

TEST(Encoders, InvalidShapesThrow) {
  common::Rng rng(4);
  tensor::Tensor bad({4, 4});
  EXPECT_THROW(rate_encode(bad, 4, rng), std::invalid_argument);
  EXPECT_THROW(latency_encode(bad, 4), std::invalid_argument);
  EXPECT_THROW(direct_encode(bad, 4), std::invalid_argument);
  EXPECT_THROW(spike_rate(bad), std::invalid_argument);
  EXPECT_THROW(latency_encode(gradient_image(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::data
