#include <gtest/gtest.h>

#include "data/synthetic_dvs_gesture.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_nmnist.h"
#include "tensor/tensor_ops.h"

namespace falvolt::data {
namespace {

TEST(Dataset, GeometryValidation) {
  EXPECT_THROW(Dataset("x", 0, 1, 1, 1, 1), std::invalid_argument);
  Dataset ds("x", 2, 3, 1, 4, 4);
  Sample s;
  s.frames = tensor::Tensor({3, 1, 4, 4});
  s.label = 1;
  EXPECT_NO_THROW(ds.add(s));
  s.frames = tensor::Tensor({2, 1, 4, 4});
  EXPECT_THROW(ds.add(s), std::invalid_argument);
  s.frames = tensor::Tensor({3, 1, 4, 4});
  s.label = 2;
  EXPECT_THROW(ds.add(s), std::invalid_argument);
}

TEST(Dataset, IndexingAndHistogram) {
  Dataset ds("x", 2, 1, 1, 2, 2);
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.frames = tensor::Tensor({1, 1, 2, 2});
    s.label = i % 2;
    ds.add(std::move(s));
  }
  EXPECT_EQ(ds.size(), 5);
  EXPECT_EQ(ds[4].label, 0);
  EXPECT_THROW(ds[5], std::out_of_range);
  const auto h = ds.class_histogram();
  EXPECT_EQ(h[0], 3);
  EXPECT_EQ(h[1], 2);
}

TEST(SyntheticMnist, GeometryAndBalance) {
  SyntheticMnistConfig cfg;
  cfg.train_size = 40;
  cfg.test_size = 20;
  const DatasetSplit split = make_synthetic_mnist(cfg);
  EXPECT_EQ(split.train.size(), 40);
  EXPECT_EQ(split.test.size(), 20);
  EXPECT_EQ(split.train.num_classes(), 10);
  EXPECT_EQ(split.train.channels(), 1);
  EXPECT_EQ(split.train.time_steps(), cfg.time_steps);
  for (const int c : split.train.class_histogram()) EXPECT_EQ(c, 4);
}

TEST(SyntheticMnist, StaticFramesRepeatAcrossTime) {
  SyntheticMnistConfig cfg;
  cfg.train_size = 10;
  cfg.test_size = 10;
  const DatasetSplit split = make_synthetic_mnist(cfg);
  const Sample& s = split.train[3];
  const std::size_t plane = 16 * 16;
  for (int t = 1; t < cfg.time_steps; ++t) {
    for (std::size_t i = 0; i < plane; ++i) {
      EXPECT_EQ(s.frames[i],
                s.frames[static_cast<std::size_t>(t) * plane + i]);
    }
  }
}

TEST(SyntheticMnist, DeterministicForSeed) {
  SyntheticMnistConfig cfg;
  cfg.train_size = 10;
  cfg.test_size = 10;
  const DatasetSplit a = make_synthetic_mnist(cfg);
  const DatasetSplit b = make_synthetic_mnist(cfg);
  EXPECT_EQ(tensor::max_abs_diff(a.train[0].frames, b.train[0].frames), 0.0);
  cfg.seed = 99;
  const DatasetSplit c = make_synthetic_mnist(cfg);
  EXPECT_GT(tensor::max_abs_diff(a.train[0].frames, c.train[0].frames), 0.0);
}

TEST(SyntheticNMnist, EventsAreBinaryTwoChannel) {
  SyntheticNMnistConfig cfg;
  cfg.train_size = 20;
  cfg.test_size = 10;
  const DatasetSplit split = make_synthetic_nmnist(cfg);
  EXPECT_EQ(split.train.channels(), 2);
  const Sample& s = split.train[0];
  for (std::size_t i = 0; i < s.frames.size(); ++i) {
    EXPECT_TRUE(s.frames[i] == 0.0f || s.frames[i] == 1.0f);
  }
}

TEST(SyntheticNMnist, HasTemporalStructure) {
  SyntheticNMnistConfig cfg;
  cfg.train_size = 20;
  cfg.test_size = 10;
  const DatasetSplit split = make_synthetic_nmnist(cfg);
  // Frames must not all be identical (motion produces changing events).
  const Sample& s = split.train[0];
  const std::size_t frame = s.frames.size() / cfg.time_steps;
  bool any_diff = false;
  for (int t = 1; t < cfg.time_steps && !any_diff; ++t) {
    for (std::size_t i = 0; i < frame; ++i) {
      if (s.frames[i] !=
          s.frames[static_cast<std::size_t>(t) * frame + i]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
  // And the first frame must be non-empty (onset events).
  double on = 0.0;
  for (std::size_t i = 0; i < frame; ++i) on += s.frames[i];
  EXPECT_GT(on, 0.0);
}

TEST(SyntheticDvsGesture, ElevenBalancedClasses) {
  SyntheticDvsGestureConfig cfg;
  cfg.train_size = 44;
  cfg.test_size = 22;
  const DatasetSplit split = make_synthetic_dvs_gesture(cfg);
  EXPECT_EQ(split.train.num_classes(), 11);
  EXPECT_EQ(dvs_gesture_class_names().size(), 11u);
  for (const int c : split.train.class_histogram()) EXPECT_EQ(c, 4);
}

TEST(SyntheticDvsGesture, EventsBinaryAndMoving) {
  SyntheticDvsGestureConfig cfg;
  cfg.train_size = 22;
  cfg.test_size = 11;
  const DatasetSplit split = make_synthetic_dvs_gesture(cfg);
  int samples_with_events = 0;
  for (int i = 0; i < split.train.size(); ++i) {
    const Sample& s = split.train[i];
    double events = 0.0;
    for (std::size_t j = 0; j < s.frames.size(); ++j) {
      EXPECT_TRUE(s.frames[j] == 0.0f || s.frames[j] == 1.0f);
      events += s.frames[j];
    }
    if (events > 0) ++samples_with_events;
  }
  EXPECT_EQ(samples_with_events, split.train.size());
}

TEST(SyntheticDvsGesture, DeterministicForSeed) {
  SyntheticDvsGestureConfig cfg;
  cfg.train_size = 11;
  cfg.test_size = 11;
  const DatasetSplit a = make_synthetic_dvs_gesture(cfg);
  const DatasetSplit b = make_synthetic_dvs_gesture(cfg);
  for (int i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(
        tensor::max_abs_diff(a.train[i].frames, b.train[i].frames), 0.0);
  }
}

TEST(SyntheticDatasets, InvalidSizesThrow) {
  SyntheticMnistConfig m;
  m.train_size = 0;
  EXPECT_THROW(make_synthetic_mnist(m), std::invalid_argument);
  SyntheticNMnistConfig n;
  n.test_size = 0;
  EXPECT_THROW(make_synthetic_nmnist(n), std::invalid_argument);
  SyntheticDvsGestureConfig d;
  d.train_size = -1;
  EXPECT_THROW(make_synthetic_dvs_gesture(d), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::data
