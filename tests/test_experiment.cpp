#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "snn/model_zoo.h"
#include "snn/trainer.h"
#include "tensor/tensor_ops.h"

namespace falvolt::core {
namespace {

TEST(Experiment, DatasetNames) {
  EXPECT_STREQ(dataset_name(DatasetKind::kMnist), "MNIST");
  EXPECT_STREQ(dataset_name(DatasetKind::kNMnist), "N-MNIST");
  EXPECT_STREQ(dataset_name(DatasetKind::kDvsGesture), "DVS128-Gesture");
}

TEST(Experiment, DefaultRetrainEpochsOrdering) {
  // DVS needs more epochs than the digit tasks (as in the paper), and
  // fast mode shrinks everything.
  EXPECT_GT(default_retrain_epochs(DatasetKind::kDvsGesture, false),
            default_retrain_epochs(DatasetKind::kMnist, false) - 1);
  EXPECT_LT(default_retrain_epochs(DatasetKind::kMnist, true),
            default_retrain_epochs(DatasetKind::kMnist, false));
}

// RAII environment-variable override for cache-dir resolution tests.
class EnvVarScope {
 public:
  EnvVarScope(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarScope() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(Experiment, CacheDirSentinelFallsBackToDefault) {
  EnvVarScope env("FALVOLT_CACHE_DIR", nullptr);
  WorkloadOptions opts;  // cache_dir left at the sentinel
  EXPECT_EQ(opts.cache_dir, kDefaultCacheDir);
  EXPECT_EQ(resolve_cache_dir(opts), "falvolt_cache");
}

TEST(Experiment, CacheDirSentinelHonorsEnvironment) {
  EnvVarScope env("FALVOLT_CACHE_DIR", "/tmp/falvolt_env_cache");
  WorkloadOptions opts;
  EXPECT_EQ(resolve_cache_dir(opts), "/tmp/falvolt_env_cache");
}

TEST(Experiment, CacheDirEnvironmentCanDisableCaching) {
  EnvVarScope env("FALVOLT_CACHE_DIR", "");
  WorkloadOptions opts;
  EXPECT_EQ(resolve_cache_dir(opts), "");
}

TEST(Experiment, CacheDirExplicitEmptyDisablesCaching) {
  EnvVarScope env("FALVOLT_CACHE_DIR", "/tmp/should_be_ignored");
  WorkloadOptions opts;
  opts.cache_dir = "";  // explicit: caching off, env must NOT override
  EXPECT_EQ(resolve_cache_dir(opts), "");
}

TEST(Experiment, CacheDirExplicitValueWinsOverEnvironment) {
  EnvVarScope env("FALVOLT_CACHE_DIR", "/tmp/should_be_ignored");
  WorkloadOptions opts;
  opts.cache_dir = "/tmp/explicit_cache";
  EXPECT_EQ(resolve_cache_dir(opts), "/tmp/explicit_cache");
}

TEST(Experiment, BaselineCacheFileSurvivesLongDirectories) {
  // The seed built this path through a fixed 160-char snprintf buffer,
  // silently truncating long cache directories into a wrong path.
  const std::string long_dir(300, 'd');
  const std::string path =
      baseline_cache_file(long_dir, DatasetKind::kNMnist, true, 42);
  EXPECT_EQ(path, long_dir + "/baseline_N-MNIST_fast_seed42.bin");
}

TEST(Experiment, SaveLoadRoundTrip) {
  snn::ZooConfig zc;
  zc.channels = 4;
  zc.fc_hidden = 16;
  snn::Network a = snn::make_digit_classifier("d", 1, 16, 10, zc);
  const std::string path =
      ::testing::TempDir() + "falvolt_params_roundtrip.bin";
  save_params(a, path);

  snn::Network b = snn::make_digit_classifier("d", 1, 16, 10,
                                              [&] {
                                                snn::ZooConfig z = zc;
                                                z.seed = 999;  // different init
                                                return z;
                                              }());
  ASSERT_TRUE(load_params(b, path));
  const auto pa = a.params();
  const auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.0);
  }
  std::filesystem::remove(path);
}

TEST(Experiment, LoadMissingFileReturnsFalse) {
  snn::ZooConfig zc;
  zc.channels = 4;
  snn::Network net = snn::make_digit_classifier("d", 1, 16, 10, zc);
  EXPECT_FALSE(load_params(net, "/nonexistent/params.bin"));
}

TEST(Experiment, LoadReturnsFalseOnTruncatedFile) {
  snn::ZooConfig zc;
  zc.channels = 4;
  zc.fc_hidden = 16;
  snn::Network a = snn::make_digit_classifier("d", 1, 16, 10, zc);
  const std::string path =
      ::testing::TempDir() + "falvolt_params_truncated.bin";
  save_params(a, path);
  const auto full_size = std::filesystem::file_size(path);

  // Truncation anywhere — mid-header, mid-name, mid-payload — must mean
  // "no usable cache" (false), never a throw or a garbage allocation.
  // Re-save before each cut: resize_file only truncates a fresh copy
  // (growing a previously shrunk file would just zero-pad it).
  for (const std::uintmax_t keep :
       {std::uintmax_t{3}, std::uintmax_t{9}, full_size / 2,
        full_size - 1}) {
    save_params(a, path);
    std::filesystem::resize_file(path, keep);
    snn::Network b = snn::make_digit_classifier("d", 1, 16, 10, zc);
    EXPECT_FALSE(load_params(b, path)) << "kept " << keep << " bytes";
  }
  std::filesystem::remove(path);
}

TEST(Experiment, LoadReturnsFalseOnCorruptHeaderAndLengths) {
  snn::ZooConfig zc;
  zc.channels = 4;
  zc.fc_hidden = 16;
  snn::Network a = snn::make_digit_classifier("d", 1, 16, 10, zc);
  const std::string path = ::testing::TempDir() + "falvolt_params_corrupt.bin";
  save_params(a, path);

  const auto clobber = [&](std::streamoff offset, std::uint32_t word) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(offset);
    f.write(reinterpret_cast<const char*>(&word), sizeof(word));
  };

  // Bad magic: corrupt file, not an inventory bug — retrain.
  clobber(0, 0xdeadbeef);
  snn::Network b1 = snn::make_digit_classifier("d", 1, 16, 10, zc);
  EXPECT_FALSE(load_params(b1, path));

  // Garbage first name_len far beyond the file size must not allocate a
  // giant buffer or read past the end.
  save_params(a, path);
  clobber(8, 0xffffff00u);
  snn::Network b2 = snn::make_digit_classifier("d", 1, 16, 10, zc);
  EXPECT_FALSE(load_params(b2, path));
  std::filesystem::remove(path);
}

TEST(Experiment, PrepareWorkloadRetrainsOverCorruptCache) {
  const std::string cache =
      ::testing::TempDir() + "falvolt_workload_cache_corrupt";
  std::filesystem::remove_all(cache);
  WorkloadOptions opts;
  opts.fast = true;
  opts.cache_dir = cache;

  const Workload w1 = prepare_workload(DatasetKind::kMnist, opts);
  const std::string file =
      baseline_cache_file(cache, DatasetKind::kMnist, true, opts.seed);
  ASSERT_TRUE(std::filesystem::exists(file));
  std::filesystem::resize_file(file,
                               std::filesystem::file_size(file) / 3);

  // The corrupt entry is silently discarded: training reruns with the
  // same seeds and reproduces the exact baseline (and rewrites the
  // cache).
  const Workload w2 = prepare_workload(DatasetKind::kMnist, opts);
  EXPECT_DOUBLE_EQ(w1.baseline_accuracy, w2.baseline_accuracy);

  // Rot in the count word passes the length checks and makes
  // load_params throw (inventory mismatch) — prepare_workload must
  // swallow that too and retrain rather than abort.
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const std::uint32_t bad_count = 9999;
    f.write(reinterpret_cast<const char*>(&bad_count), sizeof(bad_count));
  }
  const Workload w3 = prepare_workload(DatasetKind::kMnist, opts);
  EXPECT_DOUBLE_EQ(w1.baseline_accuracy, w3.baseline_accuracy);
  std::filesystem::remove_all(cache);
}

TEST(Experiment, LoadRejectsMismatchedArchitecture) {
  snn::ZooConfig zc;
  zc.channels = 4;
  zc.fc_hidden = 16;
  snn::Network a = snn::make_digit_classifier("d", 1, 16, 10, zc);
  const std::string path = ::testing::TempDir() + "falvolt_params_bad.bin";
  save_params(a, path);
  zc.channels = 8;  // different inventory
  snn::Network b = snn::make_digit_classifier("d", 1, 16, 10, zc);
  EXPECT_THROW(load_params(b, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Experiment, PrepareWorkloadTrainsAndCaches) {
  const std::string cache =
      ::testing::TempDir() + "falvolt_workload_cache";
  std::filesystem::remove_all(cache);
  WorkloadOptions opts;
  opts.fast = true;
  opts.cache_dir = cache;

  const Workload w1 = prepare_workload(DatasetKind::kMnist, opts);
  EXPECT_EQ(w1.data.train.num_classes(), 10);
  EXPECT_GT(w1.baseline_accuracy, 50.0);  // trained well above chance

  // Second call must hit the cache and reproduce the exact accuracy.
  const Workload w2 = prepare_workload(DatasetKind::kMnist, opts);
  EXPECT_DOUBLE_EQ(w1.baseline_accuracy, w2.baseline_accuracy);
  std::filesystem::remove_all(cache);
}

TEST(Experiment, WorkloadGeometryPerDataset) {
  const std::string cache =
      ::testing::TempDir() + "falvolt_workload_cache_geom";
  std::filesystem::remove_all(cache);
  WorkloadOptions opts;
  opts.fast = true;
  opts.cache_dir = cache;
  Workload nm = prepare_workload(DatasetKind::kNMnist, opts);
  EXPECT_EQ(nm.data.train.channels(), 2);
  EXPECT_EQ(nm.net.hidden_spiking_layers().size(), 4u);
  Workload dvs = prepare_workload(DatasetKind::kDvsGesture, opts);
  EXPECT_EQ(dvs.data.train.num_classes(), 11);
  EXPECT_EQ(dvs.net.hidden_spiking_layers().size(), 7u);
  std::filesystem::remove_all(cache);
}

}  // namespace
}  // namespace falvolt::core
