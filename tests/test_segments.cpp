// Indexed segment files (store/segment.h), compaction
// (store/compact.h), and the layered read chain (store/store_api.h):
// round-trip + convergent naming, per-record vs whole-segment damage
// containment, stale-epoch degradation, compaction crash-safety and
// concurrent-writer safety, substituter precedence, and the segment
// arms of GC and stats.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "store/compact.h"
#include "store/fingerprint.h"
#include "store/gc.h"
#include "store/hash.h"
#include "store/manifest.h"
#include "store/record_frame.h"
#include "store/result_store.h"
#include "store/segment.h"
#include "store/stats.h"
#include "store/store_api.h"

namespace fs = std::filesystem;

namespace falvolt::store {
namespace {

std::string fp_of(const std::string& seed) { return sha256_hex(seed); }

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  const char c = static_cast<char>(f.get());
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5a));
}

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "falvolt_segment_test";
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  // (fingerprint, payload) pairs with payloads big enough that a flip
  // inside one record's payload region is unambiguous.
  static std::vector<std::pair<std::string, std::string>> records(int n) {
    std::vector<std::pair<std::string, std::string>> recs;
    for (int i = 0; i < n; ++i) {
      recs.emplace_back(fp_of("rec" + std::to_string(i)),
                        "payload " + std::to_string(i) +
                            std::string(200, static_cast<char>('a' + i)));
    }
    return recs;
  }

  std::string root_;
};

TEST_F(SegmentTest, RoundTripThroughSegmentStore) {
  fs::create_directories(root_);
  const auto recs = records(5);
  const std::string path = write_segment(root_, recs);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(store_exists(root_)) << "segments alone make a store";

  const SegmentStore seg(root_);
  EXPECT_EQ(seg.segment_count(), 1u);
  EXPECT_FALSE(seg.writable());
  EXPECT_EQ(seg.fingerprints().size(), recs.size());
  for (const auto& [fp, payload] : recs) {
    EXPECT_TRUE(seg.contains(fp));
    EXPECT_EQ(seg.get(fp), payload);
  }
  EXPECT_EQ(seg.get(fp_of("absent")), std::nullopt);
  EXPECT_THROW(const_cast<SegmentStore&>(seg).put(fp_of("x"), "y"),
               std::logic_error);
}

TEST_F(SegmentTest, SameRecordSetConvergesToSameFileName) {
  fs::create_directories(root_);
  auto recs = records(4);
  const std::string first = write_segment(root_, recs);
  // Insertion order must not matter — the name hashes the SORTED set.
  std::reverse(recs.begin(), recs.end());
  const std::string second = write_segment(root_, recs);
  EXPECT_EQ(first, second);
  EXPECT_EQ(list_segments(root_).size(), 1u);
  // A different set gets a different file.
  recs.pop_back();
  EXPECT_NE(write_segment(root_, recs), first);
  EXPECT_EQ(list_segments(root_).size(), 2u);
}

TEST_F(SegmentTest, CorruptIndexDegradesWholeSegmentToMiss) {
  fs::create_directories(root_);
  const auto recs = records(3);
  const std::string path = write_segment(root_, recs);
  // Flip one byte inside the index region (just before the footer).
  flip_byte(path, fs::file_size(path) - kSegmentFooterBytes - 1);

  const std::vector<SegmentInfo> infos = list_segments(root_);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].readable);
  EXPECT_TRUE(infos[0].entries.empty());

  const SegmentStore seg(root_);
  EXPECT_EQ(seg.segment_count(), 0u) << "damaged segment is skipped whole";
  for (const auto& [fp, payload] : recs) {
    EXPECT_EQ(seg.get(fp), std::nullopt) << "degrades to recompute-on-miss";
  }
}

TEST_F(SegmentTest, BitFlipInOneRecordMissesOnlyThatRecord) {
  fs::create_directories(root_);
  auto recs = records(3);
  std::sort(recs.begin(), recs.end());  // file order = sorted-by-fp order
  const std::string path = write_segment(root_, recs);
  // Flip a payload byte of the FIRST record (frames start at offset 0).
  flip_byte(path, kRecordHeaderBytes + 3);

  const SegmentStore seg(root_);
  EXPECT_EQ(seg.segment_count(), 1u) << "index is intact";
  EXPECT_EQ(seg.get(recs[0].first), std::nullopt);
  EXPECT_EQ(seg.get(recs[1].first), recs[1].second);
  EXPECT_EQ(seg.get(recs[2].first), recs[2].second);
}

TEST_F(SegmentTest, StaleEpochSegmentReadsEmptyAndGcDeletesIt) {
  LocalDirStore rs(root_);
  const auto recs = records(2);
  const std::string path = write_segment(root_, recs);
  // Patch the footer's epoch field (offset 4 in the footer) to a future
  // format — the whole segment must read as empty, exactly like a loose
  // record from a foreign epoch.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) -
                                        kSegmentFooterBytes + 4));
    std::uint8_t buf[4];
    encode_le(buf, kStoreFormatEpoch + 1, 4);
    f.write(reinterpret_cast<const char*>(buf), 4);
  }
  const SegmentStore seg(root_);
  EXPECT_EQ(seg.segment_count(), 0u);
  EXPECT_EQ(seg.get(recs[0].first), std::nullopt)
      << "stale-epoch segments degrade to recompute";

  // GC treats an unreadable segment as fully dead and deletes the file.
  Manifest m;
  m.bench = "stale_seg";
  m.entries.emplace_back(recs[0].first, "cell");
  write_manifest(rs, m);
  const GcStats stats = prune_store(rs);
  EXPECT_EQ(stats.segments_deleted, 1u);
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(SegmentTest, CompactionPacksLooseAndReadsKeepWorking) {
  LocalDirStore rs(root_);
  const auto recs = records(6);
  for (const auto& [fp, payload] : recs) rs.put(fp, payload);

  const CompactStats stats = compact_store(rs);
  EXPECT_EQ(stats.packed, 6);
  EXPECT_EQ(stats.already_segmented, 0);
  EXPECT_EQ(stats.corrupt, 0);
  EXPECT_EQ(stats.segments_written, 1);
  EXPECT_GT(stats.packed_bytes, 0u);

  // Loose copies are gone; the layered chain still serves every record.
  EXPECT_TRUE(rs.fingerprints().empty());
  const auto chain = open_store(root_);
  for (const auto& [fp, payload] : recs) {
    EXPECT_EQ(chain->get(fp), payload);
  }
  // A second run is a no-op — nothing loose remains.
  const CompactStats again = compact_store(rs);
  EXPECT_EQ(again.packed, 0);
  EXPECT_EQ(again.segments_written, 0);
  EXPECT_EQ(list_segments(root_).size(), 1u);
}

TEST_F(SegmentTest, InterruptedCompactionStateConvergesOnRerun) {
  LocalDirStore rs(root_);
  const auto recs = records(4);
  for (const auto& [fp, payload] : recs) rs.put(fp, payload);
  // Simulate a crash between "segment published" and "loose deleted":
  // the segment exists AND every loose copy is still there.
  std::vector<std::pair<std::string, std::string>> framed = recs;
  write_segment(root_, framed);
  ASSERT_EQ(rs.fingerprints().size(), 4u);
  const auto chain_mid = open_store(root_);
  for (const auto& [fp, payload] : recs) {
    EXPECT_EQ(chain_mid->get(fp), payload) << "duplicates are harmless";
  }

  // Re-running compaction converges: duplicates are recognized, their
  // loose copies deleted, and no second segment is written.
  const CompactStats stats = compact_store(rs);
  EXPECT_EQ(stats.packed, 0);
  EXPECT_EQ(stats.already_segmented, 4);
  EXPECT_EQ(stats.segments_written, 0);
  EXPECT_TRUE(rs.fingerprints().empty());
  EXPECT_EQ(list_segments(root_).size(), 1u);
}

TEST_F(SegmentTest, CorruptLooseRecordIsLeftForGcNotPacked) {
  LocalDirStore rs(root_);
  const auto recs = records(3);
  for (const auto& [fp, payload] : recs) rs.put(fp, payload);
  fs::resize_file(rs.object_path(recs[1].first), 20);

  const CompactStats stats = compact_store(rs);
  EXPECT_EQ(stats.packed, 2);
  EXPECT_EQ(stats.corrupt, 1);
  // The corrupt file stays in place (GC's job), the valid ones moved.
  EXPECT_TRUE(fs::exists(rs.object_path(recs[1].first)));
  const SegmentStore seg(root_);
  EXPECT_EQ(seg.get(recs[0].first), recs[0].second);
  EXPECT_FALSE(seg.contains(recs[1].first));
}

TEST_F(SegmentTest, WriterDuringCompactionLosesNothing) {
  LocalDirStore rs(root_);
  const auto initial = records(8);
  for (const auto& [fp, payload] : initial) rs.put(fp, payload);

  // A concurrent sweep keeps publishing cells while compaction runs.
  // Compaction packs a snapshot and deletes only the exact files it
  // packed, so late arrivals simply stay loose until the next run.
  std::vector<std::pair<std::string, std::string>> late;
  for (int i = 0; i < 40; ++i) {
    late.emplace_back(fp_of("late" + std::to_string(i)),
                      "late payload " + std::to_string(i));
  }
  std::thread writer([&rs, &late] {
    for (const auto& [fp, payload] : late) rs.put(fp, payload);
  });
  const CompactStats stats = compact_store(rs);
  writer.join();
  EXPECT_GE(stats.packed, 8) << "at least the pre-existing records";

  // Nothing is lost: every record reads back through the chain.
  const auto chain = open_store(root_);
  for (const auto& [fp, payload] : initial) EXPECT_EQ(chain->get(fp), payload);
  for (const auto& [fp, payload] : late) EXPECT_EQ(chain->get(fp), payload);

  // The next quiescent compaction sweeps up whatever stayed loose.
  const CompactStats rest = compact_store(rs);
  EXPECT_EQ(stats.packed + rest.packed, 48);
  EXPECT_TRUE(rs.fingerprints().empty());
  const auto reopened = open_store(root_);
  for (const auto& [fp, payload] : late) {
    EXPECT_EQ(reopened->get(fp), payload);
  }
}

TEST_F(SegmentTest, LooseShadowsSegmentInTheReadChain) {
  LocalDirStore rs(root_);
  const std::string fp = fp_of("shadow");
  write_segment(root_, {{fp, "segmented"}});
  rs.put(fp, "loose");
  const auto chain = open_store(root_);
  EXPECT_EQ(chain->get(fp), "loose");
  EXPECT_EQ(chain->locate(fp), 0);
  EXPECT_EQ(chain->fingerprints().size(), 1u) << "union is deduplicated";
}

TEST_F(SegmentTest, SubstituterHitVersusLocalMissPrecedence) {
  // A substituter store with one computed cell...
  const std::string sub_dir = root_ + "_sub";
  {
    LocalDirStore sub(sub_dir);
    sub.put(fp_of("remote"), "computed elsewhere");
    compact_store(sub);  // serve it from a segment, like a warm cache
  }
  // ...consulted behind an empty local store.
  const auto chain = open_store(root_, {sub_dir});
  ASSERT_EQ(chain->layer_count(), 4u);  // loose+seg local, loose+seg sub
  EXPECT_EQ(chain->get(fp_of("remote")), "computed elsewhere");
  EXPECT_GE(chain->locate(fp_of("remote")), 2) << "hit came from the sub";
  EXPECT_EQ(chain->locate(fp_of("nowhere")), -1);

  // A local write shadows the substituter from then on.
  chain->put(fp_of("remote"), "recomputed locally");
  EXPECT_EQ(chain->locate(fp_of("remote")), 0);
  EXPECT_EQ(chain->get(fp_of("remote")), "recomputed locally");
  // The substituter itself was never written to.
  const LocalDirStore sub(sub_dir, /*create=*/false);
  EXPECT_EQ(sub.get(fp_of("remote")), std::nullopt)
      << "substituters are read-only; the record lives in its segment";
  fs::remove_all(sub_dir);
}

TEST_F(SegmentTest, OpenStoreRejectsMissingSubstituter) {
  EXPECT_THROW(open_store(root_, {root_ + "_typo"}), std::invalid_argument);
}

TEST_F(SegmentTest, GcKeepsLiveSegmentsDeletesDeadOnesAndCountsDeadBytes) {
  LocalDirStore rs(root_);
  const auto live = records(3);
  for (const auto& [fp, payload] : live) rs.put(fp, payload);
  compact_store(rs);
  // A second, fully-unreferenced segment.
  const std::string dead_path =
      write_segment(root_, {{fp_of("dead1"), "d1"}, {fp_of("dead2"), "d2"}});

  Manifest m;
  m.bench = "seg_gc";
  m.entries.emplace_back(live[0].first, "c0");
  m.entries.emplace_back(live[1].first, "c1");
  // live[2] is NOT referenced: a dead record riding in a live segment.
  write_manifest(rs, m);

  const GcStats stats = prune_store(rs);
  EXPECT_EQ(stats.segments_kept, 1u);
  EXPECT_EQ(stats.segments_deleted, 1u);
  EXPECT_FALSE(fs::exists(dead_path));
  EXPECT_EQ(stats.segment_live, 2u);
  EXPECT_EQ(stats.segment_dead, 1u);
  EXPECT_GT(stats.segment_dead_bytes, 0u);

  // The dead co-resident is only counted, never deleted: immutable
  // segments are rewritten by compaction, not GC.
  const SegmentStore seg(root_);
  EXPECT_EQ(seg.get(live[2].first), live[2].second);
}

TEST_F(SegmentTest, StatsReportLooseSegmentSplit) {
  LocalDirStore rs(root_);
  const auto recs = records(4);
  for (const auto& [fp, payload] : recs) rs.put(fp, payload);
  compact_store(rs);
  rs.put(fp_of("still_loose"), "loose one");

  const StoreStats stats =
      collect_store_stats(rs, [](const std::string&) {
        return std::optional<std::uint32_t>{};
      });
  EXPECT_EQ(stats.total_records, 5u);
  EXPECT_EQ(stats.loose_records, 1u);
  EXPECT_EQ(stats.segment_files, 1u);
  EXPECT_EQ(stats.segment_records, 4u);
  EXPECT_GT(stats.segment_file_bytes, 0u);
  EXPECT_EQ(stats.segment_dead_bytes, 0u);
  EXPECT_NE(stats.to_text().find("segments:"), std::string::npos);
  EXPECT_NE(stats.to_text().find("loose:"), std::string::npos);

  // A shadowing loose copy makes the segment's entry dead bytes.
  rs.put(recs[0].first, recs[0].second);
  const StoreStats shadowed =
      collect_store_stats(rs, [](const std::string&) {
        return std::optional<std::uint32_t>{};
      });
  EXPECT_EQ(shadowed.total_records, 5u) << "same addresses, one duplicated";
  EXPECT_GT(shadowed.segment_dead_bytes, 0u);
}

}  // namespace
}  // namespace falvolt::store
