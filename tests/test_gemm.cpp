#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace falvolt::tensor {
namespace {

// Naive triple-loop reference.
void ref_gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

Tensor random_tensor(Shape shape, common::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Gemm, SmallKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Gemm, MatmulShapeCheck) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Gemm, AccumulateAddsIntoC) {
  Tensor a({1, 1}, {2});
  Tensor b({1, 1}, {3});
  Tensor c({1, 1}, {10});
  gemm(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 16.0f);
  gemm(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
}

TEST(Gemm, SparseInputsSkipCorrectly) {
  // The kernel fast-path skips zero A entries; result must be identical.
  common::Rng rng(3);
  Tensor a = random_tensor({7, 13}, rng);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;
  Tensor b = random_tensor({13, 5}, rng);
  Tensor c({7, 5});
  Tensor ref({7, 5});
  gemm(a.data(), b.data(), c.data(), 7, 13, 5);
  ref_gemm(a.data(), b.data(), ref.data(), 7, 13, 5);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST(Gemm, AtBMatchesReference) {
  // C = A^T * B with A stored [K x M].
  common::Rng rng(5);
  const int k = 11, m = 6, n = 4;
  Tensor a = random_tensor({k, m}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n});
  gemm_at_b(a.data(), b.data(), c.data(), k, m, n);
  // Reference: transpose A then multiply.
  Tensor at({m, k});
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < m; ++j) at.at2(j, i) = a.at2(i, j);
  }
  Tensor ref({m, n});
  ref_gemm(at.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST(Gemm, ABtMatchesReference) {
  // C = A * B^T with B stored [N x K].
  common::Rng rng(7);
  const int m = 5, k = 9, n = 8;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({n, k}, rng);
  Tensor c({m, n});
  gemm_a_bt(a.data(), b.data(), c.data(), m, k, n);
  Tensor bt({k, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) bt.at2(j, i) = b.at2(i, j);
  }
  Tensor ref({m, n});
  ref_gemm(a.data(), bt.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

// Parameterized shape sweep against the reference kernel.
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n});
  Tensor ref({m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  ref_gemm(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 64, 1},
                      std::tuple{17, 3, 5}, std::tuple{32, 72, 8},
                      std::tuple{64, 128, 10}, std::tuple{3, 1, 7}));

}  // namespace
}  // namespace falvolt::tensor
