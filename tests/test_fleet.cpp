// FleetRunner (cross-bench work-stealing sweeps), the GridRegistry the
// figure benches publish their grids through, and the provenance block
// the record codec carries for fleet debugging.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "common/version.h"
#include "core/grid_registry.h"
#include "core/sweep.h"
#include "grids/grids.h"
#include "store/fingerprint.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::core {
namespace {

std::vector<Scenario> grid(const std::string& prefix, int n) {
  std::vector<Scenario> scenarios;
  for (int i = 0; i < n; ++i) {
    Scenario s;
    s.key = prefix + "=" + std::to_string(i);
    s.fault_count = i;
    scenarios.push_back(s);
  }
  return scenarios;
}

std::vector<Scenario> retrain_grid(const std::string& prefix, int n,
                                   int epochs) {
  std::vector<Scenario> scenarios = grid(prefix, n);
  for (Scenario& s : scenarios) {
    s.retrain = true;
    s.epochs = epochs;
  }
  return scenarios;
}

SweepStoreOptions store_opts(const std::string& dir,
                             const std::string& bench) {
  SweepStoreOptions st;
  st.dir = dir;
  st.bench = bench;
  st.config = {{"epochs", "4"}};
  return st;
}

SweepRunner::ScenarioFn counting_fn(std::atomic<int>& computed) {
  return [&computed](const Scenario& s, const SweepContext&) {
    ++computed;
    ScenarioResult out;
    out.metrics = {{"value", 10.0 * static_cast<double>(s.fault_count)}};
    out.log = "log " + s.key + "\n";
    return out;
  };
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_fleet_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  FleetRunner fleet(int workers) {
    WorkloadOptions opts;
    opts.sweep_parallel = workers;
    FleetRunner f(opts);
    f.set_prepare_baselines(false);
    return f;
  }

  std::string dir_;
};

TEST_F(FleetTest, RunsSeveralGridsAgainstOneStoreInterchangeably) {
  std::atomic<int> computed{0};
  FleetRunner cold = fleet(2);
  cold.add_grid({store_opts(dir_, "bench_a"), grid("a", 4),
                 counting_fn(computed)});
  cold.add_grid({store_opts(dir_, "bench_b"), grid("b", 3),
                 counting_fn(computed)});
  const std::vector<ResultTable> tables = cold.run();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(computed.load(), 7);
  EXPECT_EQ(tables[0].computed_cells(), 4u);
  EXPECT_EQ(tables[1].computed_cells(), 3u);
  EXPECT_TRUE(tables[0].complete());

  // Warm fleet re-run: everything replays.
  FleetRunner warm = fleet(2);
  warm.add_grid({store_opts(dir_, "bench_a"), grid("a", 4),
                 counting_fn(computed)});
  warm.add_grid({store_opts(dir_, "bench_b"), grid("b", 3),
                 counting_fn(computed)});
  const std::vector<ResultTable> warmed = warm.run();
  EXPECT_EQ(computed.load(), 7);
  EXPECT_EQ(warmed[0].cached_cells(), 4u);
  EXPECT_EQ(warmed[1].cached_cells(), 3u);
  EXPECT_EQ(warmed[0].to_csv(), tables[0].to_csv());
  EXPECT_EQ(warmed[1].to_csv(), tables[1].to_csv());

  // Interchangeability with per-bench runs: a standalone SweepRunner of
  // one grid against the fleet store replays the fleet's cells — and
  // its table is byte-identical to a cold standalone run in a private
  // store (the fleet computes values, it never changes them).
  SweepRunner solo{WorkloadOptions{}};
  solo.set_prepare_baselines(false);
  solo.set_store(store_opts(dir_, "bench_a"));
  const ResultTable replayed = solo.run(grid("a", 4), counting_fn(computed));
  EXPECT_EQ(computed.load(), 7);
  EXPECT_EQ(replayed.computed_cells(), 0u);

  SweepRunner standalone{WorkloadOptions{}};
  standalone.set_prepare_baselines(false);
  standalone.set_store(store_opts(dir_ + "_solo", "bench_a"));
  const ResultTable reference =
      standalone.run(grid("a", 4), counting_fn(computed));
  EXPECT_EQ(computed.load(), 11);
  EXPECT_EQ(replayed.to_csv(), reference.to_csv());
  fs::remove_all(dir_ + "_solo");
}

// Cells of DIFFERENT grids run concurrently from one work queue: with 4
// workers over two 2-cell grids, all 4 cells must be in flight at once
// (each cell blocks until it sees full concurrency, with a timeout so a
// regression fails rather than hangs).
TEST_F(FleetTest, WorkersStealAcrossGrids) {
  std::atomic<int> in_flight{0};
  std::atomic<int> high_water{0};
  const auto blocking = [&](const Scenario&, const SweepContext&) {
    const int now = in_flight.fetch_add(1) + 1;
    int seen = high_water.load();
    while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (high_water.load() < 4 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    in_flight.fetch_sub(1);
    return ScenarioResult{};
  };
  FleetRunner f = fleet(4);
  f.add_grid({store_opts(dir_, "bench_a"), grid("a", 2), blocking});
  f.add_grid({store_opts(dir_, "bench_b"), grid("b", 2), blocking});
  f.run();
  EXPECT_EQ(high_water.load(), 4)
      << "cells of both grids must share one worker pool";
}

// ------------------------------------------------- cost-aware scheduling

TEST(ScenarioCost, DefaultsScaleWithRetrainEpochsAndHintWins) {
  Scenario eval;
  EXPECT_DOUBLE_EQ(scenario_cost_estimate(eval), 1.0);
  Scenario retrain;
  retrain.retrain = true;
  retrain.epochs = 4;
  EXPECT_DOUBLE_EQ(scenario_cost_estimate(retrain),
                   4.0 * kRetrainCostPerEpoch);
  Scenario retrain_no_epochs;
  retrain_no_epochs.retrain = true;  // epochs unset still beats an eval
  EXPECT_DOUBLE_EQ(scenario_cost_estimate(retrain_no_epochs),
                   kRetrainCostPerEpoch);
  Scenario hinted = retrain;
  hinted.cost_hint = 2.5;
  EXPECT_DOUBLE_EQ(scenario_cost_estimate(hinted), 2.5);
}

TEST(ScenarioCost, SchedulePolicyParsesAndRejects) {
  EXPECT_EQ(parse_schedule_policy("cost"), SchedulePolicy::kCostOrdered);
  EXPECT_EQ(parse_schedule_policy("claim"), SchedulePolicy::kClaimOrdered);
  EXPECT_THROW(parse_schedule_policy("fifo"), std::invalid_argument);
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kCostOrdered), "cost");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kClaimOrdered), "claim");
}

TEST(ScenarioCost, CostHintNeverEntersFingerprints) {
  SweepStoreOptions st;
  st.bench = "bench_a";
  Scenario a;
  a.key = "x=0";
  Scenario b = a;
  b.cost_hint = 512.0;
  EXPECT_EQ(fingerprint_cell(st, WorkloadOptions{}, a),
            fingerprint_cell(st, WorkloadOptions{}, b));
}

// With one worker the claim order IS the queue order: under the default
// cost-ordered policy the retrain grid's cells run first even though
// the eval grid was added first; under kClaimOrdered the add order wins.
TEST_F(FleetTest, CostOrderedQueueClaimsExpensiveCellsFirst) {
  const auto run_order = [&](SchedulePolicy policy,
                             const std::string& dir) {
    std::vector<std::string> order;
    std::mutex mu;
    const auto recording = [&](const Scenario& s, const SweepContext&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(s.key);
      return ScenarioResult{};
    };
    FleetRunner f = fleet(1);
    f.set_schedule(policy);
    f.add_grid({store_opts(dir, "bench_eval"), grid("e", 3), recording});
    f.add_grid({store_opts(dir, "bench_retrain"),
                retrain_grid("r", 2, 4), recording});
    f.run();
    return order;
  };

  const std::vector<std::string> cost =
      run_order(SchedulePolicy::kCostOrdered, dir_);
  ASSERT_EQ(cost.size(), 5u);
  EXPECT_EQ(cost[0], "r=0");
  EXPECT_EQ(cost[1], "r=1");

  fs::remove_all(dir_);
  const std::vector<std::string> claim =
      run_order(SchedulePolicy::kClaimOrdered, dir_);
  ASSERT_EQ(claim.size(), 5u);
  EXPECT_EQ(claim[0], "e=0");
  EXPECT_EQ(claim[4], "r=1");
}

// Mixed retrain/eval fleet at full concurrency: with 2 workers both
// retrain cells must be in flight together BEFORE any eval cell starts
// (the whole point of the cost order — the expensive tail overlaps the
// cheap cells instead of following them).
TEST_F(FleetTest, MixedFleetRunsRetrainCellsAtFullConcurrencyFirst) {
  std::atomic<int> retrain_in_flight{0};
  std::atomic<int> retrain_high_water{0};
  std::atomic<int> evals_before_retrains{0};
  const auto fn = [&](const Scenario& s, const SweepContext&) {
    if (s.retrain) {
      const int now = retrain_in_flight.fetch_add(1) + 1;
      int seen = retrain_high_water.load();
      while (now > seen &&
             !retrain_high_water.compare_exchange_weak(seen, now)) {
      }
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (retrain_high_water.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      retrain_in_flight.fetch_sub(1);
    } else if (retrain_high_water.load() < 2) {
      evals_before_retrains.fetch_add(1);
    }
    return ScenarioResult{};
  };
  FleetRunner f = fleet(2);
  f.add_grid({store_opts(dir_, "bench_eval"), grid("e", 4), fn});
  f.add_grid({store_opts(dir_, "bench_retrain"), retrain_grid("r", 2, 4),
              fn});
  f.run();
  EXPECT_EQ(retrain_high_water.load(), 2)
      << "both retrain cells must overlap";
  EXPECT_EQ(evals_before_retrains.load(), 0)
      << "no eval cell may start before the retrain cells are claimed";
}

// Scheduling is pure execution order: cost- and claim-ordered fleets
// emit byte-identical tables, and a warm re-run against a cost-ordered
// fleet's store computes nothing.
TEST_F(FleetTest, SchedulePoliciesEmitByteIdenticalTablesAndWarmZero) {
  std::atomic<int> computed{0};
  const auto run_fleet = [&](SchedulePolicy policy, const std::string& dir) {
    FleetRunner f = fleet(2);
    f.set_schedule(policy);
    f.add_grid({store_opts(dir, "bench_eval"), grid("e", 4),
                counting_fn(computed)});
    f.add_grid({store_opts(dir, "bench_retrain"),
                retrain_grid("r", 3, 2), counting_fn(computed)});
    return f.run();
  };
  const std::vector<ResultTable> cost =
      run_fleet(SchedulePolicy::kCostOrdered, dir_);
  const std::vector<ResultTable> claim =
      run_fleet(SchedulePolicy::kClaimOrdered, dir_ + "_claim");
  ASSERT_EQ(cost.size(), claim.size());
  for (std::size_t g = 0; g < cost.size(); ++g) {
    EXPECT_EQ(cost[g].to_csv(), claim[g].to_csv());
  }
  EXPECT_EQ(computed.load(), 14);

  // Warm re-run after the cost-ordered fleet: zero cells computed.
  const std::vector<ResultTable> warm =
      run_fleet(SchedulePolicy::kCostOrdered, dir_);
  EXPECT_EQ(computed.load(), 14);
  for (std::size_t g = 0; g < warm.size(); ++g) {
    EXPECT_EQ(warm[g].computed_cells(), 0u);
    EXPECT_EQ(warm[g].to_csv(), cost[g].to_csv());
  }
  fs::remove_all(dir_ + "_claim");
}

TEST_F(FleetTest, WorkerStatsAccountForEveryComputedCell) {
  std::atomic<int> computed{0};
  FleetRunner f = fleet(2);
  f.add_grid({store_opts(dir_, "bench_a"), grid("a", 5),
              counting_fn(computed)});
  f.add_grid({store_opts(dir_, "bench_b"), grid("b", 2),
              counting_fn(computed)});
  EXPECT_TRUE(f.worker_stats().empty()) << "no stats before any run";
  f.run();
  ASSERT_EQ(f.worker_stats().size(), 2u);
  std::size_t cells = 0;
  for (const WorkerStats& w : f.worker_stats()) {
    cells += w.cells;
    EXPECT_GE(w.busy_seconds, 0.0);
  }
  EXPECT_EQ(cells, 7u);

  // A fully warm fleet claims nothing — stats show zero cells.
  FleetRunner warm = fleet(2);
  warm.add_grid({store_opts(dir_, "bench_a"), grid("a", 5),
                 counting_fn(computed)});
  warm.add_grid({store_opts(dir_, "bench_b"), grid("b", 2),
                 counting_fn(computed)});
  warm.run();
  EXPECT_EQ(computed.load(), 7);
  std::size_t warm_cells = 0;
  for (const WorkerStats& w : warm.worker_stats()) warm_cells += w.cells;
  EXPECT_EQ(warm_cells, 0u);
}

TEST_F(FleetTest, GridErrorsFailTheFleetWithBenchPrefix) {
  FleetRunner f = fleet(1);
  std::atomic<int> computed{0};
  f.add_grid({store_opts(dir_, "bench_a"), grid("a", 2),
              counting_fn(computed)});
  f.add_grid({store_opts(dir_, "bench_b"), grid("b", 2),
              [](const Scenario& s, const SweepContext&) -> ScenarioResult {
                throw std::runtime_error("boom in " + s.key);
              }});
  try {
    f.run();
    FAIL() << "expected the fleet to fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bench_b: b=0"), std::string::npos)
        << e.what();
  }
}

TEST_F(FleetTest, FingerprintsMatchStandaloneRunners) {
  const std::vector<Scenario> scenarios = grid("a", 3);
  SweepRunner solo{WorkloadOptions{}};
  solo.set_prepare_baselines(false);
  solo.set_store(store_opts(dir_, "bench_a"));
  for (const Scenario& s : scenarios) {
    EXPECT_EQ(solo.fingerprint(s),
              fingerprint_cell(store_opts(dir_, "bench_a"),
                               WorkloadOptions{}, s));
  }
}

TEST_F(FleetTest, ProvenanceIsStampedStoredAndReplayed) {
  std::atomic<int> computed{0};
  FleetRunner cold = fleet(1);
  cold.add_grid({store_opts(dir_, "bench_a"), grid("a", 2),
                 counting_fn(computed)});
  const ResultTable t_cold = std::move(cold.run().front());
  for (std::size_t i = 0; i < t_cold.size(); ++i) {
    const Provenance& p = t_cold.at(i).provenance;
    EXPECT_FALSE(p.host.empty());
    EXPECT_EQ(p.version, kFalvoltVersion);
    EXPECT_GT(p.unix_time, 0u);
    EXPECT_EQ(p.store_epoch, store::kStoreFormatEpoch);
  }
  FleetRunner warm = fleet(1);
  warm.add_grid({store_opts(dir_, "bench_a"), grid("a", 2),
                 counting_fn(computed)});
  const ResultTable t_warm = std::move(warm.run().front());
  EXPECT_EQ(computed.load(), 2);
  for (std::size_t i = 0; i < t_cold.size(); ++i) {
    EXPECT_EQ(t_cold.at(i).provenance.host, t_warm.at(i).provenance.host);
    EXPECT_EQ(t_cold.at(i).provenance.version,
              t_warm.at(i).provenance.version);
    EXPECT_EQ(t_cold.at(i).provenance.unix_time,
              t_warm.at(i).provenance.unix_time);
    EXPECT_EQ(t_cold.at(i).provenance.store_epoch,
              t_warm.at(i).provenance.store_epoch);
  }
}

TEST(FleetRunnerApi, RejectsEmptyFleetsAndBadGrids) {
  FleetRunner f{WorkloadOptions{}};
  EXPECT_THROW(f.run(), std::logic_error);
  EXPECT_THROW(f.add_grid({SweepStoreOptions{}, {}, nullptr}),
               std::invalid_argument);
  SweepStoreOptions bad;
  bad.shard_index = 3;
  bad.shard_count = 2;
  EXPECT_THROW(
      f.add_grid({bad, {}, [](const Scenario&, const SweepContext&) {
                    return ScenarioResult{};
                  }}),
      std::invalid_argument);
}

// ------------------------------------------------------------ registry

TEST(GridRegistry, AllGridsRegisterAndBuild) {
  bench::register_all_grids();
  bench::register_all_grids();  // idempotent
  const GridRegistry& reg = GridRegistry::instance();
  // Seven figure benches + the design-choice ablation + the two
  // example-derived workloads: everything the repo can express runs
  // through one fleet queue.
  const std::vector<std::string> expected = {
      "fig2_vth_sweep",   "fig5a_bit_position", "fig5b_fault_count",
      "fig5c_array_size", "fig6_vth_layers",    "fig7_mitigation",
      "fig8_convergence", "ablation_falvolt",   "chip_salvage_triage",
      "gesture_pipeline"};
  ASSERT_GE(reg.size(), 9u) << "fleet must cover 9+ grids";
  for (const std::string& name : expected) {
    ASSERT_NE(reg.find(name), nullptr) << name;
    EXPECT_FALSE(reg.get(name).datasets.empty())
        << name << " must declare its dataset axis so the fleet driver "
        << "can skip it under a foreign --datasets filter";
  }

  // Every grid builds a non-empty, unique-keyed scenario list from its
  // default flags, and its scenario-fn factory is constructible without
  // touching any workload (lazy-baseline contract).
  FleetRunner probe{WorkloadOptions{}};
  for (const std::string& name : expected) {
    const GridDef& def = reg.get(name);
    common::CliFlags cli(def.name);
    bench::add_common_flags(cli);
    def.add_flags(cli);
    const std::vector<Scenario> scenarios = def.scenarios(cli);
    ASSERT_FALSE(scenarios.empty()) << name;
    std::set<std::string> keys;
    for (const Scenario& s : scenarios) {
      EXPECT_TRUE(keys.insert(s.key).second)
          << name << " duplicate key " << s.key;
      EXPECT_GT(scenario_cost_estimate(s), 0.0) << name << " " << s.key;
    }
    EXPECT_TRUE(
        static_cast<bool>(def.scenario_fn(cli, probe.context())))
        << name;
  }

  // Spot-check the cost tagging the scheduler depends on: fig5c's
  // cost-model hints grow as the array shrinks (more tiles per GEMM),
  // and the gesture grid's falvolt arm dwarfs its unmitigated arm.
  {
    common::CliFlags cli("fig5c_array_size");
    bench::add_common_flags(cli);
    reg.get("fig5c_array_size").add_flags(cli);
    const std::vector<Scenario> scenarios =
        reg.get("fig5c_array_size").scenarios(cli);
    double cost4 = 0.0, cost256 = 0.0;
    for (const Scenario& s : scenarios) {
      if (s.array_size == 4) cost4 = scenario_cost_estimate(s);
      if (s.array_size == 256) cost256 = scenario_cost_estimate(s);
    }
    EXPECT_GT(cost4, cost256);
  }
  {
    common::CliFlags cli("gesture_pipeline");
    bench::add_common_flags(cli);
    reg.get("gesture_pipeline").add_flags(cli);
    for (const Scenario& s : reg.get("gesture_pipeline").scenarios(cli)) {
      if (s.tag == "falvolt") {
        EXPECT_GE(scenario_cost_estimate(s), kRetrainCostPerEpoch);
      } else {
        EXPECT_DOUBLE_EQ(scenario_cost_estimate(s), 1.0);
      }
    }
  }
}

// A defect rate (or array) small enough that the per-die defect ceiling
// truncates to zero must still build — a defective die then carries the
// minimum one defect instead of tripping Rng::uniform_int(0).
TEST(GridRegistry, ChipDefectsGuardDegenerateCeilings) {
  for (int chip = 0; chip < 8; ++chip) {
    EXPECT_GE(bench::chip_salvage::chip_defects(chip, 0.0, 64 * 64), 0);
    EXPECT_GE(bench::chip_salvage::chip_defects(chip, 0.0001, 64 * 64), 0);
    EXPECT_GE(bench::chip_salvage::chip_defects(chip, 0.18, 4), 0);
  }
}

TEST(GridRegistry, LookupAndValidation) {
  bench::register_all_grids();
  GridRegistry& reg = GridRegistry::instance();
  EXPECT_EQ(reg.find("no_such_grid"), nullptr);
  EXPECT_THROW(reg.get("no_such_grid"), std::out_of_range);

  GridDef dup;
  dup.name = "fig5b_fault_count";
  dup.add_flags = [](common::CliFlags&) {};
  dup.scenarios = [](const common::CliFlags&) {
    return std::vector<Scenario>{};
  };
  dup.scenario_fn = [](const common::CliFlags&, const SweepContext&) {
    return SweepRunner::ScenarioFn{};
  };
  EXPECT_THROW(reg.add(std::move(dup)), std::logic_error);

  GridDef incomplete;
  incomplete.name = "incomplete";
  EXPECT_THROW(reg.add(std::move(incomplete)), std::logic_error);
}

}  // namespace
}  // namespace falvolt::core
