// The content-addressed store's core contracts: correct SHA-256,
// prefix-free fingerprint framing, atomic/validated record IO that
// degrades every kind of damage to "miss", and validated store unions.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "store/fingerprint.h"
#include "store/hash.h"
#include "store/manifest.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::store {
namespace {

TEST(Sha256, MatchesKnownVectors) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Multi-block input (> 64 bytes) exercises the block loop.
  EXPECT_EQ(
      sha256_hex(std::string(1000, 'a')),
      "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Sha256 h;
  h.update("ab");
  h.update("c");
  EXPECT_EQ(h.hex(), sha256_hex("abc"));
}

TEST(Fingerprinter, DeterministicAndFieldSensitive) {
  const auto fp = [](const std::string& key, std::int64_t epochs) {
    Fingerprinter f;
    f.add("key", key);
    f.add("epochs", epochs);
    return f.digest();
  };
  EXPECT_EQ(fp("a", 4), fp("a", 4));
  EXPECT_NE(fp("a", 4), fp("b", 4));
  EXPECT_NE(fp("a", 4), fp("a", 8));
  EXPECT_TRUE(is_fingerprint(fp("a", 4)));
}

TEST(Fingerprinter, FramingIsPrefixFree) {
  // ("ab","c") vs ("a","bc") and value-vs-name boundary shifts must all
  // hash differently — the length framing makes the stream unambiguous.
  Fingerprinter f1, f2, f3;
  f1.add("ab", std::string("c"));
  f2.add("a", std::string("bc"));
  f3.add("a", std::string("b"));
  f3.add("c", std::string(""));
  const std::string d1 = f1.digest();
  EXPECT_NE(d1, f2.digest());
  EXPECT_NE(d1, f3.digest());
}

TEST(Fingerprinter, TypesAreDistinguished) {
  Fingerprinter fs, fi;
  fs.add("x", std::string("1"));
  fi.add("x", std::int64_t{1});
  EXPECT_NE(fs.digest(), fi.digest());
}

TEST(Fingerprint, Validation) {
  EXPECT_TRUE(is_fingerprint(std::string(64, 'a')));
  EXPECT_FALSE(is_fingerprint(std::string(63, 'a')));
  EXPECT_FALSE(is_fingerprint(std::string(64, 'A')));  // lowercase only
  EXPECT_FALSE(is_fingerprint(std::string(64, 'g')));
  EXPECT_FALSE(is_fingerprint("../../../../etc/passwd"));
}

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "falvolt_store_test";
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::string fp_of(const std::string& seed) {
    return sha256_hex(seed);
  }

  std::string root_;
};

TEST_F(ResultStoreTest, PutGetRoundTrip) {
  LocalDirStore store(root_);
  const std::string fp = fp_of("cell1");
  EXPECT_FALSE(store.contains(fp));
  EXPECT_EQ(store.get(fp), std::nullopt);
  const std::string payload = "hello \0 binary\x7f payload";
  store.put(fp, payload);
  EXPECT_TRUE(store.contains(fp));
  EXPECT_EQ(store.get(fp), payload);
  // Overwrite is last-writer-wins (content-addressed stores only ever
  // see identical rewrites in practice).
  store.put(fp, "other");
  EXPECT_EQ(store.get(fp), "other");
}

TEST_F(ResultStoreTest, MalformedFingerprintThrows) {
  LocalDirStore store(root_);
  EXPECT_THROW(store.put("nope", "x"), std::invalid_argument);
  EXPECT_THROW(store.get("../escape"), std::invalid_argument);
}

TEST_F(ResultStoreTest, TruncatedRecordReadsAsMiss) {
  LocalDirStore store(root_);
  const std::string fp = fp_of("trunc");
  store.put(fp, std::string(256, 'x'));
  const std::string path = store.object_path(fp);
  for (const std::uintmax_t keep : {300u, 60u, 10u, 0u}) {
    fs::resize_file(path, keep);
    EXPECT_EQ(store.get(fp), std::nullopt) << "kept " << keep << " bytes";
  }
}

TEST_F(ResultStoreTest, TrailingGarbageReadsAsMiss) {
  LocalDirStore store(root_);
  const std::string fp = fp_of("tail");
  store.put(fp, "payload");
  std::ofstream out(store.object_path(fp),
                    std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_EQ(store.get(fp), std::nullopt);
}

TEST_F(ResultStoreTest, FlippedPayloadByteFailsChecksum) {
  LocalDirStore store(root_);
  const std::string fp = fp_of("flip");
  store.put(fp, std::string(64, 'y'));
  const std::string path = store.object_path(fp);
  // Flip one payload byte in place (the payload starts after the
  // 48-byte frame header).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(48 + 10);
  f.put('Z');
  f.close();
  EXPECT_EQ(store.get(fp), std::nullopt);
}

TEST_F(ResultStoreTest, ConcurrentWritersStayConsistent) {
  LocalDirStore store(root_);
  const std::string shared_fp = fp_of("shared");
  const std::string shared_payload(512, 's');
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Everyone hammers one shared cell (the multi-shard overlap
        // case) and writes private cells too.
        store.put(shared_fp, shared_payload);
        store.put(fp_of("t" + std::to_string(t) + "r" + std::to_string(r)),
                  std::string(64, static_cast<char>('a' + t)));
        // Interleaved reads must never observe a torn record.
        const auto seen = store.get(shared_fp);
        ASSERT_TRUE(seen.has_value());
        ASSERT_EQ(*seen, shared_payload);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.get(shared_fp), shared_payload);
  EXPECT_EQ(store.fingerprints().size(), 1u + kThreads * kRounds);
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      EXPECT_TRUE(store.get(
          fp_of("t" + std::to_string(t) + "r" + std::to_string(r))));
    }
  }
}

TEST_F(ResultStoreTest, MergeUnionsAndSkipsCorrupt) {
  LocalDirStore a(root_ + "_a");
  LocalDirStore b(root_ + "_b");
  LocalDirStore dst(root_);
  a.put(fp_of("one"), "1");
  a.put(fp_of("both"), "same");
  b.put(fp_of("both"), "same");
  b.put(fp_of("two"), "2");
  b.put(fp_of("rot"), "will rot");
  fs::resize_file(b.object_path(fp_of("rot")), 20);  // corrupt in place

  const MergeStats sa = merge_records(dst, a);
  EXPECT_EQ(sa.copied, 2);
  EXPECT_EQ(sa.present, 0);
  EXPECT_EQ(sa.corrupt, 0);
  const MergeStats sb = merge_records(dst, b);
  EXPECT_EQ(sb.copied, 1);   // "two"
  EXPECT_EQ(sb.present, 1);  // "both"
  EXPECT_EQ(sb.corrupt, 1);  // "rot" skipped, not propagated
  EXPECT_EQ(dst.get(fp_of("one")), "1");
  EXPECT_EQ(dst.get(fp_of("two")), "2");
  EXPECT_EQ(dst.get(fp_of("both")), "same");
  EXPECT_FALSE(dst.contains(fp_of("rot")));
  fs::remove_all(root_ + "_a");
  fs::remove_all(root_ + "_b");
}

TEST_F(ResultStoreTest, ManifestRoundTripAndListing) {
  LocalDirStore store(root_);
  Manifest m;
  m.bench = "fig5b_fault_count";
  m.entries = {{sha256_hex("c0"), "MNIST/faulty=0/rep=0"},
               {sha256_hex("c1"), "key with spaces, and commas"}};
  write_manifest(store, m);

  const std::vector<std::string> found =
      list_manifests(store, "fig5b_fault_count");
  ASSERT_EQ(found.size(), 1u);
  const std::optional<Manifest> back = read_manifest(found.front());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bench, m.bench);
  EXPECT_EQ(back->entries, m.entries);
  EXPECT_EQ(back->grid_digest(), m.grid_digest());

  // A different grid of the same bench gets its own manifest file.
  Manifest m2 = m;
  m2.entries.emplace_back(sha256_hex("c2"), "extra");
  write_manifest(store, m2);
  EXPECT_EQ(list_manifests(store, "fig5b_fault_count").size(), 2u);
  EXPECT_TRUE(list_manifests(store, "other_bench").empty());
}

TEST_F(ResultStoreTest, TruncatedManifestIsRejected) {
  LocalDirStore store(root_);
  Manifest m;
  m.bench = "b";
  m.entries = {{sha256_hex("x"), "k0"}, {sha256_hex("y"), "k1"}};
  // Drop the last line: declared cell count no longer matches.
  std::string text = m.to_text();
  text.erase(text.rfind(sha256_hex("y")));
  EXPECT_EQ(parse_manifest(text), std::nullopt);
  EXPECT_EQ(parse_manifest("not a manifest"), std::nullopt);
  EXPECT_TRUE(parse_manifest(m.to_text()).has_value());
}

}  // namespace
}  // namespace falvolt::store
