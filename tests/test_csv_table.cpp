#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace falvolt::common {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "falvolt_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<std::string>{"1", "x"});
    w.row(std::vector<double>{2.5, 3.0});
    w.close();
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,x\n2.5,3\n");
}

TEST_F(CsvTest, ColumnCountMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}),
               std::invalid_argument);
}

TEST_F(CsvTest, IntegersFormattedWithoutDecimal) {
  EXPECT_EQ(CsvWriter::format(42.0), "42");
  EXPECT_EQ(CsvWriter::format(-3.0), "-3");
  EXPECT_EQ(CsvWriter::format(0.25), "0.25");
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvEscape, Rfc4180) {
  // Plain fields pass through untouched — existing numeric output stays
  // byte-identical.
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("42.5"), "42.5");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("semi;colon"), "semi;colon");
  // Commas, quotes and newlines force quoting; quotes double.
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_escape(","), "\",\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST_F(CsvTest, WriterEscapesCellsAndHeader) {
  {
    CsvWriter w(path_, {"key", "error,detail"});
    w.row(std::vector<std::string>{"MNIST/vth=0.45", "bad value: \"x,y\""});
    w.close();
  }
  EXPECT_EQ(read_file(path_),
            "key,\"error,detail\"\n"
            "MNIST/vth=0.45,\"bad value: \"\"x,y\"\"\"\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "acc"});
  t.row({"mnist", "99.1"});
  t.row({"dvs-gesture", "97"});
  const std::string s = t.str();
  // Header then separator then two rows.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("dvs-gesture"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Each line is equally padded: all rows contain the widest cell width.
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const auto header_len = line.size();
  std::getline(is, line);  // separator
  EXPECT_EQ(line.size(), std::string("dvs-gesture  99.1").size());
  (void)header_len;
}

TEST(TextTable, RowNumericFormatting) {
  TextTable t({"x", "y"});
  t.row_numeric({1.23456, 2.0}, 2);
  EXPECT_NE(t.str().find("1.23"), std::string::npos);
  EXPECT_NE(t.str().find("2.00"), std::string::npos);
}

TEST(TextTable, RowLabeled) {
  TextTable t({"method", "a", "b"});
  t.row_labeled("FalVolt", {98.7, 99.0}, 1);
  EXPECT_NE(t.str().find("FalVolt"), std::string::npos);
  EXPECT_NE(t.str().find("98.7"), std::string::npos);
}

TEST(TextTable, ColumnMismatchThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.row({"1", "2"}), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::common
