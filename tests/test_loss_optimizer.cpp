#include <gtest/gtest.h>

#include <cmath>

#include "snn/loss.h"
#include "snn/optimizer.h"

namespace falvolt::snn {
namespace {

TEST(RateMseLoss, PerfectPredictionZeroLoss) {
  tensor::Tensor rate({2, 3}, {1, 0, 0, 0, 0, 1});
  const LossResult r = rate_mse_loss(rate, {0, 2});
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
  for (std::size_t i = 0; i < r.grad_rate.size(); ++i) {
    EXPECT_EQ(r.grad_rate[i], 0.0f);
  }
}

TEST(RateMseLoss, KnownValue) {
  tensor::Tensor rate({1, 2}, {0.5f, 0.5f});
  const LossResult r = rate_mse_loss(rate, {0});
  // ((0.5-1)^2 + (0.5-0)^2) / 2 = 0.25
  EXPECT_NEAR(r.loss, 0.25, 1e-9);
  // grad = 2 * diff / (N*C)
  EXPECT_FLOAT_EQ(r.grad_rate[0], -0.5f);
  EXPECT_FLOAT_EQ(r.grad_rate[1], 0.5f);
}

TEST(RateMseLoss, GradMatchesFiniteDifference) {
  tensor::Tensor rate({2, 4}, {0.1f, 0.7f, 0.2f, 0.0f,
                               0.9f, 0.3f, 0.3f, 0.5f});
  const std::vector<int> labels = {1, 0};
  const LossResult r = rate_mse_loss(rate, labels);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < rate.size(); ++i) {
    tensor::Tensor plus = rate;
    plus[i] += static_cast<float>(eps);
    tensor::Tensor minus = rate;
    minus[i] -= static_cast<float>(eps);
    const double num = (rate_mse_loss(plus, labels).loss -
                        rate_mse_loss(minus, labels).loss) /
                       (2 * eps);
    EXPECT_NEAR(r.grad_rate[i], num, 1e-4);
  }
}

TEST(RateMseLoss, Validation) {
  tensor::Tensor rate({2, 3});
  EXPECT_THROW(rate_mse_loss(rate, {0}), std::invalid_argument);
  EXPECT_THROW(rate_mse_loss(rate, {0, 3}), std::invalid_argument);
  EXPECT_THROW(rate_mse_loss(rate, {0, -1}), std::invalid_argument);
  EXPECT_THROW(rate_mse_loss(tensor::Tensor({6}), {0}),
               std::invalid_argument);
}

Param make_param(float value, float grad) {
  Param p("p", tensor::Tensor({1}, value));
  p.grad[0] = grad;
  return p;
}

TEST(Sgd, BasicStep) {
  Sgd opt(0.1, 0.0);
  Param p = make_param(1.0f, 2.0f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 0.8f);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd opt(0.1, 0.5);
  Param p = make_param(0.0f, 1.0f);
  opt.step({&p});  // v=1, x=-0.1
  EXPECT_FLOAT_EQ(p.value[0], -0.1f);
  opt.step({&p});  // v=1.5, x=-0.25
  EXPECT_FLOAT_EQ(p.value[0], -0.25f);
}

TEST(Sgd, SkipsNonTrainable) {
  Sgd opt(0.1);
  Param p = make_param(1.0f, 5.0f);
  p.trainable = false;
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(Sgd, InvalidHyperparamsThrow) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, 1.0), std::invalid_argument);
}

TEST(Adam, FirstStepIsLrSizedSignedStep) {
  Adam opt(0.01);
  Param p = make_param(1.0f, 0.5f);
  opt.step({&p});
  // After bias correction, the first Adam step is ~lr * sign(grad).
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 by feeding grad = 2(x-3).
  Adam opt(0.05);
  Param p = make_param(0.0f, 0.0f);
  for (int i = 0; i < 500; ++i) {
    p.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, StatePerParameter) {
  Adam opt(0.01);
  Param a = make_param(0.0f, 1.0f);
  Param b = make_param(0.0f, -1.0f);
  opt.step({&a, &b});
  EXPECT_LT(a.value[0], 0.0f);
  EXPECT_GT(b.value[0], 0.0f);
}

TEST(Optimizer, LrMutable) {
  Adam opt(0.01);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.01);
  opt.set_lr(0.1);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.1);
}

}  // namespace
}  // namespace falvolt::snn
