#include "snn/plif.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace falvolt::snn {
namespace {

using falvolt::testutil::analytic_grads;
using falvolt::testutil::numeric_grad;
using falvolt::testutil::random_tensor;

TEST(Plif, FiresWhenMembraneExceedsThreshold) {
  PlifConfig cfg;
  cfg.initial_tau = 2.0f;  // k = 0.5
  cfg.initial_vth = 1.0f;
  Plif p("p", cfg);
  p.reset_state();
  // Step 0: H = 0 + 0.5 * (3 - 0) = 1.5 > 1 -> spike, reset to 0.
  tensor::Tensor x({1, 1}, 3.0f);
  tensor::Tensor s0 = p.forward(x, 0, Mode::kEval);
  EXPECT_EQ(s0[0], 1.0f);
  // Step 1 after reset: H = 0.5 * 3 = 1.5 -> spikes again.
  tensor::Tensor s1 = p.forward(x, 1, Mode::kEval);
  EXPECT_EQ(s1[0], 1.0f);
}

TEST(Plif, SubthresholdInputAccumulates) {
  PlifConfig cfg;
  cfg.initial_tau = 2.0f;
  cfg.initial_vth = 1.0f;
  Plif p("p", cfg);
  p.reset_state();
  tensor::Tensor x({1, 1}, 0.8f);
  // H0 = 0.4 (no spike), H1 = 0.4 + 0.5*(0.8-0.4) = 0.6, H2 = 0.7, ...
  EXPECT_EQ(p.forward(x, 0, Mode::kEval)[0], 0.0f);
  EXPECT_EQ(p.forward(x, 1, Mode::kEval)[0], 0.0f);
  // The membrane converges to x = 0.8 < 1.0, so it never fires.
  for (int t = 2; t < 20; ++t) {
    EXPECT_EQ(p.forward(x, t, Mode::kEval)[0], 0.0f);
  }
}

TEST(Plif, LowerThresholdFiresMore) {
  tensor::Tensor x({1, 1}, 0.8f);
  auto count_spikes = [&](float vth) {
    PlifConfig cfg;
    cfg.initial_vth = vth;
    Plif p("p", cfg);
    p.reset_state();
    int spikes = 0;
    for (int t = 0; t < 20; ++t) {
      spikes += p.forward(x, t, Mode::kEval)[0] == 1.0f ? 1 : 0;
    }
    return spikes;
  };
  EXPECT_GT(count_spikes(0.45f), count_spikes(0.7f));
  EXPECT_EQ(count_spikes(1.2f), 0);
}

TEST(Plif, NonConsecutiveTimeStepThrows) {
  Plif p("p");
  p.reset_state();
  tensor::Tensor x({1, 1}, 0.5f);
  p.forward(x, 0, Mode::kTrain);
  EXPECT_THROW(p.forward(x, 2, Mode::kTrain), std::logic_error);
}

TEST(Plif, ResetStateClearsMembrane) {
  PlifConfig cfg;
  cfg.initial_vth = 1.0f;
  Plif p("p", cfg);
  p.reset_state();
  tensor::Tensor x({1, 1}, 0.9f);
  p.forward(x, 0, Mode::kEval);
  p.reset_state();
  // After reset the same stimulus gives the same (subthreshold) response.
  EXPECT_EQ(p.forward(x, 0, Mode::kEval)[0], 0.0f);
}

TEST(Plif, SetVthClamps) {
  Plif p("p");
  p.set_vth(100.0f);
  EXPECT_FLOAT_EQ(p.vth(), 2.0f);  // default vth_max
  p.set_vth(0.0f);
  EXPECT_FLOAT_EQ(p.vth(), 0.05f);  // default vth_min
}

TEST(Plif, TauMatchesConfig) {
  PlifConfig cfg;
  cfg.initial_tau = 4.0f;
  Plif p("p", cfg);
  EXPECT_NEAR(p.tau(), 4.0f, 1e-4f);
  EXPECT_NEAR(p.k(), 0.25f, 1e-5f);
}

TEST(Plif, InvalidConfigThrows) {
  PlifConfig cfg;
  cfg.initial_tau = 1.0f;
  EXPECT_THROW(Plif("p", cfg), std::invalid_argument);
  cfg.initial_tau = 2.0f;
  cfg.initial_vth = 0.0f;
  EXPECT_THROW(Plif("p", cfg), std::invalid_argument);
}

// ---- Gradient checks (BPTT through 4 steps) ----
//
// The true spike function is piecewise constant, so finite differences of
// the layer output are 0 almost everywhere and O(1/eps) at spike flips —
// they can never validate a *surrogate* gradient. Instead we validate the
// layer against an independent hand-coded reference implementation of the
// surrogate-BPTT recursion (DESIGN.md / paper Eqs. 2-4):
//   dL/dH_t   = y_t * sg(z_t)/V + carry_{t+1} * (1 - S_t)
//   dL/dV    += y_t * sg(z_t) * (-H_t / V^2)
//   dL/dx_t   = dL/dH_t * k
//   dL/dk    += dL/dH_t * (x_t - V_{t-1})
//   carry_t   = dL/dH_t * (1 - k)
struct ReferenceGrads {
  std::vector<tensor::Tensor> input;
  double vth = 0.0;
  double w_tau = 0.0;
};

ReferenceGrads reference_bptt(const std::vector<tensor::Tensor>& xs,
                              const std::vector<tensor::Tensor>& ys,
                              float k, float vth, const Surrogate& sg) {
  const int T = static_cast<int>(xs.size());
  const std::size_t n = xs[0].size();
  // Forward: record H_t, S_t, V_{t-1}.
  std::vector<tensor::Tensor> h(T), s(T), vprev(T);
  tensor::Tensor v(xs[0].shape());
  for (int t = 0; t < T; ++t) {
    h[t] = tensor::Tensor(xs[0].shape());
    s[t] = tensor::Tensor(xs[0].shape());
    vprev[t] = v;
    for (std::size_t i = 0; i < n; ++i) {
      const float hi = v[i] + k * (xs[t][i] - v[i]);
      h[t][i] = hi;
      const bool fire = hi > vth;
      s[t][i] = fire ? 1.0f : 0.0f;
      v[i] = fire ? 0.0f : hi;
    }
  }
  // Backward.
  ReferenceGrads out;
  out.input.assign(static_cast<std::size_t>(T), tensor::Tensor());
  tensor::Tensor carry(xs[0].shape());
  double dk = 0.0;
  for (int t = T - 1; t >= 0; --t) {
    out.input[static_cast<std::size_t>(t)] = tensor::Tensor(xs[0].shape());
    for (std::size_t i = 0; i < n; ++i) {
      const float z = h[t][i] / vth - 1.0f;
      const float g = sg.grad(z);
      const float dh = ys[t][i] * g / vth + carry[i] * (1.0f - s[t][i]);
      out.vth += static_cast<double>(ys[t][i]) * g *
                 (-h[t][i] / (vth * vth));
      dk += static_cast<double>(dh) * (xs[t][i] - vprev[t][i]);
      out.input[static_cast<std::size_t>(t)][i] = dh * k;
      carry[i] = dh * (1.0f - k);
    }
  }
  out.w_tau = dk * k * (1.0 - k);
  return out;
}

std::vector<tensor::Tensor> make_inputs(common::Rng& rng, int t_steps,
                                        tensor::Shape shape) {
  std::vector<tensor::Tensor> xs;
  for (int t = 0; t < t_steps; ++t) {
    xs.push_back(falvolt::testutil::random_tensor(shape, rng, 0.0, 2.0));
  }
  return xs;
}

TEST(PlifGrad, MatchesIndependentReferenceRecursion) {
  common::Rng rng(31);
  PlifConfig cfg;
  cfg.train_vth = true;
  Plif p("p", cfg);
  const int T = 4;
  auto xs = make_inputs(rng, T, {2, 3});
  std::vector<tensor::Tensor> ys;
  for (int t = 0; t < T; ++t) {
    ys.push_back(falvolt::testutil::random_tensor({2, 3}, rng));
  }
  const auto grads = analytic_grads(p, xs, ys);
  const ReferenceGrads ref =
      reference_bptt(xs, ys, p.k(), p.vth(), p.surrogate());
  for (int t = 0; t < T; ++t) {
    for (std::size_t i = 0; i < xs[0].size(); ++i) {
      EXPECT_NEAR(grads[t][i], ref.input[static_cast<std::size_t>(t)][i],
                  1e-5)
          << "t=" << t << " i=" << i;
    }
  }
  EXPECT_NEAR(p.params()[0]->grad[0], ref.vth, 1e-4);    // vth
  EXPECT_NEAR(p.params()[1]->grad[0], ref.w_tau, 1e-4);  // w_tau
}

TEST(PlifGrad, VthGradientSignLowersThresholdWhenMoreSpikesWanted) {
  // If the loss rewards spiking (positive cotangent on S) and the neuron
  // is near threshold, dL/dV must be negative: lowering V_th raises S.
  PlifConfig cfg;
  cfg.train_vth = true;
  Plif p("p", cfg);
  p.reset_state();
  std::vector<tensor::Tensor> xs{tensor::Tensor({1, 1}, 1.9f)};  // H ~ 0.95
  std::vector<tensor::Tensor> ys{tensor::Tensor({1, 1}, -1.0f)};
  // Loss = -S (we *want* spikes); dL/dV = -sg * (-H/V^2) * ... sign check:
  analytic_grads(p, xs, ys);
  EXPECT_GT(p.params()[0]->grad[0], 0.0f);
  // Gradient descent then *decreases* V? No: grad > 0 means descent
  // lowers V_th, which increases spiking and decreases the loss. Verify
  // by stepping manually.
  const float before = p.vth();
  p.set_vth(before - 0.2f);
  p.reset_state();
  const tensor::Tensor s = p.forward(xs[0], 0, Mode::kEval);
  EXPECT_EQ(s[0], 1.0f);  // now fires
}

TEST(PlifGrad, TauGradientNonzeroWhenTrained) {
  common::Rng rng(35);
  Plif p("p");
  const int T = 3;
  auto xs = make_inputs(rng, T, {4, 4});
  std::vector<tensor::Tensor> ys;
  for (int t = 0; t < T; ++t) {
    ys.push_back(falvolt::testutil::random_tensor({4, 4}, rng));
  }
  analytic_grads(p, xs, ys);
  // params()[1] is w_tau.
  EXPECT_NE(p.params()[1]->grad[0], 0.0f);
}

TEST(PlifGrad, VthGradientZeroWhenFrozen) {
  common::Rng rng(37);
  PlifConfig cfg;
  cfg.train_vth = false;  // FaPIT mode
  Plif p("p", cfg);
  const int T = 3;
  auto xs = make_inputs(rng, T, {4, 4});
  std::vector<tensor::Tensor> ys;
  for (int t = 0; t < T; ++t) {
    ys.push_back(falvolt::testutil::random_tensor({4, 4}, rng));
  }
  analytic_grads(p, xs, ys);
  EXPECT_EQ(p.params()[0]->grad[0], 0.0f);
}

TEST(PlifGrad, BackwardWithoutCacheThrows) {
  Plif p("p");
  p.reset_state();
  tensor::Tensor g({1, 1});
  EXPECT_THROW(p.backward(g, 0), std::logic_error);
}

}  // namespace
}  // namespace falvolt::snn
