// PullThePlug: the crash/fault-injection harness for the store stack.
//
// Everything the store CLAIMS about durability is exercised here
// through io::Env + io::FaultInjector instead of asserted:
//  - atomic_publish never exposes a partial file under its final name,
//    proven by SIGKILLing a child process at every PtP boundary;
//  - every read layer (loose objects, indexed segments, substituters)
//    degrades injected corruption to "recompute" — never throws, never
//    returns a wrong record;
//  - a sweep whose writes are torn/bit-flipped, or whose worker is
//    killed mid-cell, resumes to a byte-identical table, recomputing
//    only the cells whose records never validly published.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "io/env.h"
#include "io/fault_injector.h"
#include "obs/metrics.h"
#include "store/compact.h"
#include "store/result_store.h"
#include "store/store_api.h"

namespace fs = std::filesystem;

namespace falvolt::io {
namespace {

using core::ResultTable;
using core::Scenario;
using core::ScenarioResult;
using core::SweepContext;
using core::SweepRunner;
using core::SweepStoreOptions;
using core::WorkloadOptions;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_fault_injection_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    disarm_faults();
    set_env(nullptr);
    fs::remove_all(dir_);
  }

  static std::vector<Scenario> grid(int n = 6) {
    std::vector<Scenario> scenarios;
    for (int i = 0; i < n; ++i) {
      Scenario s;
      s.key = "cell=" + std::to_string(i);
      s.fault_count = i;
      s.fault_seed = 100 + static_cast<std::uint64_t>(i);
      scenarios.push_back(s);
    }
    return scenarios;
  }

  static SweepStoreOptions store_opts(const std::string& dir) {
    SweepStoreOptions st;
    st.dir = dir;
    st.bench = "fault_test";
    st.config = {{"epochs", "4"}};
    return st;
  }

  static SweepRunner::ScenarioFn counting_fn(std::atomic<int>& computed) {
    return [&computed](const Scenario& s, const SweepContext&) {
      ++computed;
      ScenarioResult out;
      out.metrics = {{"value", 10.0 * static_cast<double>(s.fault_count)}};
      out.csv_rows = {{s.key, "row"}};
      out.log = "log " + s.key + "\n";
      return out;
    };
  }

  static SweepRunner runner(const SweepStoreOptions& st) {
    WorkloadOptions opts;
    opts.sweep_parallel = 1;  // serial: the fault-point sequence is exact
    SweepRunner r{opts};
    r.set_prepare_baselines(false);
    r.set_store(st);
    return r;
  }

  // Valid (frame-validating) records currently readable from `dir`.
  static std::size_t valid_records(const std::string& dir) {
    store::LocalDirStore s(dir, /*create=*/false);
    std::size_t n = 0;
    for (const std::string& fp : s.fingerprints()) {
      if (s.get(fp)) ++n;
    }
    return n;
  }

  std::string dir_;
};

// ---------------------------------------------------------------- parser

TEST_F(FaultInjectionTest, SpecParserAcceptsTheGrammar) {
  EXPECT_FALSE(parse_fault_spec("").enabled());
  EXPECT_FALSE(parse_fault_spec("none").enabled());
  EXPECT_FALSE(parse_fault_spec("mode=none").enabled());

  const FaultSpec ind = parse_fault_spec("mode=independent,p=0.01,seed=9");
  EXPECT_EQ(ind.mode, FaultMode::kIndependent);
  EXPECT_DOUBLE_EQ(ind.p, 0.01);
  EXPECT_EQ(ind.seed, 9u);
  EXPECT_TRUE(ind.torn_writes);
  EXPECT_TRUE(ind.bitflips);
  EXPECT_FALSE(ind.corrupt_reads);
  EXPECT_FALSE(ind.kill);

  const FaultSpec rl =
      parse_fault_spec("mode=runlength,runlen=12,kill=1,torn=0,bitflip=0");
  EXPECT_EQ(rl.mode, FaultMode::kRunLength);
  EXPECT_EQ(rl.run_length, 12u);
  EXPECT_TRUE(rl.kill);
  EXPECT_FALSE(rl.torn_writes);
  EXPECT_FALSE(rl.bitflips);

  // to_string renders a spec the parser accepts back unchanged.
  EXPECT_EQ(to_string(parse_fault_spec(to_string(rl))), to_string(rl));
}

TEST_F(FaultInjectionTest, SpecParserRejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("mode=bogus"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("p=0.5"), std::invalid_argument);  // no mode
  EXPECT_THROW(parse_fault_spec("mode=independent"),
               std::invalid_argument);  // p required
  EXPECT_THROW(parse_fault_spec("mode=independent,p=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mode=independent,p=1.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mode=independent,p=abc"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mode=runlength"),
               std::invalid_argument);  // runlen required
  EXPECT_THROW(parse_fault_spec("mode=runlength,runlen=0"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mode=runlength,runlen=3,p=0.5"),
               std::invalid_argument);  // p is independent-only
  EXPECT_THROW(parse_fault_spec("mode=independent,p=0.5,runlen=3"),
               std::invalid_argument);  // runlen is runlength-only
  EXPECT_THROW(parse_fault_spec("mode=independent,p=0.5,kill=2"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mode=independent,p=0.5,unknown=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("garbage"), std::invalid_argument);
}

// --------------------------------------------------------- atomic publish

TEST_F(FaultInjectionTest, AtomicPublishIsByteIdenticalAndLeavesNoStaging) {
  const std::string final_path = dir_ + "/out/data.bin";
  fs::create_directories(dir_ + "/out");
  std::string bytes = "payload with \0 embedded";
  bytes += std::string(1000, 'x');
  atomic_publish(dir_ + "/tmp", "t", final_path, bytes);
  EXPECT_EQ(env().read_file(final_path), bytes);
  EXPECT_TRUE(fs::is_empty(dir_ + "/tmp"));

  // Republish over an existing file: plain overwrite, same guarantees.
  atomic_publish(dir_ + "/tmp", "t", final_path, "v2");
  EXPECT_EQ(env().read_file(final_path), std::string("v2"));
}

// The plug-pull sweep: SIGKILL a child at every fault point inside
// atomic_publish and assert the invariant a reader depends on — the
// final path either does not exist or holds the complete bytes, NEVER a
// prefix or corruption. Point order (runlen): 1 = PtP before staging,
// 2 = the staging write itself, 3 = PtP staged-not-durable, 4 = PtP
// durable-not-visible, 5 = PtP visible-before-dir-fsync (the rename has
// happened), 6 = PtP fully published.
TEST_F(FaultInjectionTest, PublishSurvivesPlugPullAtEveryBoundary) {
  const std::string bytes(4096, 'A');
  for (std::uint64_t runlen = 1; runlen <= 6; ++runlen) {
    const std::string final_path =
        dir_ + "/pub/rec" + std::to_string(runlen) + ".bin";
    fs::create_directories(dir_ + "/pub");

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: pull the plug at fault point `runlen`. Damage kinds are
      // disabled so the kill is the only effect (point 2 then writes the
      // full staged bytes before dying — a pure power-cut model).
      FaultSpec spec;
      spec.mode = FaultMode::kRunLength;
      spec.run_length = runlen;
      spec.kill = true;
      spec.torn_writes = false;
      spec.bitflips = false;
      arm_faults(spec);
      atomic_publish(dir_ + "/pub_tmp", "t", final_path, bytes);
      ::_exit(0);  // only reached if the kill point never fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "runlen=" << runlen << ": child exited instead of being killed";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    const std::optional<std::string> readback = env().read_file(final_path);
    if (runlen <= 4) {
      // Killed before the rename: nothing may be visible.
      EXPECT_FALSE(readback.has_value()) << "runlen=" << runlen;
    } else {
      // Killed after the rename: the COMPLETE file must be visible.
      ASSERT_TRUE(readback.has_value()) << "runlen=" << runlen;
      EXPECT_EQ(*readback, bytes) << "runlen=" << runlen;
    }
    // Resume: the same publish against the same directories succeeds and
    // produces the exact bytes, whatever garbage the crash left behind.
    atomic_publish(dir_ + "/pub_tmp", "t", final_path, bytes);
    EXPECT_EQ(env().read_file(final_path), bytes);
  }
}

TEST_F(FaultInjectionTest, TornPublishNeverSurfacesAsARecord) {
  // Independent p=1 with only torn writes: the staged file is truncated
  // and the writer lied, so the publish "succeeds" — but the read side
  // must degrade it. (The record frame is what turns a torn file into a
  // miss; this is the regression test for the deduplicated publish
  // path.)
  store::LocalDirStore s(dir_ + "/store");
  const std::string fp(64, 'a');

  FaultSpec spec = parse_fault_spec("mode=independent,p=1,seed=3,bitflip=0");
  arm_faults(spec);
  s.put(fp, "the payload");
  disarm_faults();

  EXPECT_TRUE(s.contains(fp));           // a (damaged) file exists
  EXPECT_EQ(s.get(fp), std::nullopt);    // but degrades to recompute
  EXPECT_GE(fault_report().torn_writes, 1u);

  // Re-put with faults off repairs the record in place.
  s.put(fp, "the payload");
  EXPECT_EQ(s.get(fp), std::string("the payload"));
}

// ------------------------------------------------- per-layer degradation

// Every layer of the LayeredStore chain must turn injected read
// corruption into nullopt (recompute), never a throw, never wrong
// bytes; and must read cleanly again once disarmed.
TEST_F(FaultInjectionTest, EveryStoreLayerDegradesCorruptReads) {
  const std::string fp_a = std::string(63, 'a') + "1";
  const std::string fp_b = std::string(63, 'b') + "2";

  // Layer fixtures: `local` holds fp_a loose; `seg` holds fp_a in an
  // indexed segment (compacted); `subst` is a substituter holding fp_b.
  {
    store::LocalDirStore local(dir_ + "/local");
    local.put(fp_a, "payload-a");
    store::LocalDirStore seg(dir_ + "/seg");
    seg.put(fp_a, "payload-a");
    store::compact_store(seg);
    store::LocalDirStore subst(dir_ + "/subst");
    subst.put(fp_b, "payload-b");
  }

  for (const char* raw :
       {"mode=independent,p=1,seed=5,read=1", "mode=runlength,runlen=1,read=1"}) {
    SCOPED_TRACE(raw);
    // Open the chains BEFORE arming: segment indexes are parsed at open,
    // and this test targets record reads, not index parsing.
    const auto local = store::open_store(dir_ + "/local");
    const auto seg = store::open_store(dir_ + "/seg");
    const auto layered = store::open_store(dir_ + "/empty", {dir_ + "/subst"});

    arm_faults(parse_fault_spec(raw));
    // RunLength fires only on its Nth point, so probe each chain under a
    // fresh arm; Independent p=1 corrupts every read either way.
    EXPECT_EQ(local->get(fp_a), std::nullopt) << "local layer must degrade";
    arm_faults(parse_fault_spec(raw));
    EXPECT_EQ(seg->get(fp_a), std::nullopt) << "segment layer must degrade";
    arm_faults(parse_fault_spec(raw));
    EXPECT_EQ(layered->get(fp_b), std::nullopt)
        << "substituter layer must degrade";
    disarm_faults();

    // Clean reads afterwards: the corruption was injected in transit,
    // not persisted — no layer may have been poisoned.
    EXPECT_EQ(local->get(fp_a), std::string("payload-a"));
    EXPECT_EQ(seg->get(fp_a), std::string("payload-a"));
    EXPECT_EQ(layered->get(fp_b), std::string("payload-b"));
  }
}

TEST_F(FaultInjectionTest, DamagedSegmentIndexDegradesToMissAtOpen) {
  const std::string fp = std::string(63, 'c') + "3";
  store::LocalDirStore s(dir_ + "/segstore");
  s.put(fp, "segment payload");
  store::compact_store(s);

  // Opening the chain WHILE reads are corrupted: the segment index fails
  // validation, so the whole segment lists as damaged — every get is a
  // miss, nothing throws.
  arm_faults(parse_fault_spec("mode=independent,p=1,seed=11,read=1"));
  const auto chain = store::open_store(dir_ + "/segstore");
  EXPECT_EQ(chain->get(fp), std::nullopt);
  disarm_faults();

  // A clean reopen sees the intact segment again.
  EXPECT_EQ(store::open_store(dir_ + "/segstore")->get(fp),
            std::string("segment payload"));
}

// -------------------------------------------------------- sweep + resume

TEST_F(FaultInjectionTest, SweepUnderTornWritesResumesByteIdentical) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};

  // Clean reference table from an uninjected store.
  const ResultTable reference =
      runner(store_opts(dir_ + "/ref")).run(scenarios, counting_fn(computed));
  ASSERT_EQ(computed.load(), 6);

  // Injected run: every write torn or bit-flipped (p=1). The sweep
  // itself must complete — write faults are silent, damage is a READ
  // problem — and its table is computed in memory, so it matches.
  arm_faults(parse_fault_spec("mode=independent,p=1,seed=21"));
  const ResultTable injected = runner(store_opts(dir_ + "/store"))
                                   .run(scenarios, counting_fn(computed));
  disarm_faults();
  ASSERT_EQ(computed.load(), 12);
  EXPECT_TRUE(injected.complete());
  EXPECT_EQ(injected.to_csv(), reference.to_csv());
  const FaultReport report = fault_report();
  EXPECT_GT(report.injected, 0u);
  EXPECT_GT(report.torn_writes + report.bitflips, 0u);

  // Resume with faults off: every record was damaged (p=1), so every
  // cell recomputes — degrade-to-recompute, loudly counted, and the
  // final table is byte-identical to the clean reference.
  const std::size_t survivors = valid_records(dir_ + "/store");
  EXPECT_EQ(survivors, 0u);  // p=1 damaged every publish
  const ResultTable resumed = runner(store_opts(dir_ + "/store"))
                                  .run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 18);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.to_csv(), reference.to_csv());

  // The repaired store now replays warm: zero recomputes.
  const ResultTable warm = runner(store_opts(dir_ + "/store"))
                               .run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 18) << "repaired store must replay warm";
  EXPECT_EQ(warm.to_csv(), reference.to_csv());
}

// The headline scenario: a worker SIGKILLed mid-cell (plug pulled inside
// a record publish) loses exactly the unpublished cells. The resumed
// run replays every durably published record, recomputes only the rest,
// and lands on the byte-identical table.
TEST_F(FaultInjectionTest, KilledWorkerResumesWithZeroLostPaidWork) {
  const std::vector<Scenario> scenarios = grid();
  std::atomic<int> computed{0};

  const ResultTable reference =
      runner(store_opts(dir_ + "/ref")).run(scenarios, counting_fn(computed));
  ASSERT_EQ(computed.load(), 6);

  // Fault-point arithmetic for one serial sweep (see the publish sweep
  // above; reads are not fault points): the manifest publish burns
  // points 1-6, then each cell burns 8 (pre-put PtP, 6 inside
  // atomic_publish, post-put PtP). Point 26 is "cell 2 staged, not yet
  // renamed": cells 0 and 1 are durable, cell 2 dies unpublished.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultSpec spec = parse_fault_spec("mode=runlength,runlen=26,kill=1");
    arm_faults(spec);
    std::atomic<int> child_computed{0};
    runner(store_opts(dir_ + "/store"))
        .run(scenarios, counting_fn(child_computed));
    ::_exit(0);  // not reached: the plug is pulled mid-sweep
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "worker should have been SIGKILLed";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Exactly the cells published before the kill survive.
  ASSERT_EQ(valid_records(dir_ + "/store"), 2u);

  // Resume against the same store: replay 2, recompute only the 4 cells
  // the crash genuinely lost, produce the byte-identical table.
  const ResultTable resumed = runner(store_opts(dir_ + "/store"))
                                  .run(scenarios, counting_fn(computed));
  EXPECT_EQ(computed.load(), 6 + 4);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.cached_cells(), 2u);
  EXPECT_EQ(resumed.computed_cells(), 4u);
  EXPECT_EQ(resumed.to_csv(), reference.to_csv());
}

// ------------------------------------------------------------- telemetry

TEST_F(FaultInjectionTest, InjectionActivityIsCountedAndReported) {
  const std::uint64_t injected0 = obs::counter("io.faults.injected").value();
  const std::uint64_t torn0 = obs::counter("io.faults.torn_writes").value();
  const std::uint64_t ptp0 = obs::counter("io.ptp.armed").value();

  store::LocalDirStore s(dir_ + "/store");
  arm_faults(parse_fault_spec("mode=independent,p=1,seed=2,bitflip=0"));
  s.put(std::string(64, 'd'), "bytes");
  disarm_faults();

  EXPECT_GT(obs::counter("io.faults.injected").value(), injected0);
  EXPECT_GT(obs::counter("io.faults.torn_writes").value(), torn0);
  EXPECT_GT(obs::counter("io.ptp.armed").value(), ptp0);

  const FaultReport report = fault_report();
  EXPECT_GT(report.points, 0u);
  EXPECT_GT(report.injected, 0u);
  EXPECT_GT(report.ptp_armed, 0u);
  EXPECT_EQ(report.kills, 0u);

  const std::string line = fault_report_line();
  EXPECT_NE(line.find("[faults]"), std::string::npos);
  EXPECT_NE(line.find("mode=independent"), std::string::npos);
  EXPECT_NE(line.find("injected"), std::string::npos);
}

TEST_F(FaultInjectionTest, DisarmedEnvIsTheRealPassthrough) {
  // With no injector installed the seam is the real filesystem: bytes
  // round-trip exactly and no fault point counts anything.
  EXPECT_FALSE(faults_armed());
  const FaultReport before = fault_report();
  const std::string path = dir_ + "/plain.bin";
  ASSERT_TRUE(env().write_file(path, "exact bytes"));
  EXPECT_EQ(env().read_file(path), std::string("exact bytes"));
  EXPECT_EQ(env().file_size(path), 11u);
  FALVOLT_PTP();  // a no-op when disarmed
  EXPECT_EQ(fault_report().points, before.points);
}

}  // namespace
}  // namespace falvolt::io
