// Property-based / parameterized invariants spanning multiple modules.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/fault_generator.h"
#include "fault/prune_mask.h"
#include "systolic/cycle_sim.h"
#include "systolic/faulty_gemm.h"
#include "systolic/mapping.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace falvolt {
namespace {

tensor::Tensor random_spikes(int m, int k, common::Rng& rng, double p) {
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return a;
}

tensor::Tensor random_weights(int k, int n, common::Rng& rng) {
  tensor::Tensor w({k, n});
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  return w;
}

// Invariant: the pruned-weight fraction converges to the PE fault rate as
// the weight matrix grows (each weight lands on a uniformly distributed
// PE).
class PruneFraction : public ::testing::TestWithParam<double> {};

TEST_P(PruneFraction, TracksFaultRate) {
  const double rate = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(rate * 1000));
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, rate, fault::worst_case_spec(16), rng);
  const tensor::Tensor mask = fault::build_prune_mask(map, 160, 160);
  const double pruned =
      static_cast<double>(fault::count_pruned(mask)) / mask.size();
  EXPECT_NEAR(pruned, map.fault_rate(), 0.02) << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, PruneFraction,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9));

// Invariant: with zero faults, the systolic engine equals the float GEMM
// up to deterministic quantization error — for any array geometry.
class GoldenEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GoldenEquivalence, QuantizationBoundHolds) {
  const int n_pe = GetParam();
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = n_pe;
  common::Rng rng(static_cast<std::uint64_t>(n_pe));
  const int m = 8, k = 3 * n_pe + 1, n = n_pe + 2;
  tensor::Tensor a = random_spikes(m, k, rng, 0.5);
  tensor::Tensor w = random_weights(k, n, rng);
  systolic::SystolicGemmEngine engine(cfg, nullptr);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  tensor::Tensor ref({m, n});
  tensor::gemm(a.data(), w.data(), ref.data(), m, k, n);
  EXPECT_LE(tensor::max_abs_diff(c, ref),
            k * cfg.format.resolution() / 2 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, GoldenEquivalence,
                         ::testing::Values(2, 3, 4, 8, 16));

// Invariant: corruption magnitude grows (weakly) with the stuck bit
// significance, averaged over random problems.
TEST(Properties, HigherBitsCorruptMore) {
  common::Rng rng(7);
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const int m = 12, k = 24, n = 8;
  tensor::Tensor a = random_spikes(m, k, rng, 0.5);
  tensor::Tensor w = random_weights(k, n, rng);
  tensor::Tensor clean({m, n});
  systolic::SystolicGemmEngine golden(cfg, nullptr);
  golden.run(a.data(), w.data(), clean.data(), m, k, n, "L");

  auto corruption_at_bit = [&](int bit) {
    double total = 0.0;
    for (int trial = 0; trial < 4; ++trial) {
      common::Rng trial_rng(static_cast<std::uint64_t>(bit * 10 + trial));
      fault::FaultSpec spec;
      spec.bit = bit;
      spec.word_bits = 16;
      spec.type = fx::StuckType::kStuckAt1;
      const fault::FaultMap map =
          fault::random_fault_map(8, 8, 6, spec, trial_rng);
      systolic::SystolicGemmEngine engine(cfg, &map);
      tensor::Tensor c({m, n});
      engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
      total += tensor::max_abs_diff(c, clean);
    }
    return total / 4.0;
  };
  const double lsb = corruption_at_bit(0);
  const double mid = corruption_at_bit(8);
  const double msb = corruption_at_bit(15);
  EXPECT_LE(lsb, mid + 1e-9);
  EXPECT_LT(mid, msb);
}

// Invariant: under bypass handling, adding more faults never *increases*
// the number of surviving weights.
TEST(Properties, BypassMonotoneInFaultCount) {
  common::Rng rng(9);
  const int k = 64, m = 32;
  std::size_t prev_pruned = 0;
  fault::FaultMap map(16, 16);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  for (int i = 0; i < 40; ++i) {
    // Incrementally add fault cells (monotone growth of the same map).
    int r, c;
    do {
      r = static_cast<int>(rng.uniform_int(std::uint64_t{16}));
      c = static_cast<int>(rng.uniform_int(std::uint64_t{16}));
    } while (map.is_faulty(r, c));
    map.add(r, c, bits);
    const tensor::Tensor mask = fault::build_prune_mask(map, k, m);
    const std::size_t pruned = fault::count_pruned(mask);
    EXPECT_GE(pruned, prev_pruned);
    prev_pruned = pruned;
  }
}

// Invariant: the engine is deterministic — identical runs produce
// identical outputs, including under faults.
TEST(Properties, EngineDeterminism) {
  common::Rng rng(11);
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const fault::FaultMap map =
      fault::random_fault_map(8, 8, 10, fault::worst_case_spec(16), rng);
  const int m = 10, k = 30, n = 12;
  tensor::Tensor a = random_spikes(m, k, rng, 0.4);
  tensor::Tensor w = random_weights(k, n, rng);
  tensor::Tensor c1({m, n});
  tensor::Tensor c2({m, n});
  systolic::SystolicGemmEngine e1(cfg, &map);
  systolic::SystolicGemmEngine e2(cfg, &map);
  e1.run(a.data(), w.data(), c1.data(), m, k, n, "L");
  e2.run(a.data(), w.data(), c2.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c1, c2), 0.0);
}

// Invariant: fault maps never place a weight outside the array and the
// mapping is total — every weight has exactly one PE.
TEST(Properties, MappingIsTotalAndInRange) {
  systolic::ArrayConfig cfg;
  cfg.rows = 12;
  cfg.cols = 5;
  for (int k = 0; k < 40; ++k) {
    for (int m = 0; m < 17; ++m) {
      const systolic::PeCoord pe = systolic::pe_for_weight(k, m, cfg);
      EXPECT_GE(pe.row, 0);
      EXPECT_LT(pe.row, cfg.rows);
      EXPECT_GE(pe.col, 0);
      EXPECT_LT(pe.col, cfg.cols);
    }
  }
}

// Invariant: rectangular (rows != cols) arrays behave identically in the
// functional engine and the cycle simulator, with and without faults.
class RectangularArrays
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RectangularArrays, CycleAndFunctionalAgree) {
  const auto [rows, cols] = GetParam();
  systolic::ArrayConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  common::Rng rng(static_cast<std::uint64_t>(rows * 100 + cols));
  fault::FaultSpec spec = fault::worst_case_spec(16);
  fault::FaultMap map(rows, cols);
  // Two faults placed deterministically inside the grid.
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(rows - 1, cols - 1, bits);
  map.add(rows / 2, 0, bits);
  (void)spec;

  const int m = 5, k = 2 * rows + 1, n = cols + 2;  // fold both dims
  tensor::Tensor a = random_spikes(m, k, rng, 0.5);
  tensor::Tensor w = random_weights(k, n, rng);

  systolic::SystolicArraySim sim(cfg, &map);
  const tensor::Tensor c_cycle = sim.matmul(a, w);
  systolic::SystolicGemmEngine func(cfg, &map);
  tensor::Tensor c_func({m, n});
  func.run(a.data(), w.data(), c_func.data(), m, k, n, "L");
  EXPECT_EQ(tensor::max_abs_diff(c_cycle, c_func), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RectangularArrays,
                         ::testing::Values(std::pair{2, 6}, std::pair{6, 2},
                                           std::pair{3, 5},
                                           std::pair{8, 3}));

// Invariant: output columns beyond the array width fold back onto the
// same physical columns, so a fault in PE column c hits every output
// column j with j % cols == c — and only those.
TEST(Properties, ColumnFoldingHitsAllAliases) {
  systolic::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  for (int r = 0; r < 4; ++r) map.add(r, 1, bits);  // whole PE column 1

  const int m = 3, k = 4, n = 10;
  tensor::Tensor a({m, k}, 1.0f);
  tensor::Tensor w({k, n}, 0.25f);
  systolic::SystolicGemmEngine engine(cfg, &map);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j % 4 == 1) {
        EXPECT_LT(c.at2(i, j), -50.0f) << j;  // corrupted aliases
      } else {
        EXPECT_NEAR(c.at2(i, j), 1.0f, 0.01f) << j;  // untouched
      }
    }
  }
}

// Invariant: total weights_on_pe over all PEs equals K*M.
TEST(Properties, FoldCountsPartitionTheMatrix) {
  systolic::ArrayConfig cfg;
  cfg.rows = 6;
  cfg.cols = 7;
  const int k = 29, m = 15;
  long long total = 0;
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      total += systolic::weights_on_pe(k, m, {r, c}, cfg);
    }
  }
  EXPECT_EQ(total, static_cast<long long>(k) * m);
}

}  // namespace
}  // namespace falvolt
