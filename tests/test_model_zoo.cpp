#include "snn/model_zoo.h"

#include <gtest/gtest.h>

#include "snn/conv2d.h"
#include "snn/linear.h"
#include "data/glyphs.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::snn {
namespace {

TEST(ModelZoo, OutputsAreBinarySpikes) {
  Network net = make_digit_classifier("d", 1, 16, 10);
  net.reset_state();
  common::Rng rng(1);
  tensor::Tensor x =
      falvolt::testutil::random_tensor({3, 1, 16, 16}, rng, 0.0, 1.0);
  for (int t = 0; t < 4; ++t) {
    const tensor::Tensor y = net.forward(x, t, Mode::kEval);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_TRUE(y[i] == 0.0f || y[i] == 1.0f) << y[i];
    }
  }
}

TEST(ModelZoo, MatmulLayerInventoryDigit) {
  Network net = make_digit_classifier("d", 1, 16, 10);
  const auto mm = net.matmul_layers();
  ASSERT_EQ(mm.size(), 5u);  // SEncConv, Conv1, Conv2, FC1, FC2
  EXPECT_EQ(mm[0]->matmul_name(), "SEncConv");
  EXPECT_EQ(mm[1]->matmul_name(), "Conv1");
  EXPECT_EQ(mm[2]->matmul_name(), "Conv2");
  EXPECT_EQ(mm[3]->matmul_name(), "FC1");
  EXPECT_EQ(mm[4]->matmul_name(), "FC2");
}

TEST(ModelZoo, MatmulLayerInventoryGesture) {
  Network net = make_gesture_classifier("g", 2, 24, 11);
  const auto mm = net.matmul_layers();
  ASSERT_EQ(mm.size(), 8u);  // SEncConv, Conv1..Conv5, FC1, FC2
  EXPECT_EQ(mm[1]->matmul_name(), "Conv1");
  EXPECT_EQ(mm[5]->matmul_name(), "Conv5");
  EXPECT_EQ(mm[7]->matmul_name(), "FC2");
}

TEST(ModelZoo, ConfigurableWidth) {
  ZooConfig cfg;
  cfg.channels = 4;
  cfg.fc_hidden = 16;
  Network net = make_digit_classifier("d", 1, 16, 10, cfg);
  auto mm = net.matmul_layers();
  EXPECT_EQ(mm[1]->gemm_m(), 4);                 // Conv1 out channels
  EXPECT_EQ(mm[3]->gemm_k(), 4 * 4 * 4);         // FC1 in features
  EXPECT_EQ(mm[3]->gemm_m(), 16);
}

TEST(ModelZoo, InitialVthFromConfig) {
  ZooConfig cfg;
  cfg.initial_vth = 0.8f;
  Network net = make_digit_classifier("d", 1, 16, 10, cfg);
  for (Plif* p : net.spiking_layers()) {
    EXPECT_FLOAT_EQ(p->vth(), 0.8f);
  }
}

TEST(ModelZoo, VthFrozenByDefault) {
  Network net = make_digit_classifier("d", 1, 16, 10);
  for (Plif* p : net.spiking_layers()) {
    EXPECT_FALSE(p->train_vth());
  }
}

TEST(ModelZoo, SeedControlsInitialization) {
  ZooConfig a;
  a.seed = 1;
  ZooConfig b;
  b.seed = 2;
  Network na = make_digit_classifier("d", 1, 16, 10, a);
  Network nb = make_digit_classifier("d", 1, 16, 10, b);
  const auto wa = na.matmul_layers()[0]->weight_param().value;
  const auto wb = nb.matmul_layers()[0]->weight_param().value;
  EXPECT_GT(tensor::max_abs_diff(wa, wb), 0.0);
  Network nc = make_digit_classifier("d", 1, 16, 10, a);
  EXPECT_EQ(tensor::max_abs_diff(
                wa, nc.matmul_layers()[0]->weight_param().value),
            0.0);
}

TEST(ModelZoo, GesturePoolingGeometry) {
  // Three pools: 24 -> 12 -> 6 -> 3; FC1 input = channels * 3 * 3.
  ZooConfig cfg;
  cfg.channels = 8;
  Network net = make_gesture_classifier("g", 2, 24, 11, cfg);
  const auto mm = net.matmul_layers();
  EXPECT_EQ(mm[6]->gemm_k(), 8 * 3 * 3);
}

TEST(ModelZoo, TrainModeRunsBackwardEndToEnd) {
  // One full BPTT pass through the digit model on realistic (sparse
  // glyph) inputs must produce gradient signal down to the encoder conv.
  Network net = make_digit_classifier("d", 1, 16, 10);
  // Guarantee spiking activity at initialization regardless of the random
  // seed: an untrained head can sit exactly in the surrogate dead zone.
  for (Plif* p : net.spiking_layers()) p->set_vth(0.5f);
  net.reset_state();
  net.zero_grad();
  common::Rng rng(5);
  const int T = 3;
  std::vector<tensor::Tensor> xs;
  for (int t = 0; t < T; ++t) {
    tensor::Tensor x({4, 1, 16, 16});
    for (int s = 0; s < 4; ++s) {
      const tensor::Tensor img = data::render_glyph(s * 2, rng);
      for (int h = 0; h < 16; ++h) {
        for (int w = 0; w < 16; ++w) {
          x.at4(s, 0, h, w) = img.at2(h, w);
        }
      }
    }
    xs.push_back(std::move(x));
  }
  for (int t = 0; t < T; ++t) net.forward(xs[t], t, Mode::kTrain);
  tensor::Tensor g({4, 10}, 0.1f);
  for (int t = T - 1; t >= 0; --t) net.backward(g, t);
  const auto& enc_grad = net.matmul_layers()[0]->weight_param().grad;
  EXPECT_GT(tensor::l2_norm(enc_grad), 0.0);
}

}  // namespace
}  // namespace falvolt::snn
