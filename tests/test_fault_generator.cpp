#include "fault/fault_generator.h"

#include <gtest/gtest.h>

namespace falvolt::fault {
namespace {

TEST(FaultGenerator, ExactCount) {
  common::Rng rng(1);
  FaultSpec spec;
  const FaultMap m = random_fault_map(16, 16, 12, spec, rng);
  EXPECT_EQ(m.num_faulty_pes(), 12);
}

TEST(FaultGenerator, FixedBitPosition) {
  common::Rng rng(2);
  FaultSpec spec;
  spec.bit = 15;
  spec.type = fx::StuckType::kStuckAt1;
  const FaultMap m = random_fault_map(8, 8, 10, spec, rng);
  for (const auto& f : m.faults()) {
    EXPECT_EQ(f.bits.sa1_mask, 1u << 15);
    EXPECT_EQ(f.bits.sa0_mask, 0u);
  }
}

TEST(FaultGenerator, RandomBitStaysInWord) {
  common::Rng rng(3);
  FaultSpec spec;
  spec.bit = -1;
  spec.word_bits = 16;
  const FaultMap m = random_fault_map(16, 16, 60, spec, rng);
  for (const auto& f : m.faults()) {
    EXPECT_EQ((f.bits.sa0_mask | f.bits.sa1_mask) >> 16, 0u);
  }
}

TEST(FaultGenerator, RandomTypeProducesBothLevels) {
  common::Rng rng(4);
  FaultSpec spec;
  spec.random_type = true;
  const FaultMap m = random_fault_map(32, 32, 200, spec, rng);
  int sa0 = 0, sa1 = 0;
  for (const auto& f : m.faults()) {
    if (f.bits.sa0_mask) ++sa0;
    if (f.bits.sa1_mask) ++sa1;
  }
  EXPECT_GT(sa0, 20);
  EXPECT_GT(sa1, 20);
}

TEST(FaultGenerator, MultipleBitsPerPe) {
  common::Rng rng(5);
  FaultSpec spec;
  spec.bits_per_pe = 3;
  const FaultMap m = random_fault_map(8, 8, 5, spec, rng);
  for (const auto& f : m.faults()) {
    EXPECT_EQ(f.bits.count(), 3);
  }
}

TEST(FaultGenerator, RateRoundsToNearestCount) {
  common::Rng rng(6);
  FaultSpec spec;
  const FaultMap m = fault_map_at_rate(16, 16, 0.3, spec, rng);
  EXPECT_EQ(m.num_faulty_pes(), 77);  // round(0.3 * 256)
  const FaultMap zero = fault_map_at_rate(16, 16, 0.0, spec, rng);
  EXPECT_TRUE(zero.empty());
  const FaultMap full = fault_map_at_rate(4, 4, 1.0, spec, rng);
  EXPECT_EQ(full.num_faulty_pes(), 16);
}

TEST(FaultGenerator, DistinctMapsFromDifferentDraws) {
  common::Rng rng(7);
  FaultSpec spec;
  const FaultMap a = random_fault_map(16, 16, 8, spec, rng);
  const FaultMap b = random_fault_map(16, 16, 8, spec, rng);
  // Two consecutive draws should differ in at least one PE.
  bool differ = false;
  for (const auto& f : a.faults()) {
    if (!b.is_faulty(f.row, f.col)) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(FaultGenerator, DeterministicForSeed) {
  common::Rng a(8);
  common::Rng b(8);
  FaultSpec spec;
  const FaultMap ma = random_fault_map(16, 16, 8, spec, a);
  const FaultMap mb = random_fault_map(16, 16, 8, spec, b);
  for (const auto& f : ma.faults()) {
    EXPECT_TRUE(mb.is_faulty(f.row, f.col));
  }
}

TEST(FaultGenerator, Validation) {
  common::Rng rng(9);
  FaultSpec spec;
  EXPECT_THROW(random_fault_map(4, 4, 17, spec, rng), std::invalid_argument);
  EXPECT_THROW(random_fault_map(4, 4, -1, spec, rng), std::invalid_argument);
  spec.bit = 16;
  spec.word_bits = 16;
  EXPECT_THROW(random_fault_map(4, 4, 1, spec, rng), std::invalid_argument);
  spec.bit = 0;
  spec.bits_per_pe = 0;
  EXPECT_THROW(random_fault_map(4, 4, 1, spec, rng), std::invalid_argument);
  EXPECT_THROW(fault_map_at_rate(4, 4, 1.5, FaultSpec{}, rng),
               std::invalid_argument);
}

TEST(FaultGenerator, WorstCaseSpecIsMsbSa1) {
  const FaultSpec s = worst_case_spec(16);
  EXPECT_EQ(s.bit, 15);
  EXPECT_EQ(s.type, fx::StuckType::kStuckAt1);
  EXPECT_EQ(s.word_bits, 16);
}

}  // namespace
}  // namespace falvolt::fault
