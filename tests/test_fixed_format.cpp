#include "fixed/fixed_format.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fixed/fixed_ops.h"

namespace falvolt::fx {
namespace {

TEST(FixedFormat, Q88Basics) {
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(f.total_bits(), 16);
  EXPECT_EQ(f.frac_bits(), 8);
  EXPECT_EQ(f.int_bits(), 7);
  EXPECT_EQ(f.max_raw(), 32767);
  EXPECT_EQ(f.min_raw(), -32768);
  EXPECT_DOUBLE_EQ(f.resolution(), 1.0 / 256.0);
}

TEST(FixedFormat, RejectsBadWidths) {
  EXPECT_THROW(FixedFormat(1, 0), std::invalid_argument);
  EXPECT_THROW(FixedFormat(33, 0), std::invalid_argument);
  EXPECT_THROW(FixedFormat(8, 8), std::invalid_argument);
  EXPECT_THROW(FixedFormat(8, -1), std::invalid_argument);
}

TEST(FixedFormat, QuantizeRoundTripWithinHalfLsb) {
  const FixedFormat f = FixedFormat::q8_8();
  for (double v = -10.0; v <= 10.0; v += 0.013) {
    const double back = f.dequantize(f.quantize(v));
    EXPECT_NEAR(back, v, f.resolution() / 2 + 1e-12) << v;
  }
}

TEST(FixedFormat, QuantizeSaturates) {
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(f.quantize(1e9), f.max_raw());
  EXPECT_EQ(f.quantize(-1e9), f.min_raw());
  EXPECT_EQ(f.quantize(200.0), f.max_raw());  // > 127.996
}

TEST(FixedFormat, QuantizeNanIsZero) {
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(f.quantize(std::nan("")), 0);
}

TEST(FixedFormat, AddSaturatesBothWays) {
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(f.add(f.max_raw(), 1), f.max_raw());
  EXPECT_EQ(f.add(f.min_raw(), -1), f.min_raw());
  EXPECT_EQ(f.add(100, 28), 128);
}

TEST(FixedFormat, SubSaturates) {
  const FixedFormat f = FixedFormat::q8_8();
  EXPECT_EQ(f.sub(f.min_raw(), 1), f.min_raw());
  EXPECT_EQ(f.sub(f.max_raw(), -1), f.max_raw());
  EXPECT_EQ(f.sub(100, 28), 72);
}

TEST(FixedFormat, MulMatchesRealArithmetic) {
  const FixedFormat f = FixedFormat::q8_8();
  const std::int32_t a = f.quantize(1.5);
  const std::int32_t b = f.quantize(-2.25);
  EXPECT_NEAR(f.dequantize(f.mul(a, b)), -3.375, 2 * f.resolution());
}

TEST(FixedFormat, SignExtendNegative) {
  const FixedFormat f = FixedFormat::q8_8();
  // 0x8000 is the most negative 16-bit value.
  EXPECT_EQ(f.sign_extend(0x8000u), -32768);
  EXPECT_EQ(f.sign_extend(0xffffu), -1);
  EXPECT_EQ(f.sign_extend(0x7fffu), 32767);
}

TEST(FixedFormat, SignExtendRoundTripsToBits) {
  const FixedFormat f = FixedFormat::q8_8();
  for (std::int32_t raw : {-32768, -1, 0, 1, 127, 32767}) {
    EXPECT_EQ(f.sign_extend(f.to_bits(raw)), raw);
  }
}

TEST(FixedFormat, ThirtyTwoBitFormat) {
  const FixedFormat f = FixedFormat::q16_16();
  EXPECT_EQ(f.total_bits(), 32);
  EXPECT_EQ(f.max_raw(), 0x7fffffff);
  EXPECT_EQ(f.sign_extend(0xffffffffu), -1);
  EXPECT_NEAR(f.dequantize(f.quantize(1234.5678)), 1234.5678,
              f.resolution());
}

TEST(FixedFormat, ToStringNamesFormat) {
  EXPECT_EQ(FixedFormat::q8_8().to_string(), "Q7.8 (16-bit)");
}

TEST(FixedOps, BufferRoundTrip) {
  const FixedFormat f = FixedFormat::q8_8();
  const float data[] = {0.0f, 1.0f, -1.0f, 0.5f, 3.25f, -100.0f};
  const auto raw = quantize_buffer(data, 6, f);
  float back[6];
  dequantize_buffer(raw.data(), 6, f, back);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(back[i], data[i], f.resolution());
  }
}

TEST(FixedOps, MaxQuantizationErrorHalfLsb) {
  const FixedFormat f = FixedFormat::q8_8();
  std::vector<float> data;
  for (int i = 0; i < 1000; ++i) data.push_back(0.001f * i - 0.5f);
  EXPECT_LE(max_quantization_error(data.data(), data.size(), f),
            f.resolution() / 2 + 1e-9);
}

// Parameterized sweep: round-trip property holds for every format width.
class FormatSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FormatSweep, RoundTripAndSaturationInvariants) {
  const auto [total, frac] = GetParam();
  const FixedFormat f(total, frac);
  // max/min raw are representable and dequantize monotonically.
  EXPECT_GT(f.max_value(), f.min_value());
  EXPECT_EQ(f.saturate(static_cast<std::int64_t>(f.max_raw()) + 5),
            f.max_raw());
  EXPECT_EQ(f.saturate(static_cast<std::int64_t>(f.min_raw()) - 5),
            f.min_raw());
  // Round trip of representable values is exact.
  for (std::int32_t raw : {f.min_raw(), -1, 0, 1, f.max_raw()}) {
    EXPECT_EQ(f.quantize(f.dequantize(raw)), raw);
    EXPECT_EQ(f.sign_extend(f.to_bits(raw)), raw);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, FormatSweep,
    ::testing::Values(std::pair{8, 4}, std::pair{12, 6}, std::pair{16, 8},
                      std::pair{16, 12}, std::pair{24, 12},
                      std::pair{32, 16}, std::pair{32, 0},
                      std::pair{2, 1}));

}  // namespace
}  // namespace falvolt::fx
