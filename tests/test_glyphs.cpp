#include "data/glyphs.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace falvolt::data {
namespace {

TEST(Glyphs, TenDistinctGlyphs) {
  const auto& glyphs = digit_glyphs();
  for (std::size_t i = 0; i < glyphs.size(); ++i) {
    for (std::size_t j = i + 1; j < glyphs.size(); ++j) {
      EXPECT_NE(glyphs[i], glyphs[j]) << i << " vs " << j;
    }
  }
}

TEST(Glyphs, CleanRenderIsCenteredAndBinary) {
  const tensor::Tensor img = render_glyph_clean(8, 16);
  EXPECT_EQ(img.shape(), (tensor::Shape{16, 16}));
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_TRUE(img[i] == 0.0f || img[i] == 1.0f);
  }
  // Border rows/cols must be empty for a centered 8x8 glyph on 16x16.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(img.at2(0, i), 0.0f);
    EXPECT_EQ(img.at2(15, i), 0.0f);
    EXPECT_EQ(img.at2(i, 0), 0.0f);
    EXPECT_EQ(img.at2(i, 15), 0.0f);
  }
  EXPECT_GT(tensor::count_nonzero(img), 10u);
}

TEST(Glyphs, RenderDeterministicGivenRngState) {
  common::Rng a(5);
  common::Rng b(5);
  const tensor::Tensor x = render_glyph(3, a);
  const tensor::Tensor y = render_glyph(3, b);
  EXPECT_EQ(tensor::max_abs_diff(x, y), 0.0);
}

TEST(Glyphs, AugmentationProducesVariation) {
  common::Rng rng(6);
  const tensor::Tensor x = render_glyph(3, rng);
  const tensor::Tensor y = render_glyph(3, rng);
  EXPECT_GT(tensor::max_abs_diff(x, y), 0.0);
}

TEST(Glyphs, ValuesStayInUnitRange) {
  common::Rng rng(7);
  for (int digit = 0; digit < 10; ++digit) {
    const tensor::Tensor img = render_glyph(digit, rng);
    for (std::size_t i = 0; i < img.size(); ++i) {
      EXPECT_GE(img[i], 0.0f);
      EXPECT_LE(img[i], 1.0f);
    }
  }
}

TEST(Glyphs, BadArgsThrow) {
  common::Rng rng(1);
  EXPECT_THROW(render_glyph(-1, rng), std::invalid_argument);
  EXPECT_THROW(render_glyph(10, rng), std::invalid_argument);
  GlyphRenderOptions opts;
  opts.canvas = 4;
  EXPECT_THROW(render_glyph(0, rng, opts), std::invalid_argument);
}

TEST(Glyphs, DifferentDigitsRenderDifferently) {
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      const tensor::Tensor x = render_glyph_clean(a);
      const tensor::Tensor y = render_glyph_clean(b);
      EXPECT_GT(tensor::max_abs_diff(x, y), 0.0) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace falvolt::data
