#include "snn/linear.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace falvolt::snn {
namespace {

using falvolt::testutil::analytic_grads;
using falvolt::testutil::numeric_grad;
using falvolt::testutil::random_tensor;

TEST(Linear, ForwardMatchesManualMatmul) {
  common::Rng rng(1);
  Linear fc("fc", 3, 2, rng, /*bias=*/false);
  fc.weight_param().value = tensor::Tensor({3, 2}, {1, 2, 3, 4, 5, 6});
  fc.reset_state();
  tensor::Tensor x({1, 3}, {1, 1, 1});
  const tensor::Tensor y = fc.forward(x, 0, Mode::kEval);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 12.0f);
}

TEST(Linear, BiasApplied) {
  common::Rng rng(2);
  Linear fc("fc", 2, 2, rng);
  fc.weight_param().value.zero();
  fc.params()[1]->value[0] = 3.0f;
  fc.reset_state();
  tensor::Tensor x({1, 2});
  EXPECT_FLOAT_EQ(fc.forward(x, 0, Mode::kEval).at2(0, 0), 3.0f);
}

TEST(Linear, ShapeValidation) {
  common::Rng rng(3);
  Linear fc("fc", 4, 2, rng);
  fc.reset_state();
  EXPECT_THROW(fc.forward(tensor::Tensor({1, 5}), 0, Mode::kEval),
               std::invalid_argument);
  EXPECT_THROW(Linear("bad", 0, 2, rng), std::invalid_argument);
}

TEST(Linear, WeightGradientMatchesFiniteDifference) {
  common::Rng rng(4);
  Linear fc("fc", 5, 3, rng);
  const int T = 3;
  std::vector<tensor::Tensor> xs, ys;
  for (int t = 0; t < T; ++t) {
    xs.push_back(random_tensor({2, 5}, rng));
    ys.push_back(random_tensor({2, 3}, rng));
  }
  analytic_grads(fc, xs, ys);
  Param& w = fc.weight_param();
  for (std::size_t i = 0; i < w.value.size(); ++i) {
    const double num = numeric_grad(fc, xs, ys, &w.value[i], 1e-3);
    ASSERT_NEAR(w.grad[i], num, 2e-2 * std::max(1.0, std::abs(num))) << i;
  }
}

TEST(Linear, InputGradientMatchesFiniteDifference) {
  common::Rng rng(5);
  Linear fc("fc", 4, 2, rng);
  std::vector<tensor::Tensor> xs{random_tensor({2, 4}, rng)};
  std::vector<tensor::Tensor> ys{random_tensor({2, 2}, rng)};
  const auto grads = analytic_grads(fc, xs, ys);
  for (std::size_t i = 0; i < xs[0].size(); ++i) {
    const double num = numeric_grad(fc, xs, ys, &xs[0][i], 1e-3);
    ASSERT_NEAR(grads[0][i], num, 2e-2 * std::max(1.0, std::abs(num)));
  }
}

TEST(Linear, GradAccumulatesAcrossTimeSteps) {
  common::Rng rng(6);
  Linear fc("fc", 2, 1, rng, /*bias=*/false);
  fc.weight_param().value.fill(1.0f);
  // Two identical steps must give exactly twice the single-step gradient.
  std::vector<tensor::Tensor> x1{tensor::Tensor({1, 2}, {1, 2})};
  std::vector<tensor::Tensor> y1{tensor::Tensor({1, 1}, {1})};
  analytic_grads(fc, x1, y1);
  const float g1 = fc.weight_param().grad[0];
  std::vector<tensor::Tensor> x2{x1[0], x1[0]};
  std::vector<tensor::Tensor> y2{y1[0], y1[0]};
  analytic_grads(fc, x2, y2);
  EXPECT_FLOAT_EQ(fc.weight_param().grad[0], 2.0f * g1);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  common::Rng rng(7);
  Linear fc("fc", 2, 2, rng);
  fc.reset_state();
  EXPECT_THROW(fc.backward(tensor::Tensor({1, 2}), 0), std::logic_error);
}

TEST(Linear, MatmulInterface) {
  common::Rng rng(8);
  Linear fc("head", 128, 10, rng);
  MatmulLayer& m = fc;
  EXPECT_EQ(m.gemm_k(), 128);
  EXPECT_EQ(m.gemm_m(), 10);
  EXPECT_EQ(m.matmul_name(), "head");
}

}  // namespace
}  // namespace falvolt::snn
