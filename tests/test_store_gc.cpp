// Mark-and-sweep GC over manifest reachability (store/gc.h) and the
// sweep_merge --prune contract: unreachable records are deleted,
// reachable records survive re-validation, a pruned store still
// reproduces byte-identical tables, and damage (corrupt records, dead
// manifests, stale payload formats) is counted, never fatal.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "core/sweep.h"
#include "store/gc.h"
#include "store/manifest.h"
#include "store/result_store.h"

namespace fs = std::filesystem;

namespace falvolt::store {
namespace {

// Payload validation exactly as sweep_merge --prune wires it.
bool decodes(const std::string& payload) {
  core::ScenarioResult r;
  return core::decode_scenario_result(payload, r);
}

std::string fp_of(char c) { return std::string(64, c); }

class StoreGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_gc_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A store with records a..{a+n-1}; a manifest references the first
  // `referenced` of them.
  LocalDirStore seeded(int n, int referenced) {
    LocalDirStore rs(dir_);
    Manifest m;
    m.bench = "gc_test";
    for (int i = 0; i < n; ++i) {
      core::ScenarioResult r;
      r.scenario.key = "cell=" + std::string(1, static_cast<char>('a' + i));
      r.metrics = {{"value", 1.0 * i}};
      rs.put(fp_of(static_cast<char>('a' + i)),
             core::encode_scenario_result(r));
      if (i < referenced) {
        m.entries.emplace_back(fp_of(static_cast<char>('a' + i)),
                               r.scenario.key);
      }
    }
    write_manifest(rs, m);
    return rs;
  }

  std::string dir_;
};

TEST_F(StoreGcTest, UnreachableRecordsDeletedReachableSurvive) {
  const LocalDirStore rs = seeded(6, 4);
  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.live, 4u);
  EXPECT_EQ(stats.unreachable, 2u);
  EXPECT_EQ(stats.invalid, 0u);
  EXPECT_EQ(stats.manifests, 1u);
  // The survivors still read back valid; the swept ones are gone.
  for (char c : {'a', 'b', 'c', 'd'}) {
    EXPECT_TRUE(rs.get(fp_of(c)).has_value()) << c;
  }
  for (char c : {'e', 'f'}) {
    EXPECT_FALSE(rs.contains(fp_of(c))) << c;
  }
}

TEST_F(StoreGcTest, CorruptReachableRecordCountedAndRemovedNotFatal) {
  const LocalDirStore rs = seeded(4, 4);
  // Flip bytes in one reachable record (disk rot mid-file).
  {
    std::fstream f(rs.object_path(fp_of('b')),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.write("\xff\xff\xff", 3);
  }
  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.live, 3u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.unreachable, 0u);
  EXPECT_FALSE(rs.contains(fp_of('b')));
}

TEST_F(StoreGcTest, StalePayloadFormatReclaimedThroughPayloadCheck) {
  LocalDirStore rs = seeded(2, 2);
  // A frame-valid record whose payload the codec rejects — what an
  // epoch/codec bump leaves behind (recompute-on-read, reclaim-on-GC).
  Manifest m;
  m.bench = "stale";
  m.entries.emplace_back(fp_of('0'), "stale-cell");
  rs.put(fp_of('0'), "not a scenario result payload");
  write_manifest(rs, m);
  ASSERT_TRUE(rs.get(fp_of('0')).has_value()) << "frame itself is valid";

  // Frame-only GC keeps it; codec-aware GC reclaims it.
  EXPECT_EQ(prune_store(rs).invalid, 0u);
  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.live, 2u);
  EXPECT_FALSE(rs.contains(fp_of('0')));
}

TEST_F(StoreGcTest, UnreadableManifestRemovedAndItsCellsSwept) {
  const LocalDirStore rs = seeded(3, 3);
  const std::string dead =
      (fs::path(dir_) / "manifests" / "dead-000000000000.manifest").string();
  std::ofstream(dead) << "falvolt-manifest 999\ngarbage\n";
  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.manifests, 1u);
  EXPECT_EQ(stats.manifests_invalid, 1u);
  EXPECT_FALSE(fs::exists(dead));
  EXPECT_EQ(stats.live, 3u);  // the readable manifest still marks its cells
}

TEST_F(StoreGcTest, StagingLeftoversCleared) {
  const LocalDirStore rs = seeded(1, 1);
  std::ofstream(fs::path(dir_) / "tmp" / "rec.123.0.tmp") << "half a write";
  std::ofstream(fs::path(dir_) / "tmp" / "manifest.123.0.tmp") << "half";
  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.tmp_removed, 2u);
  EXPECT_TRUE(fs::is_empty(fs::path(dir_) / "tmp"));
}

TEST_F(StoreGcTest, StoreExistsDistinguishesStoresFromTyposAndPlainDirs) {
  EXPECT_FALSE(store_exists(dir_));            // nothing there yet
  fs::create_directories(dir_);
  EXPECT_FALSE(store_exists(dir_));            // a dir is not a store
  { LocalDirStore rs(dir_); }
  EXPECT_TRUE(store_exists(dir_));
  EXPECT_FALSE(store_exists(""));
}

// The headline --prune contract at the sweep level: GC between a cold
// and a warm run deletes nothing a grid needs, so the warm run still
// computes zero cells and its tables are byte-identical — while records
// of an abandoned grid (re-addressed by a config change) are reclaimed.
TEST_F(StoreGcTest, PrunedStoreStillReproducesByteIdenticalTables) {
  core::SweepStoreOptions st;
  st.dir = dir_;
  st.bench = "gc_sweep";
  st.config = {{"epochs", "4"}};
  std::vector<core::Scenario> scenarios;
  for (int i = 0; i < 5; ++i) {
    core::Scenario s;
    s.key = "cell=" + std::to_string(i);
    s.fault_count = i;
    scenarios.push_back(s);
  }
  std::atomic<int> computed{0};
  const auto fn = [&computed](const core::Scenario& s,
                              const core::SweepContext&) {
    ++computed;
    core::ScenarioResult out;
    out.metrics = {{"value", 10.0 * s.fault_count}};
    out.csv_rows = {{s.key, "row"}};
    out.log = "log " + s.key + "\n";
    return out;
  };
  const auto run_with = [&](const core::SweepStoreOptions& opts) {
    core::SweepRunner runner{core::WorkloadOptions{}};
    runner.set_prepare_baselines(false);
    runner.set_store(opts);
    return runner.run(scenarios, fn);
  };

  const core::ResultTable cold = run_with(st);
  EXPECT_EQ(computed.load(), 5);

  // An abandoned grid: same cells under a different config fingerprint.
  // Its manifest is deleted below to simulate "no longer referenced".
  core::SweepStoreOptions abandoned = st;
  abandoned.config = {{"epochs", "9"}};
  run_with(abandoned);
  EXPECT_EQ(computed.load(), 10);
  const LocalDirStore rs(dir_);
  ASSERT_EQ(rs.fingerprints().size(), 10u);
  for (const std::string& path : list_manifests(rs)) {
    const auto m = read_manifest(path);
    ASSERT_TRUE(m.has_value());
    // Both manifests carry bench "gc_sweep"; drop the abandoned grid's
    // file by matching its first fingerprint.
    core::SweepRunner probe{core::WorkloadOptions{}};
    probe.set_prepare_baselines(false);
    probe.set_store(abandoned);
    if (m->entries.front().first == probe.fingerprint(scenarios[0])) {
      fs::remove(path);
    }
  }

  const GcStats stats = prune_store(rs, decodes);
  EXPECT_EQ(stats.live, 5u);
  EXPECT_EQ(stats.unreachable, 5u);

  const core::ResultTable warm = run_with(st);
  EXPECT_EQ(computed.load(), 10) << "prune must not cost live cells";
  EXPECT_EQ(warm.computed_cells(), 0u);
  EXPECT_EQ(warm.to_csv(), cold.to_csv());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold.at(i).seconds, warm.at(i).seconds);
    EXPECT_EQ(cold.at(i).provenance.host, warm.at(i).provenance.host);
    EXPECT_EQ(cold.at(i).provenance.unix_time,
              warm.at(i).provenance.unix_time);
  }
}

}  // namespace
}  // namespace falvolt::store
