#include "snn/batchnorm.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace falvolt::snn {
namespace {

using falvolt::testutil::analytic_grads;
using falvolt::testutil::numeric_grad;
using falvolt::testutil::random_tensor;

TEST(BatchNorm, NormalizesPerChannelInTraining) {
  common::Rng rng(1);
  BatchNorm2d bn("bn", 3);
  bn.reset_state();
  tensor::Tensor x = random_tensor({4, 3, 5, 5}, rng, -2.0, 5.0);
  const tensor::Tensor y = bn.forward(x, 0, Mode::kTrain);
  // Per channel: mean ~0, var ~1.
  const std::size_t plane = 25;
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int n = 0; n < 4; ++n) {
      const float* p = y.data() + (static_cast<std::size_t>(n) * 3 + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum += p[i];
        sq += static_cast<double>(p[i]) * p[i];
      }
    }
    const double mean = sum / 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 100.0 - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  common::Rng rng(2);
  BatchNorm2d bn("bn", 1);
  bn.params()[0]->value[0] = 2.0f;  // gamma
  bn.params()[1]->value[0] = 5.0f;  // beta
  bn.reset_state();
  tensor::Tensor x = random_tensor({4, 1, 3, 3}, rng);
  const tensor::Tensor y = bn.forward(x, 0, Mode::kTrain);
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) sum += y[i];
  EXPECT_NEAR(sum / y.size(), 5.0, 1e-4);  // beta shifts the mean
}

TEST(BatchNorm, EvalUsesRunningStats) {
  common::Rng rng(3);
  BatchNorm2d bn("bn", 2);
  // Train on several batches to populate running stats.
  for (int t = 0; t < 1; ++t) {
    for (int rep = 0; rep < 50; ++rep) {
      bn.reset_state();
      tensor::Tensor x = random_tensor({8, 2, 4, 4}, rng, 2.0, 4.0);
      bn.forward(x, 0, Mode::kTrain);
    }
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0, 0.1);
  // Eval: an input equal to the running mean maps near beta = 0.
  bn.reset_state();
  tensor::Tensor x({1, 2, 4, 4}, 3.0f);
  const tensor::Tensor y = bn.forward(x, 0, Mode::kEval);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], 0.0f, 0.3f);
  }
}

TEST(BatchNorm, StatsNotUpdatedInEval) {
  common::Rng rng(4);
  BatchNorm2d bn("bn", 1);
  const float mean_before = bn.running_mean()[0];
  bn.reset_state();
  tensor::Tensor x = random_tensor({4, 1, 4, 4}, rng, 10.0, 12.0);
  bn.forward(x, 0, Mode::kEval);
  EXPECT_EQ(bn.running_mean()[0], mean_before);
}

TEST(BatchNorm, RunningStatsExposedAsNonTrainableParams) {
  BatchNorm2d bn("bn", 2);
  const auto params = bn.params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0]->trainable);   // gamma
  EXPECT_TRUE(params[1]->trainable);   // beta
  EXPECT_FALSE(params[2]->trainable);  // running_mean
  EXPECT_FALSE(params[3]->trainable);  // running_var
}

TEST(BatchNorm, GradientsMatchFiniteDifference) {
  common::Rng rng(5);
  BatchNorm2d bn("bn", 2);
  const int T = 2;
  std::vector<tensor::Tensor> xs, ys;
  for (int t = 0; t < T; ++t) {
    xs.push_back(random_tensor({3, 2, 3, 3}, rng));
    ys.push_back(random_tensor({3, 2, 3, 3}, rng));
  }
  const auto grads = analytic_grads(bn, xs, ys);
  // Input gradient spot checks. Note: batch statistics depend on the
  // perturbed element, which the analytic backward fully accounts for.
  for (int t = 0; t < T; ++t) {
    for (const std::size_t i : {0u, 9u, 26u}) {
      const double num = numeric_grad(bn, xs, ys, &xs[t][i], 1e-3);
      EXPECT_NEAR(grads[t][i], num, 5e-2 * std::max(1.0, std::abs(num)));
    }
  }
  // Gamma / beta gradients.
  for (int pi = 0; pi < 2; ++pi) {
    for (std::size_t c = 0; c < 2; ++c) {
      Param* p = bn.params()[static_cast<std::size_t>(pi)];
      const float saved_grad = p->grad[c];
      const double num = numeric_grad(bn, xs, ys, &p->value[c], 1e-3);
      EXPECT_NEAR(saved_grad, num, 5e-2 * std::max(1.0, std::abs(num)));
    }
  }
}

TEST(BatchNorm, WrongChannelCountThrows) {
  BatchNorm2d bn("bn", 3);
  bn.reset_state();
  EXPECT_THROW(bn.forward(tensor::Tensor({1, 2, 4, 4}), 0, Mode::kTrain),
               std::invalid_argument);
  EXPECT_THROW(BatchNorm2d("bad", 0), std::invalid_argument);
}

}  // namespace
}  // namespace falvolt::snn
