#include "snn/surrogate.h"

#include <gtest/gtest.h>

namespace falvolt::snn {
namespace {

TEST(Surrogate, TriangleShape) {
  Surrogate s;  // triangle, gamma = 1
  EXPECT_FLOAT_EQ(s.grad(0.0f), 1.0f);   // peak at the threshold
  EXPECT_FLOAT_EQ(s.grad(0.5f), 0.5f);
  EXPECT_FLOAT_EQ(s.grad(-0.5f), 0.5f);
  EXPECT_FLOAT_EQ(s.grad(1.0f), 0.0f);
  EXPECT_FLOAT_EQ(s.grad(2.0f), 0.0f);
  EXPECT_FLOAT_EQ(s.grad(-3.0f), 0.0f);
}

TEST(Surrogate, TriangleGammaScalesPeak) {
  Surrogate s;
  s.gamma = 2.5f;
  EXPECT_FLOAT_EQ(s.grad(0.0f), 2.5f);
  EXPECT_FLOAT_EQ(s.grad(0.5f), 1.25f);
}

TEST(Surrogate, SigmoidShape) {
  Surrogate s;
  s.kind = SurrogateKind::kSigmoid;
  s.gamma = 4.0f;
  EXPECT_FLOAT_EQ(s.grad(0.0f), 1.0f);  // gamma * 0.25
  EXPECT_GT(s.grad(0.0f), s.grad(1.0f));
  EXPECT_FLOAT_EQ(s.grad(0.7f), s.grad(-0.7f));  // symmetric
}

TEST(Surrogate, RectangleShape) {
  Surrogate s;
  s.kind = SurrogateKind::kRectangle;
  s.gamma = 1.0f;
  EXPECT_FLOAT_EQ(s.grad(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(s.grad(0.49f), 1.0f);
  EXPECT_FLOAT_EQ(s.grad(0.51f), 0.0f);
  EXPECT_FLOAT_EQ(s.grad(-0.51f), 0.0f);
}

TEST(Surrogate, AllKindsNonNegative) {
  for (const SurrogateKind k :
       {SurrogateKind::kTriangle, SurrogateKind::kSigmoid,
        SurrogateKind::kRectangle}) {
    Surrogate s;
    s.kind = k;
    for (float z = -3.0f; z <= 3.0f; z += 0.1f) {
      EXPECT_GE(s.grad(z), 0.0f);
    }
  }
}

TEST(Surrogate, ParseNames) {
  EXPECT_EQ(parse_surrogate("triangle"), SurrogateKind::kTriangle);
  EXPECT_EQ(parse_surrogate("sigmoid"), SurrogateKind::kSigmoid);
  EXPECT_EQ(parse_surrogate("rectangle"), SurrogateKind::kRectangle);
  EXPECT_THROW(parse_surrogate("step"), std::invalid_argument);
}

TEST(Surrogate, ToStringMentionsKind) {
  Surrogate s;
  EXPECT_NE(s.to_string().find("triangle"), std::string::npos);
}

}  // namespace
}  // namespace falvolt::snn
