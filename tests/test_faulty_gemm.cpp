#include "systolic/faulty_gemm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/fault_generator.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace falvolt::systolic {
namespace {

using falvolt::testutil::random_tensor;

ArrayConfig small_array(int n = 4) {
  ArrayConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

tensor::Tensor random_spikes(int m, int k, common::Rng& rng, double p = 0.4) {
  tensor::Tensor a({m, k});
  for (auto& v : a) v = rng.bernoulli(p) ? 1.0f : 0.0f;
  return a;
}

TEST(FaultyGemm, GoldenChipMatchesFloatWithinQuantization) {
  common::Rng rng(1);
  ArrayConfig cfg = small_array(8);
  SystolicGemmEngine engine(cfg, nullptr);
  const int m = 6, k = 20, n = 5;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  tensor::Tensor ref({m, n});
  tensor::gemm(a.data(), w.data(), ref.data(), m, k, n);
  // Binary spikes gate exact quantized weights: worst-case error is
  // k * 0.5 LSB.
  EXPECT_LT(tensor::max_abs_diff(c, ref),
            k * cfg.format.resolution() / 2 + 1e-6);
}

TEST(FaultyGemm, RealValuedActivationsSupported) {
  common::Rng rng(2);
  ArrayConfig cfg = small_array(8);
  SystolicGemmEngine engine(cfg, nullptr);
  const int m = 4, k = 10, n = 3;
  tensor::Tensor a = random_tensor({m, k}, rng, 0.0, 1.0);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "enc");
  tensor::Tensor ref({m, n});
  tensor::gemm(a.data(), w.data(), ref.data(), m, k, n);
  EXPECT_LT(tensor::max_abs_diff(c, ref), 0.1);
}

TEST(FaultyGemm, MsbSa1CorruptsColumn) {
  common::Rng rng(3);
  ArrayConfig cfg = small_array(4);
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(0, 1, bits);  // PE column 1
  SystolicGemmEngine engine(cfg, &map);
  const int m = 3, k = 4, n = 4;
  tensor::Tensor a({m, k}, 1.0f);
  tensor::Tensor w({k, n}, 0.25f);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  // Column 1 is driven strongly negative by the stuck sign bit; other
  // columns are unaffected.
  for (int i = 0; i < m; ++i) {
    EXPECT_LT(c.at2(i, 1), -50.0f);
    EXPECT_NEAR(c.at2(i, 0), 1.0f, 0.01f);
    EXPECT_NEAR(c.at2(i, 2), 1.0f, 0.01f);
  }
}

TEST(FaultyGemm, LsbFaultIsNearlyHarmless) {
  common::Rng rng(4);
  ArrayConfig cfg = small_array(4);
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(0, fx::StuckType::kStuckAt1);
  map.add(2, 2, bits);
  SystolicGemmEngine engine(cfg, &map);
  const int m = 4, k = 8, n = 4;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  SystolicGemmEngine clean(cfg, nullptr);
  tensor::Tensor c0({m, n});
  clean.run(a.data(), w.data(), c0.data(), m, k, n, "L");
  // Each traversal step can add at most 1 LSB; k/rows * rows steps.
  EXPECT_LT(tensor::max_abs_diff(c, c0),
            (8 + 1) * cfg.format.resolution() + 1e-6);
}

TEST(FaultyGemm, FaultAppliesEvenWithoutSpike) {
  // A stuck MSB corrupts the passing psum even when its own input spike
  // is zero — the defining property of a permanent accumulator fault.
  ArrayConfig cfg = small_array(4);
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(3, 0, bits);  // last row of column 0
  SystolicGemmEngine engine(cfg, &map);
  const int m = 1, k = 4, n = 1;
  tensor::Tensor a({m, k}, {1, 1, 1, 0});  // no spike at the faulty row
  tensor::Tensor w({k, n}, 0.5f);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  EXPECT_LT(c[0], -50.0f);
}

TEST(FaultyGemm, PaddingRowFaultsStillCorrupt) {
  // K=2 on a 4x4 array: the psum still traverses rows 2 and 3.
  ArrayConfig cfg = small_array(4);
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(3, 0, bits);
  SystolicGemmEngine engine(cfg, &map);
  tensor::Tensor a({1, 2}, {1, 1});
  tensor::Tensor w({2, 1}, 0.5f);
  tensor::Tensor c({1, 1});
  engine.run(a.data(), w.data(), c.data(), 1, 2, 1, "L");
  EXPECT_LT(c[0], -50.0f);
}

TEST(FaultyGemm, BypassDropsContributionWithoutCorruption) {
  ArrayConfig cfg = small_array(4);
  fault::FaultMap map(4, 4);
  fx::StuckBits bits;
  bits.set(15, fx::StuckType::kStuckAt1);
  map.add(1, 0, bits);
  SystolicGemmEngine engine(cfg, &map,
                            SystolicGemmEngine::FaultHandling::kBypass);
  tensor::Tensor a({1, 4}, {1, 1, 1, 1});
  tensor::Tensor w({4, 1}, 0.25f);
  tensor::Tensor c({1, 1});
  engine.run(a.data(), w.data(), c.data(), 1, 4, 1, "L");
  // Weight at k=1 dropped: 3 * 0.25 instead of 1.0, no corruption.
  EXPECT_NEAR(c[0], 0.75f, 0.01f);
}

TEST(FaultyGemm, BypassEqualsPrunedFloatGemm) {
  common::Rng rng(5);
  ArrayConfig cfg = small_array(4);
  const fault::FaultMap map =
      fault::random_fault_map(4, 4, 5, fault::worst_case_spec(16), rng);
  SystolicGemmEngine engine(cfg, &map,
                            SystolicGemmEngine::FaultHandling::kBypass);
  const int m = 6, k = 12, n = 7;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, -0.5, 0.5);
  tensor::Tensor c({m, n});
  engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
  // Float reference with the mapped weights zeroed.
  tensor::Tensor wp = w;
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      if (map.is_faulty(kk % 4, j % 4)) wp.at2(kk, j) = 0.0f;
    }
  }
  tensor::Tensor ref({m, n});
  tensor::gemm(a.data(), wp.data(), ref.data(), m, k, n);
  EXPECT_LT(tensor::max_abs_diff(c, ref),
            k * cfg.format.resolution() / 2 + 1e-6);
}

TEST(FaultyGemm, PlanCacheInvalidatesOnWeightChange) {
  common::Rng rng(6);
  ArrayConfig cfg = small_array(4);
  SystolicGemmEngine engine(cfg, nullptr);
  tensor::Tensor a({1, 4}, {1, 1, 1, 1});
  tensor::Tensor w1({4, 1}, 0.25f);
  tensor::Tensor c({1, 1});
  engine.run(a.data(), w1.data(), c.data(), 1, 4, 1, "L");
  EXPECT_NEAR(c[0], 1.0f, 0.01f);
  tensor::Tensor w2({4, 1}, 0.5f);  // different buffer -> replan
  engine.run(a.data(), w2.data(), c.data(), 1, 4, 1, "L");
  EXPECT_NEAR(c[0], 2.0f, 0.01f);
}

TEST(FaultyGemm, PlanCacheInvalidatesOnInPlaceMutation) {
  // Regression: retraining mutates layer weights IN PLACE, so the same
  // buffer address carries new contents under the same tag. A plan cache
  // keyed on the pointer would keep serving the stale quantization; the
  // cache keys on a content checksum instead.
  ArrayConfig cfg = small_array(4);
  SystolicGemmEngine engine(cfg, nullptr);
  tensor::Tensor a({1, 4}, {1, 1, 1, 1});
  tensor::Tensor w({4, 1}, 0.25f);
  tensor::Tensor c({1, 1});
  engine.run(a.data(), w.data(), c.data(), 1, 4, 1, "L");
  EXPECT_NEAR(c[0], 1.0f, 0.01f);
  for (auto& v : w) v = 0.5f;  // same buffer, new contents
  engine.run(a.data(), w.data(), c.data(), 1, 4, 1, "L");
  EXPECT_NEAR(c[0], 2.0f, 0.01f);
  // And back again, to rule out a one-shot invalidation.
  for (auto& v : w) v = -0.25f;
  engine.run(a.data(), w.data(), c.data(), 1, 4, 1, "L");
  EXPECT_NEAR(c[0], -1.0f, 0.01f);
}

TEST(FaultyGemm, MismatchedMapThrows) {
  fault::FaultMap map(8, 8);
  EXPECT_THROW(SystolicGemmEngine(small_array(4), &map),
               std::invalid_argument);
}

TEST(FaultyGemm, StuckAt1WorseThanStuckAt0OnAverage) {
  // Paper observation: sa1 faults perturb more than sa0 (positive
  // accumulations rarely have their MSB set, so sa0 often masks nothing).
  common::Rng rng(7);
  ArrayConfig cfg = small_array(8);
  const int m = 16, k = 24, n = 8;
  tensor::Tensor a = random_spikes(m, k, rng);
  tensor::Tensor w = random_tensor({k, n}, rng, 0.0, 0.3);
  tensor::Tensor clean({m, n});
  SystolicGemmEngine golden(cfg, nullptr);
  golden.run(a.data(), w.data(), clean.data(), m, k, n, "L");

  auto corruption = [&](fx::StuckType type) {
    fault::FaultMap map(8, 8);
    fx::StuckBits bits;
    bits.set(15, type);
    for (int r = 0; r < 8; r += 2) map.add(r, r % 8, bits);
    SystolicGemmEngine engine(cfg, &map);
    tensor::Tensor c({m, n});
    engine.run(a.data(), w.data(), c.data(), m, k, n, "L");
    return tensor::max_abs_diff(c, clean);
  };
  EXPECT_GT(corruption(fx::StuckType::kStuckAt1),
            corruption(fx::StuckType::kStuckAt0));
}

}  // namespace
}  // namespace falvolt::systolic
