#include "fault/post_fab_test.h"

#include <gtest/gtest.h>

#include "fault/fault_generator.h"

namespace falvolt::fault {
namespace {

TEST(PostFabTest, CleanChipRecoversEmptyMap) {
  FabricatedChip chip(FaultMap(8, 8), fx::FixedFormat::q8_8());
  const TestOutcome out = run_post_fab_test(chip);
  EXPECT_TRUE(out.recovered.empty());
  EXPECT_EQ(out.scan_operations, 8 * 8 * 4);
}

TEST(PostFabTest, ScanReadbackAppliesStuckBits) {
  FaultMap defects(2, 2);
  fx::StuckBits b;
  b.set(0, fx::StuckType::kStuckAt1);
  b.set(3, fx::StuckType::kStuckAt0);
  defects.add(0, 1, b);
  FabricatedChip chip(std::move(defects), fx::FixedFormat::q8_8());
  EXPECT_EQ(chip.scan_readback(0, 1, 0x0008u), 0x0001u);
  EXPECT_EQ(chip.scan_readback(0, 0, 0x0008u), 0x0008u);
}

TEST(PostFabTest, RecoversExactMapSingleFaults) {
  common::Rng rng(1);
  const FabricatedChip chip =
      fabricate_random_chip(16, 16, 20, fx::FixedFormat::q8_8(), rng);
  const TestOutcome out = run_post_fab_test(chip);
  const FaultMap& truth = chip.ground_truth();
  EXPECT_EQ(out.recovered.num_faulty_pes(), truth.num_faulty_pes());
  for (const auto& f : truth.faults()) {
    const fx::StuckBits* rec = out.recovered.at(f.row, f.col);
    ASSERT_NE(rec, nullptr) << f.row << "," << f.col;
    EXPECT_EQ(*rec, f.bits);
  }
}

TEST(PostFabTest, RecoversMultiBitFaults) {
  common::Rng rng(2);
  FaultSpec spec;
  spec.bits_per_pe = 4;
  spec.random_type = true;
  spec.word_bits = 16;
  FaultMap defects = random_fault_map(8, 8, 10, spec, rng);
  FabricatedChip chip(std::move(defects), fx::FixedFormat::q8_8());
  const TestOutcome out = run_post_fab_test(chip);
  for (const auto& f : chip.ground_truth().faults()) {
    const fx::StuckBits* rec = out.recovered.at(f.row, f.col);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(*rec, f.bits);
  }
}

TEST(PostFabTest, Recovers32BitChip) {
  common::Rng rng(3);
  const FabricatedChip chip =
      fabricate_random_chip(4, 4, 6, fx::FixedFormat::q16_16(), rng);
  const TestOutcome out = run_post_fab_test(chip);
  EXPECT_EQ(out.recovered.num_faulty_pes(),
            chip.ground_truth().num_faulty_pes());
  for (const auto& f : chip.ground_truth().faults()) {
    const fx::StuckBits* rec = out.recovered.at(f.row, f.col);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(*rec, f.bits);
  }
}

TEST(PostFabTest, RecoveredMapDrivesPruning) {
  // End-to-end sanity: the recovered map is what FalVolt consumes; it
  // must be interchangeable with the ground truth.
  common::Rng rng(4);
  const FabricatedChip chip =
      fabricate_random_chip(8, 8, 5, fx::FixedFormat::q8_8(), rng);
  const TestOutcome out = run_post_fab_test(chip);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(out.recovered.is_faulty(r, c),
                chip.ground_truth().is_faulty(r, c));
    }
  }
}

}  // namespace
}  // namespace falvolt::fault
