#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace falvolt::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, InitializerListChecksSize) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, At2RowMajorLayout) {
  Tensor t({2, 3}, {0, 1, 2, 10, 11, 12});
  EXPECT_EQ(t.at2(0, 2), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 10.0f);
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
  EXPECT_THROW(t.at2(0, 3), std::out_of_range);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t[119], 7.0f);
  EXPECT_THROW(t.at4(2, 0, 0, 0), std::out_of_range);
}

TEST(Tensor, At2OnNon2DThrows) {
  Tensor t({2, 2, 2});
  EXPECT_THROW(t.at2(0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2}, 1.0f);
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorOps, AddSubMul) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  EXPECT_EQ(add(a, b)[1], 22.0f);
  EXPECT_EQ(sub(b, a)[2], 27.0f);
  EXPECT_EQ(mul(a, b)[0], 10.0f);
  EXPECT_EQ(scale(a, 2.0f)[2], 6.0f);
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  Tensor c({3});
  EXPECT_NO_THROW(add(a, c));
}

TEST(TensorOps, InplaceVariants) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  add_inplace(a, b);
  EXPECT_EQ(a[0], 4.0f);
  axpy_inplace(a, 2.0f, b);
  EXPECT_EQ(a[1], 14.0f);
  mul_inplace(a, b);
  EXPECT_EQ(a[0], 30.0f);
  scale_inplace(a, 0.5f);
  EXPECT_EQ(a[1], 28.0f);
}

TEST(TensorOps, Reductions) {
  Tensor a({4}, {1, -2, 3, 0});
  EXPECT_DOUBLE_EQ(sum(a), 2.0);
  EXPECT_DOUBLE_EQ(mean(a), 0.5);
  EXPECT_EQ(max_value(a), 3.0f);
  EXPECT_EQ(argmax(a), 2u);
  EXPECT_EQ(count_nonzero(a), 3u);
}

TEST(TensorOps, ArgmaxRows) {
  Tensor a({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOps, ArgmaxRowsFirstWinsOnTies) {
  Tensor a({1, 3}, {2, 2, 2});
  EXPECT_EQ(argmax_rows(a)[0], 0);
}

TEST(TensorOps, EmptyReductionsThrow) {
  Tensor a({0});
  EXPECT_THROW(max_value(a), std::invalid_argument);
  EXPECT_THROW(argmax(a), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean(a), 0.0);
}

TEST(TensorOps, MaxAbsDiffAndNorm) {
  Tensor a({3}, {1, 2, 2});
  Tensor b({3}, {1, 0, 5});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
  EXPECT_DOUBLE_EQ(l2_norm(Tensor({2}, {3, 4})), 5.0);
}

TEST(Shape, NumelAndStr) {
  EXPECT_EQ(numel({2, 3, 4}), 24u);
  EXPECT_EQ(numel({}), 1u);
  EXPECT_EQ(numel({5, 0}), 0u);
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace falvolt::tensor
