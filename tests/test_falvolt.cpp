#include "core/falvolt.h"

#include <gtest/gtest.h>

#include "core/fap.h"
#include "data/synthetic_mnist.h"
#include "fault/fault_generator.h"
#include "snn/model_zoo.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace falvolt::core {
namespace {

snn::ZooConfig tiny_zoo() {
  snn::ZooConfig z;
  z.channels = 8;
  z.fc_hidden = 32;
  return z;
}

struct Fixture {
  Fixture() {
    data::SyntheticMnistConfig dc;
    dc.train_size = 160;
    dc.test_size = 80;
    dc.time_steps = 4;
    split = data::make_synthetic_mnist(dc);
    snn::Network net = snn::make_digit_classifier("d", 1, 16, 10, tiny_zoo());
    snn::Adam opt(2e-2);
    snn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 16;
    tc.eval_each_epoch = false;
    snn::Trainer trainer(net, opt, split.train, &split.test, tc);
    trainer.run();
    snapshot = net.snapshot_params();
    baseline = snn::evaluate(net, split.test);
  }
  snn::Network fresh_copy() {
    snn::Network n = snn::make_digit_classifier("d", 1, 16, 10, tiny_zoo());
    n.restore_params(snapshot);
    return n;
  }
  data::DatasetSplit split{data::Dataset("a", 1, 1, 1, 1, 1),
                           data::Dataset("b", 1, 1, 1, 1, 1)};
  std::vector<tensor::Tensor> snapshot;
  double baseline = 0.0;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

MitigationConfig cfg16(int epochs = 8) {
  MitigationConfig cfg;
  cfg.array.rows = cfg.array.cols = 16;
  cfg.retrain_epochs = epochs;
  cfg.batch_size = 16;
  return cfg;
}

TEST(FalVolt, RecoversAccuracyAt30PercentFaults) {
  Fixture& f = fixture();
  common::Rng rng(1);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const MitigationResult r =
      run_falvolt(net, map, f.split.train, f.split.test, cfg16());
  EXPECT_EQ(r.method, "FalVolt");
  EXPECT_GT(r.final_accuracy, r.pruned_accuracy - 1e-9);
  // Recovery close to baseline (paper: negligible drop).
  EXPECT_GT(r.final_accuracy, f.baseline - 20.0);
}

TEST(FalVolt, BeatsOrMatchesFapAtEveryRate) {
  Fixture& f = fixture();
  for (const double rate : {0.1, 0.3}) {
    common::Rng rng(static_cast<std::uint64_t>(rate * 100));
    const fault::FaultMap map = fault::fault_map_at_rate(
        16, 16, rate, fault::worst_case_spec(16), rng);
    snn::Network fap_net = f.fresh_copy();
    const double fap_acc = run_fap(fap_net, map, f.split.test).final_accuracy;
    snn::Network fv_net = f.fresh_copy();
    const double fv_acc =
        run_falvolt(fv_net, map, f.split.train, f.split.test, cfg16())
            .final_accuracy;
    EXPECT_GE(fv_acc + 1e-9, fap_acc) << "rate=" << rate;
  }
}

TEST(FalVolt, LearnsPerLayerThresholds) {
  Fixture& f = fixture();
  common::Rng rng(2);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const MitigationResult r =
      run_falvolt(net, map, f.split.train, f.split.test, cfg16());
  ASSERT_EQ(r.vth_per_layer.size(), 4u);  // Conv1, Conv2, FC1, FC2
  EXPECT_EQ(r.vth_per_layer[0].layer, "PLIF1");
  EXPECT_EQ(r.vth_per_layer[3].layer, "PLIF_FC2");
  // Thresholds stay in the clamp range.
  for (const auto& v : r.vth_per_layer) {
    EXPECT_GE(v.vth, 0.05f);
    EXPECT_LE(v.vth, 2.0f);
  }
}

TEST(FaPIT, KeepsVthFixed) {
  Fixture& f = fixture();
  common::Rng rng(3);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.3, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const MitigationResult r =
      run_fapit(net, map, f.split.train, f.split.test, cfg16());
  EXPECT_EQ(r.method, "FaPIT");
  for (const auto& v : r.vth_per_layer) {
    EXPECT_FLOAT_EQ(v.vth, 1.0f);
  }
}

TEST(FixedVthRetraining, LabelsAndUsesGivenThreshold) {
  Fixture& f = fixture();
  common::Rng rng(4);
  const fault::FaultMap map = fault::fault_map_at_rate(
      16, 16, 0.1, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const MitigationResult r = run_fixed_vth_retraining(
      net, map, f.split.train, f.split.test, cfg16(2), 0.55f);
  EXPECT_EQ(r.method, "retrain@vth=0.55");
  for (const auto& v : r.vth_per_layer) {
    EXPECT_FLOAT_EQ(v.vth, 0.55f);
  }
}

TEST(EvaluateWithFaults, CorruptionWorseThanBypass) {
  Fixture& f = fixture();
  common::Rng rng(5);
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  const fault::FaultMap map = fault::random_fault_map(
      16, 16, 24, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const double corrupted = evaluate_with_faults(
      net, f.split.test, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  const double bypassed = evaluate_with_faults(
      net, f.split.test, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kBypass);
  EXPECT_LE(corrupted, bypassed + 5.0);
  // MSB stuck-at-1 on ~9% of PEs collapses the unmitigated accuracy.
  EXPECT_LT(corrupted, f.baseline - 20.0);
}

TEST(EvaluateWithFaults, RestoresFloatEngine) {
  Fixture& f = fixture();
  common::Rng rng(6);
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  const fault::FaultMap map =
      fault::random_fault_map(16, 16, 8, fault::worst_case_spec(16), rng);
  snn::Network net = f.fresh_copy();
  const double before = snn::evaluate(net, f.split.test);
  evaluate_with_faults(net, f.split.test, array, map,
                       systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  const double after = snn::evaluate(net, f.split.test);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(EvaluateWithFaults, PrebuiltBatchMatchesDataset) {
  // The EvalBatch overload (batched eval mode — one plan + fault
  // schedule amortized across all samples) must score bit-identically
  // to the per-dataset overload: stored grid cells depend on it.
  Fixture& f = fixture();
  common::Rng rng(7);
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  const fault::FaultMap map = fault::random_fault_map(
      16, 16, 12, fault::worst_case_spec(16), rng);
  const snn::EvalBatch batch = snn::make_eval_batch(f.split.test);
  for (const auto handling :
       {systolic::SystolicGemmEngine::FaultHandling::kCorrupt,
        systolic::SystolicGemmEngine::FaultHandling::kBypass}) {
    snn::Network net = f.fresh_copy();
    const double from_ds =
        evaluate_with_faults(net, f.split.test, array, map, handling);
    const double from_batch =
        evaluate_with_faults(net, batch, array, map, handling);
    EXPECT_DOUBLE_EQ(from_ds, from_batch);
  }
}

}  // namespace
}  // namespace falvolt::core
