#include "core/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "common/timer.h"
#include "core/falvolt.h"
#include "core/mitigation.h"
#include "data/dataset.h"
#include "fault/fault_generator.h"
#include "store/manifest.h"
#include "store/result_store.h"
#include "tensor/tensor_ops.h"

namespace falvolt::core {
namespace {

TEST(Sweep, ScenarioSeedIsKeyedAndDeterministic) {
  Scenario a;
  a.key = "MNIST/rate=30/vth=0.45";
  a.fault_seed = 4030;
  EXPECT_EQ(scenario_seed(a), scenario_seed(a));

  Scenario b = a;
  b.key = "MNIST/rate=30/vth=0.50";
  EXPECT_NE(scenario_seed(a), scenario_seed(b));

  Scenario c = a;
  c.fault_seed = 4060;
  EXPECT_NE(scenario_seed(a), scenario_seed(c));

  // Matching streams, independent state.
  common::Rng r1 = scenario_rng(a);
  common::Rng r2 = scenario_rng(a);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Sweep, ResultTableAggregatesInScenarioOrder) {
  ResultTable table(3);
  for (const std::size_t i : {2u, 0u, 1u}) {  // out-of-order puts
    ScenarioResult r;
    r.scenario.key = std::string("k") + std::to_string(i);
    r.metrics = {{"accuracy", 10.0 * static_cast<double>(i)}};
    if (i == 2) r.metrics.emplace_back("extra", 1.0);  // heterogeneous
    table.put(i, std::move(r));
  }
  EXPECT_EQ(table.at(0).scenario.key, "k0");
  EXPECT_EQ(table.at(2).scenario.key, "k2");
  ASSERT_NE(table.find("k1"), nullptr);
  EXPECT_EQ(table.find("k1")->metrics.front().second, 10.0);
  EXPECT_EQ(table.find("nope"), nullptr);
  // Columns are the union of metric names; missing metrics leave an
  // empty cell, so heterogeneous sweeps still emit rectangular CSV.
  EXPECT_EQ(table.to_csv(),
            "key,tag,dataset,accuracy,extra\n"
            "k0,,MNIST,0,\n"
            "k1,,MNIST,10,\n"
            "k2,,MNIST,20,1\n");
}

TEST(Sweep, ResultTableCsvEscapesKeysTagsAndMetricNames) {
  ResultTable table(1);
  ScenarioResult r;
  r.scenario.key = "MNIST/odd,key";
  r.scenario.tag = "say \"hi\"";
  r.metrics = {{"acc,uracy", 1.5}};
  table.put(0, std::move(r));
  EXPECT_EQ(table.to_csv(),
            "key,tag,dataset,\"acc,uracy\"\n"
            "\"MNIST/odd,key\",\"say \"\"hi\"\"\",MNIST,1.5\n");
}

TEST(Sweep, ShardPartialTableSkipsAbsentRowsAndFailsLookups) {
  ResultTable table(3);
  ScenarioResult r;
  r.scenario.key = "k1";
  r.metrics = {{"v", 2.0}};
  table.put_cached(1, std::move(r));
  EXPECT_FALSE(table.complete());
  EXPECT_EQ(table.cached_cells(), 1u);
  EXPECT_EQ(table.absent_cells(), 2u);
  EXPECT_TRUE(table.is_cached(1));
  EXPECT_FALSE(table.is_filled(0));
  // Absent rows are invisible to CSV and key lookups.
  EXPECT_EQ(table.to_csv(), "key,tag,dataset,v\nk1,,MNIST,2\n");
  EXPECT_EQ(table.find(""), nullptr);
  EXPECT_THROW(table.get("k0"), std::out_of_range);
}

TEST(Sweep, DuplicateScenarioKeyThrows) {
  SweepRunner runner(WorkloadOptions{});
  runner.set_prepare_baselines(false);
  std::vector<Scenario> scenarios(2);
  scenarios[0].key = scenarios[1].key = "dup";
  EXPECT_THROW(runner.run(scenarios,
                          [](const Scenario&, const SweepContext&) {
                            return ScenarioResult{};
                          }),
               std::invalid_argument);
}

TEST(Sweep, ScenarioFailureFailsTheSweepAndStopsClaiming) {
  WorkloadOptions opts;
  opts.sweep_parallel = 2;
  SweepRunner runner(opts);
  runner.set_prepare_baselines(false);
  std::vector<Scenario> scenarios(8);
  for (int i = 0; i < 8; ++i) {
    scenarios[i].key = std::string("s") + std::to_string(i);
  }
  // s0 fails instantly; every other scenario sleeps long enough that a
  // worker cannot claim a second one before the failure is visible —
  // so at most s0 and the one already-claimed sibling ever start.
  std::atomic<int> started{0};
  try {
    runner.run(scenarios,
               [&](const Scenario& s, const SweepContext&) {
                 ++started;
                 if (s.key == "s0") throw std::runtime_error("boom");
                 std::this_thread::sleep_for(
                     std::chrono::milliseconds(200));
                 return ScenarioResult{};
               });
    FAIL() << "expected the sweep to fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("s0"), std::string::npos);
  }
  // Fail-fast: the grid was not drained. The bound leaves slack for the
  // failing thread being descheduled between starting and throwing —
  // exceeding it would need a >400 ms stall while the sibling worker
  // chews through 200 ms scenarios.
  EXPECT_LE(started.load(), 4);
}

// Scenarios genuinely overlap at sweep-parallel >= 4: blocking (not
// CPU-bound) scenarios demonstrate the runner's concurrency even on a
// 1-core CI box — compute-bound grids additionally scale with physical
// cores. Asserted via an observed-concurrency high-water mark rather
// than a wall-clock ratio, which can flake on loaded CI runners (the
// timings are still printed for the bench log).
TEST(Sweep, ParallelSweepOverlapsScenarios) {
  std::atomic<int> in_flight{0};
  std::atomic<int> high_water{0};
  const auto sleeper = [&](const Scenario&, const SweepContext&) {
    const int now = in_flight.fetch_add(1) + 1;
    int seen = high_water.load();
    while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    in_flight.fetch_sub(1);
    return ScenarioResult{};
  };
  std::vector<Scenario> scenarios(8);
  for (int i = 0; i < 8; ++i) {
    scenarios[i].key = std::string("s") + std::to_string(i);
  }

  WorkloadOptions serial;
  serial.sweep_parallel = 1;
  SweepRunner r1(serial);
  r1.set_prepare_baselines(false);
  common::Timer t1;
  r1.run(scenarios, sleeper);
  const double serial_s = t1.seconds();
  EXPECT_EQ(high_water.load(), 1);  // serial sweeps never overlap

  high_water.store(0);
  WorkloadOptions par;
  par.sweep_parallel = 4;
  SweepRunner r4(par);
  r4.set_prepare_baselines(false);
  common::Timer t4;
  r4.run(scenarios, sleeper);
  const double parallel_s = t4.seconds();

  std::printf("[sweep] 8-scenario grid: serial %.2f s, sweep-parallel=4 "
              "%.2f s (%.1fx, peak concurrency %d)\n",
              serial_s, parallel_s, serial_s / parallel_s,
              high_water.load());
  EXPECT_GE(serial_s, 0.8 - 0.05);   // 8 x 100ms back to back
  EXPECT_GE(high_water.load(), 3);   // >= 3 of 4 workers overlapped
}

// The end-to-end determinism regression the sweep subsystem promises:
// identical result tables at every --sweep-parallel, and identical to a
// hand-rolled serial loop over the same scenario computation (the shape
// of the pre-migration benches).
class SweepWorkloadTest : public ::testing::Test {
 protected:
  static WorkloadOptions options() {
    WorkloadOptions opts;
    opts.fast = true;
    opts.cache_dir = cache_dir();
    return opts;
  }
  static std::string cache_dir() {
    return ::testing::TempDir() + "falvolt_sweep_cache";
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(cache_dir());
  }
};

std::vector<Scenario> small_grid() {
  std::vector<Scenario> scenarios;
  for (const int count : {0, 4, 8}) {
    for (int rep = 0; rep < 2; ++rep) {
      Scenario s;
      s.key = std::string("MNIST/faulty=") + std::to_string(count) +
              "/rep=" + std::to_string(rep);
      s.dataset = DatasetKind::kMnist;
      s.fault_count = count;
      s.repeat = rep;
      s.fault_seed = 2000 + static_cast<std::uint64_t>(31 * count + rep);
      scenarios.push_back(s);
    }
  }
  return scenarios;
}

// Shared scenario computation: unmitigated accuracy on a 16x16 array.
double eval_scenario(const Scenario& s, snn::Network net,
                     const data::Dataset& eval_set) {
  systolic::ArrayConfig array;
  array.rows = array.cols = 16;
  common::Rng rng(s.fault_seed);
  const fault::FaultMap map = fault::random_fault_map(
      array.rows, array.cols, s.fault_count,
      fault::worst_case_spec(array.format.total_bits()), rng);
  return evaluate_with_faults(
      net, eval_set, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
}

data::Dataset eval_subset(const Workload& wl, int n) {
  const data::Dataset& test = wl.data.test;
  data::Dataset out("subset", test.num_classes(), test.time_steps(),
                    test.channels(), test.height(), test.width());
  for (int i = 0; i < n && i < test.size(); ++i) out.add(test[i]);
  return out;
}

TEST_F(SweepWorkloadTest, TablesAreByteIdenticalAcrossParallelism) {
  const std::vector<Scenario> scenarios = small_grid();

  std::vector<std::string> csvs;
  std::vector<ResultTable> tables;
  for (const int parallel : {1, 2, 8}) {
    WorkloadOptions opts = options();
    opts.sweep_parallel = parallel;
    SweepRunner runner(opts);
    runner.prepare(scenarios);
    const data::Dataset eval_set =
        eval_subset(runner.context().workload(DatasetKind::kMnist), 16);
    ResultTable table = runner.run(
        scenarios, [&](const Scenario& s, const SweepContext& ctx) {
          ScenarioResult out;
          out.metrics = {
              {"accuracy",
               eval_scenario(s, ctx.clone_network(s.dataset), eval_set)}};
          return out;
        });
    EXPECT_EQ(table.sweep_parallel(), std::min<int>(parallel, 6));
    csvs.push_back(table.to_csv());
    tables.push_back(std::move(table));
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);

  // ... and identical to the pre-migration shape: a plain serial loop
  // over the same scenario computation.
  WorkloadOptions opts = options();
  Workload wl = prepare_workload(DatasetKind::kMnist, opts);
  const std::vector<tensor::Tensor> snapshot = wl.net.snapshot_params();
  const data::Dataset eval_set = eval_subset(wl, 16);
  std::size_t idx = 0;
  for (const Scenario& s : scenarios) {
    snn::Network net = build_network(DatasetKind::kMnist, wl.data.train,
                                     opts.seed);
    net.restore_params(snapshot);
    const double serial_acc = eval_scenario(s, std::move(net), eval_set);
    EXPECT_DOUBLE_EQ(serial_acc,
                     tables[0].at(idx++).metrics.front().second)
        << s.key;
  }
}

// Same guarantee for the riskier retraining path (fig2/6/7 and the
// ablations run snn::Trainer concurrently on clones): concurrent
// retraining must reproduce the serial run bit for bit.
TEST_F(SweepWorkloadTest, RetrainScenariosAreByteIdenticalAcrossParallelism) {
  std::vector<Scenario> scenarios;
  for (const double vth : {0.5, 1.0}) {
    Scenario s;
    s.key = std::string("MNIST/vth=") + std::to_string(vth);
    s.dataset = DatasetKind::kMnist;
    s.vth = vth;
    s.fault_rate = 0.30;
    s.fault_seed = 4030;
    s.retrain = true;
    s.epochs = 1;
    scenarios.push_back(s);
  }

  std::vector<std::string> csvs;
  for (const int parallel : {1, 2}) {
    WorkloadOptions opts = options();
    opts.sweep_parallel = parallel;
    SweepRunner runner(opts);
    ResultTable table = runner.run(
        scenarios, [&](const Scenario& s, const SweepContext& ctx) {
          const Workload& wl = ctx.workload(s.dataset);
          snn::Network net = ctx.clone_network(s.dataset);
          common::Rng rng(s.fault_seed);
          systolic::ArrayConfig array;
          array.rows = array.cols = 16;
          const fault::FaultMap map = fault::fault_map_at_rate(
              array.rows, array.cols, s.fault_rate,
              fault::worst_case_spec(array.format.total_bits()), rng);
          MitigationConfig cfg;
          cfg.array = array;
          cfg.retrain_epochs = s.epochs;
          cfg.eval_each_epoch = false;
          const MitigationResult r = run_fixed_vth_retraining(
              net, map, wl.data.train, wl.data.test, cfg,
              static_cast<float>(s.vth));
          ScenarioResult out;
          out.metrics = {{"accuracy", r.final_accuracy},
                         {"pruned", r.pruned_accuracy}};
          return out;
        });
    csvs.push_back(table.to_csv());
  }
  EXPECT_EQ(csvs[0], csvs[1]);
}

// The store acceptance contract on a real (fig5b-shaped) eval grid:
// a sharded-and-merged run is byte-identical to one unsharded sweep,
// and a warm-store re-run computes zero scenarios while producing
// identical CSV (and JSON, modulo the volatile "run" line).
TEST_F(SweepWorkloadTest, StoreShardsMergeAndWarmRunsAreByteIdentical) {
  const std::vector<Scenario> scenarios = small_grid();
  const std::string store_root = ::testing::TempDir() + "falvolt_ev_store";
  std::filesystem::remove_all(store_root + "_u");
  std::filesystem::remove_all(store_root + "_a");
  std::filesystem::remove_all(store_root + "_b");
  std::filesystem::remove_all(store_root + "_m");

  std::atomic<int> computed{0};
  // Scenario function of the shape every eval bench uses; the eval
  // subset is derived lazily from the context so warm runs touch no
  // workload at all.
  const auto fn = [&](const Scenario& s, const SweepContext& ctx) {
    ++computed;
    ScenarioResult out;
    out.metrics = {
        {"accuracy",
         eval_scenario(s, ctx.clone_network(s.dataset),
                       eval_subset(ctx.workload(s.dataset), 16))}};
    return out;
  };
  const auto store_opts = [&](const std::string& dir, int index,
                              int count) {
    SweepStoreOptions st;
    st.dir = dir;
    st.bench = "fig5b_like";
    st.config = {{"eval-samples", "16"}};
    st.shard_index = index;
    st.shard_count = count;
    return st;
  };
  const auto run_with = [&](const std::string& dir, int index, int count) {
    WorkloadOptions opts = options();
    opts.sweep_parallel = 2;
    SweepRunner runner(opts);
    runner.set_store(store_opts(dir, index, count));
    return runner.run(scenarios, fn);
  };

  const ResultTable full = run_with(store_root + "_u", 0, 1);
  const int cold_computed = computed.load();
  EXPECT_EQ(cold_computed, static_cast<int>(scenarios.size()));

  // Warm re-run: zero scenarios computed, identical CSV and JSON.
  const ResultTable warm = run_with(store_root + "_u", 0, 1);
  EXPECT_EQ(computed.load(), cold_computed);
  EXPECT_EQ(warm.computed_cells(), 0u);
  EXPECT_EQ(warm.to_csv(), full.to_csv());
  const auto strip_run = [](const std::string& json) {
    std::string out;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"run\": {") == std::string::npos) out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(strip_run(warm.to_json("fig5b_like")),
            strip_run(full.to_json("fig5b_like")));

  // Two shards into separate stores, then a sweep_merge-style union.
  const ResultTable t0 = run_with(store_root + "_a", 0, 2);
  const ResultTable t1 = run_with(store_root + "_b", 1, 2);
  EXPECT_EQ(t0.computed_cells() + t1.computed_cells(), scenarios.size());
  EXPECT_FALSE(t0.complete());

  store::LocalDirStore merged(store_root + "_m");
  store::merge_records(merged, store::LocalDirStore(store_root + "_a"));
  store::merge_records(merged, store::LocalDirStore(store_root + "_b"));
  const auto manifest = store::read_manifest(
      store::list_manifests(store::LocalDirStore(store_root + "_a"),
                            "fig5b_like")
          .front());
  ASSERT_TRUE(manifest.has_value());
  ResultTable rebuilt(manifest->entries.size());
  for (std::size_t i = 0; i < manifest->entries.size(); ++i) {
    const auto payload = merged.get(manifest->entries[i].first);
    ASSERT_TRUE(payload.has_value());
    ScenarioResult r;
    ASSERT_TRUE(decode_scenario_result(*payload, r));
    rebuilt.put_cached(i, std::move(r));
  }
  EXPECT_TRUE(rebuilt.complete());
  EXPECT_EQ(rebuilt.to_csv(), full.to_csv());

  for (const char* suffix : {"_u", "_a", "_b", "_m"}) {
    std::filesystem::remove_all(store_root + suffix);
  }
}

// Same contract for a retraining figure (the fig2 shape): concurrent
// retraining cells round-trip through the store bit for bit.
TEST_F(SweepWorkloadTest, RetrainGridShardsAndWarmRunsAreByteIdentical) {
  std::vector<Scenario> scenarios;
  for (const double vth : {0.5, 1.0}) {
    Scenario s;
    s.key = std::string("MNIST/vth=") + std::to_string(vth);
    s.dataset = DatasetKind::kMnist;
    s.vth = vth;
    s.fault_rate = 0.30;
    s.fault_seed = 4030;
    s.retrain = true;
    s.epochs = 1;
    scenarios.push_back(s);
  }
  const std::string store_root = ::testing::TempDir() + "falvolt_rt_store";
  std::filesystem::remove_all(store_root + "_u");
  std::filesystem::remove_all(store_root + "_a");
  std::filesystem::remove_all(store_root + "_b");

  std::atomic<int> computed{0};
  const auto fn = [&](const Scenario& s, const SweepContext& ctx) {
    ++computed;
    const Workload& wl = ctx.workload(s.dataset);
    snn::Network net = ctx.clone_network(s.dataset);
    common::Rng rng(s.fault_seed);
    systolic::ArrayConfig array;
    array.rows = array.cols = 16;
    const fault::FaultMap map = fault::fault_map_at_rate(
        array.rows, array.cols, s.fault_rate,
        fault::worst_case_spec(array.format.total_bits()), rng);
    MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs = s.epochs;
    cfg.eval_each_epoch = false;
    const MitigationResult r = run_fixed_vth_retraining(
        net, map, wl.data.train, wl.data.test, cfg,
        static_cast<float>(s.vth));
    ScenarioResult out;
    out.metrics = {{"accuracy", r.final_accuracy},
                   {"pruned", r.pruned_accuracy}};
    return out;
  };
  const auto run_with = [&](const std::string& dir, int index, int count) {
    SweepRunner runner(options());
    SweepStoreOptions st;
    st.dir = dir;
    st.bench = "fig2_like";
    st.shard_index = index;
    st.shard_count = count;
    runner.set_store(st);
    return runner.run(scenarios, fn);
  };

  const ResultTable full = run_with(store_root + "_u", 0, 1);
  EXPECT_EQ(computed.load(), 2);

  // Warm: zero retraining runs, identical table.
  const ResultTable warm = run_with(store_root + "_u", 0, 1);
  EXPECT_EQ(computed.load(), 2);
  EXPECT_EQ(warm.computed_cells(), 0u);
  EXPECT_EQ(warm.to_csv(), full.to_csv());

  // Shard, merge into shard A's store, and replay the merged store.
  run_with(store_root + "_a", 0, 2);
  run_with(store_root + "_b", 1, 2);
  EXPECT_EQ(computed.load(), 4);
  {
    store::LocalDirStore merge_dst(store_root + "_a");
    store::merge_records(merge_dst, store::LocalDirStore(store_root + "_b"));
  }
  const ResultTable merged = run_with(store_root + "_a", 0, 1);
  EXPECT_EQ(computed.load(), 4) << "merged store must satisfy every cell";
  EXPECT_EQ(merged.computed_cells(), 0u);
  EXPECT_EQ(merged.to_csv(), full.to_csv());

  for (const char* suffix : {"_u", "_a", "_b"}) {
    std::filesystem::remove_all(store_root + suffix);
  }
}

TEST_F(SweepWorkloadTest, CloneNetworkGivesIndependentBaselineCopies) {
  SweepRunner runner(options());
  std::vector<Scenario> scenarios(1);
  scenarios[0].key = "probe";
  scenarios[0].dataset = DatasetKind::kMnist;
  const SweepContext& ctx = runner.prepare(scenarios);

  snn::Network a = ctx.clone_network(DatasetKind::kMnist);
  snn::Network b = ctx.clone_network(DatasetKind::kMnist);
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_GT(pa.size(), 0u);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.0);
  }
  // Clones carry the trained baseline, not a fresh initialization.
  snn::Network fresh = build_network(
      DatasetKind::kMnist,
      ctx.workload(DatasetKind::kMnist).data.train, options().seed);
  double diff_from_fresh = 0.0;
  const auto pf = fresh.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    diff_from_fresh += tensor::max_abs_diff(pa[i]->value, pf[i]->value);
  }
  EXPECT_GT(diff_from_fresh, 0.0);
  // Mutating one clone must not leak into the other.
  pa.front()->value[0] += 1.0f;
  EXPECT_NE(tensor::max_abs_diff(pa.front()->value, pb.front()->value),
            0.0);
}

}  // namespace
}  // namespace falvolt::core
