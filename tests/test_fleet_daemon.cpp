// The fleet scheduler daemon and its wire protocol: cost-balanced
// shard partitioning, frame codec round-trips, the daemon's claim /
// re-queue / shutdown state machine against real socket clients, the
// URI-style store spec grammar, and the in-progress markers that keep
// sweep_merge honest while a fleet is mid-publish.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.h"
#include "fleet/daemon.h"
#include "fleet/protocol.h"
#include "fleet/worker.h"
#include "store/result_store.h"
#include "store/store_api.h"

namespace fs = std::filesystem;

namespace falvolt {
namespace {

// ------------------------------------------------ shard_partition

TEST(ShardPartition, EqualCostsDegradeToRoundRobin) {
  // Equal cost hints carry no balance information; the partition must
  // fall back to exactly the legacy index-modulo layout so existing
  // sharded stores keep their cell ownership.
  const std::vector<double> costs(10, 1.0);
  const std::vector<int> owners = core::shard_partition(costs, 3);
  ASSERT_EQ(owners.size(), costs.size());
  for (std::size_t i = 0; i < owners.size(); ++i) {
    EXPECT_EQ(owners[i], static_cast<int>(i % 3)) << "cell " << i;
  }
}

TEST(ShardPartition, BalancesSkewedCostsBetterThanModulo) {
  // Heavy cells at even indices: index-modulo with two shards piles
  // every heavy cell onto shard 0 (600 vs 6); greedy LPT alternates
  // them and lands on the 303/303 optimum.
  std::vector<double> costs;
  for (int i = 0; i < 12; ++i) costs.push_back(i % 2 == 0 ? 100.0 : 1.0);
  const std::vector<int> owners = core::shard_partition(costs, 2);
  double lpt[2] = {0.0, 0.0};
  double modulo[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < costs.size(); ++i) {
    ASSERT_GE(owners[i], 0);
    ASSERT_LT(owners[i], 2);
    lpt[owners[i]] += costs[i];
    modulo[i % 2] += costs[i];
  }
  const double lpt_max = std::max(lpt[0], lpt[1]);
  EXPECT_LT(lpt_max, std::max(modulo[0], modulo[1]));
  EXPECT_DOUBLE_EQ(lpt_max, 303.0);  // the optimum: total / 2
}

TEST(ShardPartition, DeterministicCompleteAndValidated) {
  const std::vector<double> costs = {7.0, 7.0, 1.0, 12.0, 0.5,
                                     3.0, 12.0, 1.0, 9.0};
  const std::vector<int> a = core::shard_partition(costs, 4);
  const std::vector<int> b = core::shard_partition(costs, 4);
  EXPECT_EQ(a, b);  // independently launched shards must agree
  for (const int owner : a) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
  }
  EXPECT_EQ(core::shard_partition(costs, 1), std::vector<int>(9, 0));
  EXPECT_THROW(core::shard_partition(costs, 0), std::invalid_argument);
}

// ------------------------------------------------ protocol codec

TEST(FleetProtocol, TypedFramesRoundTripThroughChunkedStream) {
  const std::string wire =
      fleet::encode_hello({fleet::kProtocolVersion, "worker-7"}) +
      fleet::encode_claim_request() + fleet::encode_welcome({1, 42}) +
      fleet::encode_claim({"fig5b", "faulty=8", "abc123", 2.5}) +
      fleet::encode_result({"fig5b", "faulty=8", "abc123", true, 0.25}) +
      fleet::encode_error("boom") + fleet::encode_shutdown();

  // One byte at a time: reassembly must not care how the stream is
  // chunked.
  fleet::FrameBuffer buf;
  std::vector<fleet::Frame> frames;
  for (const char ch : wire) {
    buf.feed(&ch, 1);
    while (const std::optional<fleet::Frame> f = buf.next()) {
      frames.push_back(*f);
    }
  }
  ASSERT_EQ(frames.size(), 7u);

  fleet::HelloFrame hello;
  ASSERT_TRUE(fleet::decode_hello(frames[0], hello));
  EXPECT_EQ(hello.version, fleet::kProtocolVersion);
  EXPECT_EQ(hello.worker, "worker-7");
  EXPECT_EQ(frames[1].type, fleet::FrameType::kClaimRequest);
  fleet::WelcomeFrame welcome;
  ASSERT_TRUE(fleet::decode_welcome(frames[2], welcome));
  EXPECT_EQ(welcome.worker_id, 42);
  fleet::ClaimFrame claim;
  ASSERT_TRUE(fleet::decode_claim(frames[3], claim));
  EXPECT_EQ(claim.bench, "fig5b");
  EXPECT_EQ(claim.key, "faulty=8");
  EXPECT_EQ(claim.fingerprint, "abc123");
  EXPECT_DOUBLE_EQ(claim.cost, 2.5);
  fleet::ResultFrame result;
  ASSERT_TRUE(fleet::decode_result(frames[4], result));
  EXPECT_TRUE(result.cached);
  EXPECT_DOUBLE_EQ(result.seconds, 0.25);
  std::string message;
  ASSERT_TRUE(fleet::decode_error(frames[5], message));
  EXPECT_EQ(message, "boom");
  EXPECT_EQ(frames[6].type, fleet::FrameType::kShutdown);

  // Cross-decoding is a protocol error, not UB: a CLAIM payload is not
  // a HELLO, and a truncated or padded payload is rejected.
  EXPECT_FALSE(fleet::decode_hello(frames[3], hello));
  fleet::Frame padded = frames[3];
  padded.payload += '\0';
  EXPECT_FALSE(fleet::decode_claim(padded, claim));
  fleet::Frame truncated = frames[3];
  truncated.payload.pop_back();
  EXPECT_FALSE(fleet::decode_claim(truncated, claim));
}

TEST(FleetProtocol, FrameBufferRejectsDamagedLengthWords) {
  {
    fleet::FrameBuffer buf;
    const char zero[4] = {0, 0, 0, 0};  // length 0: no type byte
    buf.feed(zero, sizeof(zero));
    EXPECT_THROW(buf.next(), std::runtime_error);
  }
  {
    fleet::FrameBuffer buf;
    const std::uint32_t huge = fleet::kMaxFrameBytes + 1;
    char bytes[4];
    std::memcpy(bytes, &huge, sizeof(huge));
    buf.feed(bytes, sizeof(bytes));
    EXPECT_THROW(buf.next(), std::runtime_error);
  }
  {
    // An incomplete frame is simply "not yet": no throw, no frame.
    fleet::FrameBuffer buf;
    const std::string frame = fleet::encode_error("partial");
    buf.feed(frame.data(), frame.size() - 1);
    EXPECT_FALSE(buf.next().has_value());
  }
}

// ------------------------------------------------ daemon integration

struct ServeOutcome {
  fleet::DaemonStats stats;
  std::string error;
};

class FleetDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "falvolt_fleet_daemon_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    sock_ = dir_ + "/daemon.sock";
  }
  void TearDown() override { fs::remove_all(dir_); }

  // serve() on a side thread; the test plays the worker processes from
  // the main thread. live_workers=1 forever: the "worker process" is us.
  std::thread serve(fleet::Daemon& daemon, ServeOutcome& out) {
    return std::thread([&daemon, &out] {
      try {
        out.stats = daemon.serve([] { return 1; });
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    });
  }

  static std::vector<fleet::DaemonCell> four_cells() {
    return {{"bench", "k0", "f0", 5.0},
            {"bench", "k1", "f1", 1.0},
            {"bench", "k2", "f2", 9.0},
            {"bench", "k3", "f3", 3.0}};
  }

  static void register_all(fleet::SocketCellQueue& q) {
    const std::vector<fleet::DaemonCell> cells = four_cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      q.register_cell(cells[i].bench, cells[i].key, cells[i].fingerprint, 0,
                      static_cast<int>(i));
    }
  }

  std::string dir_;
  std::string sock_;
};

TEST_F(FleetDaemonTest, ServesCostOrderedAndRequeuesDeadWorkersClaim) {
  fleet::Daemon daemon(fleet::DaemonOptions{sock_, 20}, four_cells());
  daemon.bind_and_listen();
  ServeOutcome out;
  std::thread server = serve(daemon, out);

  // Worker A claims the two most expensive cells, finishes one, and is
  // "SIGKILLed" (abrupt close) with the other in flight.
  auto a = std::make_unique<fleet::SocketCellQueue>(sock_, "a");
  register_all(*a);
  a->connect_and_hello();
  EXPECT_EQ(a->worker_id(), 0);
  const std::optional<core::CellQueue::Claim> c1 = a->claim(0);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->index, 2);  // cost 9.0 first
  EXPECT_DOUBLE_EQ(c1->cost, 9.0);
  a->complete(*c1, /*cached=*/false, 2.5);
  const std::optional<core::CellQueue::Claim> c2 = a->claim(0);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->index, 0);  // cost 5.0 next
  a.reset();  // dies with k0 in flight

  // Worker B inherits the dead worker's cell FIRST (front of queue),
  // then drains the rest in cost order, then gets SHUTDOWN.
  fleet::SocketCellQueue b(sock_, "b");
  register_all(b);
  b.connect_and_hello();
  EXPECT_EQ(b.worker_id(), 1);
  const std::optional<core::CellQueue::Claim> c3 = b.claim(0);
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->index, 0);  // the re-queued claim, not the cheapest
  b.complete(*c3, /*cached=*/true, 0.0);  // found A's published record
  const std::optional<core::CellQueue::Claim> c4 = b.claim(0);
  ASSERT_TRUE(c4.has_value());
  EXPECT_EQ(c4->index, 3);  // cost 3.0
  b.complete(*c4, false, 1.0);
  const std::optional<core::CellQueue::Claim> c5 = b.claim(0);
  ASSERT_TRUE(c5.has_value());
  EXPECT_EQ(c5->index, 1);  // cost 1.0
  b.complete(*c5, false, 1.0);
  EXPECT_FALSE(b.claim(0).has_value());  // SHUTDOWN

  server.join();
  EXPECT_EQ(out.error, "");
  EXPECT_EQ(out.stats.computed, 3);
  EXPECT_EQ(out.stats.cached, 1);
  EXPECT_EQ(out.stats.requeued, 1);
  EXPECT_EQ(out.stats.worker_deaths, 1);
  EXPECT_EQ(out.stats.workers_seen, 2);
  ASSERT_EQ(out.stats.workers.size(), 2u);
  EXPECT_EQ(out.stats.workers[0].cells, 1);
  EXPECT_EQ(out.stats.workers[1].cells, 3);
}

TEST_F(FleetDaemonTest, RejectsProtocolVersionMismatchAtHello) {
  fleet::Daemon daemon(fleet::DaemonOptions{sock_, 20}, four_cells());
  daemon.bind_and_listen();
  ServeOutcome out;
  std::thread server = serve(daemon, out);

  ::setenv("FALVOLT_FLEET_PROTOCOL", "99", 1);
  fleet::SocketCellQueue stale(sock_, "stale");
  register_all(stale);
  try {
    stale.connect_and_hello();
    ::unsetenv("FALVOLT_FLEET_PROTOCOL");
    FAIL() << "mismatched HELLO was accepted";
  } catch (const std::exception& e) {
    ::unsetenv("FALVOLT_FLEET_PROTOCOL");
    EXPECT_NE(std::string(e.what()).find("protocol version mismatch"),
              std::string::npos)
        << e.what();
  }

  // The fleet is not poisoned: a current-version worker still drains it.
  fleet::SocketCellQueue good(sock_, "good");
  register_all(good);
  good.connect_and_hello();
  while (const std::optional<core::CellQueue::Claim> c = good.claim(0)) {
    good.complete(*c, false, 0.1);
  }
  server.join();
  EXPECT_EQ(out.error, "");
  EXPECT_EQ(out.stats.computed, 4);
  EXPECT_EQ(out.stats.workers_seen, 1);  // the rejected HELLO never joined
}

TEST_F(FleetDaemonTest, WorkerErrorFailsTheFleet) {
  fleet::Daemon daemon(fleet::DaemonOptions{sock_, 20}, four_cells());
  daemon.bind_and_listen();
  ServeOutcome out;
  std::thread server = serve(daemon, out);

  fleet::SocketCellQueue w(sock_, "w");
  register_all(w);
  w.connect_and_hello();
  const std::optional<core::CellQueue::Claim> c = w.claim(0);
  ASSERT_TRUE(c.has_value());
  w.fail(*c, "cell exploded");

  server.join();
  EXPECT_NE(out.error.find("cell exploded"), std::string::npos) << out.error;
}

// The whole worker stack end to end: a FleetRunner whose claims come
// over the socket publishes to the store, and the resulting table is
// byte-identical to the plain in-process fleet's.
TEST_F(FleetDaemonTest, SocketFedFleetRunnerMatchesInProcessByteForByte) {
  const auto scenarios = [] {
    std::vector<core::Scenario> out;
    for (int i = 0; i < 5; ++i) {
      core::Scenario s;
      s.key = "a=" + std::to_string(i);
      s.fault_count = i;
      s.cost_hint = 1.0 + i;
      out.push_back(s);
    }
    return out;
  }();
  const auto store_opts = [this](const std::string& sub) {
    core::SweepStoreOptions st;
    st.dir = dir_ + "/" + sub;
    st.bench = "bench_a";
    st.config = {{"epochs", "4"}};
    return st;
  };
  std::atomic<int> computed{0};
  const core::SweepRunner::ScenarioFn fn =
      [&computed](const core::Scenario& s, const core::SweepContext&) {
        ++computed;
        core::ScenarioResult out;
        out.metrics = {{"value", 10.0 * static_cast<double>(s.fault_count)}};
        return out;
      };

  // In-process reference.
  core::WorkloadOptions ref_opts;
  ref_opts.sweep_parallel = 2;
  core::FleetRunner ref(ref_opts);
  ref.set_prepare_baselines(false);
  ref.add_grid({store_opts("ref"), scenarios, fn});
  const std::vector<core::ResultTable> ref_tables = ref.run();
  ASSERT_EQ(computed.load(), 5);

  // Socket-fed run against a separate store.
  core::WorkloadOptions wopts;
  wopts.sweep_parallel = 1;  // one claim slot per connection
  const core::SweepStoreOptions st = store_opts("socket");
  std::vector<fleet::DaemonCell> cells;
  for (const core::Scenario& s : scenarios) {
    cells.push_back(fleet::DaemonCell{
        st.bench, s.key, core::fingerprint_cell(st, wopts, s),
        core::scenario_cost_estimate(s)});
  }
  fleet::Daemon daemon(fleet::DaemonOptions{sock_, 20}, cells);
  daemon.bind_and_listen();
  ServeOutcome out;
  std::thread server = serve(daemon, out);

  fleet::SocketCellQueue queue(sock_, "w");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    queue.register_cell(st.bench, scenarios[i].key, cells[i].fingerprint, 0,
                        static_cast<int>(i));
  }
  queue.connect_and_hello();
  core::FleetRunner worker(wopts);
  worker.set_prepare_baselines(false);
  worker.set_cell_queue(&queue);
  worker.add_grid({st, scenarios, fn});
  const std::vector<core::ResultTable> tables = worker.run();
  server.join();

  ASSERT_EQ(out.error, "");
  EXPECT_EQ(out.stats.computed, 5);
  EXPECT_EQ(computed.load(), 10);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].to_csv(), ref_tables[0].to_csv());

  // Warm replay against the socket run's store: zero new computes, same
  // bytes again — the store is interchangeable between the modes.
  core::FleetRunner warm(ref_opts);
  warm.set_prepare_baselines(false);
  warm.add_grid({st, scenarios, fn});
  const std::vector<core::ResultTable> warmed = warm.run();
  EXPECT_EQ(computed.load(), 10);
  EXPECT_EQ(warmed[0].cached_cells(), 5u);
  EXPECT_EQ(warmed[0].to_csv(), ref_tables[0].to_csv());
}

// ------------------------------------------------ store specs

TEST(StoreSpec, ParsesSchemesAndBarePaths) {
  store::StoreSpec spec = store::parse_store_spec("local:/a/b");
  EXPECT_EQ(spec.scheme, "local");
  EXPECT_EQ(spec.path, "/a/b");
  EXPECT_EQ(store::parse_store_spec("LOCAL:x").scheme, "local");
  EXPECT_EQ(store::parse_store_spec("segment:seg_dir").scheme, "segment");
  spec = store::parse_store_spec("/abs/path");
  EXPECT_EQ(spec.scheme, "");
  EXPECT_EQ(spec.path, "/abs/path");
  // A separator before any colon means "bare path", not a scheme.
  spec = store::parse_store_spec("rel/dir:with_colon");
  EXPECT_EQ(spec.scheme, "");
  EXPECT_EQ(spec.path, "rel/dir:with_colon");
}

TEST(StoreSpec, RejectsUnknownSchemesNamingTheSupportedOnes) {
  try {
    store::parse_store_spec("s3:bucket");
    FAIL() << "unknown scheme accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("s3"), std::string::npos) << what;
    EXPECT_NE(what.find("local:"), std::string::npos) << what;
    EXPECT_NE(what.find("segment:"), std::string::npos) << what;
  }
  EXPECT_THROW(store::parse_store_spec("local:"), std::invalid_argument);
}

// ------------------------------------------------ in-progress markers

TEST(InProgressGuard, MarksWhilePublishingAndGarbageCollectsDeadPids) {
  const std::string root =
      ::testing::TempDir() + "falvolt_inprogress_test";
  fs::remove_all(root);
  const std::string marker =
      root + "/tmp/inprogress." + std::to_string(::getpid());
  {
    store::InProgressGuard guard(root);
    EXPECT_TRUE(fs::exists(marker));
    // The caller's own marker is not "another fleet".
    EXPECT_TRUE(store::live_inprogress_pids(root).empty());
  }
  EXPECT_FALSE(fs::exists(marker));  // released on destruction

  // A marker from a SIGKILLed run (dead pid) is invisible AND unlinked,
  // so one crash never wedges future merges.
  const std::string dead = root + "/tmp/inprogress.999999999";
  std::ofstream(dead) << "999999999\n";
  EXPECT_TRUE(store::live_inprogress_pids(root).empty());
  EXPECT_FALSE(fs::exists(dead));

  // A marker from a LIVE foreign process (pid 1 always exists) is
  // reported and left alone.
  const std::string live = root + "/tmp/inprogress.1";
  std::ofstream(live) << "1\n";
  const std::vector<int> pids = store::live_inprogress_pids(root);
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], 1);
  EXPECT_TRUE(fs::exists(live));
  fs::remove_all(root);
}

}  // namespace
}  // namespace falvolt
