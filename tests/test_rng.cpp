#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace falvolt::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_int(std::uint64_t{7})];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 0.06 * n / 7.0);
  }
}

TEST(Rng, UniformIntThrowsOnZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementKZero) {
  Rng rng(37);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleWithoutReplacementThrowsWhenKTooBig) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementUniformCoverage) {
  // Every cell of a 16-cell grid should be picked roughly equally often.
  Rng rng(43);
  std::array<int, 16> counts{};
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    for (const auto v : rng.sample_without_replacement(16, 4)) {
      ++counts[v];
    }
  }
  const double expect = trials * 4.0 / 16.0;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, 0.08 * expect);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(51);
  Rng child = a.split();
  // Child stream should differ from parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace falvolt::common
