// Chip-salvage triage: the yield-recovery scenario from the paper's
// introduction.
//
// A fab lot of systolicSNN chips comes back with random manufacturing
// defects. Discarding every defective die wastes yield; re-execution
// costs latency and energy. This example runs the full per-chip flow:
//
//   for each manufactured chip:
//     1. post-fabrication scan test  -> fault map
//     2. if the chip is clean        -> ship as grade A
//     3. else run FalVolt against its unique fault map
//        - recovered to within 2 points of baseline -> grade B (salvaged)
//        - otherwise                                -> scrap
//
// and reports the yield with and without FalVolt, plus the area cost of
// the bypass circuitry and the latency cost of the re-execution
// alternative from the cost model.
//
// Build & run:  ./build/examples/chip_salvage_triage [--chips 6]

#include <cstdio>

#include "common/cli.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "fault/fault_generator.h"
#include "fault/post_fab_test.h"
#include "systolic/cost_model.h"

using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("chip_salvage_triage");
  cli.add_int("chips", 6, "chips in the manufactured lot");
  cli.add_double("defect-rate", 0.18,
                 "mean fraction of defective PEs on a bad die");
  cli.add_bool("fast", true, "smaller dataset / fewer epochs");
  if (!cli.parse(argc, argv)) return 0;

  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  core::Workload wl = core::prepare_workload(core::DatasetKind::kMnist, opts);
  const auto baseline_params = wl.net.snapshot_params();
  std::printf("golden-model baseline: %.2f%%\n\n", wl.baseline_accuracy);

  systolic::ArrayConfig array;
  array.rows = array.cols = 64;
  const int chips = static_cast<int>(cli.get_int("chips"));
  const double accept_drop = 2.0;

  common::Rng lot_rng(2024);
  int grade_a = 0, grade_b = 0, scrapped = 0;
  for (int chip_id = 0; chip_id < chips; ++chip_id) {
    // Manufacture: some dies are clean, others have clustered defects.
    const bool defective = lot_rng.bernoulli(0.7);
    const int defects =
        defective ? 1 + static_cast<int>(lot_rng.uniform_int(
                            static_cast<std::uint64_t>(
                                cli.get_double("defect-rate") *
                                array.total_pes())))
                  : 0;
    fault::FabricatedChip chip = [&] {
      fault::FaultSpec spec;
      spec.bit = -1;
      spec.word_bits = array.format.total_bits();
      spec.random_type = true;
      common::Rng defect_rng = lot_rng.split();
      return fault::FabricatedChip(
          fault::random_fault_map(array.rows, array.cols, defects, spec,
                                  defect_rng),
          array.format);
    }();

    // 1. Post-fab test recovers the fault map from scan patterns.
    const fault::TestOutcome tested = fault::run_post_fab_test(chip);
    std::printf("chip %d: %d faulty PEs detected (%d scan ops)\n", chip_id,
                tested.recovered.num_faulty_pes(), tested.scan_operations);

    if (tested.recovered.empty()) {
      std::printf("  clean die -> grade A\n");
      ++grade_a;
      continue;
    }

    // 2. FalVolt against this die's unique map.
    wl.net.restore_params(baseline_params);
    core::MitigationConfig cfg;
    cfg.array = array;
    cfg.retrain_epochs =
        core::default_retrain_epochs(core::DatasetKind::kMnist, opts.fast);
    cfg.eval_each_epoch = false;
    const core::MitigationResult r = core::run_falvolt(
        wl.net, tested.recovered, wl.data.train, wl.data.test, cfg);
    std::printf("  pruned %.1f%% of weights; FaP %.1f%% -> FalVolt %.1f%%",
                100.0 * r.prune_report[1].pruned_fraction(),
                r.pruned_accuracy, r.final_accuracy);
    if (r.final_accuracy >= wl.baseline_accuracy - accept_drop) {
      std::printf(" -> grade B (salvaged)\n");
      ++grade_b;
    } else {
      std::printf(" -> scrap\n");
      ++scrapped;
    }
  }

  std::printf("\nlot summary: %d chips | grade A %d | salvaged %d | "
              "scrapped %d\n",
              chips, grade_a, grade_b, scrapped);
  std::printf("yield without FalVolt: %.0f%%   with FalVolt: %.0f%%\n",
              100.0 * grade_a / chips,
              100.0 * (grade_a + grade_b) / chips);

  // Hardware economics from the cost model.
  const systolic::AreaReport area = systolic::estimate_area(array);
  std::printf("\nbypass circuitry overhead: %.1f%% of array area "
              "(%.2f -> %.2f mm^2)\n",
              100.0 * area.bypass_overhead_fraction, area.array_area_mm2,
              area.array_area_bypass_mm2);
  const systolic::GemmCost one = systolic::estimate_gemm(
      array, 256, 288, 32, 0.3);
  const systolic::GemmCost triple = systolic::estimate_reexecution(one, 3);
  std::printf("re-execution alternative (3x redundancy): %.1f us vs %.1f "
              "us per layer, %.1fx energy — the overhead FalVolt avoids\n",
              triple.latency_us, one.latency_us,
              triple.energy_nj / one.energy_nj);
  return 0;
}
