// Quickstart: the full FalVolt flow in ~80 lines.
//
//   1. Build a synthetic MNIST-like dataset and the paper's PLIF network.
//   2. Train the fault-free baseline.
//   3. Inject stuck-at faults into a simulated 64x64 systolic array and
//      watch the accuracy collapse.
//   4. Mitigate with FalVolt (Algorithm 1) and recover.
//
// Build & run:  ./build/examples/quickstart [--fast]

#include <cstdio>

#include "common/cli.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "core/fap.h"
#include "fault/fault_generator.h"

using namespace falvolt;

int main(int argc, char** argv) {
  common::CliFlags cli("quickstart");
  cli.add_bool("fast", false, "smaller dataset / fewer epochs");
  cli.add_int("threads", 0,
              "compute worker threads (0 = $FALVOLT_THREADS, else the "
              "hardware concurrency)");
  if (!cli.parse(argc, argv)) return 0;

  // 1-2. Dataset + trained baseline (cached on disk after the first run).
  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  opts.threads = static_cast<int>(cli.get_int("threads"));
  core::Workload wl = core::prepare_workload(core::DatasetKind::kMnist, opts);
  std::printf("baseline accuracy: %.2f%%\n", wl.baseline_accuracy);

  // 3. A 64x64 accelerator where 30%% of the PEs have a stuck-at-1 fault
  //    in the accumulator sign bit (the worst case).
  systolic::ArrayConfig array;
  array.rows = array.cols = 64;
  common::Rng rng(1);
  const fault::FaultMap map = fault::fault_map_at_rate(
      array.rows, array.cols, 0.30,
      fault::worst_case_spec(array.format.total_bits()), rng);
  std::printf("injected faults: %d of %d PEs (%.1f%%)\n",
              map.num_faulty_pes(), map.total_pes(),
              100.0 * map.fault_rate());

  const double faulty = core::evaluate_with_faults(
      wl.net, wl.data.test, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  std::printf("unmitigated faulty-chip accuracy: %.2f%%\n", faulty);

  // 4a. Fault-aware pruning alone (bypass the faulty PEs).
  const auto baseline_params = wl.net.snapshot_params();
  const core::MitigationResult fap =
      core::run_fap(wl.net, map, wl.data.test);
  std::printf("FaP (prune only): %.2f%%\n", fap.final_accuracy);

  // 4b. FalVolt: prune + retrain with per-layer learnable V_th.
  wl.net.restore_params(baseline_params);
  core::MitigationConfig cfg;
  cfg.array = array;
  cfg.retrain_epochs =
      core::default_retrain_epochs(core::DatasetKind::kMnist, opts.fast);
  const core::MitigationResult falvolt =
      core::run_falvolt(wl.net, map, wl.data.train, wl.data.test, cfg);
  std::printf("FalVolt (prune + V_th-aware retraining): %.2f%%\n",
              falvolt.final_accuracy);

  std::printf("\nlearned per-layer thresholds:\n");
  for (const auto& v : falvolt.vth_per_layer) {
    std::printf("  %-10s V_th = %.3f\n", v.layer.c_str(), v.vth);
  }
  std::printf("\nsummary: baseline %.1f%% -> faulty %.1f%% -> FaP %.1f%% "
              "-> FalVolt %.1f%%\n",
              wl.baseline_accuracy, faulty, fap.final_accuracy,
              falvolt.final_accuracy);
  return 0;
}
