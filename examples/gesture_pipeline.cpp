// Neuromorphic gesture pipeline on a damaged edge accelerator.
//
// The battery-driven scenario from the paper's introduction: an event
// camera feeds a gesture classifier running on a systolic SNN
// accelerator that has developed permanent faults in the field. This
// example classifies individual event streams, shows per-class behaviour
// before/after mitigation, and prints the spike activity the accelerator
// would process.
//
// Build & run:  ./build/examples/gesture_pipeline [--fast=false]

#include <cstdio>

#include "common/cli.h"
#include "core/experiment.h"
#include "core/falvolt.h"
#include "data/synthetic_dvs_gesture.h"
#include "fault/fault_generator.h"
#include "snn/trainer.h"
#include "tensor/tensor_ops.h"

using namespace falvolt;

namespace {

// Confusion-style per-class accuracy report.
std::vector<double> per_class_accuracy(snn::Network& net,
                                       const data::Dataset& test) {
  std::vector<int> correct(static_cast<std::size_t>(test.num_classes()), 0);
  std::vector<int> total(static_cast<std::size_t>(test.num_classes()), 0);
  for (int start = 0; start < test.size(); start += 64) {
    const int end = std::min(test.size(), start + 64);
    std::vector<int> idx;
    for (int i = start; i < end; ++i) idx.push_back(i);
    const tensor::Tensor rates = snn::infer_rates(net, test, idx);
    const auto pred = tensor::argmax_rows(rates);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const int label = test[idx[i]].label;
      ++total[static_cast<std::size_t>(label)];
      if (pred[i] == label) ++correct[static_cast<std::size_t>(label)];
    }
  }
  std::vector<double> acc;
  for (std::size_t c = 0; c < correct.size(); ++c) {
    acc.push_back(total[c] ? 100.0 * correct[c] / total[c] : 0.0);
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags cli("gesture_pipeline");
  cli.add_bool("fast", true, "smaller dataset / fewer epochs");
  if (!cli.parse(argc, argv)) return 0;

  core::WorkloadOptions opts;
  opts.fast = cli.get_bool("fast");
  core::Workload wl =
      core::prepare_workload(core::DatasetKind::kDvsGesture, opts);
  std::printf("gesture classifier baseline: %.2f%%\n", wl.baseline_accuracy);

  // Event statistics of one stream (what the accelerator actually sees).
  const data::Sample& sample = wl.data.test[0];
  const double events = tensor::sum(sample.frames);
  std::printf("sample 0: class '%s', %d time steps, %.0f events "
              "(%.2f%% pixel activity)\n\n",
              data::dvs_gesture_class_names()[static_cast<std::size_t>(
                                                  sample.label)]
                  .c_str(),
              wl.data.test.time_steps(), events,
              100.0 * events / sample.frames.size());

  // The accelerator develops faults in the field: 20% of a 64x64 array.
  systolic::ArrayConfig array;
  array.rows = array.cols = 64;
  common::Rng rng(99);
  const fault::FaultMap map = fault::fault_map_at_rate(
      array.rows, array.cols, 0.20,
      fault::worst_case_spec(array.format.total_bits()), rng);

  const auto baseline_params = wl.net.snapshot_params();
  const double faulty = core::evaluate_with_faults(
      wl.net, wl.data.test, array, map,
      systolic::SystolicGemmEngine::FaultHandling::kCorrupt);
  std::printf("damaged accelerator (unmitigated): %.2f%%\n", faulty);

  core::MitigationConfig cfg;
  cfg.array = array;
  cfg.retrain_epochs = core::default_retrain_epochs(
      core::DatasetKind::kDvsGesture, opts.fast);
  cfg.eval_each_epoch = false;
  const core::MitigationResult r = core::run_falvolt(
      wl.net, map, wl.data.train, wl.data.test, cfg);
  std::printf("after FalVolt field-recalibration: %.2f%%\n\n",
              r.final_accuracy);

  // Per-gesture accuracy after mitigation.
  const auto mitigated = per_class_accuracy(wl.net, wl.data.test);
  wl.net.restore_params(baseline_params);
  const auto clean = per_class_accuracy(wl.net, wl.data.test);
  std::printf("%-18s %10s %10s\n", "gesture", "baseline", "mitigated");
  for (std::size_t c = 0; c < mitigated.size(); ++c) {
    std::printf("%-18s %9.1f%% %9.1f%%\n",
                data::dvs_gesture_class_names()[c].c_str(), clean[c],
                mitigated[c]);
  }
  return 0;
}
