#pragma once
// Registry of the figure benches' scenario grids.
//
// Historically every figure binary materialized its grid inside main(),
// which made the grids unreachable from anything but that binary. A
// GridDef instead captures the three things a driver needs to run a
// bench's sweep without its main(): the bench's flag schema, its grid
// construction, and its scenario function. The bench mains register
// their own GridDef (bench/grids/) and then consume it, so a figure run
// standalone and the same figure run by the sweep_fleet driver execute
// literally the same grid-building and cell-computing code — which is
// what makes their store fingerprints (and therefore their tables)
// interchangeable.

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/sweep.h"

namespace falvolt::core {

/// One bench's grid, self-describing enough for a foreign driver.
struct GridDef {
  /// Canonical bench name — the store's bench id (e.g.
  /// "fig5b_fault_count"); also the registry key.
  std::string name;
  /// One-line description for listings.
  std::string title;
  /// Registers the bench-SPECIFIC flags; the caller adds the common set
  /// (bench::add_common_flags) first.
  std::function<void(common::CliFlags&)> add_flags;
  /// The grid's full dataset axis (before any --datasets subsetting).
  /// Drivers sweeping many grids use it to SKIP a grid whose axis does
  /// not intersect a dataset filter — running the grid's own builder
  /// with a foreign filter is an error by the strict-subset contract
  /// (bench::dataset_list), which is right for a bench asked for
  /// explicitly but wrong for "every grid that applies".
  std::vector<DatasetKind> datasets;
  /// Flags that shape only post-sweep aggregation, never a cell value —
  /// exempted from cell fingerprints (e.g. fig8's --target-drop).
  std::set<std::string> aggregation_only;
  /// Builds the scenario grid from the parsed flags. Cells should carry
  /// an honest cost estimate for the fleet's cost-ordered queue: set
  /// Scenario::retrain/epochs (the default estimate scales with them)
  /// or tag Scenario::cost_hint explicitly when the grid knows better
  /// (e.g. fig5c derives per-array-size eval cost from
  /// systolic::cost_model). Cost never enters a fingerprint.
  std::function<std::vector<Scenario>(const common::CliFlags&)> scenarios;
  /// Builds the scenario function. `ctx` is the context the running
  /// sweep prepares baselines into (a SweepRunner's or a FleetRunner's);
  /// the returned closure must own every other value it needs — capture
  /// flag-derived values by value, shared state by shared_ptr — because
  /// the CliFlags it was built from may be gone by the time it runs.
  std::function<SweepRunner::ScenarioFn(const common::CliFlags&,
                                        const SweepContext&)>
      scenario_fn;
};

/// Process-global name -> GridDef map. Benches register at startup
/// (bench::register_all_grids()); drivers enumerate or look up by name.
class GridRegistry {
 public:
  static GridRegistry& instance();

  /// Registers a grid. Throws std::logic_error on a duplicate name or a
  /// def with any callback missing.
  void add(GridDef def);

  /// nullptr when `name` is not registered.
  const GridDef* find(const std::string& name) const;
  /// Throws std::out_of_range, listing the registered names, on a miss.
  const GridDef& get(const std::string& name) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;
  std::size_t size() const { return defs_.size(); }

 private:
  std::vector<GridDef> defs_;
};

}  // namespace falvolt::core
