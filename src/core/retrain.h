#pragma once
// Fault-aware retraining (Algorithm 1 of the paper), shared by FaPIT and
// FalVolt. The two methods differ in a single switch: whether the
// per-layer threshold voltage is a trainable parameter.
//
// Algorithm 1 mapping:
//   lines 1-2  -> fault::NetworkPruner construction + apply()
//   line 3     -> threshold initialization (MitigationConfig::retrain_vth)
//   lines 4-12 -> snn::Trainer BPTT epochs (weights + optionally V_th)
//   line 13    -> post-epoch re-pruning hook (pruner.apply)
//   line 15    -> final evaluation

#include "core/mitigation.h"

namespace falvolt::core {

/// Prune + retrain `net` in place. `method_name` labels the result
/// ("FaPIT", "FalVolt", or a custom tag for the Fig. 2 V_th sweep).
MitigationResult run_fault_aware_retraining(
    snn::Network& net, const fault::FaultMap& map,
    const data::Dataset& train, const data::Dataset& test,
    const MitigationConfig& cfg, const std::string& method_name);

}  // namespace falvolt::core
