#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/csv.h"
#include "common/env.h"
#include "common/timer.h"
#include "compute/thread_pool.h"

namespace falvolt::core {

namespace {

// splitmix64 finalizer — turns the raw key hash into a well-mixed seed.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t scenario_seed(const Scenario& s) {
  // FNV-1a over the key, then fold in the explicit fault seed so two
  // scenarios differing only in fault_seed get distinct streams too.
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s.key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return mix64(h + 0x9e3779b97f4a7c15ULL * (s.fault_seed + 1));
}

common::Rng scenario_rng(const Scenario& s) {
  return common::Rng(scenario_seed(s));
}

// ------------------------------------------------------------ ResultTable

void ResultTable::put(std::size_t index, ScenarioResult result) {
  std::lock_guard<std::mutex> lock(*mu_);
  rows_.at(index) = std::move(result);
}

const ScenarioResult& ResultTable::at(std::size_t index) const {
  return rows_.at(index);
}

const ScenarioResult* ResultTable::find(const std::string& key) const {
  for (const ScenarioResult& r : rows_) {
    if (r.scenario.key == key) return &r;
  }
  return nullptr;
}

const ScenarioResult& ResultTable::get(const std::string& key) const {
  const ScenarioResult* r = find(key);
  if (!r) throw std::out_of_range("ResultTable: no scenario " + key);
  return *r;
}

std::string ResultTable::to_csv() const {
  // Columns are the union of all metric names in first-seen order, so
  // sweeps with heterogeneous metrics (e.g. the ablation arms) still
  // emit rectangular CSV — a scenario missing a metric gets an empty
  // cell.
  std::vector<std::string> columns;
  for (const ScenarioResult& r : rows_) {
    for (const auto& [name, value] : r.metrics) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), name) ==
          columns.end()) {
        columns.push_back(name);
      }
    }
  }
  std::string out = "key,tag,dataset";
  for (const std::string& name : columns) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (const ScenarioResult& r : rows_) {
    out += r.scenario.key;
    out += ',';
    out += r.scenario.tag;
    out += ',';
    out += dataset_name(r.scenario.dataset);
    for (const std::string& name : columns) {
      out += ',';
      for (const auto& [metric, value] : r.metrics) {
        if (metric == name) {
          out += common::CsvWriter::format(value);
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

std::string ResultTable::to_json(const std::string& bench_name) const {
  std::string json = "{\n  \"bench\": \"" + json_escape(bench_name) +
                     "\",\n  \"sweep_parallel\": " +
                     std::to_string(sweep_parallel_) +
                     ",\n  \"threads\": " + std::to_string(threads_) +
                     ",\n  \"scenario_count\": " +
                     std::to_string(rows_.size()) +
                     ",\n  \"total_seconds\": " + json_number(total_seconds_) +
                     ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const ScenarioResult& r = rows_[i];
    json += "    {\"key\": \"" + json_escape(r.scenario.key) +
            "\", \"tag\": \"" + json_escape(r.scenario.tag) +
            "\", \"dataset\": \"" + dataset_name(r.scenario.dataset) +
            "\", \"repeat\": " + std::to_string(r.scenario.repeat) +
            ", \"retrain\": " +
            (r.scenario.retrain ? "true" : "false") +
            ", \"seconds\": " + json_number(r.seconds) +
            ", \"metrics\": {";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      json += (m ? ", \"" : "\"") + json_escape(r.metrics[m].first) +
              "\": " + json_number(r.metrics[m].second);
    }
    json += "}}";
    json += i + 1 == rows_.size() ? "\n" : ",\n";
  }
  json += "  ]\n}\n";
  return json;
}

void ResultTable::write_json(const std::string& path,
                             const std::string& bench_name) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ResultTable: cannot open " + path);
  out << to_json(bench_name);
}

// ----------------------------------------------------------- SweepContext

const Workload& SweepContext::workload(DatasetKind kind) const {
  const auto it = baselines_.find(kind);
  if (it == baselines_.end()) {
    throw std::logic_error(std::string("SweepContext: workload ") +
                           dataset_name(kind) + " was never prepared");
  }
  return it->second.workload;
}

snn::Network SweepContext::clone_network(DatasetKind kind) const {
  const auto it = baselines_.find(kind);
  if (it == baselines_.end()) {
    throw std::logic_error(std::string("SweepContext: workload ") +
                           dataset_name(kind) + " was never prepared");
  }
  snn::Network net =
      build_network(kind, it->second.workload.data.train, opts_.seed);
  net.restore_params(it->second.snapshot);
  return net;
}

// ------------------------------------------------------------ SweepRunner

SweepRunner::SweepRunner(WorkloadOptions opts) : opts_(std::move(opts)) {
  ctx_.opts_ = opts_;
}

const SweepContext& SweepRunner::prepare(
    const std::vector<Scenario>& scenarios) {
  if (!prepare_baselines_) return ctx_;
  for (const Scenario& s : scenarios) {
    if (ctx_.baselines_.count(s.dataset)) continue;
    Workload wl = prepare_workload(s.dataset, opts_);
    std::vector<tensor::Tensor> snapshot = wl.net.snapshot_params();
    if (on_baseline_) on_baseline_(wl);
    ctx_.order_.push_back(s.dataset);
    ctx_.baselines_.emplace(
        s.dataset,
        SweepContext::Baseline{std::move(wl), std::move(snapshot)});
  }
  return ctx_;
}

int SweepRunner::effective_parallel(std::size_t n) const {
  int want = opts_.sweep_parallel;
  if (want <= 0) {
    const long long env = common::env_int_or("FALVOLT_SWEEP_PARALLEL", 0);
    if (env > 0) {
      want = static_cast<int>(
          std::min<long long>(env, compute::ThreadPool::kMaxThreads));
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      want = hw == 0 ? 1 : static_cast<int>(hw);
    }
  }
  want = std::min(want, compute::ThreadPool::kMaxThreads);
  if (n > 0) {
    want = std::min(want, static_cast<int>(
                              std::min<std::size_t>(n, 1u << 16)));
  }
  return std::max(1, want);
}

ResultTable SweepRunner::run(const std::vector<Scenario>& scenarios,
                             const ScenarioFn& fn) {
  {
    std::set<std::string> keys;
    for (const Scenario& s : scenarios) {
      if (!keys.insert(s.key).second) {
        throw std::invalid_argument("SweepRunner: duplicate scenario key " +
                                    s.key);
      }
    }
  }
  prepare(scenarios);

  const int n = static_cast<int>(scenarios.size());
  const int parallel = effective_parallel(scenarios.size());
  ResultTable table(scenarios.size());
  table.sweep_parallel_ = parallel;
  // Workload-free sweeps must not spawn the process-wide GEMM pool just
  // to report its size in the JSON summary; when baselines were
  // prepared the pool already exists (training ran on it).
  table.threads_ = prepare_baselines_ ? compute::global_threads() : 0;

  common::Timer timer;
  std::mutex err_mu;
  std::vector<std::string> errors;
  std::atomic<int> done{0};
  // A failed scenario stops further claims (in-flight scenarios finish,
  // then run() throws) — a deterministic error affecting every cell
  // must not burn hours draining the rest of the grid first.
  std::atomic<bool> failed{false};
  const auto run_one = [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    common::Timer t;
    const char* status = "";
    try {
      ScenarioResult r = fn(scenarios[idx], ctx_);
      r.scenario = scenarios[idx];
      r.seconds = t.seconds();
      table.put(idx, std::move(r));
    } catch (const std::exception& e) {
      failed.store(true);
      status = " FAILED";
      std::lock_guard<std::mutex> lock(err_mu);
      errors.push_back(scenarios[idx].key + ": " + e.what());
    }
    // Live progress goes to stderr in completion order (retraining
    // grids run for hours otherwise silent); the deterministic
    // per-scenario logs still print to stdout in scenario order below.
    std::fprintf(stderr, "[sweep %d/%d] %s (%.1f s)%s\n",
                 done.fetch_add(1) + 1, n, scenarios[idx].key.c_str(),
                 t.seconds(), status);
  };

  if (parallel <= 1) {
    for (int i = 0; i < n && !failed.load(); ++i) run_one(i);
  } else {
    // Scenario bodies run on pool workers, so nested GEMM parallel_for
    // calls execute inline — the sweep never runs more than `parallel`
    // threads of compute at once. Scenarios are claimed one at a time
    // through our own atomic counter (parallel_for only dispatches one
    // worker slot per thread): its internal chunk heuristic would batch
    // several scenarios per claim on large grids, and scenarios are far
    // too coarse and heterogeneous for that — a cheap eval cell must
    // not wait behind a slow retraining cell in the same chunk.
    std::atomic<int> next{0};
    compute::ThreadPool pool(parallel);
    pool.parallel_for(0, parallel, 1, [&](int, int) {
      while (!failed.load()) {
        const int i = next.fetch_add(1);
        if (i >= n) break;
        run_one(i);
      }
    });
  }
  if (!errors.empty()) {
    std::string what =
        "sweep failed (" + std::to_string(errors.size()) + " scenario(s))";
    for (const std::string& e : errors) {
      what += "\n  ";
      what += e;
    }
    throw std::runtime_error(what);
  }
  table.total_seconds_ = timer.seconds();

  // Buffered logs, in scenario order: deterministic under any worker
  // count.
  for (const ScenarioResult& r : table.rows()) {
    if (!r.log.empty()) std::fputs(r.log.c_str(), stdout);
  }
  return table;
}

}  // namespace falvolt::core
