#include "core/sweep.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "common/bytes.h"
#include "common/csv.h"
#include "common/env.h"
#include "common/json.h"
#include "common/timer.h"
#include "common/version.h"
#include "compute/thread_pool.h"
#include "io/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fingerprint.h"
#include "store/manifest.h"
#include "store/result_store.h"
#include "store/store_api.h"

namespace falvolt::core {

namespace {

// splitmix64 finalizer — turns the raw key hash into a well-mixed seed.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

using common::json_escape;

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// --------------------------------------------- ScenarioResult byte codec
//
// Little-endian, length-prefixed throughout (common/bytes.h — the same
// primitives the fleet wire protocol frames with). The store frame
// around the payload already carries magic/epoch/checksum
// (record_frame.h), so the codec only needs a version word of its own
// plus per-field lengths that the reader validates against the
// remaining bytes.

// v2 appended the provenance block (host, version, unix_time,
// store_epoch). decode rejects foreign versions, so a store written by
// an older build degrades to recompute-on-read — never an error.
// POLICY: every codec bump must bump store::kStoreFormatEpoch with it
// (see fingerprint.h) so old and new records never share an address.
constexpr std::uint32_t kCodecVersion = 2;

// Hostname of this process, resolved once (records are stamped from
// worker threads; gethostname on every cell would be wasted syscalls).
const std::string& process_hostname() {
  static const std::string host = [] {
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0) {
      return std::string("unknown");
    }
    return std::string(buf);
  }();
  return host;
}

Provenance make_provenance() {
  Provenance p;
  p.host = process_hostname();
  p.version = kFalvoltVersion;
  p.unix_time = static_cast<std::uint64_t>(std::time(nullptr));
  p.store_epoch = store::kStoreFormatEpoch;
  return p;
}

using common::ByteReader;
using common::put_f64;
using common::put_i32;
using common::put_str;
using common::put_u32;
using common::put_u64;

}  // namespace

std::string encode_scenario_result(const ScenarioResult& r) {
  std::string b;
  put_u32(b, kCodecVersion);
  put_str(b, r.scenario.key);
  put_str(b, r.scenario.tag);
  put_u32(b, static_cast<std::uint32_t>(r.scenario.dataset));
  put_f64(b, r.scenario.vth);
  put_f64(b, r.scenario.fault_rate);
  put_i32(b, r.scenario.fault_count);
  put_i32(b, r.scenario.bit);
  put_u32(b, static_cast<std::uint32_t>(r.scenario.stuck));
  put_i32(b, r.scenario.array_size);
  put_i32(b, r.scenario.repeat);
  put_u64(b, r.scenario.fault_seed);
  put_u32(b, r.scenario.retrain ? 1 : 0);
  put_i32(b, r.scenario.epochs);
  put_str(b, r.fingerprint);
  put_u32(b, static_cast<std::uint32_t>(r.metrics.size()));
  for (const auto& [name, value] : r.metrics) {
    put_str(b, name);
    put_f64(b, value);
  }
  put_u32(b, static_cast<std::uint32_t>(r.csv_rows.size()));
  for (const auto& row : r.csv_rows) {
    put_u32(b, static_cast<std::uint32_t>(row.size()));
    for (const std::string& cell : row) put_str(b, cell);
  }
  put_str(b, r.log);
  put_f64(b, r.seconds);
  put_str(b, r.provenance.host);
  put_str(b, r.provenance.version);
  put_u64(b, r.provenance.unix_time);
  put_u32(b, r.provenance.store_epoch);
  return b;
}

bool decode_scenario_result(const std::string& bytes, ScenarioResult& out) {
  ByteReader in{bytes};
  std::uint32_t version = 0;
  if (!in.u32(version) || version != kCodecVersion) return false;
  ScenarioResult r;
  std::uint32_t dataset = 0;
  std::uint32_t stuck = 0;
  std::uint32_t retrain = 0;
  if (!in.str(r.scenario.key) || !in.str(r.scenario.tag) ||
      !in.u32(dataset) || !in.f64(r.scenario.vth) ||
      !in.f64(r.scenario.fault_rate) || !in.i32(r.scenario.fault_count) ||
      !in.i32(r.scenario.bit) || !in.u32(stuck) ||
      !in.i32(r.scenario.array_size) || !in.i32(r.scenario.repeat) ||
      !in.u64(r.scenario.fault_seed) || !in.u32(retrain) ||
      !in.i32(r.scenario.epochs) || !in.str(r.fingerprint)) {
    return false;
  }
  if (dataset > static_cast<std::uint32_t>(DatasetKind::kDvsGesture) ||
      stuck > 1 || retrain > 1) {
    return false;
  }
  r.scenario.dataset = static_cast<DatasetKind>(dataset);
  r.scenario.stuck = static_cast<fx::StuckType>(stuck);
  r.scenario.retrain = retrain != 0;

  std::uint32_t metric_count = 0;
  if (!in.u32(metric_count)) return false;
  r.metrics.reserve(std::min<std::size_t>(metric_count, in.remaining()));
  for (std::uint32_t m = 0; m < metric_count; ++m) {
    std::string name;
    double value = 0.0;
    if (!in.str(name) || !in.f64(value)) return false;
    r.metrics.emplace_back(std::move(name), value);
  }
  std::uint32_t row_count = 0;
  if (!in.u32(row_count)) return false;
  for (std::uint32_t i = 0; i < row_count; ++i) {
    std::uint32_t cell_count = 0;
    if (!in.u32(cell_count)) return false;
    std::vector<std::string> row;
    row.reserve(std::min<std::size_t>(cell_count, in.remaining()));
    for (std::uint32_t c = 0; c < cell_count; ++c) {
      std::string cell;
      if (!in.str(cell)) return false;
      row.push_back(std::move(cell));
    }
    r.csv_rows.push_back(std::move(row));
  }
  if (!in.str(r.log) || !in.f64(r.seconds)) return false;
  if (!in.str(r.provenance.host) || !in.str(r.provenance.version) ||
      !in.u64(r.provenance.unix_time) || !in.u32(r.provenance.store_epoch)) {
    return false;
  }
  // Trailing garbage means the record is not what encode() wrote.
  if (in.remaining() != 0) return false;
  out = std::move(r);
  return true;
}

std::pair<int, int> parse_shard_spec(const std::string& spec) {
  if (spec.empty()) return {0, 1};
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= spec.size()) {
    throw std::invalid_argument("shard spec must be 'i/n', got '" + spec +
                                "'");
  }
  int index = 0;
  int count = 0;
  try {
    std::size_t used = 0;
    index = std::stoi(spec.substr(0, slash), &used);
    if (used != slash) throw std::invalid_argument("trailing junk");
    const std::string count_part = spec.substr(slash + 1);
    count = std::stoi(count_part, &used);
    if (used != count_part.size()) throw std::invalid_argument("junk");
  } catch (const std::exception&) {
    throw std::invalid_argument("shard spec must be 'i/n', got '" + spec +
                                "'");
  }
  if (count < 1 || index < 0 || index >= count) {
    throw std::invalid_argument("shard spec '" + spec +
                                "' needs 0 <= i < n");
  }
  return {index, count};
}

std::vector<int> shard_partition(const std::vector<double>& costs,
                                 int shard_count) {
  if (shard_count < 1) {
    throw std::invalid_argument("shard_partition: shard_count must be >= 1");
  }
  std::vector<int> owners(costs.size(), 0);
  if (shard_count == 1) return owners;
  // Greedy LPT: visit cells most-expensive-first (stable sort, so equal
  // costs keep grid order and the partition is deterministic), assign
  // each to the least-loaded shard so far (ties to the lowest shard id).
  std::vector<int> order(costs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&costs](int a, int b) {
    return costs[static_cast<std::size_t>(a)] >
           costs[static_cast<std::size_t>(b)];
  });
  std::vector<double> load(static_cast<std::size_t>(shard_count), 0.0);
  for (const int i : order) {
    int best = 0;
    for (int s = 1; s < shard_count; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    owners[static_cast<std::size_t>(i)] = best;
    load[static_cast<std::size_t>(best)] +=
        costs[static_cast<std::size_t>(i)];
  }
  return owners;
}

double scenario_cost_estimate(const Scenario& s) {
  if (s.cost_hint > 0.0) return s.cost_hint;
  if (s.retrain) {
    return kRetrainCostPerEpoch * static_cast<double>(std::max(1, s.epochs));
  }
  return 1.0;
}

SchedulePolicy parse_schedule_policy(const std::string& name) {
  if (name == "cost") return SchedulePolicy::kCostOrdered;
  if (name == "claim") return SchedulePolicy::kClaimOrdered;
  throw std::invalid_argument("schedule policy must be 'cost' or 'claim', "
                              "got '" + name + "'");
}

const char* schedule_policy_name(SchedulePolicy policy) {
  return policy == SchedulePolicy::kCostOrdered ? "cost" : "claim";
}

std::uint64_t scenario_seed(const Scenario& s) {
  // FNV-1a over the key, then fold in the explicit fault seed so two
  // scenarios differing only in fault_seed get distinct streams too.
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s.key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return mix64(h + 0x9e3779b97f4a7c15ULL * (s.fault_seed + 1));
}

common::Rng scenario_rng(const Scenario& s) {
  return common::Rng(scenario_seed(s));
}

// ------------------------------------------------------------ ResultTable

void ResultTable::set_slot(std::size_t index, ScenarioResult result,
                           SlotState state) {
  std::lock_guard<std::mutex> lock(*mu_);
  rows_.at(index) = std::move(result);
  state_.at(index) = state;
}

void ResultTable::put(std::size_t index, ScenarioResult result) {
  set_slot(index, std::move(result), kComputed);
}

void ResultTable::put_cached(std::size_t index, ScenarioResult result) {
  set_slot(index, std::move(result), kCached);
}

std::size_t ResultTable::count(SlotState state) const {
  std::size_t n = 0;
  for (const char s : state_) {
    if (s == state) ++n;
  }
  return n;
}

bool ResultTable::is_filled(std::size_t index) const {
  return state_.at(index) != kAbsent;
}

bool ResultTable::is_cached(std::size_t index) const {
  return state_.at(index) == kCached;
}

bool ResultTable::complete() const {
  return count(kAbsent) == 0;
}

const ScenarioResult& ResultTable::at(std::size_t index) const {
  return rows_.at(index);
}

const ScenarioResult* ResultTable::find(const std::string& key) const {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (state_[i] != kAbsent && rows_[i].scenario.key == key) {
      return &rows_[i];
    }
  }
  return nullptr;
}

const ScenarioResult& ResultTable::get(const std::string& key) const {
  const ScenarioResult* r = find(key);
  if (!r) throw std::out_of_range("ResultTable: no scenario " + key);
  return *r;
}

std::string ResultTable::to_csv() const {
  // Columns are the union of all metric names in first-seen order, so
  // sweeps with heterogeneous metrics (e.g. the ablation arms) still
  // emit rectangular CSV — a scenario missing a metric gets an empty
  // cell. Absent slots (cells of other shards) are skipped.
  std::vector<std::string> columns;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (state_[i] == kAbsent) continue;
    for (const auto& [name, value] : rows_[i].metrics) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), name) ==
          columns.end()) {
        columns.push_back(name);
      }
    }
  }
  std::string out = "key,tag,dataset";
  for (const std::string& name : columns) {
    out += ',';
    out += common::csv_escape(name);
  }
  out += '\n';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (state_[i] == kAbsent) continue;
    const ScenarioResult& r = rows_[i];
    out += common::csv_escape(r.scenario.key);
    out += ',';
    out += common::csv_escape(r.scenario.tag);
    out += ',';
    out += common::csv_escape(dataset_name(r.scenario.dataset));
    for (const std::string& name : columns) {
      out += ',';
      for (const auto& [metric, value] : r.metrics) {
        if (metric == name) {
          out += common::CsvWriter::format(value);
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

std::string ResultTable::to_json(const std::string& bench_name) const {
  // The per-scenario entries below are deterministic for a given set of
  // computed cell values (replayed cells reproduce the compute seconds
  // stored in their record); everything run-specific stays on the
  // single "run" line so warm/cold runs diff clean without it.
  std::string computed_keys = "[";
  bool first = true;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (state_[i] != kComputed) continue;
    computed_keys += first ? "\"" : ", \"";
    computed_keys += json_escape(rows_[i].scenario.key);
    computed_keys += '"';
    first = false;
  }
  computed_keys += ']';

  std::string json =
      "{\n  \"bench\": \"" + json_escape(bench_name) +
      "\",\n  \"scenario_count\": " + std::to_string(rows_.size()) +
      ",\n  \"run\": {\"sweep_parallel\": " +
      std::to_string(sweep_parallel_) +
      ", \"threads\": " + std::to_string(threads_) +
      ", \"total_seconds\": " + json_number(total_seconds_) +
      ", \"shard_index\": " + std::to_string(shard_index_) +
      ", \"shard_count\": " + std::to_string(shard_count_) +
      ", \"cells_computed\": " + std::to_string(computed_cells()) +
      ", \"cells_cached\": " + std::to_string(cached_cells()) +
      ", \"cells_absent\": " + std::to_string(absent_cells()) +
      ", \"computed_keys\": " + computed_keys + "},\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const ScenarioResult& r = rows_[i];
    if (state_[i] == kAbsent) {
      json += "    {\"key\": \"" + json_escape(r.scenario.key) +
              "\", \"fingerprint\": \"" + json_escape(r.fingerprint) +
              "\", \"absent\": true}";
    } else {
      json += "    {\"key\": \"" + json_escape(r.scenario.key) +
              "\", \"tag\": \"" + json_escape(r.scenario.tag) +
              "\", \"dataset\": \"" + dataset_name(r.scenario.dataset) +
              "\", \"repeat\": " + std::to_string(r.scenario.repeat) +
              ", \"retrain\": " +
              (r.scenario.retrain ? "true" : "false") +
              ", \"fingerprint\": \"" + json_escape(r.fingerprint) +
              "\", \"seconds\": " + json_number(r.seconds) +
              ", \"provenance\": {\"host\": \"" +
              json_escape(r.provenance.host) + "\", \"version\": \"" +
              json_escape(r.provenance.version) + "\", \"unix_time\": " +
              std::to_string(r.provenance.unix_time) +
              ", \"store_epoch\": " +
              std::to_string(r.provenance.store_epoch) + "}, \"metrics\": {";
      for (std::size_t m = 0; m < r.metrics.size(); ++m) {
        json += (m ? ", \"" : "\"") + json_escape(r.metrics[m].first) +
                "\": " + json_number(r.metrics[m].second);
      }
      json += "}}";
    }
    json += i + 1 == rows_.size() ? "\n" : ",\n";
  }
  json += "  ]\n}\n";
  return json;
}

void ResultTable::write_json(const std::string& path,
                             const std::string& bench_name) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ResultTable: cannot open " + path);
  out << to_json(bench_name);
}

// ----------------------------------------------------------- SweepContext

const Workload& SweepContext::workload(DatasetKind kind) const {
  const auto it = baselines_.find(kind);
  if (it == baselines_.end()) {
    throw std::logic_error(std::string("SweepContext: workload ") +
                           dataset_name(kind) + " was never prepared");
  }
  return it->second.workload;
}

snn::Network SweepContext::clone_network(DatasetKind kind) const {
  const auto it = baselines_.find(kind);
  if (it == baselines_.end()) {
    throw std::logic_error(std::string("SweepContext: workload ") +
                           dataset_name(kind) + " was never prepared");
  }
  snn::Network net =
      build_network(kind, it->second.workload.data.train, opts_.seed);
  net.restore_params(it->second.snapshot);
  return net;
}

// ------------------------------------------------------------ SweepRunner

SweepRunner::SweepRunner(WorkloadOptions opts) : opts_(std::move(opts)) {
  ctx_.opts_ = opts_;
}

void SweepRunner::set_store(SweepStoreOptions store) {
  if (store.shard_count < 1 || store.shard_index < 0 ||
      store.shard_index >= store.shard_count) {
    throw std::invalid_argument("SweepRunner: shard index " +
                                std::to_string(store.shard_index) +
                                " out of range for " +
                                std::to_string(store.shard_count) +
                                " shard(s)");
  }
  store_ = std::move(store);
}

std::string fingerprint_cell(const SweepStoreOptions& store,
                             const WorkloadOptions& opts, const Scenario& s) {
  // Everything that determines the cell's output, nothing that is
  // execution-only (cost_hint drives only queue order, so it is absent —
  // two scenarios differing only in cost estimate are the same cell).
  // Field ORDER is part of the hash — append new fields at the end (any
  // change here re-addresses the whole store, which is safe but
  // discards every cached cell).
  store::Fingerprinter fp;
  fp.add("bench", store.bench);
  for (const auto& [name, value] : store.config) {
    fp.add("cfg:" + name, value);
  }
  fp.add("workload", workload_id(s.dataset, opts));
  fp.add("key", s.key);
  fp.add("tag", s.tag);
  fp.add("vth", s.vth);
  fp.add("fault_rate", s.fault_rate);
  fp.add("fault_count", static_cast<std::int64_t>(s.fault_count));
  fp.add("bit", static_cast<std::int64_t>(s.bit));
  fp.add("stuck", static_cast<std::int64_t>(s.stuck));
  fp.add("array_size", static_cast<std::int64_t>(s.array_size));
  fp.add("repeat", static_cast<std::int64_t>(s.repeat));
  fp.add("fault_seed", std::uint64_t{s.fault_seed});
  fp.add("retrain", s.retrain);
  fp.add("epochs", static_cast<std::int64_t>(s.epochs));
  return fp.digest();
}

std::string SweepRunner::fingerprint(const Scenario& s) const {
  return fingerprint_cell(store_, opts_, s);
}

// ------------------------------------------------------------ SweepEngine
//
// The executor behind BOTH SweepRunner (one grid) and FleetRunner (the
// union of several benches' grids). One grid is just a fleet of size 1:
// fingerprints, triage, manifest writes, baseline preparation, the
// work-stealing claim loop, store publication, provenance stamping, and
// ordered log flushing are identical — the only differences are the
// progress-line labels and how many tables come back.
struct SweepEngine {
  // Per-grid working state.
  struct GridState {
    const FleetGrid* grid = nullptr;
    std::string label;  // non-empty => prefixed progress/error lines
    std::unique_ptr<store::StoreApi> rs;
    std::vector<std::string> fps;
    ResultTable table;
    std::vector<int> pending;         // grid-local indices this run computes
    std::vector<double> pending_cost;  // estimated cost of each pending cell
  };

  static void prepare_kinds(
      SweepContext& ctx, const WorkloadOptions& opts,
      const std::function<void(const Workload&)>& on_baseline,
      const std::set<DatasetKind>& kinds) {
    static obs::Counter& ns = obs::counter("sweep.baseline.ns");
    static obs::Counter& count = obs::counter("sweep.baseline.count");
    for (const DatasetKind kind : kinds) {
      if (ctx.baselines_.count(kind)) continue;
      obs::TraceSpan span("sweep",
                          std::string("baseline:") + dataset_name(kind));
      obs::ScopedTimer timed(ns, count);
      Workload wl = prepare_workload(kind, opts);
      std::vector<tensor::Tensor> snapshot = wl.net.snapshot_params();
      if (on_baseline) on_baseline(wl);
      ctx.order_.push_back(kind);
      ctx.baselines_.emplace(
          kind, SweepContext::Baseline{std::move(wl), std::move(snapshot)});
    }
  }

  static int effective_parallel(const WorkloadOptions& opts, std::size_t n) {
    int want = opts.sweep_parallel;
    if (want <= 0) {
      const long long env = common::env_int_or("FALVOLT_SWEEP_PARALLEL", 0);
      if (env > 0) {
        want = static_cast<int>(
            std::min<long long>(env, compute::ThreadPool::kMaxThreads));
      } else {
        const unsigned hw = std::thread::hardware_concurrency();
        want = hw == 0 ? 1 : static_cast<int>(hw);
      }
    }
    want = std::min(want, compute::ThreadPool::kMaxThreads);
    if (n > 0) {
      want = std::min(want,
                      static_cast<int>(std::min<std::size_t>(n, 1u << 16)));
    }
    return std::max(1, want);
  }

  static std::vector<ResultTable> run(
      const WorkloadOptions& opts, SweepContext& ctx, bool prepare_baselines,
      const std::function<void(const Workload&)>& on_baseline,
      const std::vector<FleetGrid>& grids, bool labeled,
      SchedulePolicy schedule, std::vector<WorkerStats>& worker_stats,
      CellQueue* external_queue);
};

std::vector<ResultTable> SweepEngine::run(
    const WorkloadOptions& opts, SweepContext& ctx, bool prepare_baselines,
    const std::function<void(const Workload&)>& on_baseline,
    const std::vector<FleetGrid>& grids, bool labeled,
    SchedulePolicy schedule, std::vector<WorkerStats>& worker_stats,
    CellQueue* external_queue) {
  std::vector<GridState> gs(grids.size());
  for (std::size_t g = 0; g < grids.size(); ++g) {
    GridState& st = gs[g];
    st.grid = &grids[g];
    if (labeled) {
      st.label = grids[g].store.bench.empty()
                     ? "grid" + std::to_string(g)
                     : grids[g].store.bench;
    }
    const std::vector<Scenario>& scenarios = grids[g].scenarios;
    {
      std::set<std::string> keys;
      for (const Scenario& s : scenarios) {
        if (!keys.insert(s.key).second) {
          throw std::invalid_argument(
              "SweepRunner: duplicate scenario key " + s.key);
        }
      }
    }
    const SweepStoreOptions& store = grids[g].store;
    const std::size_t total = scenarios.size();
    st.table = ResultTable(total);
    st.table.shard_index_ = store.shard_index;
    st.table.shard_count_ = store.shard_count;
    st.fps.assign(total, "");

    const bool use_store = !store.dir.empty();
    if (use_store) {
      st.rs = store::open_store(store.dir, store.substituters);
      for (std::size_t i = 0; i < total; ++i) {
        st.fps[i] = fingerprint_cell(store, opts, scenarios[i]);
      }
      // The manifest lists the FULL grid (all shards) and is identical
      // across the shards of one grid; written before any compute so a
      // killed sweep still leaves the merge/plan tooling its grid. A
      // read-only store (segment:) can only replay, never publish —
      // whether that suffices is decided after triage below.
      if (st.rs->writable()) {
        store::Manifest manifest;
        manifest.bench = store.bench.empty() ? "sweep" : store.bench;
        for (std::size_t i = 0; i < total; ++i) {
          manifest.entries.emplace_back(st.fps[i], scenarios[i].key);
        }
        st.rs->put_manifest(manifest);
      }
    }
    // Cost-balanced shard ownership over the STATIC cost estimates (every
    // independently launched shard derives the identical partition).
    std::vector<int> owners;
    if (store.shard_count > 1) {
      std::vector<double> est(total);
      for (std::size_t i = 0; i < total; ++i) {
        est[i] = scenario_cost_estimate(scenarios[i]);
      }
      owners = shard_partition(est, store.shard_count);
    }

    // Triage every cell: replay a valid cached record (any shard's),
    // otherwise compute it if this shard owns it, otherwise leave the
    // slot absent for sweep_merge to fill from the other shards' stores.
    static obs::Counter& cached_cells = obs::counter("sweep.cells.cached");
    static obs::Counter& get_ns = obs::counter("sweep.store.get.ns");
    static obs::Counter& get_count = obs::counter("sweep.store.get.count");
    obs::TraceSpan triage_span(
        "sweep", "triage:" + (store.bench.empty() ? "sweep" : store.bench));
    for (std::size_t i = 0; i < total; ++i) {
      st.table.rows_[i].scenario = scenarios[i];
      st.table.rows_[i].fingerprint = st.fps[i];
      if (use_store && store.resume) {
        obs::TraceSpan span("store", "triage.get");
        if (obs::trace_enabled()) {
          span.arg("key", scenarios[i].key);
          span.arg("fingerprint", st.fps[i].substr(0, 16));
        }
        std::optional<std::string> payload;
        {
          obs::ScopedTimer timed(get_ns, get_count);
          payload = st.rs->get(st.fps[i]);
        }
        if (payload) {
          ScenarioResult cached;
          if (decode_scenario_result(*payload, cached) &&
              cached.scenario.key == scenarios[i].key) {
            cached.scenario = scenarios[i];
            cached.fingerprint = st.fps[i];
            st.table.set_slot(i, std::move(cached), ResultTable::kCached);
            cached_cells.add(1);
            span.arg("cached", true);
            continue;
          }
          // Fingerprint collision with a foreign key, or a record the
          // codec rejects: both read as a miss.
        }
        span.arg("cached", false);
      }
      if (store.shard_count == 1 || owners[i] == store.shard_index) {
        // Estimated cost for the cost-ordered queue. On a warm store a
        // recompute run (--resume false) refines the grid's static
        // estimate with the wall-clock the cell took last time — the
        // most accurate predictor available. (With resume on, a cell
        // that has a usable record was replayed above, so every pending
        // cell is a true miss with no history.)
        double cost = scenario_cost_estimate(scenarios[i]);
        if (use_store && !store.resume) {
          if (const std::optional<std::string> prior = st.rs->get(st.fps[i])) {
            ScenarioResult previous;
            if (decode_scenario_result(*prior, previous) &&
                previous.seconds > 0.0) {
              cost = previous.seconds;
            }
          }
        }
        st.pending.push_back(static_cast<int>(i));
        st.pending_cost.push_back(cost);
      }
    }
    if (use_store && !st.rs->writable() && !st.pending.empty()) {
      throw std::runtime_error(
          (st.label.empty() ? std::string("sweep") : st.label) +
          ": store '" + store.dir + "' is read-only but " +
          std::to_string(st.pending.size()) +
          " owned cell(s) still need computing — publish to a writable "
          "store (local:<dir> or a bare path) instead");
    }
    if (use_store) {
      const std::string where = st.label.empty()
                                    ? "store " + store.dir
                                    : st.label + " @ store " + store.dir;
      std::fprintf(stderr,
                   "[sweep] %s: %zu cached, %zu to compute, %zu "
                   "foreign-shard cell(s) (shard %d/%d)\n",
                   where.c_str(), st.table.cached_cells(),
                   st.pending.size(),
                   total - st.table.cached_cells() - st.pending.size(),
                   store.shard_index, store.shard_count);
    }
  }

  // The cross-grid work queue. Workers claim one cell at a time from a
  // shared counter, so a worker done with one bench's cheap cells
  // immediately steals the next bench's pending cells — no per-grid
  // barrier, no idle tail while another grid still has work. Under the
  // default cost-ordered policy the queue is sorted most-expensive
  // first (stable, so equal-cost cells keep grid-major order): on a
  // heterogeneous fleet a retrain cell claimed LAST strands one worker
  // for its whole duration after every other worker drained the cheap
  // evals; claimed FIRST it overlaps all of them. Ordering is pure
  // scheduling — tables are emitted in grid order either way, so the
  // two policies produce byte-identical CSV/JSON values.
  struct QueueEntry {
    int grid;
    int index;  // grid-local scenario index
    double cost;
  };
  std::vector<QueueEntry> queue;
  for (std::size_t g = 0; g < gs.size(); ++g) {
    for (std::size_t p = 0; p < gs[g].pending.size(); ++p) {
      queue.push_back(QueueEntry{static_cast<int>(g), gs[g].pending[p],
                                 gs[g].pending_cost[p]});
    }
  }
  if (schedule == SchedulePolicy::kCostOrdered) {
    std::stable_sort(queue.begin(), queue.end(),
                     [](const QueueEntry& a, const QueueEntry& b) {
                       return a.cost > b.cost;
                     });
  }

  // Baselines only for datasets some grid actually computes — shared
  // across grids through `ctx`, so a fleet trains/loads each dataset
  // once no matter how many benches need it, and a fully warm re-run
  // trains/loads nothing at all.
  if (prepare_baselines && !queue.empty()) {
    std::set<DatasetKind> kinds;
    for (const QueueEntry& e : queue) {
      kinds.insert(
          gs[static_cast<std::size_t>(e.grid)].grid->scenarios
              [static_cast<std::size_t>(e.index)].dataset);
    }
    prepare_kinds(ctx, opts, on_baseline, kinds);
  }

  const int np = static_cast<int>(queue.size());
  const int parallel = np == 0 ? 1 : effective_parallel(opts, queue.size());
  // Workload-free and fully-cached sweeps must not spawn the
  // process-wide GEMM pool just to report its size in the JSON summary;
  // when baselines were prepared the pool already exists (training ran
  // on it).
  const int threads =
      prepare_baselines && np > 0 ? compute::global_threads() : 0;
  for (GridState& st : gs) {
    st.table.sweep_parallel_ = parallel;
    st.table.threads_ = threads;
  }

  // While this run still has cells to publish, mark every writable
  // destination store in-progress (a pid-stamped marker under tmp/):
  // sweep_merge refuses to emit a partial table from a store a live
  // fleet is still publishing into. RAII — markers vanish on every exit
  // path, and a SIGKILL leaves only a dead-pid marker later runs ignore.
  std::vector<std::unique_ptr<store::InProgressGuard>> inprogress;
  {
    std::set<std::string> marked;
    for (const GridState& st : gs) {
      if (st.pending.empty() || !st.rs || !st.rs->writable()) continue;
      const std::string root =
          store::parse_store_spec(st.grid->store.dir).path;
      if (marked.insert(root).second) {
        inprogress.push_back(std::make_unique<store::InProgressGuard>(root));
      }
    }
  }

  common::Timer timer;
  std::mutex err_mu;
  std::vector<std::string> errors;
  std::atomic<int> done{0};
  worker_stats.assign(static_cast<std::size_t>(parallel), WorkerStats{});
  // A failed scenario stops further claims (in-flight scenarios finish,
  // then run() throws) — a deterministic error affecting every cell
  // must not burn hours draining the rest of the grid first.
  std::atomic<bool> failed{false};
  const auto run_one = [&](const QueueEntry& entry, int worker) {
    static obs::Counter& computed_cells = obs::counter("sweep.cells.computed");
    static obs::Counter& failed_cells = obs::counter("sweep.cells.failed");
    static obs::Counter& put_ns = obs::counter("sweep.store.put.ns");
    static obs::Counter& put_count = obs::counter("sweep.store.put.count");
    static obs::Counter& recheck_cells =
        obs::counter("sweep.cells.recheck_cached");
    GridState& st = gs[static_cast<std::size_t>(entry.grid)];
    const std::size_t idx = static_cast<std::size_t>(entry.index);
    const Scenario& scenario = st.grid->scenarios[idx];
    const CellQueue::Claim claim{entry.grid, entry.index, entry.cost};
    // An at-least-once queue may deliver a cell twice (a SIGKILLed
    // worker's in-flight claims are re-queued, and the original may in
    // fact have published before dying). Re-probing the shared store
    // before computing turns the duplicate into a replay of the
    // paid-for record — the "zero lost paid work" half of the crash
    // contract costs one store read, not a recompute.
    if (external_queue && external_queue->at_least_once() && st.rs &&
        st.grid->store.resume && !st.fps[idx].empty()) {
      if (const std::optional<std::string> payload = st.rs->get(st.fps[idx])) {
        ScenarioResult r;
        if (decode_scenario_result(*payload, r) &&
            r.scenario.key == scenario.key) {
          r.scenario = scenario;
          r.fingerprint = st.fps[idx];
          st.table.put_cached(idx, std::move(r));
          recheck_cells.add(1);
          std::fprintf(stderr, "[sweep %d/?] %s%s%s (already published)\n",
                       done.fetch_add(1) + 1, st.label.c_str(),
                       st.label.empty() ? "" : ":", scenario.key.c_str());
          external_queue->complete(claim, /*cached=*/true, 0.0);
          return;
        }
      }
    }
    // One span per computed cell, on the claiming worker's track; the
    // args are exactly what an operator needs to find the cell again
    // (bench, key, fingerprint prefix) plus the schedule facts (worker,
    // cached=false — cached cells replay during triage, not here).
    obs::TraceSpan cell_span("sweep", "cell");
    if (obs::trace_enabled()) {
      cell_span.arg("bench", st.grid->store.bench.empty()
                                 ? (st.label.empty() ? "sweep" : st.label)
                                 : st.grid->store.bench);
      cell_span.arg("key", scenario.key);
      if (!st.fps[idx].empty()) {
        cell_span.arg("fingerprint", st.fps[idx].substr(0, 16));
      }
      cell_span.arg("worker", worker);
      cell_span.arg("cached", false);
    }
    common::Timer t;
    const char* status = "";
    try {
      ScenarioResult r;
      {
        obs::TraceSpan eval_span("sweep", "eval");
        r = st.grid->fn(scenario, ctx);
      }
      r.scenario = scenario;
      r.fingerprint = st.fps[idx];
      r.seconds = t.seconds();
      r.provenance = make_provenance();
      if (st.rs) {
        obs::TraceSpan put_span("store", "put");
        obs::ScopedTimer timed(put_ns, put_count);
        // Plug-pull points bracketing the cell's publish: a kill before
        // loses exactly this (unpublished) cell to recompute on resume;
        // a kill after must lose nothing — the paid work is durable.
        FALVOLT_PTP(io::FaultSensitivity::kHigh);
        st.rs->put(st.fps[idx], encode_scenario_result(r));
        FALVOLT_PTP();
      }
      st.table.put(idx, std::move(r));
      computed_cells.add(1);
      if (external_queue) {
        external_queue->complete(claim, /*cached=*/false, t.seconds());
      }
    } catch (const std::exception& e) {
      failed.store(true);
      failed_cells.add(1);
      status = " FAILED";
      {
        std::lock_guard<std::mutex> lock(err_mu);
        errors.push_back((st.label.empty() ? "" : st.label + ": ") +
                         scenario.key + ": " + e.what());
      }
      if (external_queue) {
        external_queue->fail(claim, scenario.key + ": " + e.what());
      }
    }
    // Each worker slot writes only its own entry — no lock needed.
    WorkerStats& ws = worker_stats[static_cast<std::size_t>(worker)];
    ws.cells += 1;
    ws.busy_seconds += t.seconds();
    // Live progress goes to stderr in completion order (retraining
    // grids run for hours otherwise silent); the deterministic
    // per-scenario logs still print to stdout in scenario order below.
    std::fprintf(stderr, "[sweep %d/%d] %s%s%s (%.1f s)%s\n",
                 done.fetch_add(1) + 1, np, st.label.c_str(),
                 st.label.empty() ? "" : ":", scenario.key.c_str(),
                 t.seconds(), status);
  };

  // Externally-fed mode (daemon fleet worker): the local cost-ordered
  // queue only seeded triage and baseline prep; actual work arrives as
  // socket claims, one cell per round-trip, until the daemon answers a
  // claim request with SHUTDOWN (nullopt).
  const auto drain_external = [&](int w) {
    while (!failed.load()) {
      const std::optional<CellQueue::Claim> c = external_queue->claim(w);
      if (!c) break;
      if (c->grid < 0 || c->grid >= static_cast<int>(gs.size()) ||
          c->index < 0 ||
          c->index >= static_cast<int>(
              gs[static_cast<std::size_t>(c->grid)].grid->scenarios.size())) {
        failed.store(true);
        const std::string what = "claim (" + std::to_string(c->grid) + ", " +
                                 std::to_string(c->index) +
                                 ") is out of range for this worker's grids";
        {
          std::lock_guard<std::mutex> lock(err_mu);
          errors.push_back(what);
        }
        external_queue->fail(*c, what);
        break;
      }
      run_one(QueueEntry{c->grid, c->index, c->cost}, w);
    }
  };
  if (external_queue) {
    if (parallel <= 1) {
      drain_external(0);
    } else {
      compute::ThreadPool pool(parallel);
      pool.parallel_for(0, parallel, 1, [&](int wb, int we) {
        for (int w = wb; w < we; ++w) {
          if (obs::trace_enabled()) {
            obs::set_trace_thread_name("worker " + std::to_string(w));
          }
          drain_external(w);
        }
      });
    }
  } else if (parallel <= 1) {
    for (int i = 0; i < np && !failed.load(); ++i) {
      run_one(queue[static_cast<std::size_t>(i)], 0);
    }
  } else {
    // Scenario bodies run on pool workers, so nested GEMM parallel_for
    // calls execute inline — the sweep never runs more than `parallel`
    // threads of compute at once. Cells are claimed one at a time
    // through our own atomic counter (parallel_for only dispatches one
    // worker slot per thread): its internal chunk heuristic would batch
    // several cells per claim on large grids, and cells are far too
    // coarse and heterogeneous for that — a cheap eval cell must not
    // wait behind a slow retraining cell in the same chunk.
    std::atomic<int> next{0};
    compute::ThreadPool pool(parallel);
    pool.parallel_for(0, parallel, 1, [&](int wb, int we) {
      for (int w = wb; w < we; ++w) {
        if (obs::trace_enabled()) {
          obs::set_trace_thread_name("worker " + std::to_string(w));
        }
        while (!failed.load()) {
          const int i = next.fetch_add(1);
          if (i >= np) break;
          run_one(queue[static_cast<std::size_t>(i)], w);
        }
      }
    });
  }
  if (!errors.empty()) {
    std::string what =
        "sweep failed (" + std::to_string(errors.size()) + " scenario(s))";
    for (const std::string& e : errors) {
      what += "\n  ";
      what += e;
    }
    throw std::runtime_error(what);
  }
  const double total_seconds = timer.seconds();

  // Buffered logs, grid-major in scenario order: deterministic under
  // any worker count (replayed cells print the log recorded when they
  // were first computed).
  std::vector<ResultTable> tables;
  tables.reserve(gs.size());
  for (GridState& st : gs) {
    st.table.total_seconds_ = total_seconds;
    for (std::size_t i = 0; i < st.table.size(); ++i) {
      if (st.table.is_filled(i) && !st.table.rows()[i].log.empty()) {
        std::fputs(st.table.rows()[i].log.c_str(), stdout);
      }
    }
    tables.push_back(std::move(st.table));
  }
  return tables;
}

void SweepRunner::prepare_kinds(const std::set<DatasetKind>& kinds) {
  SweepEngine::prepare_kinds(ctx_, opts_, on_baseline_, kinds);
}

const SweepContext& SweepRunner::prepare(
    const std::vector<Scenario>& scenarios) {
  if (!prepare_baselines_) return ctx_;
  // Preserve first-use order: walk scenarios, not a sorted set.
  for (const Scenario& s : scenarios) {
    prepare_kinds({s.dataset});
  }
  return ctx_;
}

int SweepRunner::effective_parallel(std::size_t n) const {
  return SweepEngine::effective_parallel(opts_, n);
}

ResultTable SweepRunner::run(const std::vector<Scenario>& scenarios,
                             const ScenarioFn& fn) {
  std::vector<FleetGrid> grids;
  grids.push_back(FleetGrid{store_, scenarios, fn});
  std::vector<ResultTable> tables = SweepEngine::run(
      opts_, ctx_, prepare_baselines_, on_baseline_, grids,
      /*labeled=*/false, schedule_, worker_stats_,
      /*external_queue=*/nullptr);
  return std::move(tables.front());
}

// ------------------------------------------------------------ FleetRunner

FleetRunner::FleetRunner(WorkloadOptions opts) : opts_(std::move(opts)) {
  ctx_.opts_ = opts_;
}

void FleetRunner::add_grid(FleetGrid grid) {
  if (grid.store.shard_count < 1 || grid.store.shard_index < 0 ||
      grid.store.shard_index >= grid.store.shard_count) {
    throw std::invalid_argument(
        "FleetRunner: shard index " + std::to_string(grid.store.shard_index) +
        " out of range for " + std::to_string(grid.store.shard_count) +
        " shard(s)");
  }
  if (!grid.fn) {
    throw std::invalid_argument("FleetRunner: grid '" + grid.store.bench +
                                "' has no scenario function");
  }
  grids_.push_back(std::move(grid));
}

std::vector<ResultTable> FleetRunner::run() {
  if (grids_.empty()) {
    throw std::logic_error("FleetRunner: no grids added");
  }
  return SweepEngine::run(opts_, ctx_, prepare_baselines_, on_baseline_,
                          grids_, /*labeled=*/true, schedule_,
                          worker_stats_, cell_queue_);
}

}  // namespace falvolt::core
