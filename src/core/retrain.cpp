#include "core/retrain.h"

#include <cmath>

#include "common/timer.h"
#include "snn/optimizer.h"

namespace falvolt::core {

MitigationResult run_fault_aware_retraining(
    snn::Network& net, const fault::FaultMap& map,
    const data::Dataset& train, const data::Dataset& test,
    const MitigationConfig& cfg, const std::string& method_name) {
  common::Timer timer;
  MitigationResult res;
  res.method = method_name;

  // Algorithm 1 lines 1-2: prune weights mapped to faulty PEs.
  fault::NetworkPruner pruner(net, map);
  pruner.apply(net);
  res.prune_report = pruner.report();
  res.pruned_accuracy = snn::evaluate(net, test);

  // Line 3: initialize the retraining threshold voltage on every hidden
  // spiking layer, and make it trainable for FalVolt only.
  for (snn::Plif* p : net.hidden_spiking_layers()) {
    p->set_vth(cfg.retrain_vth);
    p->set_train_vth(cfg.optimize_vth);
  }

  // Lines 4-13: BPTT retraining; pruned weights re-zeroed every epoch.
  snn::Adam opt(cfg.lr);
  snn::TrainConfig tc;
  tc.epochs = cfg.retrain_epochs;
  tc.batch_size = cfg.batch_size;
  tc.shuffle_seed = cfg.seed;
  tc.eval_each_epoch = cfg.eval_each_epoch;
  tc.post_epoch = [&pruner](snn::Network& n) { pruner.apply(n); };
  const int decay_epoch = static_cast<int>(cfg.lr_decay_fraction *
                                           cfg.retrain_epochs);
  tc.on_epoch = [&opt, &cfg, decay_epoch](const snn::EpochStats& s) {
    if (s.epoch + 1 == decay_epoch && cfg.lr_decay_factor > 1.0) {
      opt.set_lr(cfg.lr / cfg.lr_decay_factor);
    }
  };
  snn::Trainer trainer(net, opt, train, &test, tc);
  res.curve = trainer.run();

  // Line 15: final inference accuracy with the new weights.
  res.final_accuracy = snn::evaluate(net, test);
  res.best_accuracy = res.final_accuracy;
  for (const snn::EpochStats& s : res.curve) {
    if (!std::isnan(s.test_accuracy) && s.test_accuracy > res.best_accuracy) {
      res.best_accuracy = s.test_accuracy;
    }
  }
  res.vth_per_layer = collect_vth(net);
  net.set_train_vth(false);  // leave the network in inference state
  res.seconds = timer.seconds();
  return res;
}

}  // namespace falvolt::core
