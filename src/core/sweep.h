#pragma once
// Scenario-parallel sweep orchestration for the figure benches.
//
// Every figure in the paper is a grid of independent scenarios —
// threshold-voltage points x fault maps x datasets. SweepRunner executes
// such a grid concurrently on a compute::ThreadPool while keeping the
// result tables byte-identical to a serial run:
//
//  - The baseline model of each dataset is trained (or cache-loaded)
//    exactly once, serially, with full GEMM-level parallelism; every
//    scenario then works on an independent clone restored from the
//    immutable parameter snapshot.
//  - All randomness inside a scenario is seeded from the scenario itself
//    (its explicit `fault_seed`, or a stream derived from its `key` via
//    scenario_rng), never from shared mutable state, so results do not
//    depend on execution order or worker count.
//  - Scenario- and GEMM-level parallelism compose without oversubscribing
//    the machine: when scenarios run on pool workers, nested GEMM
//    parallel_for calls degrade to inline execution (see ThreadPool), so
//    a sweep uses `sweep_parallel` threads total; a serial sweep
//    (`sweep_parallel == 1`) keeps the full `threads`-wide GEMM pool.
//  - Results, per-scenario logs, and CSV rows are aggregated into a
//    thread-safe ResultTable and emitted in scenario order.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "fixed/stuck_bits.h"

namespace falvolt::core {

/// One cell of a figure's scenario grid. `key` must be unique within a
/// sweep; the typed fields carry the grid coordinates a bench's scenario
/// function needs (unused fields keep their defaults).
struct Scenario {
  std::string key;  ///< canonical id, e.g. "MNIST/rate=30/vth=0.45"
  std::string tag;  ///< free-form label (mitigation method, ablation arm)
  DatasetKind dataset = DatasetKind::kMnist;
  double vth = 0.0;          ///< threshold-voltage point (fig2)
  double fault_rate = 0.0;   ///< faulty-PE fraction (fig2/6/7, ablation)
  int fault_count = -1;      ///< absolute faulty-PE count (fig5a/b/c)
  int bit = -1;              ///< stuck bit position (fig5a)
  fx::StuckType stuck = fx::StuckType::kStuckAt1;  ///< stuck level (fig5a)
  int array_size = 0;        ///< NxN array override (fig5c); 0 = bench flag
  int repeat = 0;            ///< fault-map iteration index
  std::uint64_t fault_seed = 0;  ///< explicit fault-map RNG seed
  bool retrain = false;      ///< scenario runs a retraining mitigation
  int epochs = 0;            ///< retraining epochs when `retrain`
};

/// Deterministic seed derived from the scenario key and fault_seed
/// (FNV-1a over the key, splitmix64-finalized). Independent of scenario
/// order, worker count, and every other scenario in the grid.
std::uint64_t scenario_seed(const Scenario& s);

/// Fresh RNG stream for a scenario, seeded with scenario_seed().
common::Rng scenario_rng(const Scenario& s);

/// What one scenario produced. The scenario function fills metrics /
/// csv_rows / log; SweepRunner attaches the scenario and its wall time.
struct ScenarioResult {
  Scenario scenario;
  /// Ordered (name, value) pairs — the JSON summary and generic CSV
  /// columns. Names should be stable across scenarios of one sweep.
  std::vector<std::pair<std::string, double>> metrics;
  /// Rows for the bench's own CSV schema, emitted in scenario order.
  std::vector<std::vector<std::string>> csv_rows;
  /// Buffered console output, printed in scenario order after the sweep
  /// (so logs are deterministic under any worker count).
  std::string log;
  double seconds = 0.0;
};

/// Thread-safe, order-preserving aggregation of scenario results plus
/// CSV / JSON emission. Slot `i` belongs to scenario `i` of the sweep.
class ResultTable {
 public:
  ResultTable() : mu_(std::make_unique<std::mutex>()) {}
  explicit ResultTable(std::size_t n) : ResultTable() { rows_.resize(n); }

  /// Store `result` into slot `index` (thread-safe).
  void put(std::size_t index, ScenarioResult result);

  std::size_t size() const { return rows_.size(); }
  const ScenarioResult& at(std::size_t index) const;
  const std::vector<ScenarioResult>& rows() const { return rows_; }
  /// First result whose scenario key matches, or nullptr.
  const ScenarioResult* find(const std::string& key) const;
  /// Like find(), but throws std::out_of_range on a missing key — the
  /// lookup benches use to rebuild their tables, so a key-scheme edit
  /// fails loudly instead of silently transposing figure cells.
  const ScenarioResult& get(const std::string& key) const;

  /// Wall-clock of the whole sweep and the parallelism it ran at (set by
  /// SweepRunner; timing is reported in JSON only, never in CSV).
  double total_seconds() const { return total_seconds_; }
  int sweep_parallel() const { return sweep_parallel_; }

  /// Generic CSV: key,tag,dataset + one column per metric name (the
  /// union across all scenarios, first-seen order; a scenario missing a
  /// metric leaves an empty cell). Deterministic (contains no timings).
  std::string to_csv() const;

  /// Machine-readable summary in the same spirit as the GEMM tier
  /// sweep's JSON (bench name + per-entry metrics): bench name,
  /// parallelism, total wall-clock, and one entry per scenario with its
  /// key/tag/dataset/repeat/retrain/seconds/metrics.
  std::string to_json(const std::string& bench_name) const;
  void write_json(const std::string& path,
                  const std::string& bench_name) const;

 private:
  friend class SweepRunner;
  std::unique_ptr<std::mutex> mu_;
  std::vector<ScenarioResult> rows_;
  double total_seconds_ = 0.0;
  int sweep_parallel_ = 1;
  int threads_ = 0;
};

/// Shared immutable state scenarios read: per-dataset workloads (data +
/// trained baseline) and the parameter snapshots used for cloning.
class SweepContext {
 public:
  /// The prepared workload for `kind`; throws if it was never prepared.
  /// Read-only by design: scenarios share it and must mutate only their
  /// own clone_network() copies.
  const Workload& workload(DatasetKind kind) const;

  /// Dataset kinds prepared so far, in first-use order.
  const std::vector<DatasetKind>& kinds() const { return order_; }

  /// Independent copy of the trained baseline network for `kind`
  /// (rebuilds the architecture deterministically, then restores the
  /// trained parameter snapshot). Safe to call concurrently.
  snn::Network clone_network(DatasetKind kind) const;

 private:
  friend class SweepRunner;
  struct Baseline {
    Workload workload;
    std::vector<tensor::Tensor> snapshot;
  };
  WorkloadOptions opts_;
  std::map<DatasetKind, Baseline> baselines_;
  std::vector<DatasetKind> order_;
};

/// Executes a scenario grid, sharing baselines through a SweepContext.
class SweepRunner {
 public:
  /// Computes ScenarioResult for one scenario. Runs concurrently with
  /// other scenarios: it must only read the context (clone_network for a
  /// private network) and derive randomness from the scenario.
  using ScenarioFn =
      std::function<ScenarioResult(const Scenario&, const SweepContext&)>;

  explicit SweepRunner(WorkloadOptions opts);

  /// Train/load the baseline of every dataset appearing in `scenarios`
  /// (serial, full GEMM parallelism; each dataset prepared once).
  /// `on_baseline` — when set via set_on_baseline — observes each
  /// freshly prepared workload (benches print their baseline banner).
  const SweepContext& prepare(const std::vector<Scenario>& scenarios);

  void set_on_baseline(std::function<void(const Workload&)> cb) {
    on_baseline_ = std::move(cb);
  }

  /// Skip workload preparation entirely — for grids whose scenario
  /// function never touches a dataset or baseline network (pure cost
  /// models, wall-clock harnesses). clone_network/workload then throw.
  void set_prepare_baselines(bool enabled) {
    prepare_baselines_ = enabled;
  }

  /// Resolved scenario-level worker count for a grid of `n` scenarios:
  /// opts.sweep_parallel, with 0 meaning $FALVOLT_SWEEP_PARALLEL (else
  /// the hardware concurrency), clamped to [1, min(n, kMaxThreads)].
  int effective_parallel(std::size_t n) const;

  /// Run the grid. Prepares missing baselines, executes every scenario
  /// (concurrently when effective_parallel > 1), prints the buffered
  /// per-scenario logs in scenario order, and returns the filled table.
  /// A scenario that throws fails the sweep fast: no further scenarios
  /// are claimed (in-flight ones finish), then run() throws a
  /// runtime_error carrying every collected scenario error.
  ResultTable run(const std::vector<Scenario>& scenarios,
                  const ScenarioFn& fn);

  const SweepContext& context() const { return ctx_; }

 private:
  WorkloadOptions opts_;
  SweepContext ctx_;
  std::function<void(const Workload&)> on_baseline_;
  bool prepare_baselines_ = true;
};

}  // namespace falvolt::core
