#pragma once
// Scenario-parallel sweep orchestration for the figure benches.
//
// Every figure in the paper is a grid of independent scenarios —
// threshold-voltage points x fault maps x datasets. SweepRunner executes
// such a grid concurrently on a compute::ThreadPool while keeping the
// result tables byte-identical to a serial run:
//
//  - The baseline model of each dataset is trained (or cache-loaded)
//    exactly once, serially, with full GEMM-level parallelism; every
//    scenario then works on an independent clone restored from the
//    immutable parameter snapshot.
//  - All randomness inside a scenario is seeded from the scenario itself
//    (its explicit `fault_seed`, or a stream derived from its `key` via
//    scenario_rng), never from shared mutable state, so results do not
//    depend on execution order or worker count.
//  - Scenario- and GEMM-level parallelism compose without oversubscribing
//    the machine: when scenarios run on pool workers, nested GEMM
//    parallel_for calls degrade to inline execution (see ThreadPool), so
//    a sweep uses `sweep_parallel` threads total; a serial sweep
//    (`sweep_parallel == 1`) keeps the full `threads`-wide GEMM pool.
//  - Results, per-scenario logs, and CSV rows are aggregated into a
//    thread-safe ResultTable and emitted in scenario order.
//
// On top of that, a sweep can run against a persistent content-addressed
// result store, opened through the store::StoreApi interface as a
// layered chain: writable loose objects over the root's indexed
// segments, with optional read-only substituter stores behind them
// (store_api.h). Every cell is fingerprinted by
// everything that determines its output (see SweepRunner::fingerprint);
// a hit replays the stored result into the table, a miss computes and
// publishes it. Because a cell is only ever skipped when its fingerprint
// matches, cache hits are correct by construction — and re-running a
// killed sweep resumes with only the missing cells. A `shard i/n` spec
// partitions the grid deterministically for multi-machine runs whose
// stores are later unioned by the sweep_merge tool.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "fixed/stuck_bits.h"

namespace falvolt::core {

/// One cell of a figure's scenario grid. `key` must be unique within a
/// sweep; the typed fields carry the grid coordinates a bench's scenario
/// function needs (unused fields keep their defaults).
struct Scenario {
  std::string key;  ///< canonical id, e.g. "MNIST/rate=30/vth=0.45"
  std::string tag;  ///< free-form label (mitigation method, ablation arm)
  DatasetKind dataset = DatasetKind::kMnist;
  double vth = 0.0;          ///< threshold-voltage point (fig2)
  double fault_rate = 0.0;   ///< faulty-PE fraction (fig2/6/7, ablation)
  int fault_count = -1;      ///< absolute faulty-PE count (fig5a/b/c)
  int bit = -1;              ///< stuck bit position (fig5a)
  fx::StuckType stuck = fx::StuckType::kStuckAt1;  ///< stuck level (fig5a)
  int array_size = 0;        ///< NxN array override (fig5c); 0 = bench flag
  int repeat = 0;            ///< fault-map iteration index
  std::uint64_t fault_seed = 0;  ///< explicit fault-map RNG seed
  bool retrain = false;      ///< scenario runs a retraining mitigation
  int epochs = 0;            ///< retraining epochs when `retrain`
  /// Estimated compute cost of this cell in abstract units (an eval cell
  /// is ~1). Scheduling metadata ONLY: drives the cost-ordered work
  /// queue, never enters the cell fingerprint or the stored record (two
  /// scenarios differing only in cost_hint are the same cell). 0 lets
  /// scenario_cost_estimate() derive a default from retrain/epochs;
  /// grids with better knowledge (e.g. fig5c's array-size-dependent
  /// eval latency from systolic::cost_model) tag cells explicitly.
  double cost_hint = 0.0;
};

/// Estimated cost of one cell in abstract units: the explicit cost_hint
/// when set, else ~1 for an eval cell and kRetrainCostPerEpoch per
/// retraining epoch (a retrain cell costs orders of magnitude more than
/// an eval cell — the queue must drain retrains first or a late retrain
/// claim strands one worker long after the rest of the fleet idles).
inline constexpr double kRetrainCostPerEpoch = 100.0;
double scenario_cost_estimate(const Scenario& s);

/// How the cross-bench work queue is ordered before workers claim cells.
/// Either way the claim counter is shared (work stealing across grids)
/// and tables are emitted in grid order, so results are byte-identical —
/// only the fleet tail differs.
enum class SchedulePolicy {
  kCostOrdered,   ///< most expensive cells first (default)
  kClaimOrdered,  ///< legacy grid-major add order
};

/// Parse "cost" / "claim"; throws std::invalid_argument otherwise.
SchedulePolicy parse_schedule_policy(const std::string& name);
const char* schedule_policy_name(SchedulePolicy policy);

/// Per-worker accounting of one sweep/fleet run: how many cells worker
/// `i` claimed and how long it was busy computing them. busy_seconds /
/// the run's total_seconds is that worker's utilization — the fleet
/// tail shows up as one worker near 1.0 while the rest idle.
struct WorkerStats {
  std::size_t cells = 0;
  double busy_seconds = 0.0;
};

/// Deterministic seed derived from the scenario key and fault_seed
/// (FNV-1a over the key, splitmix64-finalized). Independent of scenario
/// order, worker count, and every other scenario in the grid.
std::uint64_t scenario_seed(const Scenario& s);

/// Fresh RNG stream for a scenario, seeded with scenario_seed().
common::Rng scenario_rng(const Scenario& s);

/// Where, when, and by which build a cell was computed. Stamped by the
/// sweep engine when the scenario function returns, stored in the
/// record, and replayed byte-for-byte from the store on warm runs —
/// fleet-debugging metadata that never enters a figure table (CSV) and
/// never contributes to a cell fingerprint.
struct Provenance {
  std::string host;     ///< hostname of the machine that computed the cell
  std::string version;  ///< falvolt version string of the computing build
  std::uint64_t unix_time = 0;  ///< wall clock (s since epoch) at compute
  std::uint32_t store_epoch = 0;  ///< store format epoch the record was written under
};

/// What one scenario produced. The scenario function fills metrics /
/// csv_rows / log; SweepRunner attaches the scenario, its store
/// fingerprint, its wall time, and the compute provenance.
struct ScenarioResult {
  Scenario scenario;
  /// Content-address of this cell in the result store (64 hex chars);
  /// empty when the sweep ran without a store.
  std::string fingerprint;
  /// Ordered (name, value) pairs — the JSON summary and generic CSV
  /// columns. Names should be stable across scenarios of one sweep.
  std::vector<std::pair<std::string, double>> metrics;
  /// Rows for the bench's own CSV schema, emitted in scenario order.
  std::vector<std::vector<std::string>> csv_rows;
  /// Buffered console output, printed in scenario order after the sweep
  /// (so logs are deterministic under any worker count).
  std::string log;
  /// Compute wall time of this cell. Replayed cells carry the seconds
  /// recorded when the cell was originally computed, so a warm re-run
  /// reproduces the cold run's per-cell timings byte for byte.
  double seconds = 0.0;
  /// Who computed this cell (replayed from the record like `seconds`).
  Provenance provenance;
};

/// Serialize a ScenarioResult into the store's payload bytes. The frame
/// is length-prefixed throughout; decode validates every length against
/// the remaining bytes and returns false on any malformation (the store
/// then treats the record as a miss — recompute, never throw).
std::string encode_scenario_result(const ScenarioResult& result);
bool decode_scenario_result(const std::string& bytes, ScenarioResult& out);

/// How a sweep uses the persistent result store.
struct SweepStoreOptions {
  /// Store spec — "local:<dir>", "segment:<dir>", or a bare directory
  /// path (see store::parse_store_spec); empty disables the store
  /// entirely. A read-only spec (segment:) can only replay cells, never
  /// publish: a sweep against one fails if any owned cell still needs
  /// computing.
  std::string dir;
  /// Grid owner — the bench name; part of every cell fingerprint.
  std::string bench;
  /// Bench configuration that affects cell values (flag name/value
  /// pairs, canonical text). Execution-only knobs (threads, parallelism,
  /// output paths, shard spec) must NOT be listed: they would split the
  /// cache without changing any result.
  std::vector<std::pair<std::string, std::string>> config;
  /// Read-only substituter store roots consulted (in order) behind the
  /// local store: a cell computed elsewhere replays from the first
  /// substituter that has it, exactly like a local hit. Substituters
  /// are never written to and must already exist (store::open_store
  /// throws on a missing one). Execution-only: reads through the chain
  /// are fingerprint-addressed, so WHERE a record came from cannot
  /// change any result — the flag stays out of cell fingerprints.
  std::vector<std::string> substituters;
  /// Replay cells already present in the store (true) or recompute and
  /// overwrite them (false).
  bool resume = true;
  /// Deterministic grid partition: this run computes the cells
  /// shard_partition() assigns to shard_index (cost-balanced greedy LPT
  /// over the static cost estimates — NOT index-modulo, so a shard's
  /// share of retrain cells matches its share of total cost). Cached
  /// cells of other shards are still replayed when available.
  int shard_index = 0;
  int shard_count = 1;
};

/// Parse a "i/n" shard spec (e.g. "0/4") into {index, count}. An empty
/// spec means the whole grid ({0, 1}). Throws std::invalid_argument on
/// malformed specs or i >= n.
std::pair<int, int> parse_shard_spec(const std::string& spec);

/// Cost-balanced deterministic grid partition: owner shard of every grid
/// index, by greedy LPT (longest-processing-time) over `costs` — walk
/// the cells most-expensive-first (stable: equal costs keep index order)
/// and assign each to the shard with the smallest cumulative cost so far
/// (ties to the lowest shard id). With equal costs this degenerates to
/// round-robin (index % shard_count); with skewed costs no shard ends up
/// more than ~4/3 of the optimal max load (the classic LPT bound), where
/// index-modulo can be arbitrarily unbalanced. Deterministic in `costs`
/// alone, and every shard MUST derive costs from the same static
/// scenario_cost_estimate() so independently launched shards agree on
/// the partition — never from store-refined timings, which differ per
/// machine.
std::vector<int> shard_partition(const std::vector<double>& costs,
                                 int shard_count);

/// Content-address of one cell: SHA-256 over the store format epoch,
/// the bench name, the bench config, the workload identity
/// (dataset/fast/seed), and every result-affecting Scenario field
/// (cost_hint is scheduling metadata and deliberately excluded).
/// Anything that can change the cell's output is in here — a hit is
/// therefore safe to replay — and nothing execution-only is (thread
/// counts, shard spec, output paths, queue order), so reruns on other
/// machines still hit. Shared by SweepRunner, FleetRunner, and the
/// shard-planning listings, so a bench run standalone and the same
/// grid run by the fleet driver address identical cells.
std::string fingerprint_cell(const SweepStoreOptions& store,
                             const WorkloadOptions& opts, const Scenario& s);

struct SweepEngine;  // internal executor shared by SweepRunner/FleetRunner
class FleetRunner;

/// Where a sweep's workers get their next cell. The engine's built-in
/// queue (a cost-sorted vector drained through one atomic counter) is
/// the in-process default; the fleet daemon's socket-fed workers install
/// a fleet::SocketCellQueue instead — the engine's triage, baseline
/// sharing, compute, publish, and accounting paths are identical either
/// way, which is what keeps daemon-fed and in-process runs
/// byte-identical.
class CellQueue {
 public:
  /// One claimed cell: which added grid, which grid-local scenario
  /// index, and the cost estimate that scheduled it.
  struct Claim {
    int grid = 0;
    int index = 0;
    double cost = 0.0;
  };

  virtual ~CellQueue() = default;

  /// Next cell for worker slot `worker`, or nullopt when the queue is
  /// drained (the worker then exits its claim loop). May block (the
  /// socket queue waits on the daemon). Must be callable concurrently
  /// from several worker slots.
  virtual std::optional<Claim> claim(int worker) = 0;

  /// The claimed cell's record is durably published (cached=false) or
  /// was found already published by someone else (cached=true — the
  /// at-least-once re-check hit). Either way the cell is done.
  virtual void complete(const Claim& claim, bool cached,
                        double seconds) = 0;

  /// The claimed cell's scenario function threw. The engine still fails
  /// the sweep fast afterwards; an external queue uses this to tell the
  /// scheduler before the process exits.
  virtual void fail(const Claim& claim, const std::string& error) = 0;

  /// True when claims come from an external scheduler that may deliver
  /// a cell more than once (at-least-once: a worker killed after
  /// publishing but before reporting gets its in-flight cell re-queued).
  /// The engine then re-checks the store before computing every claim,
  /// so duplicate delivery replays the paid-for record instead of
  /// recomputing it.
  virtual bool at_least_once() const = 0;
};

/// Thread-safe, order-preserving aggregation of scenario results plus
/// CSV / JSON emission. Slot `i` belongs to scenario `i` of the sweep.
/// Each slot tracks its provenance: computed this run, replayed from
/// the store, or absent (owned by another shard and not yet cached).
class ResultTable {
 public:
  ResultTable() : mu_(std::make_unique<std::mutex>()) {}
  explicit ResultTable(std::size_t n) : ResultTable() {
    rows_.resize(n);
    state_.assign(n, kAbsent);
  }

  /// Store a freshly computed `result` into slot `index` (thread-safe).
  void put(std::size_t index, ScenarioResult result);
  /// Store a result replayed from the store into slot `index`.
  void put_cached(std::size_t index, ScenarioResult result);

  std::size_t size() const { return rows_.size(); }
  const ScenarioResult& at(std::size_t index) const;
  const std::vector<ScenarioResult>& rows() const { return rows_; }
  /// First filled result whose scenario key matches, or nullptr.
  const ScenarioResult* find(const std::string& key) const;
  /// Like find(), but throws std::out_of_range on a missing key — the
  /// lookup benches use to rebuild their tables, so a key-scheme edit
  /// (or aggregating a shard-partial table) fails loudly instead of
  /// silently transposing figure cells.
  const ScenarioResult& get(const std::string& key) const;

  /// Slot provenance.
  bool is_filled(std::size_t index) const;
  bool is_cached(std::size_t index) const;
  /// True when every slot is filled — i.e. this table is the full grid,
  /// not one shard's slice. Benches aggregate only complete tables.
  bool complete() const;
  std::size_t computed_cells() const { return count(kComputed); }
  std::size_t cached_cells() const { return count(kCached); }
  std::size_t absent_cells() const { return count(kAbsent); }

  /// Wall-clock of the whole sweep and the parallelism it ran at (set by
  /// SweepRunner; timing is reported in JSON only, never in CSV).
  double total_seconds() const { return total_seconds_; }
  int sweep_parallel() const { return sweep_parallel_; }
  int shard_index() const { return shard_index_; }
  int shard_count() const { return shard_count_; }

  /// Generic CSV: key,tag,dataset + one column per metric name (the
  /// union across all filled scenarios, first-seen order; a scenario
  /// missing a metric leaves an empty cell). Absent slots are skipped.
  /// Fields are RFC-4180-escaped. Deterministic (contains no timings).
  std::string to_csv() const;

  /// Machine-readable summary. The per-scenario entries are fully
  /// deterministic for a given set of computed values (replayed cells
  /// reproduce their original compute seconds), while everything
  /// run-specific — parallelism, total wall-clock, shard spec, and the
  /// cache-hit/computed accounting — lives in a single-line "run"
  /// object, so warm/cold runs of one grid can be diffed by dropping
  /// that one line.
  std::string to_json(const std::string& bench_name) const;
  void write_json(const std::string& path,
                  const std::string& bench_name) const;

 private:
  friend class SweepRunner;
  friend struct SweepEngine;
  enum SlotState : char { kAbsent = 0, kComputed = 1, kCached = 2 };

  void set_slot(std::size_t index, ScenarioResult result, SlotState state);
  std::size_t count(SlotState state) const;

  std::unique_ptr<std::mutex> mu_;
  std::vector<ScenarioResult> rows_;
  std::vector<char> state_;
  double total_seconds_ = 0.0;
  int sweep_parallel_ = 1;
  int threads_ = 0;
  int shard_index_ = 0;
  int shard_count_ = 1;
};

/// Shared immutable state scenarios read: per-dataset workloads (data +
/// trained baseline) and the parameter snapshots used for cloning.
class SweepContext {
 public:
  /// The prepared workload for `kind`; throws if it was never prepared.
  /// Read-only by design: scenarios share it and must mutate only their
  /// own clone_network() copies.
  const Workload& workload(DatasetKind kind) const;

  /// Dataset kinds prepared so far, in first-use order.
  const std::vector<DatasetKind>& kinds() const { return order_; }

  /// Independent copy of the trained baseline network for `kind`
  /// (rebuilds the architecture deterministically, then restores the
  /// trained parameter snapshot). Safe to call concurrently.
  snn::Network clone_network(DatasetKind kind) const;

 private:
  friend class SweepRunner;
  friend class FleetRunner;
  friend struct SweepEngine;
  struct Baseline {
    Workload workload;
    std::vector<tensor::Tensor> snapshot;
  };
  WorkloadOptions opts_;
  std::map<DatasetKind, Baseline> baselines_;
  std::vector<DatasetKind> order_;
};

/// Executes a scenario grid, sharing baselines through a SweepContext.
class SweepRunner {
 public:
  /// Computes ScenarioResult for one scenario. Runs concurrently with
  /// other scenarios: it must only read the context (clone_network for a
  /// private network) and derive randomness from the scenario.
  using ScenarioFn =
      std::function<ScenarioResult(const Scenario&, const SweepContext&)>;

  explicit SweepRunner(WorkloadOptions opts);

  /// Train/load the baseline of every dataset appearing in `scenarios`
  /// (serial, full GEMM parallelism; each dataset prepared once).
  /// run() prepares lazily — only the datasets of cells it actually
  /// computes — so calling this up front forfeits the store's
  /// zero-work warm re-runs; prefer building dataset-dependent state
  /// lazily inside the scenario function (bench::EvalSets).
  const SweepContext& prepare(const std::vector<Scenario>& scenarios);

  void set_on_baseline(std::function<void(const Workload&)> cb) {
    on_baseline_ = std::move(cb);
  }

  /// Skip workload preparation entirely — for grids whose scenario
  /// function never touches a dataset or baseline network (pure cost
  /// models, wall-clock harnesses). clone_network/workload then throw.
  void set_prepare_baselines(bool enabled) {
    prepare_baselines_ = enabled;
  }

  /// Attach the persistent result store / shard spec. Must be set
  /// before run(). An empty dir leaves the sweep store-less.
  void set_store(SweepStoreOptions store);
  const SweepStoreOptions& store() const { return store_; }

  /// Work-queue ordering (default: cost-ordered). Tables are
  /// byte-identical either way; see SchedulePolicy.
  void set_schedule(SchedulePolicy policy) { schedule_ = policy; }
  SchedulePolicy schedule() const { return schedule_; }

  /// Per-worker accounting of the last run() (empty before any run).
  const std::vector<WorkerStats>& worker_stats() const {
    return worker_stats_;
  }

  /// Content-address of one cell: SHA-256 over the store format epoch,
  /// the bench name, the bench config, the workload identity
  /// (dataset/fast/seed), and every Scenario field. Anything that can
  /// change the cell's output is in here — a hit is therefore safe to
  /// replay — and nothing execution-only is (thread counts, shard spec,
  /// output paths), so reruns on other machines still hit.
  std::string fingerprint(const Scenario& s) const;

  /// Resolved scenario-level worker count for a grid of `n` scenarios:
  /// opts.sweep_parallel, with 0 meaning $FALVOLT_SWEEP_PARALLEL (else
  /// the hardware concurrency), clamped to [1, min(n, kMaxThreads)].
  int effective_parallel(std::size_t n) const;

  /// Run the grid. Replays every store hit, prepares the baselines of
  /// the datasets that still have cells to compute, executes those
  /// cells (concurrently when effective_parallel > 1) and publishes
  /// each to the store, writes the grid manifest, prints the buffered
  /// per-scenario logs in scenario order, and returns the filled table
  /// (complete unless sharded with uncached foreign cells).
  /// A scenario that throws fails the sweep fast: no further scenarios
  /// are claimed (in-flight ones finish), then run() throws a
  /// runtime_error carrying every collected scenario error.
  ResultTable run(const std::vector<Scenario>& scenarios,
                  const ScenarioFn& fn);

  const SweepContext& context() const { return ctx_; }

 private:
  friend struct SweepEngine;
  void prepare_kinds(const std::set<DatasetKind>& kinds);

  WorkloadOptions opts_;
  SweepContext ctx_;
  SweepStoreOptions store_;
  std::function<void(const Workload&)> on_baseline_;
  bool prepare_baselines_ = true;
  SchedulePolicy schedule_ = SchedulePolicy::kCostOrdered;
  std::vector<WorkerStats> worker_stats_;
};

/// One bench's contribution to a fleet sweep: its store identity
/// (bench name + fingerprint config + shard spec), its scenario grid,
/// and its scenario function. The function must have been built against
/// the FleetRunner's context() so baselines prepared by the fleet are
/// the ones it clones from.
struct FleetGrid {
  SweepStoreOptions store;
  std::vector<Scenario> scenarios;
  SweepRunner::ScenarioFn fn;
};

/// Executes SEVERAL benches' grids as one cross-bench work queue.
///
/// Where SweepRunner sweeps one figure's grid, FleetRunner unions the
/// cells of every added grid into a single work-stealing queue, ordered
/// most-expensive-first by default (SchedulePolicy): retrain cells are
/// claimed while the cheap evals still cover the other workers, so a
/// heterogeneous fleet no longer strands one worker on a late retrain
/// cell after everyone else drained the queue. All grids
/// share one SweepContext, so a dataset baseline is trained (or cache-
/// loaded) once per fleet run no matter how many grids need it — and
/// every cell is fingerprinted exactly as its owning bench would
/// standalone (same bench name, config, and workload identity), so the
/// shared store is interchangeable between fleet and per-bench runs:
/// cells computed by the fleet replay in the bench, and vice versa.
/// Per-grid shard specs are honored (shard_partition assigns each cell
/// a cost-balanced owner), so a fleet can itself be sharded across
/// machines and merged with sweep_merge like any other sweep.
class FleetRunner {
 public:
  /// `opts.sweep_parallel` is the fleet-wide worker count (resolved via
  /// SweepRunner::effective_parallel semantics at run()).
  explicit FleetRunner(WorkloadOptions opts);

  /// Shared baseline context — build each grid's scenario function
  /// against this (it is valid for the lifetime of the runner and
  /// populated lazily during run()).
  const SweepContext& context() const { return ctx_; }

  void set_on_baseline(std::function<void(const Workload&)> cb) {
    on_baseline_ = std::move(cb);
  }
  /// Skip workload preparation (grids whose scenario functions never
  /// touch a dataset or baseline network).
  void set_prepare_baselines(bool enabled) { prepare_baselines_ = enabled; }

  /// Work-queue ordering (default: cost-ordered — a heterogeneous fleet
  /// claims its retrain cells first so no worker strands on a late
  /// expensive cell). Tables are byte-identical either way.
  void set_schedule(SchedulePolicy policy) { schedule_ = policy; }
  SchedulePolicy schedule() const { return schedule_; }

  /// Per-worker accounting of the last run() (empty before any run).
  const std::vector<WorkerStats>& worker_stats() const {
    return worker_stats_;
  }

  /// Replace the engine's built-in work queue with an external one (the
  /// fleet daemon's socket queue). `queue` must outlive run(); nullptr
  /// restores the built-in queue. With an external queue the engine
  /// still triages and replays cached cells itself, but computes only
  /// the cells the queue hands it — and re-checks the store before each
  /// when the queue is at_least_once().
  void set_cell_queue(CellQueue* queue) { cell_queue_ = queue; }

  /// Register one grid. Scenario keys must be unique within a grid
  /// (validated at run(); across grids the bench name disambiguates).
  void add_grid(FleetGrid grid);
  std::size_t grid_count() const { return grids_.size(); }

  /// Run every grid's cells through one work-stealing queue, sharing
  /// baselines, replaying store hits, and publishing computed records +
  /// each grid's manifest. Returns one filled table per grid, in
  /// add_grid order. Error semantics match SweepRunner::run (fail-fast,
  /// aggregated runtime_error with errors prefixed by bench name).
  std::vector<ResultTable> run();

 private:
  friend struct SweepEngine;

  WorkloadOptions opts_;
  SweepContext ctx_;
  std::vector<FleetGrid> grids_;
  std::function<void(const Workload&)> on_baseline_;
  bool prepare_baselines_ = true;
  SchedulePolicy schedule_ = SchedulePolicy::kCostOrdered;
  CellQueue* cell_queue_ = nullptr;
  std::vector<WorkerStats> worker_stats_;
};

}  // namespace falvolt::core
