#pragma once
// Experiment harness shared by the figure benches and examples: builds a
// dataset + matching paper architecture, trains the baseline model, and
// caches the trained weights on disk so the whole bench suite pays the
// baseline-training cost only once per dataset.

#include <string>

#include "data/dataset.h"
#include "snn/model_zoo.h"
#include "snn/network.h"

namespace falvolt::core {

/// Which of the paper's three workloads to build.
enum class DatasetKind { kMnist, kNMnist, kDvsGesture };

const char* dataset_name(DatasetKind kind);

/// A ready-to-experiment workload: data, trained baseline network, and
/// the baseline accuracy prior to any fault injection.
struct Workload {
  DatasetKind kind;
  data::DatasetSplit data;
  snn::Network net;
  double baseline_accuracy = 0.0;
  int baseline_epochs = 0;
};

/// Sentinel for WorkloadOptions::cache_dir meaning "not set explicitly":
/// resolve via $FALVOLT_CACHE_DIR, else "falvolt_cache" in the CWD.
inline constexpr const char* kDefaultCacheDir = "__default__";

/// Scaling knobs (FALVOLT_FAST shrinks everything ~2-4x).
struct WorkloadOptions {
  bool fast = false;
  std::uint64_t seed = 7;
  /// Directory for cached baseline weights. The kDefaultCacheDir sentinel
  /// defers to $FALVOLT_CACHE_DIR (else "falvolt_cache"); an explicit
  /// empty string disables caching entirely.
  std::string cache_dir = kDefaultCacheDir;
  /// Retrain the baseline even if a cache entry exists.
  bool ignore_cache = false;
  /// Worker threads for the compute backend (applied to the global pool
  /// before training): 0 keeps the current pool ($FALVOLT_THREADS or the
  /// hardware concurrency on first use).
  int threads = 0;
  /// Concurrent scenarios for core::SweepRunner: 1 runs the grid
  /// serially (GEMM-level parallelism stays fully available), N > 1 runs
  /// N scenarios at a time with their GEMMs inlined on the scenario
  /// worker (so scenario- and GEMM-level parallelism never oversubscribe
  /// the machine), and 0 picks $FALVOLT_SWEEP_PARALLEL or the hardware
  /// concurrency.
  int sweep_parallel = 1;
};

/// Resolve the effective cache directory from `opts` (see cache_dir);
/// returns an empty string when caching is disabled.
std::string resolve_cache_dir(const WorkloadOptions& opts);

/// Canonical identity of a prepared workload: the dataset plus every
/// WorkloadOptions field that changes the data or the trained baseline
/// (fast scaling, seed). Execution knobs (threads, sweep_parallel,
/// cache location) are deliberately absent — they never change results.
/// This string is one of the fields a scenario's store fingerprint
/// hashes, so editing what it covers invalidates affected cache entries.
std::string workload_id(DatasetKind kind, const WorkloadOptions& opts);

/// Path of the cached baseline-weights file inside `cache_dir`.
std::string baseline_cache_file(const std::string& cache_dir,
                                DatasetKind kind, bool fast,
                                std::uint64_t seed);

/// Build the dataset, construct the paper architecture, and train (or
/// load) the baseline model.
Workload prepare_workload(DatasetKind kind, const WorkloadOptions& opts = {});

/// Construct the (untrained) paper architecture for `kind` on `train`
/// with deterministic initialization. Restoring a snapshot taken from a
/// prepare_workload() network onto this yields an independent clone of
/// the trained baseline — the per-scenario copy SweepRunner hands out.
snn::Network build_network(DatasetKind kind, const data::Dataset& train,
                           std::uint64_t seed);

/// Default number of retraining epochs used by the mitigation figures
/// for this workload (DVS needs more, as in the paper).
int default_retrain_epochs(DatasetKind kind, bool fast);

/// Serialize all network parameters to a flat binary file.
void save_params(snn::Network& net, const std::string& path);

/// Load parameters saved by save_params. Returns false — meaning "no
/// usable cache, retrain" — if the file is missing, has a bad header, or
/// is corrupt/truncated (every length field is validated against the
/// remaining file bytes before it is trusted). The load is atomic: on
/// any failure the network's parameters are left untouched, so a
/// subsequent retrain starts from the pristine initialization. Throws
/// only when a structurally valid file disagrees with the network's
/// parameter inventory (that is a caller bug, not cache rot).
bool load_params(snn::Network& net, const std::string& path);

}  // namespace falvolt::core
