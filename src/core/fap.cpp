#include "core/fap.h"

#include "common/timer.h"

namespace falvolt::core {

MitigationResult run_fap(snn::Network& net, const fault::FaultMap& map,
                         const data::Dataset& test) {
  common::Timer timer;
  MitigationResult res;
  res.method = "FaP";
  fault::NetworkPruner pruner(net, map);
  pruner.apply(net);
  res.prune_report = pruner.report();
  res.pruned_accuracy = snn::evaluate(net, test);
  res.final_accuracy = res.pruned_accuracy;
  res.vth_per_layer = collect_vth(net);
  res.seconds = timer.seconds();
  return res;
}

}  // namespace falvolt::core
