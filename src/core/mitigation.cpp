#include "core/mitigation.h"

namespace falvolt::core {

int MitigationResult::epochs_to_reach(double target) const {
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].test_accuracy >= target) return static_cast<int>(i) + 1;
  }
  return -1;
}

double evaluate_with_faults(snn::Network& net, const data::Dataset& test,
                            const systolic::ArrayConfig& array,
                            const fault::FaultMap& map,
                            systolic::SystolicGemmEngine::FaultHandling
                                handling) {
  systolic::SystolicGemmEngine engine(array, &map, handling);
  net.set_gemm_engine(&engine);
  const double acc = snn::evaluate(net, test);
  net.set_gemm_engine(nullptr);
  return acc;
}

double evaluate_with_faults(snn::Network& net, const snn::EvalBatch& test,
                            const systolic::ArrayConfig& array,
                            const fault::FaultMap& map,
                            systolic::SystolicGemmEngine::FaultHandling
                                handling) {
  systolic::SystolicGemmEngine engine(array, &map, handling);
  net.set_gemm_engine(&engine);
  const double acc = snn::evaluate(net, test);
  net.set_gemm_engine(nullptr);
  return acc;
}

std::vector<VthEntry> collect_vth(snn::Network& net) {
  std::vector<VthEntry> out;
  for (snn::Plif* p : net.hidden_spiking_layers()) {
    out.push_back(VthEntry{p->name(), p->vth()});
  }
  return out;
}

}  // namespace falvolt::core
