#pragma once
// Fault-aware pruning (FaP): the baseline mitigation. Weights mapped to
// faulty PEs are set to zero (the software view of the hardware bypass)
// and the network is evaluated as-is — no retraining. Equivalent to
// running Algorithm 1 with zero retraining epochs, as the paper notes.

#include "core/mitigation.h"

namespace falvolt::core {

/// Prune `net` in place against `map` and evaluate on `test`.
MitigationResult run_fap(snn::Network& net, const fault::FaultMap& map,
                         const data::Dataset& test);

}  // namespace falvolt::core
