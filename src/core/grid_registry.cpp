#include "core/grid_registry.h"

#include <stdexcept>

namespace falvolt::core {

GridRegistry& GridRegistry::instance() {
  static GridRegistry registry;
  return registry;
}

void GridRegistry::add(GridDef def) {
  if (def.name.empty()) {
    throw std::logic_error("GridRegistry: grid needs a name");
  }
  if (!def.add_flags || !def.scenarios || !def.scenario_fn) {
    throw std::logic_error("GridRegistry: grid '" + def.name +
                           "' is missing a callback");
  }
  if (find(def.name)) {
    throw std::logic_error("GridRegistry: duplicate grid '" + def.name + "'");
  }
  defs_.push_back(std::move(def));
}

const GridDef* GridRegistry::find(const std::string& name) const {
  for (const GridDef& def : defs_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

const GridDef& GridRegistry::get(const std::string& name) const {
  const GridDef* def = find(name);
  if (def) return *def;
  std::string known;
  for (const GridDef& d : defs_) {
    known += known.empty() ? "" : ", ";
    known += d.name;
  }
  throw std::out_of_range("GridRegistry: no grid '" + name +
                          "' (registered: " +
                          (known.empty() ? "<none>" : known) + ")");
}

std::vector<std::string> GridRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const GridDef& def : defs_) out.push_back(def.name);
  return out;
}

}  // namespace falvolt::core
