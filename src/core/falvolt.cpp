#include "core/falvolt.h"

#include <cstdio>

#include "core/retrain.h"

namespace falvolt::core {

MitigationResult run_falvolt(snn::Network& net, const fault::FaultMap& map,
                             const data::Dataset& train,
                             const data::Dataset& test,
                             MitigationConfig cfg) {
  cfg.optimize_vth = true;
  return run_fault_aware_retraining(net, map, train, test, cfg, "FalVolt");
}

MitigationResult run_fapit(snn::Network& net, const fault::FaultMap& map,
                           const data::Dataset& train,
                           const data::Dataset& test, MitigationConfig cfg) {
  cfg.optimize_vth = false;
  return run_fault_aware_retraining(net, map, train, test, cfg, "FaPIT");
}

MitigationResult run_fixed_vth_retraining(snn::Network& net,
                                          const fault::FaultMap& map,
                                          const data::Dataset& train,
                                          const data::Dataset& test,
                                          MitigationConfig cfg,
                                          float fixed_vth) {
  cfg.optimize_vth = false;
  cfg.retrain_vth = fixed_vth;
  char label[64];
  std::snprintf(label, sizeof(label), "retrain@vth=%.2f", fixed_vth);
  return run_fault_aware_retraining(net, map, train, test, cfg, label);
}

}  // namespace falvolt::core
