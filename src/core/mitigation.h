#pragma once
// Shared types of the mitigation pipelines (FaP / FaPIT / FalVolt).

#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "fault/fault_map.h"
#include "fault/prune_mask.h"
#include "snn/network.h"
#include "snn/trainer.h"
#include "systolic/faulty_gemm.h"
#include "systolic/mapping.h"

namespace falvolt::core {

/// Configuration shared by the retraining-based mitigations.
struct MitigationConfig {
  systolic::ArrayConfig array;
  int retrain_epochs = 8;
  int batch_size = 32;
  double lr = 1e-2;
  /// Learning rate is divided by `lr_decay_factor` after
  /// `lr_decay_fraction` of the epochs (stabilizes the final epochs).
  double lr_decay_factor = 4.0;
  double lr_decay_fraction = 0.6;
  std::uint64_t seed = 11;
  /// true  -> FalVolt: learn a per-layer V_th during retraining;
  /// false -> FaPIT: V_th frozen at `retrain_vth`.
  bool optimize_vth = true;
  /// Initial (FalVolt) or fixed (FaPIT / Fig. 2 sweep) threshold voltage
  /// applied to all hidden spiking layers before retraining.
  float retrain_vth = 1.0f;
  bool eval_each_epoch = true;
};

/// Optimized threshold voltage of one layer (paper Fig. 6).
struct VthEntry {
  std::string layer;
  float vth = 0.0f;
};

/// Outcome of a mitigation run.
struct MitigationResult {
  std::string method;
  /// Accuracy of the unmitigated faulty chip (corrupting PEs); NaN unless
  /// explicitly measured via evaluate_with_faults().
  double faulty_accuracy = std::numeric_limits<double>::quiet_NaN();
  /// Accuracy right after fault-aware pruning, before any retraining
  /// (this *is* the FaP result).
  double pruned_accuracy = 0.0;
  /// Accuracy after the full mitigation (last epoch's weights).
  double final_accuracy = 0.0;
  /// Best test accuracy seen across retraining epochs (the checkpoint a
  /// deployment flow would keep). Equals final_accuracy when per-epoch
  /// evaluation is disabled or for FaP.
  double best_accuracy = 0.0;
  /// Per-epoch convergence curve (empty for FaP).
  std::vector<snn::EpochStats> curve;
  /// Weights pruned per layer.
  std::vector<fault::LayerPruneReport> prune_report;
  /// Final V_th per hidden spiking layer.
  std::vector<VthEntry> vth_per_layer;
  double seconds = 0.0;

  /// First epoch (1-based) whose test accuracy reaches `target`
  /// (percent), or -1 if never reached. Used for the paper's "2x fewer
  /// epochs" claim (Fig. 8).
  int epochs_to_reach(double target) const;
};

/// Evaluate a network on a chip whose faulty PEs actively corrupt
/// partial sums (unmitigated) or are bypassed (mitigated), by routing all
/// matmul layers through the fixed-point systolic engine. The float
/// engine is restored before returning.
double evaluate_with_faults(snn::Network& net, const data::Dataset& test,
                            const systolic::ArrayConfig& array,
                            const fault::FaultMap& map,
                            systolic::SystolicGemmEngine::FaultHandling
                                handling);

/// Batched-eval variant: same semantics over a prebuilt whole-set
/// EvalBatch (bench::EvalSets shares one per dataset across an entire
/// scenario grid), so one engine plan + fault schedule is amortized
/// across every test sample of the cell. Bit-identical to the Dataset
/// overload on the same samples.
double evaluate_with_faults(snn::Network& net, const snn::EvalBatch& test,
                            const systolic::ArrayConfig& array,
                            const fault::FaultMap& map,
                            systolic::SystolicGemmEngine::FaultHandling
                                handling);

/// Read the current V_th of every hidden spiking layer.
std::vector<VthEntry> collect_vth(snn::Network& net);

}  // namespace falvolt::core
