#pragma once
// FalVolt and FaPIT entry points — the paper's proposed mitigation and
// its strongest conventional baseline.
//
// FalVolt (fault-aware threshold voltage optimization in retraining):
// after bypass-pruning the weights mapped to faulty PEs, the surviving
// weights are retrained with BPTT while *each layer's threshold voltage
// is itself learned* through the surrogate-gradient chain rule (paper
// Eqs. 2-4). Learning V_th makes the retraining far less sensitive to the
// post-pruning activation statistics, which is what lets it reach the
// baseline accuracy at up to 60% faulty PEs in about half the epochs of
// FaPIT (paper Figs. 7-8).
//
// FaPIT (fault-aware pruning with retraining) is identical except V_th
// stays frozen (at 1.0 in the paper's comparison; Fig. 2 sweeps other
// fixed values to motivate why learning it is necessary).

#include "core/mitigation.h"

namespace falvolt::core {

/// Run FalVolt (Algorithm 1) on `net` in place.
MitigationResult run_falvolt(snn::Network& net, const fault::FaultMap& map,
                             const data::Dataset& train,
                             const data::Dataset& test,
                             MitigationConfig cfg);

/// Run FaPIT: same pipeline with V_th frozen at `cfg.retrain_vth`.
MitigationResult run_fapit(snn::Network& net, const fault::FaultMap& map,
                           const data::Dataset& train,
                           const data::Dataset& test, MitigationConfig cfg);

/// Fig. 2's building block: retraining with a fixed, manually chosen
/// V_th. Identical to FaPIT but labeled with the swept value.
MitigationResult run_fixed_vth_retraining(snn::Network& net,
                                          const fault::FaultMap& map,
                                          const data::Dataset& train,
                                          const data::Dataset& test,
                                          MitigationConfig cfg,
                                          float fixed_vth);

}  // namespace falvolt::core
