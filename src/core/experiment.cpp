#include "core/experiment.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/env.h"
#include "compute/thread_pool.h"
#include "data/synthetic_dvs_gesture.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_nmnist.h"
#include "snn/optimizer.h"
#include "snn/trainer.h"

namespace falvolt::core {

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnist:
      return "MNIST";
    case DatasetKind::kNMnist:
      return "N-MNIST";
    case DatasetKind::kDvsGesture:
      return "DVS128-Gesture";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kMagic = 0x46564c54;  // "FVLT"

data::DatasetSplit build_data(DatasetKind kind, bool fast,
                              std::uint64_t seed) {
  switch (kind) {
    case DatasetKind::kMnist: {
      data::SyntheticMnistConfig c;
      c.seed = seed;
      if (fast) {
        c.train_size = 256;
        c.test_size = 128;
      }
      return data::make_synthetic_mnist(c);
    }
    case DatasetKind::kNMnist: {
      data::SyntheticNMnistConfig c;
      c.seed = seed + 1;
      if (fast) {
        c.train_size = 256;
        c.test_size = 128;
      }
      return data::make_synthetic_nmnist(c);
    }
    case DatasetKind::kDvsGesture: {
      data::SyntheticDvsGestureConfig c;
      c.seed = seed + 2;
      if (fast) {
        c.train_size = 220;
        c.test_size = 110;
      }
      return data::make_synthetic_dvs_gesture(c);
    }
  }
  throw std::logic_error("build_data: bad kind");
}

int baseline_epochs(DatasetKind kind, bool fast) {
  switch (kind) {
    case DatasetKind::kMnist:
      return fast ? 10 : 20;
    case DatasetKind::kNMnist:
      return fast ? 12 : 24;
    case DatasetKind::kDvsGesture:
      return fast ? 14 : 28;
  }
  return 20;
}

// Learning rate used for both the baseline training and (by default) the
// mitigation retraining of the scaled-down models.
constexpr double kBaselineLr = 2e-2;

}  // namespace

snn::Network build_network(DatasetKind kind, const data::Dataset& train,
                           std::uint64_t seed) {
  snn::ZooConfig zc;
  zc.seed = seed;
  switch (kind) {
    case DatasetKind::kMnist:
    case DatasetKind::kNMnist:
      return snn::make_digit_classifier(dataset_name(kind), train.channels(),
                                        train.height(), train.num_classes(),
                                        zc);
    case DatasetKind::kDvsGesture:
      return snn::make_gesture_classifier(dataset_name(kind),
                                          train.channels(), train.height(),
                                          train.num_classes(), zc);
  }
  throw std::logic_error("build_network: bad kind");
}

std::string resolve_cache_dir(const WorkloadOptions& opts) {
  // Three cases, each honored: the sentinel defers to the environment
  // (which may itself disable caching with an empty value), an explicit
  // empty string disables caching, and any other value is used verbatim.
  if (opts.cache_dir != kDefaultCacheDir) return opts.cache_dir;
  return common::env_or("FALVOLT_CACHE_DIR", "falvolt_cache");
}

std::string workload_id(DatasetKind kind, const WorkloadOptions& opts) {
  return std::string(dataset_name(kind)) + "/fast=" +
         (opts.fast ? "1" : "0") + "/seed=" + std::to_string(opts.seed);
}

std::string baseline_cache_file(const std::string& cache_dir,
                                DatasetKind kind, bool fast,
                                std::uint64_t seed) {
  return cache_dir + "/baseline_" + dataset_name(kind) + "_" +
         (fast ? "fast" : "full") + "_seed" + std::to_string(seed) + ".bin";
}

int default_retrain_epochs(DatasetKind kind, bool fast) {
  switch (kind) {
    case DatasetKind::kMnist:
    case DatasetKind::kNMnist:
      return fast ? 4 : 8;
    case DatasetKind::kDvsGesture:
      return fast ? 5 : 10;
  }
  return 8;
}

void save_params(snn::Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  const auto params = net.params();
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const snn::Param* p : params) {
    const std::uint32_t name_len =
        static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const std::uint32_t size = static_cast<std::uint32_t>(p->value.size());
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(size * sizeof(float)));
  }
}

bool load_params(snn::Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  // Every length field is validated against the bytes actually left in
  // the file BEFORE any allocation or payload read, so a corrupt or
  // truncated cache entry degrades to "no cache" (caller retrains and
  // rewrites it) instead of throwing or allocating a garbage-sized
  // buffer from a damaged length word.
  std::uint64_t remaining = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  if (remaining < sizeof(magic) + sizeof(count)) return false;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  remaining -= sizeof(magic) + sizeof(count);
  if (!in || magic != kMagic) return false;
  const auto params = net.params();
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch in " +
                             path);
  }
  // Stage every payload first and commit only after the whole file
  // validates — a failure halfway must not leave the network partially
  // overwritten (the caller retrains from the current initialization).
  std::vector<std::vector<float>> staged;
  staged.reserve(params.size());
  for (snn::Param* p : params) {
    std::uint32_t name_len = 0;
    if (remaining < sizeof(name_len)) return false;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    remaining -= sizeof(name_len);
    if (name_len > remaining) return false;
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    remaining -= name_len;
    std::uint32_t size = 0;
    if (remaining < sizeof(size)) return false;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    remaining -= sizeof(size);
    if (std::uint64_t{size} * sizeof(float) > remaining) return false;
    if (!in) return false;
    if (name != p->name || size != p->value.size()) {
      throw std::runtime_error("load_params: parameter mismatch at " +
                               p->name + " in " + path);
    }
    std::vector<float> payload(size);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    remaining -= std::uint64_t{size} * sizeof(float);
    if (!in) return false;
    staged.push_back(std::move(payload));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), params[i]->value.data());
  }
  return true;
}

Workload prepare_workload(DatasetKind kind, const WorkloadOptions& opts) {
  if (opts.threads > 0) compute::set_global_threads(opts.threads);
  Workload w{kind, build_data(kind, opts.fast, opts.seed),
             snn::Network(), 0.0, 0};
  w.net = build_network(kind, w.data.train, opts.seed);
  w.baseline_epochs = baseline_epochs(kind, opts.fast);

  const std::string cache_dir = resolve_cache_dir(opts);
  std::string cache_file;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    cache_file = baseline_cache_file(cache_dir, kind, opts.fast, opts.seed);
  }

  bool loaded = false;
  if (!cache_file.empty() && !opts.ignore_cache) {
    try {
      loaded = load_params(w.net, cache_file);
    } catch (const std::runtime_error&) {
      // A cache entry that parses but disagrees with the network (rotted
      // count/name bytes, or a stale file from an older architecture) is
      // as useless as a truncated one: retrain and rewrite it. The throw
      // stays in load_params for callers loading explicit checkpoints.
      loaded = false;
    }
  }
  if (!loaded) {
    snn::Adam opt(kBaselineLr);
    snn::TrainConfig tc;
    tc.epochs = w.baseline_epochs;
    tc.batch_size = 32;
    tc.shuffle_seed = opts.seed;
    tc.eval_each_epoch = false;
    // Step decay at 2/3 of training stabilizes the final epochs.
    const int decay_epoch = (2 * w.baseline_epochs) / 3;
    tc.on_epoch = [&opt, decay_epoch](const snn::EpochStats& s) {
      if (s.epoch + 1 == decay_epoch) opt.set_lr(kBaselineLr / 4.0);
    };
    snn::Trainer trainer(w.net, opt, w.data.train, &w.data.test, tc);
    trainer.run();
    if (!cache_file.empty()) save_params(w.net, cache_file);
  }
  w.baseline_accuracy = snn::evaluate(w.net, w.data.test);
  return w;
}

}  // namespace falvolt::core
