#pragma once
// Fault map of a fabricated systolic-array chip: which PEs have stuck-at
// faults on their accumulator output bits. In production this map comes
// from post-fabrication testing of each individual die; FalVolt is run
// once per chip against its unique map.

#include <unordered_map>
#include <vector>

#include "fixed/stuck_bits.h"

namespace falvolt::fault {

/// One faulty PE and its stuck bits.
struct PeFault {
  int row = 0;
  int col = 0;
  fx::StuckBits bits;
};

/// Sparse map from PE coordinates to stuck bits.
class FaultMap {
 public:
  FaultMap(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int total_pes() const { return rows_ * cols_; }

  /// Add (or merge into) the fault record of PE (row, col).
  void add(int row, int col, const fx::StuckBits& bits);

  /// Stuck bits of a PE, or nullptr if it is clean.
  const fx::StuckBits* at(int row, int col) const;

  bool is_faulty(int row, int col) const { return at(row, col) != nullptr; }

  int num_faulty_pes() const { return static_cast<int>(faults_.size()); }

  /// Fraction of faulty PEs in [0, 1].
  double fault_rate() const {
    return static_cast<double>(num_faulty_pes()) / total_pes();
  }

  /// All faults (unspecified order).
  std::vector<PeFault> faults() const;

  bool empty() const { return faults_.empty(); }

 private:
  int key(int row, int col) const { return row * cols_ + col; }
  void check(int row, int col) const;

  int rows_;
  int cols_;
  std::unordered_map<int, fx::StuckBits> faults_;
};

}  // namespace falvolt::fault
