#include "fault/fault_map_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace falvolt::fault {

namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
  throw std::runtime_error("fault map parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

std::string fault_map_to_text(const FaultMap& map) {
  std::ostringstream os;
  os << "falvolt-faultmap v1\n";
  os << "dims " << map.rows() << " " << map.cols() << "\n";
  // Sort for a canonical, diff-friendly output.
  std::vector<PeFault> faults = map.faults();
  std::sort(faults.begin(), faults.end(),
            [](const PeFault& a, const PeFault& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  for (const PeFault& f : faults) {
    os << "pe " << f.row << " " << f.col;
    for (int bit = 0; bit < 32; ++bit) {
      const std::uint32_t m = std::uint32_t{1} << bit;
      if (f.bits.sa0_mask & m) os << " sa0 " << bit;
      if (f.bits.sa1_mask & m) os << " sa1 " << bit;
    }
    os << "\n";
  }
  return os.str();
}

FaultMap fault_map_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++lineno;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line()) parse_error(lineno, "empty input");
  if (line != "falvolt-faultmap v1") {
    parse_error(lineno, "bad header: " + line);
  }
  if (!next_line()) parse_error(lineno, "missing dims");
  std::istringstream dims(line);
  std::string tag;
  int rows = 0;
  int cols = 0;
  if (!(dims >> tag >> rows >> cols) || tag != "dims") {
    parse_error(lineno, "bad dims line: " + line);
  }
  if (rows <= 0 || cols <= 0) parse_error(lineno, "non-positive dims");

  FaultMap map(rows, cols);
  while (next_line()) {
    std::istringstream ls(line);
    std::string pe;
    int row = 0;
    int col = 0;
    if (!(ls >> pe >> row >> col) || pe != "pe") {
      parse_error(lineno, "bad pe line: " + line);
    }
    fx::StuckBits bits;
    std::string level;
    bool any = false;
    while (ls >> level) {
      // The level token was consumed, so a missing/garbled bit index is a
      // malformed trailing token — NOT an empty fault list (the combined
      // `ls >> level >> bit` extraction used to conflate the two and
      // report `pe R C sa0` as "pe line without faults").
      int bit = 0;
      if (!(ls >> bit)) {
        parse_error(lineno, "stuck level '" + level +
                                "' missing a bit index: " + line);
      }
      any = true;
      try {
        if (level == "sa0") {
          bits.set(bit, fx::StuckType::kStuckAt0);
        } else if (level == "sa1") {
          bits.set(bit, fx::StuckType::kStuckAt1);
        } else {
          parse_error(lineno, "bad stuck level: " + level);
        }
      } catch (const std::invalid_argument& e) {
        parse_error(lineno, e.what());
      }
    }
    if (!ls.eof()) parse_error(lineno, "trailing garbage: " + line);
    if (!any) parse_error(lineno, "pe line without faults: " + line);
    try {
      map.add(row, col, bits);
    } catch (const std::exception& e) {
      parse_error(lineno, e.what());
    }
  }
  return map;
}

void save_fault_map(const FaultMap& map, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_fault_map: cannot open " + path);
  out << fault_map_to_text(map);
  if (!out) throw std::runtime_error("save_fault_map: write failed " + path);
}

FaultMap load_fault_map(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_fault_map: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return fault_map_from_text(buf.str());
}

}  // namespace falvolt::fault
