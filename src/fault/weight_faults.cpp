#include "fault/weight_faults.h"

#include <stdexcept>

namespace falvolt::fault {

std::size_t inject_weight_bit_flips(tensor::Tensor& weights,
                                    const WeightBitFlipSpec& spec,
                                    common::Rng& rng) {
  if (spec.flip_probability < 0.0 || spec.flip_probability > 1.0) {
    throw std::invalid_argument(
        "inject_weight_bit_flips: probability must be in [0, 1]");
  }
  if (spec.bit >= spec.format.total_bits()) {
    throw std::invalid_argument(
        "inject_weight_bit_flips: bit outside the storage word");
  }
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!rng.bernoulli(spec.flip_probability)) continue;
    const int bit =
        spec.bit >= 0
            ? spec.bit
            : static_cast<int>(rng.uniform_int(
                  static_cast<std::uint64_t>(spec.format.total_bits())));
    std::uint32_t word = spec.format.to_bits(
        spec.format.quantize(weights[i]));
    word ^= std::uint32_t{1} << bit;
    weights[i] = static_cast<float>(
        spec.format.dequantize(spec.format.sign_extend(word)));
    ++flipped;
  }
  return flipped;
}

std::size_t inject_network_weight_faults(snn::Network& net,
                                         const WeightBitFlipSpec& spec,
                                         common::Rng& rng) {
  std::size_t flipped = 0;
  for (snn::MatmulLayer* layer : net.matmul_layers()) {
    flipped += inject_weight_bit_flips(layer->weight_param().value, spec,
                                       rng);
  }
  return flipped;
}

std::size_t inject_dead_synapses(snn::Network& net, double death_probability,
                                 common::Rng& rng) {
  if (death_probability < 0.0 || death_probability > 1.0) {
    throw std::invalid_argument(
        "inject_dead_synapses: probability must be in [0, 1]");
  }
  std::size_t killed = 0;
  for (snn::MatmulLayer* layer : net.matmul_layers()) {
    tensor::Tensor& w = layer->weight_param().value;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0f && rng.bernoulli(death_probability)) {
        w[i] = 0.0f;
        ++killed;
      }
    }
  }
  return killed;
}

}  // namespace falvolt::fault
