#include "fault/fault_map.h"

#include <stdexcept>

namespace falvolt::fault {

FaultMap::FaultMap(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("FaultMap: dimensions must be positive");
  }
}

void FaultMap::check(int row, int col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
    throw std::out_of_range("FaultMap: PE coordinate out of range");
  }
}

void FaultMap::add(int row, int col, const fx::StuckBits& bits) {
  check(row, col);
  if (bits.none()) {
    throw std::invalid_argument("FaultMap::add: empty stuck-bit set");
  }
  if ((bits.sa0_mask & bits.sa1_mask) != 0) {
    throw std::invalid_argument(
        "FaultMap::add: a bit cannot be stuck at both levels");
  }
  fx::StuckBits& cur = faults_[key(row, col)];
  if ((cur.sa0_mask & bits.sa1_mask) || (cur.sa1_mask & bits.sa0_mask)) {
    throw std::invalid_argument(
        "FaultMap::add: conflicting stuck level for an existing fault");
  }
  cur.sa0_mask |= bits.sa0_mask;
  cur.sa1_mask |= bits.sa1_mask;
}

const fx::StuckBits* FaultMap::at(int row, int col) const {
  check(row, col);
  const auto it = faults_.find(key(row, col));
  return it == faults_.end() ? nullptr : &it->second;
}

std::vector<PeFault> FaultMap::faults() const {
  std::vector<PeFault> out;
  out.reserve(faults_.size());
  for (const auto& [k, bits] : faults_) {
    out.push_back(PeFault{k / cols_, k % cols_, bits});
  }
  return out;
}

}  // namespace falvolt::fault
