#pragma once
// Fault-map persistence.
//
// A die's fault map is produced once by post-fabrication testing and then
// consumed every time the chip is re-calibrated (FalVolt is run per chip,
// against its unique map). This module serializes maps to a small
// human-readable text format so test equipment, mitigation jobs, and
// archives can exchange them:
//
//   falvolt-faultmap v1
//   dims 256 256
//   pe 17 203 sa1 15
//   pe 40 12 sa0 3 sa1 7
//
// One `pe` line per faulty PE; each fault is a (level, bit) pair.

#include <iosfwd>
#include <string>

#include "fault/fault_map.h"

namespace falvolt::fault {

/// Serialize to the text format.
std::string fault_map_to_text(const FaultMap& map);

/// Parse the text format; throws std::runtime_error with a line number on
/// malformed input.
FaultMap fault_map_from_text(const std::string& text);

/// Write to a file (throws on I/O failure).
void save_fault_map(const FaultMap& map, const std::string& path);

/// Read from a file (throws on I/O failure or malformed content).
FaultMap load_fault_map(const std::string& path);

}  // namespace falvolt::fault
