#pragma once
// Secondary fault models from the paper's related-work axis.
//
// The paper's contribution targets *permanent stuck-at faults in the PE
// datapath*; prior SNN-reliability work instead studied (a) bit flips in
// the weight memories (Spyrou et al. DATE'22, Putra et al. ICCAD'21) and
// (b) large-scale dead-synapse failures (Schuman et al., Vatajelu et
// al.). This module provides both models so users can compare fault
// classes under one roof (the vulnerability_report example does exactly
// that).
//
// Weight bit flips operate on the *stored quantized representation*: the
// float weight is quantized to the accelerator's fixed-point format, one
// or more bits of the stored word are flipped, and the corrupted word is
// dequantized back into the float model. Dead synapses simply zero
// weights (equivalent to stuck-at-0 of a whole synapse).

#include <cstdint>

#include "common/rng.h"
#include "fixed/fixed_format.h"
#include "snn/network.h"
#include "tensor/tensor.h"

namespace falvolt::fault {

/// Parameters of a weight-memory bit-flip injection.
struct WeightBitFlipSpec {
  /// Storage format of the weight memory.
  fx::FixedFormat format = fx::FixedFormat::q8_8();
  /// Per-weight probability that one bit of its stored word flips.
  double flip_probability = 1e-3;
  /// Which bit flips; -1 draws uniformly over the word per fault.
  int bit = -1;
};

/// Flip bits in a float weight tensor through its quantized
/// representation. Returns the number of corrupted weights.
std::size_t inject_weight_bit_flips(tensor::Tensor& weights,
                                    const WeightBitFlipSpec& spec,
                                    common::Rng& rng);

/// Apply bit flips to every matmul layer of a network. Returns the total
/// number of corrupted weights.
std::size_t inject_network_weight_faults(snn::Network& net,
                                         const WeightBitFlipSpec& spec,
                                         common::Rng& rng);

/// Dead-synapse model: each weight of every matmul layer dies (is forced
/// to zero) independently with probability `death_probability`. Returns
/// the number of killed synapses.
std::size_t inject_dead_synapses(snn::Network& net, double death_probability,
                                 common::Rng& rng);

}  // namespace falvolt::fault
