#pragma once
// Post-fabrication testing: recovering a chip's fault map.
//
// The paper assumes "fault locations are determined through
// post-fabrication tests on a systolicSNN chip". This module models that
// step: a FabricatedChip hides a ground-truth fault map behind a
// scan-chain read/write interface (standard design-for-test: every PE
// accumulator register is on a scan chain), and PostFabTest recovers the
// full map by writing test patterns and reading back the corrupted values.
//
// Three patterns suffice for single-stuck-at coverage on a register:
// all-zeros (any bit reading 1 is sa1), all-ones (any bit reading 0 is
// sa0), and a checkerboard pair to confirm (exercised by tests).

#include "common/rng.h"
#include "fault/fault_map.h"
#include "fixed/fixed_format.h"

namespace falvolt::fault {

/// A manufactured chip with a hidden defect map. Test equipment can write
/// a bit pattern into any PE's accumulator register through the scan
/// chain and read back what the register actually holds.
class FabricatedChip {
 public:
  FabricatedChip(FaultMap defects, fx::FixedFormat format);

  int rows() const { return defects_.rows(); }
  int cols() const { return defects_.cols(); }
  const fx::FixedFormat& format() const { return format_; }

  /// Scan-chain access: write `pattern` into PE (row, col)'s accumulator
  /// and read it back; stuck bits override the written value.
  std::uint32_t scan_readback(int row, int col, std::uint32_t pattern) const;

  /// Ground truth (for test assertions only — production code must use
  /// PostFabTest to recover the map).
  const FaultMap& ground_truth() const { return defects_; }

 private:
  FaultMap defects_;
  fx::FixedFormat format_;
};

/// Result of testing one chip.
struct TestOutcome {
  FaultMap recovered;
  int patterns_applied = 0;
  int scan_operations = 0;
};

/// Recover the fault map of a chip via scan-chain patterns.
TestOutcome run_post_fab_test(const FabricatedChip& chip);

/// Convenience: manufacture a chip with random defects and test it.
FabricatedChip fabricate_random_chip(int rows, int cols, int num_faulty,
                                     const fx::FixedFormat& format,
                                     common::Rng& rng);

}  // namespace falvolt::fault
