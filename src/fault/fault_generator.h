#pragma once
// Random fault-map generation, mirroring the paper's experimental setup:
// a chosen number of faulty PEs is drawn uniformly over the grid, each
// with a stuck-at fault at a chosen (or random) accumulator output bit.

#include "common/rng.h"
#include "fault/fault_map.h"

namespace falvolt::fault {

/// Parameters of random fault injection.
struct FaultSpec {
  /// Bit position of the stuck fault; -1 draws uniformly over the word.
  int bit = -1;
  /// Word width used when drawing random bit positions.
  int word_bits = 16;
  /// Stuck level; ignored when random_type is true.
  fx::StuckType type = fx::StuckType::kStuckAt1;
  /// Draw the stuck level (sa0 vs sa1) per fault with p = 0.5.
  bool random_type = false;
  /// Stuck bits injected per faulty PE (paper uses 1).
  int bits_per_pe = 1;
};

/// `num_faulty` distinct PEs drawn uniformly from a rows x cols grid.
FaultMap random_fault_map(int rows, int cols, int num_faulty,
                          const FaultSpec& spec, common::Rng& rng);

/// Same, with the count given as a fraction of total PEs (paper's "10%,
/// 30%, 60% of PEs are faulty"). Rounds to the nearest PE count.
FaultMap fault_map_at_rate(int rows, int cols, double rate,
                           const FaultSpec& spec, common::Rng& rng);

/// The paper's worst case: stuck-at-1 in the accumulator MSB (sign bit).
FaultSpec worst_case_spec(int word_bits);

}  // namespace falvolt::fault
