#include "fault/post_fab_test.h"

#include "fault/fault_generator.h"

namespace falvolt::fault {

FabricatedChip::FabricatedChip(FaultMap defects, fx::FixedFormat format)
    : defects_(std::move(defects)), format_(format) {}

std::uint32_t FabricatedChip::scan_readback(int row, int col,
                                            std::uint32_t pattern) const {
  const std::uint32_t word = format_.to_bits(
      format_.sign_extend(pattern));  // truncate to the register width
  const fx::StuckBits* bits = defects_.at(row, col);
  if (!bits) return word;
  std::uint32_t v = word;
  v &= ~bits->sa0_mask;
  v |= (bits->sa1_mask & format_.to_bits(-1));
  return v;
}

TestOutcome run_post_fab_test(const FabricatedChip& chip) {
  TestOutcome out{FaultMap(chip.rows(), chip.cols()), 0, 0};
  const std::uint32_t ones = chip.format().to_bits(-1);
  const int word_bits = chip.format().total_bits();

  // Pattern set: zeros exposes sa1, ones exposes sa0; the checkerboard
  // pair re-confirms both (a real flow uses them to catch bridging faults;
  // here they guard against test-harness regressions).
  const std::uint32_t patterns[] = {0u, ones, 0xaaaaaaaau & ones,
                                    0x55555555u & ones};
  out.patterns_applied = 4;

  for (int r = 0; r < chip.rows(); ++r) {
    for (int c = 0; c < chip.cols(); ++c) {
      fx::StuckBits found;
      for (const std::uint32_t p : patterns) {
        const std::uint32_t readback = chip.scan_readback(r, c, p);
        ++out.scan_operations;
        const std::uint32_t diff = readback ^ p;
        if (!diff) continue;
        for (int b = 0; b < word_bits; ++b) {
          const std::uint32_t m = std::uint32_t{1} << b;
          if (!(diff & m)) continue;
          const bool reads_one = (readback & m) != 0;
          const fx::StuckType t =
              reads_one ? fx::StuckType::kStuckAt1 : fx::StuckType::kStuckAt0;
          if (!found.is_stuck(b)) found.set(b, t);
        }
      }
      if (!found.none()) out.recovered.add(r, c, found);
    }
  }
  return out;
}

FabricatedChip fabricate_random_chip(int rows, int cols, int num_faulty,
                                     const fx::FixedFormat& format,
                                     common::Rng& rng) {
  FaultSpec spec;
  spec.bit = -1;  // any bit can be defective in a real die
  spec.word_bits = format.total_bits();
  spec.random_type = true;
  FaultMap defects = random_fault_map(rows, cols, num_faulty, spec, rng);
  return FabricatedChip(std::move(defects), format);
}

}  // namespace falvolt::fault
