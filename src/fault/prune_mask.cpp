#include "fault/prune_mask.h"

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace falvolt::fault {

tensor::Tensor build_prune_mask(const FaultMap& map, int k, int m) {
  if (k <= 0 || m <= 0) {
    throw std::invalid_argument("build_prune_mask: bad dimensions");
  }
  tensor::Tensor mask({k, m}, 1.0f);
  if (map.empty()) return mask;
  for (int kk = 0; kk < k; ++kk) {
    const int pe_row = kk % map.rows();
    for (int mm = 0; mm < m; ++mm) {
      if (map.is_faulty(pe_row, mm % map.cols())) {
        mask.at2(kk, mm) = 0.0f;
      }
    }
  }
  return mask;
}

std::size_t count_pruned(const tensor::Tensor& mask) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0.0f) ++n;
  }
  return n;
}

NetworkPruner::NetworkPruner(snn::Network& net, const FaultMap& map) {
  for (snn::MatmulLayer* layer : net.matmul_layers()) {
    tensor::Tensor mask =
        build_prune_mask(map, layer->gemm_k(), layer->gemm_m());
    LayerPruneReport r;
    r.layer = layer->matmul_name();
    r.total_weights = mask.size();
    r.pruned_weights = count_pruned(mask);
    report_.push_back(std::move(r));
    masks_.push_back(std::move(mask));
  }
}

void NetworkPruner::apply(snn::Network& net) const {
  const auto layers = net.matmul_layers();
  if (layers.size() != masks_.size()) {
    throw std::logic_error("NetworkPruner::apply: network layout changed");
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    tensor::mul_inplace(layers[i]->weight_param().value, masks_[i]);
  }
}

bool NetworkPruner::is_pruned(snn::Network& net, float tol) const {
  const auto layers = net.matmul_layers();
  if (layers.size() != masks_.size()) return false;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const tensor::Tensor& w = layers[i]->weight_param().value;
    const tensor::Tensor& m = masks_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (m[j] == 0.0f && std::abs(w[j]) > tol) return false;
    }
  }
  return true;
}

std::size_t NetworkPruner::total_pruned() const {
  std::size_t n = 0;
  for (const auto& r : report_) n += r.pruned_weights;
  return n;
}

}  // namespace falvolt::fault
