#include "fault/fault_generator.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::fault {

FaultMap random_fault_map(int rows, int cols, int num_faulty,
                          const FaultSpec& spec, common::Rng& rng) {
  if (num_faulty < 0 || num_faulty > rows * cols) {
    throw std::invalid_argument("random_fault_map: bad num_faulty");
  }
  if (spec.word_bits < 1 || spec.word_bits > 32) {
    throw std::invalid_argument("random_fault_map: bad word_bits");
  }
  if (spec.bit >= spec.word_bits) {
    throw std::invalid_argument("random_fault_map: bit outside word");
  }
  if (spec.bits_per_pe < 1 || spec.bits_per_pe > spec.word_bits) {
    throw std::invalid_argument("random_fault_map: bad bits_per_pe");
  }
  FaultMap map(rows, cols);
  const auto cells = rng.sample_without_replacement(
      static_cast<std::size_t>(rows) * cols,
      static_cast<std::size_t>(num_faulty));
  for (const std::size_t cell : cells) {
    fx::StuckBits bits;
    // Draw distinct bit positions within this PE.
    std::vector<int> positions;
    if (spec.bit >= 0 && spec.bits_per_pe == 1) {
      positions.push_back(spec.bit);
    } else {
      const auto drawn = rng.sample_without_replacement(
          static_cast<std::size_t>(spec.word_bits),
          static_cast<std::size_t>(spec.bits_per_pe));
      for (const auto b : drawn) positions.push_back(static_cast<int>(b));
    }
    for (const int b : positions) {
      const fx::StuckType t =
          spec.random_type
              ? (rng.bernoulli(0.5) ? fx::StuckType::kStuckAt1
                                    : fx::StuckType::kStuckAt0)
              : spec.type;
      bits.set(b, t);
    }
    map.add(static_cast<int>(cell) / cols, static_cast<int>(cell) % cols,
            bits);
  }
  return map;
}

FaultMap fault_map_at_rate(int rows, int cols, double rate,
                           const FaultSpec& spec, common::Rng& rng) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("fault_map_at_rate: rate must be in [0, 1]");
  }
  const int count =
      static_cast<int>(std::lround(rate * static_cast<double>(rows) * cols));
  return random_fault_map(rows, cols, count, spec, rng);
}

FaultSpec worst_case_spec(int word_bits) {
  FaultSpec s;
  s.bit = word_bits - 1;  // sign/MSB
  s.word_bits = word_bits;
  s.type = fx::StuckType::kStuckAt1;
  return s;
}

}  // namespace falvolt::fault
