#pragma once
// Fault-aware prune masks (Algorithm 1, lines 1-2).
//
// Weight element (k, m) of a layer's [K x M] GEMM matrix executes on
// PE(k mod rows, m mod cols). Bypassing one faulty PE therefore prunes
// every weight that folds onto it — ceil(K/rows) * ceil(M/cols) weights
// per layer — which is exactly the array-reuse effect that makes small
// arrays more fault-sensitive (paper Fig. 5c).

#include <string>
#include <vector>

#include "fault/fault_map.h"
#include "snn/network.h"
#include "tensor/tensor.h"

namespace falvolt::fault {

/// Binary keep-mask (1 = keep, 0 = pruned) for a [K x M] weight matrix.
tensor::Tensor build_prune_mask(const FaultMap& map, int k, int m);

/// How many weights a mask prunes.
std::size_t count_pruned(const tensor::Tensor& mask);

/// Per-layer pruning statistics.
struct LayerPruneReport {
  std::string layer;
  std::size_t total_weights = 0;
  std::size_t pruned_weights = 0;
  double pruned_fraction() const {
    return total_weights
               ? static_cast<double>(pruned_weights) / total_weights
               : 0.0;
  }
};

/// Prune masks for every matmul layer of a network, in network order.
class NetworkPruner {
 public:
  NetworkPruner(snn::Network& net, const FaultMap& map);

  /// Zero all pruned weights (idempotent). Call once up front and after
  /// every retraining epoch (Algorithm 1 line 13).
  void apply(snn::Network& net) const;

  /// Verify no pruned weight is nonzero (tests / invariant checks).
  bool is_pruned(snn::Network& net, float tol = 0.0f) const;

  const std::vector<LayerPruneReport>& report() const { return report_; }

  /// Total pruned weights across all layers.
  std::size_t total_pruned() const;

 private:
  std::vector<tensor::Tensor> masks_;  // aligned with net.matmul_layers()
  std::vector<LayerPruneReport> report_;
};

}  // namespace falvolt::fault
