#include "data/glyphs.h"

#include <stdexcept>

namespace falvolt::data {

const std::array<GlyphBitmap, 10>& digit_glyphs() {
  // Hand-drawn 8x8 seven-segment-ish digits. MSB of each byte is column 0.
  static const std::array<GlyphBitmap, 10> glyphs = {{
      // 0
      {0b00111100, 0b01100110, 0b01100110, 0b01101110, 0b01110110, 0b01100110,
       0b01100110, 0b00111100},
      // 1
      {0b00011000, 0b00111000, 0b01111000, 0b00011000, 0b00011000, 0b00011000,
       0b00011000, 0b01111110},
      // 2
      {0b00111100, 0b01100110, 0b00000110, 0b00001100, 0b00011000, 0b00110000,
       0b01100000, 0b01111110},
      // 3
      {0b00111100, 0b01100110, 0b00000110, 0b00011100, 0b00000110, 0b00000110,
       0b01100110, 0b00111100},
      // 4
      {0b00001100, 0b00011100, 0b00111100, 0b01101100, 0b11001100, 0b11111110,
       0b00001100, 0b00001100},
      // 5
      {0b01111110, 0b01100000, 0b01100000, 0b01111100, 0b00000110, 0b00000110,
       0b01100110, 0b00111100},
      // 6
      {0b00111100, 0b01100110, 0b01100000, 0b01111100, 0b01100110, 0b01100110,
       0b01100110, 0b00111100},
      // 7
      {0b01111110, 0b00000110, 0b00001100, 0b00011000, 0b00110000, 0b00110000,
       0b00110000, 0b00110000},
      // 8
      {0b00111100, 0b01100110, 0b01100110, 0b00111100, 0b01100110, 0b01100110,
       0b01100110, 0b00111100},
      // 9
      {0b00111100, 0b01100110, 0b01100110, 0b01100110, 0b00111110, 0b00000110,
       0b01100110, 0b00111100},
  }};
  return glyphs;
}

namespace {

void check_digit(int digit) {
  if (digit < 0 || digit > 9) {
    throw std::invalid_argument("render_glyph: digit must be in [0, 9]");
  }
}

bool glyph_pixel(const GlyphBitmap& g, int r, int c) {
  if (r < 0 || r > 7 || c < 0 || c > 7) return false;
  return (g[static_cast<std::size_t>(r)] >> (7 - c)) & 1;
}

}  // namespace

tensor::Tensor render_glyph(int digit, common::Rng& rng,
                            const GlyphRenderOptions& opts) {
  check_digit(digit);
  if (opts.canvas < 8) {
    throw std::invalid_argument("render_glyph: canvas must be >= 8");
  }
  const GlyphBitmap& g = digit_glyphs()[static_cast<std::size_t>(digit)];
  tensor::Tensor img({opts.canvas, opts.canvas});

  const int base = (opts.canvas - 8) / 2;
  const int dy = static_cast<int>(rng.uniform_int(-opts.max_shift,
                                                  opts.max_shift));
  const int dx = static_cast<int>(rng.uniform_int(-opts.max_shift,
                                                  opts.max_shift));
  const bool thicken = rng.bernoulli(opts.thicken_prob);
  const float intensity =
      static_cast<float>(rng.uniform(opts.intensity_lo, opts.intensity_hi));

  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      bool on = glyph_pixel(g, r, c);
      if (!on && thicken) {
        on = glyph_pixel(g, r - 1, c) || glyph_pixel(g, r, c - 1);
      }
      if (!on) continue;
      const int y = base + r + dy;
      const int x = base + c + dx;
      if (y >= 0 && y < opts.canvas && x >= 0 && x < opts.canvas) {
        img.at2(y, x) = intensity;
      }
    }
  }
  // Salt noise.
  for (int y = 0; y < opts.canvas; ++y) {
    for (int x = 0; x < opts.canvas; ++x) {
      if (rng.bernoulli(opts.noise_prob)) {
        img.at2(y, x) = static_cast<float>(opts.noise_level);
      }
    }
  }
  return img;
}

tensor::Tensor render_glyph_clean(int digit, int canvas) {
  check_digit(digit);
  const GlyphBitmap& g = digit_glyphs()[static_cast<std::size_t>(digit)];
  tensor::Tensor img({canvas, canvas});
  const int base = (canvas - 8) / 2;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      if (glyph_pixel(g, r, c)) img.at2(base + r, base + c) = 1.0f;
    }
  }
  return img;
}

}  // namespace falvolt::data
