#pragma once
// DVS128-Gesture-like neuromorphic gesture dataset.
//
// The real DVS128 Gesture dataset contains 11 hand gestures recorded by an
// event camera: class identity is carried almost entirely by *motion over
// time*. This generator synthesizes 11 parametric spatio-temporal motion
// patterns (two rotation directions at two speeds, four translation
// directions, expanding / contracting rings, and a random-flicker "other"
// class) and converts the moving intensity field to 2-channel ON/OFF event
// frames — the same temporal-integration demand as the real data, which is
// why it remains the most fault-vulnerable dataset in our experiments,
// matching the paper.

#include "common/rng.h"
#include "data/dataset.h"

namespace falvolt::data {

struct SyntheticDvsGestureConfig {
  int train_size = 440;   // 11 classes x 40
  int test_size = 220;    // 11 classes x 20
  int time_steps = 6;
  int canvas = 24;
  double event_threshold = 0.18;
  std::uint64_t seed = 44;
};

/// Names of the 11 gesture classes, index-aligned with labels.
const std::vector<std::string>& dvs_gesture_class_names();

DatasetSplit make_synthetic_dvs_gesture(
    const SyntheticDvsGestureConfig& cfg = {});

}  // namespace falvolt::data
