#pragma once
// In-memory spiking dataset container.
//
// Every dataset in this library is a list of (frames, label) pairs where
// `frames` is a [T, C, H, W] tensor — the per-time-step input presented to
// the network. Static images repeat the same frame T times (direct coding
// through the spike-encoder conv layer, as in the paper); neuromorphic
// datasets carry genuine temporal structure.

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace falvolt::data {

/// One labeled temporal sample.
struct Sample {
  tensor::Tensor frames;  ///< [T, C, H, W]
  int label = 0;
};

/// Owning, index-addressable dataset.
class Dataset {
 public:
  Dataset(std::string name, int num_classes, int time_steps, int channels,
          int height, int width);

  /// Append a sample; its frame shape must match the dataset geometry.
  void add(Sample sample);

  const std::string& name() const { return name_; }
  int num_classes() const { return num_classes_; }
  int time_steps() const { return time_steps_; }
  int channels() const { return channels_; }
  int height() const { return height_; }
  int width() const { return width_; }
  int size() const { return static_cast<int>(samples_.size()); }

  const Sample& operator[](int i) const;

  /// Count of samples per class (sanity checks / stratification tests).
  std::vector<int> class_histogram() const;

 private:
  std::string name_;
  int num_classes_;
  int time_steps_;
  int channels_;
  int height_;
  int width_;
  std::vector<Sample> samples_;
};

/// A train/test pair produced by the generators.
struct DatasetSplit {
  Dataset train;
  Dataset test;
};

}  // namespace falvolt::data
