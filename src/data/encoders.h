#pragma once
// Spike encoders for static images.
//
// The paper's networks use *direct coding*: the analog image is fed to a
// spike-encoder conv layer at every time step and the first PLIF layer
// emits the spikes. That path needs no explicit encoder. Rate (Poisson)
// and latency encoders are provided for completeness — they are standard
// SNN input codings, are exercised by the examples, and let users swap the
// input representation.

#include "common/rng.h"
#include "tensor/tensor.h"

namespace falvolt::data {

/// Bernoulli/Poisson rate coding: pixel intensity p in [0,1] fires a spike
/// each step with probability p. Returns [T, C, H, W] binary frames for an
/// input image of shape [C, H, W].
tensor::Tensor rate_encode(const tensor::Tensor& image, int time_steps,
                           common::Rng& rng);

/// Time-to-first-spike (latency) coding: brighter pixels spike earlier.
/// Pixel with intensity p spikes exactly once at step
/// round((1-p) * (T-1)); zero pixels never spike.
tensor::Tensor latency_encode(const tensor::Tensor& image, int time_steps);

/// Direct coding: repeat the analog image at every step (the paper's
/// scheme; the encoder conv + PLIF layer does the actual spike conversion).
tensor::Tensor direct_encode(const tensor::Tensor& image, int time_steps);

/// Mean firing rate per pixel of a [T, C, H, W] spike train -> [C, H, W].
tensor::Tensor spike_rate(const tensor::Tensor& frames);

}  // namespace falvolt::data
