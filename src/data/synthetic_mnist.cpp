#include "data/synthetic_mnist.h"

#include <cstring>
#include <stdexcept>

namespace falvolt::data {

namespace {

Sample make_sample(int digit, int time_steps, int canvas, common::Rng& rng,
                   const GlyphRenderOptions& render) {
  GlyphRenderOptions opts = render;
  opts.canvas = canvas;
  const tensor::Tensor img = render_glyph(digit, rng, opts);
  tensor::Tensor frames({time_steps, 1, canvas, canvas});
  const std::size_t plane = static_cast<std::size_t>(canvas) * canvas;
  for (int t = 0; t < time_steps; ++t) {
    std::memcpy(frames.data() + static_cast<std::size_t>(t) * plane,
                img.data(), plane * sizeof(float));
  }
  return Sample{std::move(frames), digit};
}

void fill(Dataset& ds, int count, common::Rng& rng,
          const SyntheticMnistConfig& cfg) {
  for (int i = 0; i < count; ++i) {
    const int digit = i % 10;  // balanced classes
    ds.add(make_sample(digit, cfg.time_steps, cfg.canvas, rng, cfg.render));
  }
}

}  // namespace

DatasetSplit make_synthetic_mnist(const SyntheticMnistConfig& cfg) {
  if (cfg.train_size <= 0 || cfg.test_size <= 0) {
    throw std::invalid_argument("make_synthetic_mnist: sizes must be > 0");
  }
  common::Rng rng(cfg.seed);
  Dataset train("synthetic-mnist-train", 10, cfg.time_steps, 1, cfg.canvas,
                cfg.canvas);
  Dataset test("synthetic-mnist-test", 10, cfg.time_steps, 1, cfg.canvas,
               cfg.canvas);
  fill(train, cfg.train_size, rng, cfg);
  fill(test, cfg.test_size, rng, cfg);
  return DatasetSplit{std::move(train), std::move(test)};
}

}  // namespace falvolt::data
