#include "data/dataset.h"

#include <stdexcept>

namespace falvolt::data {

Dataset::Dataset(std::string name, int num_classes, int time_steps,
                 int channels, int height, int width)
    : name_(std::move(name)),
      num_classes_(num_classes),
      time_steps_(time_steps),
      channels_(channels),
      height_(height),
      width_(width) {
  if (num_classes <= 0 || time_steps <= 0 || channels <= 0 || height <= 0 ||
      width <= 0) {
    throw std::invalid_argument("Dataset: all geometry must be positive");
  }
}

void Dataset::add(Sample sample) {
  const tensor::Shape expect = {time_steps_, channels_, height_, width_};
  if (sample.frames.shape() != expect) {
    throw std::invalid_argument(
        "Dataset::add: frame shape " + tensor::shape_str(sample.frames.shape()) +
        " does not match dataset geometry " + tensor::shape_str(expect));
  }
  if (sample.label < 0 || sample.label >= num_classes_) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  samples_.push_back(std::move(sample));
}

const Sample& Dataset::operator[](int i) const {
  if (i < 0 || i >= size()) throw std::out_of_range("Dataset::operator[]");
  return samples_[static_cast<std::size_t>(i)];
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> h(static_cast<std::size_t>(num_classes_), 0);
  for (const auto& s : samples_) ++h[static_cast<std::size_t>(s.label)];
  return h;
}

}  // namespace falvolt::data
