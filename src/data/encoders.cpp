#include "data/encoders.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace falvolt::data {

namespace {
void check_image(const tensor::Tensor& image) {
  if (image.rank() != 3) {
    throw std::invalid_argument("encoder: image must be [C, H, W]");
  }
}
}  // namespace

tensor::Tensor rate_encode(const tensor::Tensor& image, int time_steps,
                           common::Rng& rng) {
  check_image(image);
  tensor::Tensor out(
      {time_steps, image.dim(0), image.dim(1), image.dim(2)});
  const std::size_t plane = image.size();
  for (int t = 0; t < time_steps; ++t) {
    float* frame = out.data() + static_cast<std::size_t>(t) * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      const double p = std::clamp(static_cast<double>(image[i]), 0.0, 1.0);
      frame[i] = rng.bernoulli(p) ? 1.0f : 0.0f;
    }
  }
  return out;
}

tensor::Tensor latency_encode(const tensor::Tensor& image, int time_steps) {
  check_image(image);
  if (time_steps < 1) {
    throw std::invalid_argument("latency_encode: time_steps must be >= 1");
  }
  tensor::Tensor out(
      {time_steps, image.dim(0), image.dim(1), image.dim(2)});
  const std::size_t plane = image.size();
  for (std::size_t i = 0; i < plane; ++i) {
    const double p = std::clamp(static_cast<double>(image[i]), 0.0, 1.0);
    if (p <= 0.0) continue;
    const int t = static_cast<int>(std::lround((1.0 - p) * (time_steps - 1)));
    out[static_cast<std::size_t>(t) * plane + i] = 1.0f;
  }
  return out;
}

tensor::Tensor direct_encode(const tensor::Tensor& image, int time_steps) {
  check_image(image);
  tensor::Tensor out(
      {time_steps, image.dim(0), image.dim(1), image.dim(2)});
  const std::size_t plane = image.size();
  for (int t = 0; t < time_steps; ++t) {
    std::memcpy(out.data() + static_cast<std::size_t>(t) * plane,
                image.data(), plane * sizeof(float));
  }
  return out;
}

tensor::Tensor spike_rate(const tensor::Tensor& frames) {
  if (frames.rank() != 4) {
    throw std::invalid_argument("spike_rate: frames must be [T, C, H, W]");
  }
  const int t_steps = frames.dim(0);
  tensor::Tensor rate({frames.dim(1), frames.dim(2), frames.dim(3)});
  const std::size_t plane = rate.size();
  for (int t = 0; t < t_steps; ++t) {
    const float* frame = frames.data() + static_cast<std::size_t>(t) * plane;
    for (std::size_t i = 0; i < plane; ++i) rate[i] += frame[i];
  }
  for (std::size_t i = 0; i < plane; ++i) {
    rate[i] /= static_cast<float>(t_steps);
  }
  return rate;
}

}  // namespace falvolt::data
