#pragma once
// N-MNIST-like neuromorphic digit dataset.
//
// The real N-MNIST records an event camera performing three saccades over
// a static MNIST digit; events carry ON/OFF polarity. This generator moves
// the rendered glyph along a triangular 3-saccade path across the time
// steps and emits 2-channel binary event frames from the signed frame
// difference — reproducing the defining property (temporally coded events
// of a static underlying class).

#include "common/rng.h"
#include "data/dataset.h"
#include "data/glyphs.h"

namespace falvolt::data {

struct SyntheticNMnistConfig {
  int train_size = 512;
  int test_size = 256;
  int time_steps = 5;
  int canvas = 16;
  double event_threshold = 0.25;  ///< |diff| above this fires an event
  GlyphRenderOptions render;
  std::uint64_t seed = 43;
};

DatasetSplit make_synthetic_nmnist(const SyntheticNMnistConfig& cfg = {});

}  // namespace falvolt::data
