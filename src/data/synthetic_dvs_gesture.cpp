#include "data/synthetic_dvs_gesture.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::data {

const std::vector<std::string>& dvs_gesture_class_names() {
  static const std::vector<std::string> names = {
      "rotate_cw_slow",  "rotate_ccw_slow", "rotate_cw_fast",
      "rotate_ccw_fast", "swipe_left",      "swipe_right",
      "swipe_up",        "swipe_down",      "expand",
      "contract",        "flicker_other"};
  return names;
}

namespace {

// Render the intensity field of a class at normalized time u in [0, 1].
// Fields are built from a bright "arm" blob whose position encodes the
// motion pattern.
tensor::Tensor render_field(int label, double u, int canvas, double phase0,
                            double jitter_x, double jitter_y,
                            common::Rng& rng) {
  tensor::Tensor img({canvas, canvas});
  const double cx = canvas / 2.0 - 0.5 + jitter_x;
  const double cy = canvas / 2.0 - 0.5 + jitter_y;
  const double r_arm = canvas * 0.3;

  auto splat = [&](double x, double y, double sigma, double amp) {
    const int lo_y = std::max(0, static_cast<int>(y - 3 * sigma));
    const int hi_y = std::min(canvas - 1, static_cast<int>(y + 3 * sigma));
    const int lo_x = std::max(0, static_cast<int>(x - 3 * sigma));
    const int hi_x = std::min(canvas - 1, static_cast<int>(x + 3 * sigma));
    for (int py = lo_y; py <= hi_y; ++py) {
      for (int px = lo_x; px <= hi_x; ++px) {
        const double d2 = (px - x) * (px - x) + (py - y) * (py - y);
        const double v = amp * std::exp(-d2 / (2 * sigma * sigma));
        float& cell = img.at2(py, px);
        cell = static_cast<float>(std::min(1.0, cell + v));
      }
    }
  };

  switch (label) {
    case 0:    // rotate_cw_slow
    case 1:    // rotate_ccw_slow
    case 2:    // rotate_cw_fast
    case 3: {  // rotate_ccw_fast
      const double speed = (label >= 2) ? 2.0 : 1.0;
      const double dir = (label % 2 == 0) ? 1.0 : -1.0;
      const double angle = phase0 + dir * speed * 2.0 * M_PI * u;
      // Two diametrically opposed arms, like a rotating hand.
      for (int arm = 0; arm < 2; ++arm) {
        const double a = angle + arm * M_PI;
        splat(cx + r_arm * std::cos(a), cy + r_arm * std::sin(a), 1.8, 1.0);
        splat(cx + 0.5 * r_arm * std::cos(a), cy + 0.5 * r_arm * std::sin(a),
              1.4, 0.8);
      }
      break;
    }
    case 4:    // swipe_left
    case 5:    // swipe_right
    case 6:    // swipe_up
    case 7: {  // swipe_down
      const double travel = canvas * 0.8;
      const double offset = (u - 0.5) * travel;
      double x = cx;
      double y = cy;
      if (label == 4) x = cx - offset;
      if (label == 5) x = cx + offset;
      if (label == 6) y = cy - offset;
      if (label == 7) y = cy + offset;
      // A vertical/horizontal bar sweeping across the canvas.
      const bool horiz_motion = (label == 4 || label == 5);
      for (int k = -3; k <= 3; ++k) {
        if (horiz_motion) {
          splat(x, y + k * 2.0, 1.5, 0.9);
        } else {
          splat(x + k * 2.0, y, 1.5, 0.9);
        }
      }
      break;
    }
    case 8:    // expand
    case 9: {  // contract
      const double rr = (label == 8 ? u : 1.0 - u) * canvas * 0.42 + 1.5;
      const int spokes = 10;
      for (int s = 0; s < spokes; ++s) {
        const double a = phase0 + 2.0 * M_PI * s / spokes;
        splat(cx + rr * std::cos(a), cy + rr * std::sin(a), 1.5, 0.9);
      }
      break;
    }
    case 10: {  // flicker_other: uncorrelated sparkles
      const int sparkles = 10;
      for (int s = 0; s < sparkles; ++s) {
        splat(rng.uniform(2.0, canvas - 2.0), rng.uniform(2.0, canvas - 2.0),
              1.2, 0.9);
      }
      break;
    }
    default:
      throw std::invalid_argument("render_field: label out of range");
  }
  return img;
}

Sample make_sample(int label, const SyntheticDvsGestureConfig& cfg,
                   common::Rng& rng) {
  const double phase0 = rng.uniform(0.0, 2.0 * M_PI);
  const double jx = rng.uniform(-1.5, 1.5);
  const double jy = rng.uniform(-1.5, 1.5);

  tensor::Tensor frames({cfg.time_steps, 2, cfg.canvas, cfg.canvas});
  const std::size_t plane =
      static_cast<std::size_t>(cfg.canvas) * cfg.canvas;
  tensor::Tensor prev =
      render_field(label, 0.0, cfg.canvas, phase0, jx, jy, rng);
  for (int t = 0; t < cfg.time_steps; ++t) {
    const double u =
        static_cast<double>(t + 1) / static_cast<double>(cfg.time_steps);
    tensor::Tensor cur = render_field(label, u, cfg.canvas, phase0, jx, jy,
                                      rng);
    float* on = frames.data() + (static_cast<std::size_t>(t) * 2 + 0) * plane;
    float* off = frames.data() + (static_cast<std::size_t>(t) * 2 + 1) * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      const double diff =
          static_cast<double>(cur[i]) - static_cast<double>(prev[i]);
      if (diff > cfg.event_threshold) on[i] = 1.0f;
      if (diff < -cfg.event_threshold) off[i] = 1.0f;
    }
    prev = std::move(cur);
  }
  return Sample{std::move(frames), label};
}

void fill(Dataset& ds, int count, common::Rng& rng,
          const SyntheticDvsGestureConfig& cfg) {
  for (int i = 0; i < count; ++i) {
    ds.add(make_sample(i % 11, cfg, rng));
  }
}

}  // namespace

DatasetSplit make_synthetic_dvs_gesture(const SyntheticDvsGestureConfig& cfg) {
  if (cfg.train_size <= 0 || cfg.test_size <= 0) {
    throw std::invalid_argument(
        "make_synthetic_dvs_gesture: sizes must be > 0");
  }
  common::Rng rng(cfg.seed);
  Dataset train("synthetic-dvs-gesture-train", 11, cfg.time_steps, 2,
                cfg.canvas, cfg.canvas);
  Dataset test("synthetic-dvs-gesture-test", 11, cfg.time_steps, 2,
               cfg.canvas, cfg.canvas);
  fill(train, cfg.train_size, rng, cfg);
  fill(test, cfg.test_size, rng, cfg);
  return DatasetSplit{std::move(train), std::move(test)};
}

}  // namespace falvolt::data
