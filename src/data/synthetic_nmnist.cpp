#include "data/synthetic_nmnist.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::data {

namespace {

// Shift an image by (dy, dx), zero-filling exposed borders.
tensor::Tensor shifted(const tensor::Tensor& img, int dy, int dx) {
  const int h = img.dim(0);
  const int w = img.dim(1);
  tensor::Tensor out({h, w});
  for (int y = 0; y < h; ++y) {
    const int sy = y - dy;
    if (sy < 0 || sy >= h) continue;
    for (int x = 0; x < w; ++x) {
      const int sx = x - dx;
      if (sx < 0 || sx >= w) continue;
      out.at2(y, x) = img.at2(sy, sx);
    }
  }
  return out;
}

Sample make_sample(int digit, const SyntheticNMnistConfig& cfg,
                   common::Rng& rng) {
  GlyphRenderOptions opts = cfg.render;
  opts.canvas = cfg.canvas;
  const tensor::Tensor img = render_glyph(digit, rng, opts);

  // Triangular saccade path: right-down, left, up-right — mirroring the
  // three saccades of the real sensor rig.
  const int amp = 1 + static_cast<int>(rng.uniform_int(2));  // 1..2 px
  tensor::Tensor frames({cfg.time_steps, 2, cfg.canvas, cfg.canvas});
  tensor::Tensor prev = img;
  const std::size_t plane =
      static_cast<std::size_t>(cfg.canvas) * cfg.canvas;
  for (int t = 0; t < cfg.time_steps; ++t) {
    const double phase =
        3.0 * static_cast<double>(t + 1) / static_cast<double>(cfg.time_steps);
    int dy = 0;
    int dx = 0;
    if (phase <= 1.0) {
      dy = static_cast<int>(std::lround(amp * phase));
      dx = static_cast<int>(std::lround(amp * phase));
    } else if (phase <= 2.0) {
      dy = amp;
      dx = static_cast<int>(std::lround(amp * (2.0 - phase)));
    } else {
      dy = static_cast<int>(std::lround(amp * (3.0 - phase)));
      dx = static_cast<int>(std::lround(amp * (phase - 2.0)));
    }
    tensor::Tensor cur = shifted(img, dy, dx);
    float* on = frames.data() + (static_cast<std::size_t>(t) * 2 + 0) * plane;
    float* off = frames.data() + (static_cast<std::size_t>(t) * 2 + 1) * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      const double diff =
          static_cast<double>(cur[i]) - static_cast<double>(prev[i]);
      if (diff > cfg.event_threshold) on[i] = 1.0f;
      if (diff < -cfg.event_threshold) off[i] = 1.0f;
    }
    // First frame has no history: emit ON events at the glyph itself so the
    // digit is visible from t=0 (the real sensor also fires on onset).
    if (t == 0) {
      for (std::size_t i = 0; i < plane; ++i) {
        if (cur[i] > cfg.event_threshold) on[i] = 1.0f;
      }
    }
    prev = std::move(cur);
  }
  return Sample{std::move(frames), digit};
}

void fill(Dataset& ds, int count, common::Rng& rng,
          const SyntheticNMnistConfig& cfg) {
  for (int i = 0; i < count; ++i) {
    ds.add(make_sample(i % 10, cfg, rng));
  }
}

}  // namespace

DatasetSplit make_synthetic_nmnist(const SyntheticNMnistConfig& cfg) {
  if (cfg.train_size <= 0 || cfg.test_size <= 0) {
    throw std::invalid_argument("make_synthetic_nmnist: sizes must be > 0");
  }
  common::Rng rng(cfg.seed);
  Dataset train("synthetic-nmnist-train", 10, cfg.time_steps, 2, cfg.canvas,
                cfg.canvas);
  Dataset test("synthetic-nmnist-test", 10, cfg.time_steps, 2, cfg.canvas,
               cfg.canvas);
  fill(train, cfg.train_size, rng, cfg);
  fill(test, cfg.test_size, rng, cfg);
  return DatasetSplit{std::move(train), std::move(test)};
}

}  // namespace falvolt::data
