#pragma once
// MNIST-like static digit dataset (see DESIGN.md §4 for the substitution
// rationale). 10 classes, single channel, canvas default 16x16; the same
// image is repeated for every time step and the network's spike-encoder
// conv layer converts it to spikes (direct coding, as in the paper).

#include "common/rng.h"
#include "data/dataset.h"
#include "data/glyphs.h"

namespace falvolt::data {

/// Generation parameters for the MNIST-like task.
struct SyntheticMnistConfig {
  int train_size = 512;
  int test_size = 256;
  int time_steps = 4;
  int canvas = 16;
  GlyphRenderOptions render;  ///< augmentation knobs
  std::uint64_t seed = 42;
};

/// Build a balanced train/test split (classes round-robin).
DatasetSplit make_synthetic_mnist(const SyntheticMnistConfig& cfg = {});

}  // namespace falvolt::data
