#pragma once
// Procedural digit glyphs.
//
// The environment has no network access, so the MNIST / N-MNIST / DVS
// datasets the paper uses are substituted with procedurally generated
// equivalents (see DESIGN.md §4). The base ingredient for the two
// digit-style datasets is a set of ten 8x8 digit bitmaps rendered into a
// target canvas with random shift, thickness, and pixel noise — enough
// intra-class variation that the classification task is non-trivial but
// learnable to ≈99% by the paper's scaled-down PLIF networks.

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace falvolt::data {

/// One 8x8 1-bit glyph; row `r` bit `7-c` set means pixel (r, c) is on.
using GlyphBitmap = std::array<std::uint8_t, 8>;

/// The ten digit glyphs, indexed by digit value.
const std::array<GlyphBitmap, 10>& digit_glyphs();

/// Options controlling glyph rendering variation.
struct GlyphRenderOptions {
  int canvas = 16;          ///< output is canvas x canvas
  int max_shift = 1;        ///< uniform shift in [-max_shift, max_shift]
  double thicken_prob = 0.35;  ///< chance to dilate the glyph by 1px
  double noise_prob = 0.01;    ///< per-pixel salt noise probability
  double noise_level = 0.5;    ///< intensity of noise pixels
  double intensity_lo = 0.85;  ///< random stroke intensity range
  double intensity_hi = 1.0;
};

/// Render digit `digit` to a [canvas x canvas] tensor in [0, 1].
/// The same rng state renders the same image (fully deterministic).
tensor::Tensor render_glyph(int digit, common::Rng& rng,
                            const GlyphRenderOptions& opts = {});

/// Render without augmentation (centered, clean) — used by tests.
tensor::Tensor render_glyph_clean(int digit, int canvas = 16);

}  // namespace falvolt::data
