#pragma once
// Fully connected layer over [N, F] inputs; weight matrix [F x M] is the
// GEMM operand mapped onto the systolic array.

#include <vector>

#include "common/rng.h"
#include "snn/layer.h"

namespace falvolt::snn {

class Linear final : public Layer, public MatmulLayer {
 public:
  Linear(std::string name, int in_features, int out_features,
         common::Rng& init_rng, bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;
  std::vector<Param*> params() override;

  // MatmulLayer
  Param& weight_param() override { return weight_; }
  int gemm_k() const override { return in_features_; }
  int gemm_m() const override { return out_features_; }
  void set_gemm_engine(GemmEngine* engine) override { engine_ = engine; }
  const std::string& matmul_name() const override { return Layer::name(); }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  bool has_bias_;
  Param weight_;  // [F x M]
  Param bias_;    // [M]
  GemmEngine* engine_ = nullptr;
  std::vector<tensor::Tensor> input_hist_;  // per-step inputs [N, F]
};

}  // namespace falvolt::snn
