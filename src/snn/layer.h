#pragma once
// Layer interface for the BPTT-trained SNN.
//
// Execution model: the trainer resets all layer state, then runs
// `forward(x, t)` for t = 0..T-1 through the whole stack, accumulates
// output spikes, computes the loss on the mean firing rate, and finally
// runs `backward(grad, t)` for t = T-1..0 through the reversed stack.
// Layers cache whatever they need per time step during forward; stateful
// (spiking) layers also carry gradients backward through their membrane
// potential between consecutive backward(t) calls.

#include <memory>
#include <string>
#include <vector>

#include "snn/param.h"
#include "tensor/tensor.h"

namespace falvolt::snn {

/// Train vs eval mode (affects dropout, batch-norm statistics).
enum class Mode { kTrain, kEval };

/// Pluggable GEMM backend for the weight layers (Conv2d, Linear).
///
/// The float engine is the training path; the systolic module provides a
/// fixed-point engine that routes the same GEMM through the fault-injected
/// accelerator model. `layer_tag` identifies the layer so an engine can
/// keep per-layer state (all layers share the same physical PE array, so
/// the default engine ignores it).
class GemmEngine {
 public:
  virtual ~GemmEngine() = default;
  /// C[m x n] = A[m x k] * W[k x n], row-major.
  virtual void run(const float* a, const float* w, float* c, int m, int k,
                   int n, const std::string& layer_tag) = 0;
};

/// Default float GEMM (delegates to tensor::gemm, i.e. the compute
/// backend's auto-dispatched blocked/parallel kernels).
class FloatGemmEngine final : public GemmEngine {
 public:
  void run(const float* a, const float* w, float* c, int m, int k, int n,
           const std::string& layer_tag) override;
  /// Process-wide shared instance.
  static FloatGemmEngine& instance();
};

/// Base layer.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  /// Compute the output at time step t. Must be called with t increasing
  /// from 0 after reset_state().
  virtual tensor::Tensor forward(const tensor::Tensor& x, int t,
                                 Mode mode) = 0;

  /// Propagate the loss gradient for time step t; must be called with t
  /// decreasing from T-1. Accumulates into parameter grads.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out, int t) = 0;

  /// Clear temporal state and per-step caches (start of a new sequence).
  virtual void reset_state() {}

  /// Trainable parameters (empty by default).
  virtual std::vector<Param*> params() { return {}; }

  /// True for layers that emit spikes (PLIF).
  virtual bool is_spiking() const { return false; }

 private:
  std::string name_;
};

/// Interface implemented by layers whose forward pass is one GEMM
/// (Conv2d via im2col, Linear). These are the layers mapped onto the
/// systolic array: their weight matrix is [K x M] with element (k, m)
/// living on PE(k mod N, m mod N).
class MatmulLayer {
 public:
  virtual ~MatmulLayer() = default;
  /// The [K x M] GEMM weight matrix.
  virtual Param& weight_param() = 0;
  virtual int gemm_k() const = 0;
  virtual int gemm_m() const = 0;
  /// Route this layer's inference GEMM through `engine` (non-owning;
  /// nullptr restores the default float engine).
  virtual void set_gemm_engine(GemmEngine* engine) = 0;
  /// Name of the owning layer (for fault-report tables).
  virtual const std::string& matmul_name() const = 0;
};

}  // namespace falvolt::snn
