#pragma once
// Sequential SNN container.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "snn/layer.h"
#include "snn/plif.h"

namespace falvolt::snn {

/// An ordered stack of layers executed per time step.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const std::string& name() const { return name_; }

  /// Append a layer; returns a typed reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_.at(static_cast<std::size_t>(i)); }
  const Layer& layer(int i) const {
    return *layers_.at(static_cast<std::size_t>(i));
  }

  /// Run one time step through the whole stack.
  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode);

  /// Batched eval mode: reset state, forward steps[t] (one [N,C,H,W]
  /// tensor per time step) for t = 0..T-1 in eval mode, and return the
  /// time-mean output — the firing-rate logits, shape [N, classes].
  /// Running one forward per time step for the WHOLE sample set lets a
  /// plugged GemmEngine resolve its per-layer plan (quantized weights +
  /// fault schedule) once per step instead of once per small chunk, and
  /// hands the row-parallel compute pool N samples of rows at a time.
  /// Per-sample outputs are independent, so the result is bit-identical
  /// to forwarding the samples in any smaller batches.
  tensor::Tensor rate_forward(const std::vector<tensor::Tensor>& steps);

  /// Backpropagate one time step through the reversed stack (call with t
  /// descending). Returns the gradient w.r.t. the step input.
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t);

  /// Reset temporal state and caches on every layer.
  void reset_state();

  /// All trainable parameters.
  std::vector<Param*> params();

  /// Zero every parameter gradient.
  void zero_grad();

  /// All spiking (PLIF) layers, in network order.
  std::vector<Plif*> spiking_layers();

  /// The PLIF layers whose threshold the paper's Fig. 6 reports — i.e.
  /// every spiking layer except the encoder's (those are the "hidden
  /// convolutional and fully connected layers").
  std::vector<Plif*> hidden_spiking_layers();

  /// All GEMM-lowered layers (Conv2d + Linear), in network order. These
  /// are the layers mapped onto the systolic array.
  std::vector<MatmulLayer*> matmul_layers();

  /// Route every matmul layer's inference GEMM through `engine`
  /// (nullptr restores the float path).
  void set_gemm_engine(GemmEngine* engine);

  /// Enable/disable threshold-voltage learning on all hidden spiking
  /// layers (FalVolt's switch).
  void set_train_vth(bool enabled);

  /// Snapshot / restore all parameter values (baseline caching).
  std::vector<tensor::Tensor> snapshot_params();
  void restore_params(const std::vector<tensor::Tensor>& snap);

  /// Total trainable scalar count.
  std::size_t num_trainable_scalars();

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace falvolt::snn
