#include "snn/param.h"

// Param is header-only; this TU compiles the header standalone.
