#include "snn/network.h"

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace falvolt::snn {

tensor::Tensor Network::forward(const tensor::Tensor& x, int t, Mode mode) {
  tensor::Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, t, mode);
  return cur;
}

tensor::Tensor Network::rate_forward(
    const std::vector<tensor::Tensor>& steps) {
  reset_state();
  tensor::Tensor sum;
  for (std::size_t t = 0; t < steps.size(); ++t) {
    tensor::Tensor out =
        forward(steps[t], static_cast<int>(t), Mode::kEval);
    if (sum.empty()) {
      sum = std::move(out);
    } else {
      tensor::add_inplace(sum, out);
    }
  }
  if (!steps.empty()) {
    tensor::scale_inplace(sum, 1.0f / static_cast<float>(steps.size()));
  }
  return sum;
}

tensor::Tensor Network::backward(const tensor::Tensor& grad_out, int t) {
  tensor::Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur, t);
  }
  return cur;
}

void Network::reset_state() {
  for (auto& l : layers_) l->reset_state();
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

void Network::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<Plif*> Network::spiking_layers() {
  std::vector<Plif*> out;
  for (auto& l : layers_) {
    if (auto* p = dynamic_cast<Plif*>(l.get())) out.push_back(p);
  }
  return out;
}

std::vector<Plif*> Network::hidden_spiking_layers() {
  std::vector<Plif*> out;
  for (auto& l : layers_) {
    auto* p = dynamic_cast<Plif*>(l.get());
    if (!p) continue;
    // Encoder PLIF layers are named with an "SEnc" prefix by the model zoo.
    if (p->name().rfind("SEnc", 0) == 0) continue;
    out.push_back(p);
  }
  return out;
}

std::vector<MatmulLayer*> Network::matmul_layers() {
  std::vector<MatmulLayer*> out;
  for (auto& l : layers_) {
    if (auto* m = dynamic_cast<MatmulLayer*>(l.get())) out.push_back(m);
  }
  return out;
}

void Network::set_gemm_engine(GemmEngine* engine) {
  for (MatmulLayer* m : matmul_layers()) m->set_gemm_engine(engine);
}

void Network::set_train_vth(bool enabled) {
  for (Plif* p : hidden_spiking_layers()) p->set_train_vth(enabled);
}

std::vector<tensor::Tensor> Network::snapshot_params() {
  std::vector<tensor::Tensor> snap;
  for (Param* p : params()) snap.push_back(p->value);
  return snap;
}

void Network::restore_params(const std::vector<tensor::Tensor>& snap) {
  auto ps = params();
  if (snap.size() != ps.size()) {
    throw std::invalid_argument("Network::restore_params: size mismatch");
  }
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (ps[i]->value.shape() != snap[i].shape()) {
      throw std::invalid_argument("Network::restore_params: shape mismatch");
    }
    ps[i]->value = snap[i];
  }
}

std::size_t Network::num_trainable_scalars() {
  std::size_t n = 0;
  for (Param* p : params()) {
    if (p->trainable) n += p->size();
  }
  return n;
}

}  // namespace falvolt::snn
