#include "snn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace falvolt::snn {

Conv2d::Conv2d(std::string name, int in_channels, int out_channels,
               int kernel, int pad, common::Rng& init_rng, bool bias)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad),
      has_bias_(bias) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || pad < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
  const int k = in_channels * kernel * kernel;
  weight_ = Param(Layer::name() + ".weight",
                  tensor::Tensor({k, out_channels}));
  // Kaiming-uniform on fan-in.
  const float bound = std::sqrt(6.0f / static_cast<float>(k));
  for (auto& w : weight_.value) {
    w = static_cast<float>(init_rng.uniform(-bound, bound));
  }
  bias_ = Param(Layer::name() + ".bias", tensor::Tensor({out_channels}));
  bias_.trainable = has_bias_;
}

void Conv2d::bind_geometry(const tensor::Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: expected [N, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                tensor::shape_str(x.shape()));
  }
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = x.dim(2);
  g.in_w = x.dim(3);
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = 1;
  g.pad = pad_;
  if (geometry_bound_ && (g.in_h != geometry_.in_h || g.in_w != geometry_.in_w)) {
    throw std::invalid_argument("Conv2d: input spatial size changed");
  }
  geometry_ = g;
  geometry_bound_ = true;
}

void Conv2d::reset_state() {
  cols_hist_.clear();
  batch_ = 0;
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, int t, Mode mode) {
  bind_geometry(x);
  const int n = x.dim(0);
  const int p = geometry_.out_pixels();
  const int k = geometry_.patch_size();
  const int m = out_channels_;
  batch_ = n;

  tensor::Tensor cols({n * p, k});
  const std::size_t in_plane =
      static_cast<std::size_t>(in_channels_) * geometry_.in_h * geometry_.in_w;
  for (int s = 0; s < n; ++s) {
    tensor::im2col(x.data() + static_cast<std::size_t>(s) * in_plane,
                   geometry_,
                   cols.data() + static_cast<std::size_t>(s) * p * k);
  }

  // GEMM: [n*p, k] x [k, m] -> [n*p, m]
  tensor::Tensor prod({n * p, m});
  GemmEngine& eng = engine_ ? *engine_ : FloatGemmEngine::instance();
  eng.run(cols.data(), weight_.value.data(), prod.data(), n * p, k, m,
          Layer::name());

  // Repack pixel-major rows into [N, Cout, OH, OW] and add bias.
  tensor::Tensor out({n, m, geometry_.out_h(), geometry_.out_w()});
  for (int s = 0; s < n; ++s) {
    for (int pix = 0; pix < p; ++pix) {
      const float* row =
          prod.data() + (static_cast<std::size_t>(s) * p + pix) * m;
      for (int c = 0; c < m; ++c) {
        out.data()[((static_cast<std::size_t>(s) * m + c) * p) + pix] =
            row[c] + (has_bias_ ? bias_.value[static_cast<std::size_t>(c)]
                                : 0.0f);
      }
    }
  }

  if (mode == Mode::kTrain) {
    if (static_cast<int>(cols_hist_.size()) != t) {
      throw std::logic_error("Conv2d::forward: cache out of sync");
    }
    cols_hist_.push_back(std::move(cols));
  }
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out, int t) {
  if (t < 0 || t >= static_cast<int>(cols_hist_.size())) {
    throw std::logic_error("Conv2d::backward: no cache for this time step");
  }
  const tensor::Tensor& cols = cols_hist_[static_cast<std::size_t>(t)];
  const int n = batch_;
  const int p = geometry_.out_pixels();
  const int k = geometry_.patch_size();
  const int m = out_channels_;
  if (grad_out.rank() != 4 || grad_out.dim(0) != n || grad_out.dim(1) != m) {
    throw std::invalid_argument("Conv2d::backward: gradient shape mismatch");
  }

  // Repack [N, Cout, OH, OW] -> G [n*p, m].
  tensor::Tensor g({n * p, m});
  for (int s = 0; s < n; ++s) {
    for (int c = 0; c < m; ++c) {
      const float* plane =
          grad_out.data() + (static_cast<std::size_t>(s) * m + c) * p;
      for (int pix = 0; pix < p; ++pix) {
        g.data()[(static_cast<std::size_t>(s) * p + pix) * m + c] =
            plane[pix];
      }
    }
  }

  // Weight gradient: W_grad[k x m] += cols^T[k x n*p] * G[n*p x m].
  if (weight_.trainable) {
    tensor::gemm_at_b(cols.data(), g.data(), weight_.grad.data(), n * p, k, m,
                      /*accumulate=*/true);
  }
  if (has_bias_ && bias_.trainable) {
    for (int row = 0; row < n * p; ++row) {
      const float* grow = g.data() + static_cast<std::size_t>(row) * m;
      for (int c = 0; c < m; ++c) {
        bias_.grad[static_cast<std::size_t>(c)] += grow[c];
      }
    }
  }

  // Input gradient: dCols[n*p x k] = G * W^T, then col2im per sample.
  tensor::Tensor dcols({n * p, k});
  tensor::gemm_a_bt(g.data(), weight_.value.data(), dcols.data(), n * p, m,
                    k);
  tensor::Tensor grad_in(
      {n, in_channels_, geometry_.in_h, geometry_.in_w});
  const std::size_t in_plane =
      static_cast<std::size_t>(in_channels_) * geometry_.in_h * geometry_.in_w;
  for (int s = 0; s < n; ++s) {
    tensor::col2im(dcols.data() + static_cast<std::size_t>(s) * p * k,
                   geometry_,
                   grad_in.data() + static_cast<std::size_t>(s) * in_plane);
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

}  // namespace falvolt::snn
