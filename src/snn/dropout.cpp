#include "snn/dropout.h"

#include <stdexcept>

namespace falvolt::snn {

Dropout::Dropout(std::string name, float p, std::uint64_t seed)
    : Layer(std::move(name)), p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

void Dropout::reset_state() { mask_ = tensor::Tensor(); }

tensor::Tensor Dropout::forward(const tensor::Tensor& x, int t, Mode mode) {
  if (mode == Mode::kEval || p_ == 0.0f) {
    train_mode_ = false;
    return x;
  }
  train_mode_ = true;
  if (t == 0 || mask_.empty()) {
    mask_ = tensor::Tensor(x.shape());
    const float scale = 1.0f / (1.0f - p_);
    for (auto& m : mask_) m = rng_.bernoulli(p_) ? 0.0f : scale;
  }
  if (mask_.shape() != x.shape()) {
    throw std::invalid_argument("Dropout: input shape changed mid-sequence");
  }
  tensor::Tensor out(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * mask_[i];
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_out, int t) {
  (void)t;
  if (!train_mode_) return grad_out;
  if (mask_.empty() || mask_.shape() != grad_out.shape()) {
    throw std::logic_error("Dropout::backward without matching forward");
  }
  tensor::Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * mask_[i];
  }
  return grad_in;
}

}  // namespace falvolt::snn
