#pragma once
// Gradient-descent optimizers over Param sets. State (momentum / moment
// estimates) is keyed by parameter identity, so the same optimizer object
// must be used with the same network throughout a training run.

#include <memory>
#include <unordered_map>
#include <vector>

#include "snn/param.h"

namespace falvolt::snn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using each param's accumulated gradient.
  /// Non-trainable params are skipped. Gradients are NOT zeroed here.
  virtual void step(const std::vector<Param*>& params) = 0;
  virtual double lr() const = 0;
  virtual void set_lr(double lr) = 0;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9);
  void step(const std::vector<Param*>& params) override;
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::unordered_map<Param*, tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<Param*>& params) override;
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

 private:
  struct State {
    tensor::Tensor m;
    tensor::Tensor v;
    long long t = 0;
  };
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::unordered_map<Param*, State> state_;
};

}  // namespace falvolt::snn
