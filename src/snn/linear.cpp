#include "snn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.h"

namespace falvolt::snn {

Linear::Linear(std::string name, int in_features, int out_features,
               common::Rng& init_rng, bool bias)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: features must be positive");
  }
  weight_ = Param(Layer::name() + ".weight",
                  tensor::Tensor({in_features, out_features}));
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  for (auto& w : weight_.value) {
    w = static_cast<float>(init_rng.uniform(-bound, bound));
  }
  bias_ = Param(Layer::name() + ".bias", tensor::Tensor({out_features}));
  bias_.trainable = has_bias_;
}

void Linear::reset_state() { input_hist_.clear(); }

tensor::Tensor Linear::forward(const tensor::Tensor& x, int t, Mode mode) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: expected [N, " +
                                std::to_string(in_features_) + "], got " +
                                tensor::shape_str(x.shape()));
  }
  const int n = x.dim(0);
  tensor::Tensor out({n, out_features_});
  GemmEngine& eng = engine_ ? *engine_ : FloatGemmEngine::instance();
  eng.run(x.data(), weight_.value.data(), out.data(), n, in_features_,
          out_features_, Layer::name());
  if (has_bias_) {
    for (int s = 0; s < n; ++s) {
      float* row = out.data() + static_cast<std::size_t>(s) * out_features_;
      for (int c = 0; c < out_features_; ++c) {
        row[c] += bias_.value[static_cast<std::size_t>(c)];
      }
    }
  }
  if (mode == Mode::kTrain) {
    if (static_cast<int>(input_hist_.size()) != t) {
      throw std::logic_error("Linear::forward: cache out of sync");
    }
    input_hist_.push_back(x);
  }
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_out, int t) {
  if (t < 0 || t >= static_cast<int>(input_hist_.size())) {
    throw std::logic_error("Linear::backward: no cache for this time step");
  }
  const tensor::Tensor& x = input_hist_[static_cast<std::size_t>(t)];
  const int n = x.dim(0);
  if (grad_out.rank() != 2 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_features_) {
    throw std::invalid_argument("Linear::backward: gradient shape mismatch");
  }
  if (weight_.trainable) {
    tensor::gemm_at_b(x.data(), grad_out.data(), weight_.grad.data(), n,
                      in_features_, out_features_, /*accumulate=*/true);
  }
  if (has_bias_ && bias_.trainable) {
    for (int s = 0; s < n; ++s) {
      const float* row =
          grad_out.data() + static_cast<std::size_t>(s) * out_features_;
      for (int c = 0; c < out_features_; ++c) {
        bias_.grad[static_cast<std::size_t>(c)] += row[c];
      }
    }
  }
  tensor::Tensor grad_in({n, in_features_});
  tensor::gemm_a_bt(grad_out.data(), weight_.value.data(), grad_in.data(), n,
                    out_features_, in_features_);
  return grad_in;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

}  // namespace falvolt::snn
