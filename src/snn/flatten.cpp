#include "snn/flatten.h"

#include <stdexcept>

namespace falvolt::snn {

tensor::Tensor Flatten::forward(const tensor::Tensor& x, int t, Mode mode) {
  (void)t;
  (void)mode;
  if (x.rank() != 4) {
    throw std::invalid_argument("Flatten: expected [N, C, H, W]");
  }
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int f = x.dim(1) * x.dim(2) * x.dim(3);
  return x.reshaped({n, f});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_out, int t) {
  (void)t;
  if (in_shape_.empty()) {
    throw std::logic_error("Flatten::backward before forward");
  }
  return grad_out.reshaped(in_shape_);
}

}  // namespace falvolt::snn
