#pragma once
// Per-channel batch normalization over [N, C, H, W], applied independently
// at each time step (statistics pooled over N*H*W of that step, running
// statistics shared across steps) — the standard arrangement for
// BPTT-trained convolutional SNNs.

#include <vector>

#include "snn/layer.h"

namespace falvolt::snn {

class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(std::string name, int channels, float momentum = 0.1f,
              float eps = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;
  std::vector<Param*> params() override;

  int channels() const { return channels_; }
  const tensor::Tensor& running_mean() const { return running_mean_.value; }
  const tensor::Tensor& running_var() const { return running_var_.value; }

 private:
  struct StepCache {
    tensor::Tensor x_hat;       // normalized input
    std::vector<float> inv_std;  // per channel
    int n = 0, h = 0, w = 0;
  };

  int channels_;
  float momentum_;
  float eps_;
  Param gamma_;  // scale [C]
  Param beta_;   // shift [C]
  // Running statistics are exposed as non-trainable Params so snapshots
  // and on-disk caches of a trained model round-trip them.
  Param running_mean_;  // [C]
  Param running_var_;   // [C]
  std::vector<StepCache> cache_;
};

}  // namespace falvolt::snn
