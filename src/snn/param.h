#pragma once
// Trainable parameter: a value tensor and its gradient accumulator.

#include <string>

#include "tensor/tensor.h"

namespace falvolt::snn {

/// A named trainable tensor. Gradients are accumulated by layer backward
/// passes across time steps and samples, then consumed by an Optimizer.
struct Param {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  bool trainable = true;

  Param() = default;
  Param(std::string n, tensor::Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.zero(); }
  std::size_t size() const { return value.size(); }
};

}  // namespace falvolt::snn
