#pragma once
// Parametric leaky-integrate-and-fire (PLIF) spiking layer (Fang et al.,
// ICCV 2021), the neuron model used by the paper.
//
// Dynamics (hard reset, V_rest = 0, k = sigmoid(w) ~ 1/tau learnable per
// layer):
//     H_t = V_{t-1} + k * (X_t - V_{t-1})        (charge)
//     z_t = H_t / V_th - 1                       (paper Eq. 1, r = v/V)
//     S_t = [z_t > 0]                            (fire)
//     V_t = H_t * (1 - S_t)                      (hard reset)
//
// Backward uses the paper's triangle surrogate (Eq. 2) for dS/dz, and —
// when V_th is marked trainable (FalVolt retraining) — accumulates the
// threshold-voltage gradient dz/dV_th = -H_t / V_th^2 (Eq. 4). The reset
// branch is detached in backward (standard practice; see DESIGN.md).

#include <vector>

#include "snn/layer.h"
#include "snn/surrogate.h"

namespace falvolt::snn {

/// Configuration of a PLIF layer.
struct PlifConfig {
  float initial_tau = 2.0f;   ///< initial membrane time constant
  float initial_vth = 1.0f;   ///< threshold voltage (the paper's V)
  bool train_tau = true;      ///< learn k = 1/tau (the "P" in PLIF)
  bool train_vth = false;     ///< learn V_th (enabled by FalVolt only)
  Surrogate surrogate;        ///< dS/dz approximation
  float vth_min = 0.05f;      ///< clamp range for learned V_th
  float vth_max = 2.0f;
};

/// Spiking PLIF layer; elementwise over any input shape.
class Plif final : public Layer {
 public:
  Plif(std::string name, const PlifConfig& cfg = {});

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;
  std::vector<Param*> params() override;
  bool is_spiking() const override { return true; }

  /// Current threshold voltage.
  float vth() const { return vth_.value[0]; }
  /// Overwrite the threshold voltage (clamped to the configured range).
  void set_vth(float v);
  /// Enable/disable V_th learning (FalVolt toggles this for retraining).
  void set_train_vth(bool enabled) { vth_.trainable = enabled; }
  bool train_vth() const { return vth_.trainable; }

  /// Membrane decay factor k = sigmoid(w) in (0, 1).
  float k() const;
  /// Equivalent time constant tau = 1/k.
  float tau() const { return 1.0f / k(); }

  const Surrogate& surrogate() const { return cfg_.surrogate; }
  /// Swap the surrogate used in backward (ablation studies).
  void set_surrogate(const Surrogate& s) { cfg_.surrogate = s; }

  /// Clamp V_th into [vth_min, vth_max]; called by optimizer step hooks.
  void clamp_vth();

 private:
  PlifConfig cfg_;
  Param vth_;    // scalar [1]
  Param w_tau_;  // scalar [1]; k = sigmoid(w_tau)
  tensor::Tensor v_;                    // membrane potential V_t
  std::vector<tensor::Tensor> h_hist_;  // H_t per step (pre-reset)
  std::vector<tensor::Tensor> s_hist_;  // S_t per step
  std::vector<tensor::Tensor> vprev_hist_;  // V_{t-1} per step
  tensor::Tensor carry_;  // dL/dV_t flowing from step t+1 in backward
  int last_forward_t_ = -1;
};

}  // namespace falvolt::snn
