#pragma once
// Surrogate gradients for the non-differentiable spike function.
//
// The paper (Eq. 2) uses the triangle surrogate
//     dS/dz = gamma * max(0, 1 - |z|),   z = v / V_th - 1,
// i.e. the gradient is largest at the threshold and fades linearly. The
// sigmoid and rectangular surrogates are provided for the ablation bench.

#include <string>

namespace falvolt::snn {

/// Which surrogate approximates dS/dz in the backward pass.
enum class SurrogateKind { kTriangle, kSigmoid, kRectangle };

/// Parameters of a surrogate gradient.
struct Surrogate {
  SurrogateKind kind = SurrogateKind::kTriangle;
  /// Peak height for triangle (paper's gamma), slope for sigmoid, height
  /// for rectangle.
  float gamma = 1.0f;

  /// dS/dz evaluated at z (z > 0 means the neuron fired).
  float grad(float z) const;

  std::string to_string() const;
};

/// Parse "triangle" / "sigmoid" / "rectangle" (throws otherwise).
SurrogateKind parse_surrogate(const std::string& name);

}  // namespace falvolt::snn
