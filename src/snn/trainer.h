#pragma once
// BPTT training loop and evaluation for spiking networks.

#include <functional>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "snn/network.h"
#include "snn/optimizer.h"

namespace falvolt::snn {

/// Per-epoch telemetry.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double test_accuracy = 0.0;  ///< percent; NaN if eval disabled
  double seconds = 0.0;
};

/// Training configuration.
struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  std::uint64_t shuffle_seed = 1;
  bool eval_each_epoch = true;
  /// Called after each optimizer epoch, before evaluation. FalVolt uses
  /// this to re-zero the weights mapped to faulty PEs (Algorithm 1 line 13).
  std::function<void(Network&)> post_epoch;
  /// Observation hook (convergence curves).
  std::function<void(const EpochStats&)> on_epoch;
};

/// Runs BPTT epochs over a training set.
class Trainer {
 public:
  Trainer(Network& net, Optimizer& opt, const data::Dataset& train,
          const data::Dataset* test, TrainConfig cfg);

  /// Train for cfg.epochs; returns per-epoch stats.
  std::vector<EpochStats> run();

  /// One epoch (shuffled mini-batches); returns the mean batch loss.
  double run_epoch();

 private:
  Network& net_;
  Optimizer& opt_;
  const data::Dataset& train_;
  const data::Dataset* test_;
  TrainConfig cfg_;
  common::Rng shuffle_rng_;
  int epoch_index_ = 0;
};

/// Assemble per-time-step batch inputs: element t is [N, C, H, W] holding
/// frame t of each selected sample.
std::vector<tensor::Tensor> make_batch(const data::Dataset& ds,
                                       const std::vector<int>& indices);

/// Labels of the selected samples.
std::vector<int> batch_labels(const data::Dataset& ds,
                              const std::vector<int>& indices);

/// Forward a batch through the net in eval mode; returns the mean firing
/// rate of the output layer, shape [N, classes].
tensor::Tensor infer_rates(Network& net, const data::Dataset& ds,
                           const std::vector<int>& indices);

/// A prebuilt whole-set evaluation batch: one input tensor per time step
/// covering every sample, plus the labels. Build once per dataset and
/// reuse across evaluations — assembling the step tensors is then paid
/// once instead of per evaluation, and evaluate(net, batch) runs ONE
/// forward per time step for all samples (batched eval mode), so a
/// plugged GEMM engine resolves its per-layer fault plan once per step
/// rather than once per 64-sample chunk.
struct EvalBatch {
  std::vector<tensor::Tensor> steps;  ///< [T] tensors of shape [N,C,H,W]
  std::vector<int> labels;            ///< N labels, sample order
};

/// Assemble the whole dataset into one EvalBatch.
EvalBatch make_eval_batch(const data::Dataset& ds);

/// Top-1 accuracy (percent) over a prebuilt batch. Bit-identical to
/// evaluate(net, ds, any batch_size) over the same samples.
double evaluate(Network& net, const EvalBatch& batch);

/// Top-1 accuracy (percent) of the network on a dataset. batch_size <= 0
/// evaluates the whole set as a single batch (batched eval mode).
double evaluate(Network& net, const data::Dataset& ds, int batch_size = 64);

}  // namespace falvolt::snn
