#pragma once
// 2D convolution layer, lowered to GEMM via im2col.
//
// The GEMM weight matrix is [K x M] with K = Cin*kh*kw and M = Cout; this
// is exactly the matrix that gets laid onto the systolic array, so the
// fault/prune machinery addresses conv weights through `MatmulLayer`.

#include <vector>

#include "common/rng.h"
#include "snn/layer.h"
#include "tensor/im2col.h"

namespace falvolt::snn {

/// Convolution over [N, Cin, H, W] inputs producing [N, Cout, OH, OW].
class Conv2d final : public Layer, public MatmulLayer {
 public:
  /// Stride-1 convolution with explicit padding (pad = kernel/2 keeps the
  /// spatial size for odd kernels).
  Conv2d(std::string name, int in_channels, int out_channels, int kernel,
         int pad, common::Rng& init_rng, bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;
  std::vector<Param*> params() override;

  // MatmulLayer
  Param& weight_param() override { return weight_; }
  int gemm_k() const override { return in_channels_ * kernel_ * kernel_; }
  int gemm_m() const override { return out_channels_; }
  void set_gemm_engine(GemmEngine* engine) override { engine_ = engine; }
  const std::string& matmul_name() const override { return Layer::name(); }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }

 private:
  void bind_geometry(const tensor::Tensor& x);

  int in_channels_;
  int out_channels_;
  int kernel_;
  int pad_;
  bool has_bias_;
  Param weight_;  // [K x Cout]
  Param bias_;    // [Cout]
  tensor::ConvGeometry geometry_;
  bool geometry_bound_ = false;
  GemmEngine* engine_ = nullptr;  // non-owning; nullptr -> float engine
  // Per-time-step caches of the im2col matrices: [N * out_pixels, K].
  std::vector<tensor::Tensor> cols_hist_;
  int batch_ = 0;
};

}  // namespace falvolt::snn
