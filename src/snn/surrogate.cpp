#include "snn/surrogate.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::snn {

float Surrogate::grad(float z) const {
  switch (kind) {
    case SurrogateKind::kTriangle: {
      const float t = 1.0f - std::fabs(z);
      return t > 0.0f ? gamma * t : 0.0f;
    }
    case SurrogateKind::kSigmoid: {
      // d/dz sigmoid(gamma*z) = gamma * s * (1 - s)
      const float s = 1.0f / (1.0f + std::exp(-gamma * z));
      return gamma * s * (1.0f - s);
    }
    case SurrogateKind::kRectangle:
      return std::fabs(z) < 0.5f ? gamma : 0.0f;
  }
  return 0.0f;
}

std::string Surrogate::to_string() const {
  const char* k = kind == SurrogateKind::kTriangle   ? "triangle"
                  : kind == SurrogateKind::kSigmoid ? "sigmoid"
                                                    : "rectangle";
  return std::string(k) + "(gamma=" + std::to_string(gamma) + ")";
}

SurrogateKind parse_surrogate(const std::string& name) {
  if (name == "triangle") return SurrogateKind::kTriangle;
  if (name == "sigmoid") return SurrogateKind::kSigmoid;
  if (name == "rectangle") return SurrogateKind::kRectangle;
  throw std::invalid_argument("unknown surrogate: " + name);
}

}  // namespace falvolt::snn
