#pragma once
// 2x2 average pooling (stride 2). Average pooling preserves firing-rate
// information of spike trains, which is why convolutional SNNs prefer it
// over max pooling.

#include "snn/layer.h"

namespace falvolt::snn {

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::string name, int window = 2);

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;

  int window() const { return window_; }

 private:
  int window_;
  tensor::Shape in_shape_;  // remembered for backward
};

}  // namespace falvolt::snn
