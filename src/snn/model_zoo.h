#pragma once
// The paper's two network architectures, scaled for CPU simulation
// (DESIGN.md §3).
//
// Digit classifier (MNIST / N-MNIST): spike-encoder {Conv + PLIF}, then
// 2x {Conv + BN + PLIF + AvgPool}, then 2x {Dropout + FC + PLIF}. Hidden
// spiking layers are PLIF1, PLIF2, PLIF_FC1, PLIF_FC2, matching the
// Conv1/Conv2/FC1/FC2 threshold bars in the paper's Fig. 6a/6b.
//
// Gesture classifier (DVS128-Gesture): same, with the conv block repeated
// five times (Conv1..Conv5 + FC1/FC2, Fig. 6c).

#include "snn/network.h"
#include "snn/surrogate.h"

namespace falvolt::snn {

/// Width / regularization knobs of the zoo models.
struct ZooConfig {
  int channels = 8;        ///< conv width
  int fc_hidden = 32;      ///< FC1 width
  float dropout = 0.2f;
  float initial_tau = 2.0f;
  float initial_vth = 1.0f;
  /// Triangle surrogate (paper Eq. 2). gamma = 2 strengthens the credit
  /// assignment enough for the scaled-down CPU models to reach their
  /// ~99% baselines; the paper leaves gamma unspecified.
  Surrogate surrogate{SurrogateKind::kTriangle, 2.0f};
  std::uint64_t seed = 7;  ///< weight init / dropout seed
};

/// Two-conv-block classifier for 16x16-ish digit inputs. The canvas must
/// be divisible by 4 (two 2x2 pools).
Network make_digit_classifier(const std::string& name, int in_channels,
                              int canvas, int num_classes,
                              const ZooConfig& cfg = {});

/// Five-conv-block classifier for gesture inputs. The canvas must be
/// divisible by 8 (three 2x2 pools; blocks 4-5 keep the spatial size).
Network make_gesture_classifier(const std::string& name, int in_channels,
                                int canvas, int num_classes,
                                const ZooConfig& cfg = {});

}  // namespace falvolt::snn
