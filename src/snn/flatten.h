#pragma once
// Flattens [N, C, H, W] to [N, C*H*W] between the conv stack and the
// fully connected head.

#include "snn/layer.h"

namespace falvolt::snn {

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override { in_shape_.clear(); }

 private:
  tensor::Shape in_shape_;
};

}  // namespace falvolt::snn
