#pragma once
// Dropout with a mask shared across all time steps of a sequence — the
// standard choice for BPTT-trained SNNs (re-drawing the mask per step
// would decorrelate the temporal credit assignment).

#include "common/rng.h"
#include "snn/layer.h"

namespace falvolt::snn {

class Dropout final : public Layer {
 public:
  Dropout(std::string name, float p, std::uint64_t seed);

  tensor::Tensor forward(const tensor::Tensor& x, int t, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out, int t) override;
  void reset_state() override;

  float p() const { return p_; }

 private:
  float p_;
  common::Rng rng_;
  tensor::Tensor mask_;  // drawn lazily at t == 0 of each sequence
  bool train_mode_ = false;
};

}  // namespace falvolt::snn
