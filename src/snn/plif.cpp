#include "snn/plif.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace falvolt::snn {

namespace {
float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Plif::Plif(std::string name, const PlifConfig& cfg)
    : Layer(std::move(name)), cfg_(cfg) {
  if (cfg.initial_tau <= 1.0f) {
    throw std::invalid_argument("Plif: initial_tau must be > 1");
  }
  if (cfg.initial_vth <= 0.0f) {
    throw std::invalid_argument("Plif: initial_vth must be > 0");
  }
  vth_ = Param(Layer::name() + ".vth", tensor::Tensor({1}, cfg.initial_vth));
  vth_.trainable = cfg.train_vth;
  // k = sigmoid(w) = 1/tau  =>  w = logit(1/tau)
  const float k0 = 1.0f / cfg.initial_tau;
  const float w0 = std::log(k0 / (1.0f - k0));
  w_tau_ = Param(Layer::name() + ".w_tau", tensor::Tensor({1}, w0));
  w_tau_.trainable = cfg.train_tau;
}

float Plif::k() const { return sigmoid(w_tau_.value[0]); }

void Plif::set_vth(float v) {
  vth_.value[0] = std::clamp(v, cfg_.vth_min, cfg_.vth_max);
}

void Plif::clamp_vth() { set_vth(vth_.value[0]); }

void Plif::reset_state() {
  v_ = tensor::Tensor();
  carry_ = tensor::Tensor();
  h_hist_.clear();
  s_hist_.clear();
  vprev_hist_.clear();
  last_forward_t_ = -1;
}

tensor::Tensor Plif::forward(const tensor::Tensor& x, int t, Mode mode) {
  if (t != last_forward_t_ + 1) {
    throw std::logic_error("Plif::forward: time steps must be consecutive "
                           "(did you forget reset_state()?)");
  }
  last_forward_t_ = t;
  if (v_.empty()) {
    v_ = tensor::Tensor(x.shape());
  } else if (v_.shape() != x.shape()) {
    throw std::invalid_argument("Plif::forward: input shape changed mid-sequence");
  }

  const float kk = k();
  const float vth = vth_.value[0];
  tensor::Tensor h(x.shape());
  tensor::Tensor s(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float hi = v_[i] + kk * (x[i] - v_[i]);
    h[i] = hi;
    const bool fire = hi > vth;
    s[i] = fire ? 1.0f : 0.0f;
    v_[i] = fire ? 0.0f : hi;  // hard reset
  }
  if (mode == Mode::kTrain) {
    // vprev for step t is the membrane *before* this update; recover it
    // lazily: store h and s, and V_{t-1} = previous stored post-reset V.
    if (static_cast<int>(h_hist_.size()) != t) {
      throw std::logic_error("Plif::forward: cache out of sync");
    }
    vprev_hist_.push_back(t == 0 ? tensor::Tensor(x.shape()) :
        [&] {
          // Reconstruct V_{t-1} from the previous step's cache: it equals
          // H_{t-1} where S_{t-1} == 0, else 0.
          tensor::Tensor vp(x.shape());
          const auto& hp = h_hist_.back();
          const auto& sp = s_hist_.back();
          for (std::size_t i = 0; i < vp.size(); ++i) {
            vp[i] = sp[i] > 0.5f ? 0.0f : hp[i];
          }
          return vp;
        }());
    h_hist_.push_back(h);
    s_hist_.push_back(s);
  }
  return s;
}

tensor::Tensor Plif::backward(const tensor::Tensor& grad_out, int t) {
  if (t < 0 || t >= static_cast<int>(h_hist_.size())) {
    throw std::logic_error("Plif::backward: no cache for this time step");
  }
  const auto& h = h_hist_[static_cast<std::size_t>(t)];
  const auto& s = s_hist_[static_cast<std::size_t>(t)];
  const auto& vprev = vprev_hist_[static_cast<std::size_t>(t)];
  if (grad_out.shape() != h.shape()) {
    throw std::invalid_argument("Plif::backward: gradient shape mismatch");
  }
  if (carry_.empty()) carry_ = tensor::Tensor(h.shape());

  const float kk = k();
  const float vth = vth_.value[0];
  const float inv_vth = 1.0f / vth;

  tensor::Tensor grad_in(h.shape());
  double dvth = 0.0;
  double dk = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const float z = h[i] * inv_vth - 1.0f;
    const float sg = cfg_.surrogate.grad(z);
    // dL/dH_t: spike branch + (detached-reset) membrane branch.
    const float dh =
        grad_out[i] * sg * inv_vth + carry_[i] * (1.0f - s[i]);
    // Threshold-voltage gradient (paper Eq. 4): dz/dV = -H / V^2.
    dvth += static_cast<double>(grad_out[i]) * sg *
            (-h[i] * inv_vth * inv_vth);
    // dH/dk = X_t - V_{t-1} = (H_t - V_{t-1}) / k.
    dk += static_cast<double>(dh) * (h[i] - vprev[i]) / kk;
    grad_in[i] = dh * kk;
    carry_[i] = dh * (1.0f - kk);  // dL/dV_{t-1}
  }
  if (vth_.trainable) {
    vth_.grad[0] += static_cast<float>(dvth);
  }
  if (w_tau_.trainable) {
    w_tau_.grad[0] += static_cast<float>(dk) * kk * (1.0f - kk);
  }
  return grad_in;
}

std::vector<Param*> Plif::params() { return {&vth_, &w_tau_}; }

}  // namespace falvolt::snn
