#pragma once
// Firing-rate MSE loss.
//
// The paper trains with "cross entropy loss defined by the mean square
// error" — i.e. the SpikingJelly-style MSE between the output layer's mean
// firing rate over the T time steps and the one-hot label. The per-step
// backward gradient is the rate gradient divided by T (each step
// contributes equally to the mean).

#include <vector>

#include "tensor/tensor.h"

namespace falvolt::snn {

struct LossResult {
  double loss = 0.0;
  tensor::Tensor grad_rate;  ///< dL/d(rate), shape [N, classes]
};

/// MSE between `rate` [N, classes] and one-hot labels, averaged over all
/// elements. Throws if a label is out of range.
LossResult rate_mse_loss(const tensor::Tensor& rate,
                         const std::vector<int>& labels);

}  // namespace falvolt::snn
