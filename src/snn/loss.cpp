#include "snn/loss.h"

#include <stdexcept>

namespace falvolt::snn {

LossResult rate_mse_loss(const tensor::Tensor& rate,
                         const std::vector<int>& labels) {
  if (rate.rank() != 2) {
    throw std::invalid_argument("rate_mse_loss: rate must be [N, classes]");
  }
  const int n = rate.dim(0);
  const int c = rate.dim(1);
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("rate_mse_loss: label count mismatch");
  }
  LossResult res;
  res.grad_rate = tensor::Tensor(rate.shape());
  const double inv = 1.0 / (static_cast<double>(n) * c);
  for (int s = 0; s < n; ++s) {
    const int label = labels[static_cast<std::size_t>(s)];
    if (label < 0 || label >= c) {
      throw std::invalid_argument("rate_mse_loss: label out of range");
    }
    for (int j = 0; j < c; ++j) {
      const float target = j == label ? 1.0f : 0.0f;
      const float diff =
          rate[static_cast<std::size_t>(s) * c + j] - target;
      res.loss += static_cast<double>(diff) * diff * inv;
      res.grad_rate[static_cast<std::size_t>(s) * c + j] =
          static_cast<float>(2.0 * diff * inv);
    }
  }
  return res;
}

}  // namespace falvolt::snn
