#include "snn/layer.h"

#include "tensor/gemm.h"

namespace falvolt::snn {

void FloatGemmEngine::run(const float* a, const float* w, float* c, int m,
                          int k, int n, const std::string& layer_tag) {
  (void)layer_tag;
  tensor::gemm(a, w, c, m, k, n);
}

FloatGemmEngine& FloatGemmEngine::instance() {
  static FloatGemmEngine engine;
  return engine;
}

}  // namespace falvolt::snn
