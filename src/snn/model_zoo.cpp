#include "snn/model_zoo.h"

#include <stdexcept>

#include "snn/batchnorm.h"
#include "snn/conv2d.h"
#include "snn/dropout.h"
#include "snn/flatten.h"
#include "snn/linear.h"
#include "snn/plif.h"
#include "snn/pooling.h"

namespace falvolt::snn {

namespace {

// Spiking networks need hotter fully-connected initializations than ANNs:
// FC inputs are sparse low-rate spike averages, and with Kaiming-sized
// weights the pre-activations land below the triangle surrogate's support
// (|v/V_th - 1| < 1), so no gradient ever reaches the head. A ~3x gain
// puts the initial membrane potentials inside the surrogate window.
constexpr float kFcInitGain = 3.0f;

void scale_weights(Linear& fc, float gain) {
  for (auto& w : fc.weight_param().value) w *= gain;
}

PlifConfig plif_config(const ZooConfig& cfg) {
  PlifConfig pc;
  pc.initial_tau = cfg.initial_tau;
  pc.initial_vth = cfg.initial_vth;
  pc.surrogate = cfg.surrogate;
  pc.train_tau = true;
  pc.train_vth = false;  // FalVolt flips this during retraining only
  return pc;
}

}  // namespace

Network make_digit_classifier(const std::string& name, int in_channels,
                              int canvas, int num_classes,
                              const ZooConfig& cfg) {
  if (canvas % 4 != 0) {
    throw std::invalid_argument(
        "make_digit_classifier: canvas must be divisible by 4");
  }
  common::Rng init(cfg.seed);
  const PlifConfig pc = plif_config(cfg);
  Network net(name);

  // Spike encoder: analog frames in, spikes out.
  net.emplace<Conv2d>("SEncConv", in_channels, cfg.channels, 3, 1, init);
  net.emplace<Plif>("SEncPLIF", pc);

  // Conv block 1.
  net.emplace<Conv2d>("Conv1", cfg.channels, cfg.channels, 3, 1, init);
  net.emplace<BatchNorm2d>("BN1", cfg.channels);
  net.emplace<Plif>("PLIF1", pc);
  net.emplace<AvgPool2d>("Pool1");

  // Conv block 2.
  net.emplace<Conv2d>("Conv2", cfg.channels, cfg.channels, 3, 1, init);
  net.emplace<BatchNorm2d>("BN2", cfg.channels);
  net.emplace<Plif>("PLIF2", pc);
  net.emplace<AvgPool2d>("Pool2");

  net.emplace<Flatten>("Flatten");
  const int feat = cfg.channels * (canvas / 4) * (canvas / 4);
  net.emplace<Dropout>("DO1", cfg.dropout, init.next_u64());
  scale_weights(net.emplace<Linear>("FC1", feat, cfg.fc_hidden, init),
                kFcInitGain);
  net.emplace<Plif>("PLIF_FC1", pc);
  net.emplace<Dropout>("DO2", cfg.dropout, init.next_u64());
  scale_weights(net.emplace<Linear>("FC2", cfg.fc_hidden, num_classes, init),
                kFcInitGain);
  net.emplace<Plif>("PLIF_FC2", pc);
  return net;
}

Network make_gesture_classifier(const std::string& name, int in_channels,
                                int canvas, int num_classes,
                                const ZooConfig& cfg) {
  if (canvas % 8 != 0) {
    throw std::invalid_argument(
        "make_gesture_classifier: canvas must be divisible by 8");
  }
  common::Rng init(cfg.seed);
  const PlifConfig pc = plif_config(cfg);
  Network net(name);

  net.emplace<Conv2d>("SEncConv", in_channels, cfg.channels, 3, 1, init);
  net.emplace<Plif>("SEncPLIF", pc);

  int spatial = canvas;
  for (int b = 1; b <= 5; ++b) {
    const std::string suffix = std::to_string(b);
    net.emplace<Conv2d>("Conv" + suffix, cfg.channels, cfg.channels, 3, 1,
                        init);
    net.emplace<BatchNorm2d>("BN" + suffix, cfg.channels);
    net.emplace<Plif>("PLIF" + suffix, pc);
    if (b <= 3) {  // three pools: canvas -> canvas/8
      net.emplace<AvgPool2d>("Pool" + suffix);
      spatial /= 2;
    }
  }

  net.emplace<Flatten>("Flatten");
  const int feat = cfg.channels * spatial * spatial;
  net.emplace<Dropout>("DO1", cfg.dropout, init.next_u64());
  scale_weights(net.emplace<Linear>("FC1", feat, cfg.fc_hidden, init),
                kFcInitGain);
  net.emplace<Plif>("PLIF_FC1", pc);
  net.emplace<Dropout>("DO2", cfg.dropout, init.next_u64());
  scale_weights(net.emplace<Linear>("FC2", cfg.fc_hidden, num_classes, init),
                kFcInitGain);
  net.emplace<Plif>("PLIF_FC2", pc);
  return net;
}

}  // namespace falvolt::snn
