#include "snn/pooling.h"

#include <stdexcept>

namespace falvolt::snn {

AvgPool2d::AvgPool2d(std::string name, int window)
    : Layer(std::move(name)), window_(window) {
  if (window <= 0) throw std::invalid_argument("AvgPool2d: window must be > 0");
}

void AvgPool2d::reset_state() { in_shape_.clear(); }

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& x, int t, Mode mode) {
  (void)t;
  (void)mode;
  if (x.rank() != 4) {
    throw std::invalid_argument("AvgPool2d: expected [N, C, H, W]");
  }
  const int n = x.dim(0);
  const int c = x.dim(1);
  const int h = x.dim(2);
  const int w = x.dim(3);
  if (h % window_ != 0 || w % window_ != 0) {
    throw std::invalid_argument("AvgPool2d: H and W must be divisible by window");
  }
  in_shape_ = x.shape();
  const int oh = h / window_;
  const int ow = w / window_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  tensor::Tensor out({n, c, oh, ow});
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* in_plane =
          x.data() + (static_cast<std::size_t>(s) * c + ch) *
                         static_cast<std::size_t>(h) * w;
      float* out_plane =
          out.data() + (static_cast<std::size_t>(s) * c + ch) *
                           static_cast<std::size_t>(oh) * ow;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int ky = 0; ky < window_; ++ky) {
            const float* row =
                in_plane + static_cast<std::size_t>(oy * window_ + ky) * w +
                ox * window_;
            for (int kx = 0; kx < window_; ++kx) acc += row[kx];
          }
          out_plane[static_cast<std::size_t>(oy) * ow + ox] = acc * inv;
        }
      }
    }
  }
  return out;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_out, int t) {
  (void)t;
  if (in_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward before forward");
  }
  const int n = in_shape_[0];
  const int c = in_shape_[1];
  const int h = in_shape_[2];
  const int w = in_shape_[3];
  const int oh = h / window_;
  const int ow = w / window_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  tensor::Tensor grad_in(in_shape_);
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* g =
          grad_out.data() + (static_cast<std::size_t>(s) * c + ch) *
                                static_cast<std::size_t>(oh) * ow;
      float* gi = grad_in.data() + (static_cast<std::size_t>(s) * c + ch) *
                                       static_cast<std::size_t>(h) * w;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float v = g[static_cast<std::size_t>(oy) * ow + ox] * inv;
          for (int ky = 0; ky < window_; ++ky) {
            float* row = gi + static_cast<std::size_t>(oy * window_ + ky) * w +
                         ox * window_;
            for (int kx = 0; kx < window_; ++kx) row[kx] += v;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace falvolt::snn
