#include "snn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::snn {

BatchNorm2d::BatchNorm2d(std::string name, int channels, float momentum,
                         float eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps) {
  if (channels <= 0) {
    throw std::invalid_argument("BatchNorm2d: channels must be positive");
  }
  gamma_ = Param(Layer::name() + ".gamma", tensor::Tensor({channels}, 1.0f));
  beta_ = Param(Layer::name() + ".beta", tensor::Tensor({channels}));
  running_mean_ =
      Param(Layer::name() + ".running_mean", tensor::Tensor({channels}));
  running_mean_.trainable = false;
  running_var_ =
      Param(Layer::name() + ".running_var", tensor::Tensor({channels}, 1.0f));
  running_var_.trainable = false;
}

void BatchNorm2d::reset_state() { cache_.clear(); }

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& x, int t,
                                    Mode mode) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected [N, " +
                                std::to_string(channels_) + ", H, W]");
  }
  const int n = x.dim(0);
  const int h = x.dim(2);
  const int w = x.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t per_c = static_cast<std::size_t>(n) * plane;

  tensor::Tensor out(x.shape());
  StepCache sc;
  sc.n = n;
  sc.h = h;
  sc.w = w;
  if (mode == Mode::kTrain) {
    sc.x_hat = tensor::Tensor(x.shape());
    sc.inv_std.resize(static_cast<std::size_t>(channels_));
  }

  for (int c = 0; c < channels_; ++c) {
    double mean;
    double var;
    if (mode == Mode::kTrain) {
      double sum = 0.0;
      double sq = 0.0;
      for (int s = 0; s < n; ++s) {
        const float* p =
            x.data() + (static_cast<std::size_t>(s) * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += p[i];
          sq += static_cast<double>(p[i]) * p[i];
        }
      }
      mean = sum / static_cast<double>(per_c);
      var = sq / static_cast<double>(per_c) - mean * mean;
      if (var < 0.0) var = 0.0;
      running_mean_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) *
              running_mean_.value[static_cast<std::size_t>(c)] +
          momentum_ * static_cast<float>(mean);
      running_var_.value[static_cast<std::size_t>(c)] =
          (1.0f - momentum_) *
              running_var_.value[static_cast<std::size_t>(c)] +
          momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_.value[static_cast<std::size_t>(c)];
      var = running_var_.value[static_cast<std::size_t>(c)];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    for (int s = 0; s < n; ++s) {
      const std::size_t off =
          (static_cast<std::size_t>(s) * channels_ + c) * plane;
      const float* p = x.data() + off;
      float* o = out.data() + off;
      float* xh = mode == Mode::kTrain ? sc.x_hat.data() + off : nullptr;
      for (std::size_t i = 0; i < plane; ++i) {
        const float norm = (p[i] - static_cast<float>(mean)) * inv_std;
        if (xh) xh[i] = norm;
        o[i] = g * norm + b;
      }
    }
    if (mode == Mode::kTrain) {
      sc.inv_std[static_cast<std::size_t>(c)] = inv_std;
    }
  }

  if (mode == Mode::kTrain) {
    if (static_cast<int>(cache_.size()) != t) {
      throw std::logic_error("BatchNorm2d::forward: cache out of sync");
    }
    cache_.push_back(std::move(sc));
  }
  return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_out, int t) {
  if (t < 0 || t >= static_cast<int>(cache_.size())) {
    throw std::logic_error("BatchNorm2d::backward: no cache for step");
  }
  const StepCache& sc = cache_[static_cast<std::size_t>(t)];
  const int n = sc.n;
  const std::size_t plane = static_cast<std::size_t>(sc.h) * sc.w;
  const std::size_t per_c = static_cast<std::size_t>(n) * plane;
  if (grad_out.shape() != sc.x_hat.shape()) {
    throw std::invalid_argument("BatchNorm2d::backward: shape mismatch");
  }

  tensor::Tensor grad_in(grad_out.shape());
  for (int c = 0; c < channels_; ++c) {
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = sc.inv_std[static_cast<std::size_t>(c)];
    // Reductions: sum(dy), sum(dy * x_hat).
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int s = 0; s < n; ++s) {
      const std::size_t off =
          (static_cast<std::size_t>(s) * channels_ + c) * plane;
      const float* dy = grad_out.data() + off;
      const float* xh = sc.x_hat.data() + off;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    if (gamma_.trainable) {
      gamma_.grad[static_cast<std::size_t>(c)] +=
          static_cast<float>(sum_dy_xhat);
    }
    if (beta_.trainable) {
      beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    }
    const float mean_dy = static_cast<float>(sum_dy / per_c);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / per_c);
    for (int s = 0; s < n; ++s) {
      const std::size_t off =
          (static_cast<std::size_t>(s) * channels_ + c) * plane;
      const float* dy = grad_out.data() + off;
      const float* xh = sc.x_hat.data() + off;
      float* dx = grad_in.data() + off;
      for (std::size_t i = 0; i < plane; ++i) {
        dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() {
  return {&gamma_, &beta_, &running_mean_, &running_var_};
}

}  // namespace falvolt::snn
