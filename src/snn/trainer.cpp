#include "snn/trainer.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/timer.h"
#include "snn/loss.h"
#include "tensor/tensor_ops.h"

namespace falvolt::snn {

std::vector<tensor::Tensor> make_batch(const data::Dataset& ds,
                                       const std::vector<int>& indices) {
  const int t_steps = ds.time_steps();
  const int n = static_cast<int>(indices.size());
  const std::size_t plane = static_cast<std::size_t>(ds.channels()) *
                            ds.height() * ds.width();
  std::vector<tensor::Tensor> steps;
  steps.reserve(static_cast<std::size_t>(t_steps));
  for (int t = 0; t < t_steps; ++t) {
    steps.emplace_back(
        tensor::Shape{n, ds.channels(), ds.height(), ds.width()});
  }
  for (int s = 0; s < n; ++s) {
    const data::Sample& sample = ds[indices[static_cast<std::size_t>(s)]];
    for (int t = 0; t < t_steps; ++t) {
      std::memcpy(
          steps[static_cast<std::size_t>(t)].data() +
              static_cast<std::size_t>(s) * plane,
          sample.frames.data() + static_cast<std::size_t>(t) * plane,
          plane * sizeof(float));
    }
  }
  return steps;
}

std::vector<int> batch_labels(const data::Dataset& ds,
                              const std::vector<int>& indices) {
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (const int i : indices) labels.push_back(ds[i].label);
  return labels;
}

Trainer::Trainer(Network& net, Optimizer& opt, const data::Dataset& train,
                 const data::Dataset* test, TrainConfig cfg)
    : net_(net),
      opt_(opt),
      train_(train),
      test_(test),
      cfg_(std::move(cfg)),
      shuffle_rng_(cfg_.shuffle_seed) {
  if (cfg_.epochs < 0 || cfg_.batch_size <= 0) {
    throw std::invalid_argument("Trainer: bad epochs/batch_size");
  }
}

double Trainer::run_epoch() {
  const int n = train_.size();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  shuffle_rng_.shuffle(order);

  const int t_steps = train_.time_steps();
  double loss_sum = 0.0;
  int batches = 0;
  for (int start = 0; start < n; start += cfg_.batch_size) {
    const int end = std::min(n, start + cfg_.batch_size);
    const std::vector<int> idx(order.begin() + start, order.begin() + end);
    const auto steps = make_batch(train_, idx);
    const auto labels = batch_labels(train_, idx);
    const int bsz = static_cast<int>(idx.size());

    net_.reset_state();
    net_.zero_grad();

    tensor::Tensor out_sum;
    for (int t = 0; t < t_steps; ++t) {
      tensor::Tensor out =
          net_.forward(steps[static_cast<std::size_t>(t)], t, Mode::kTrain);
      if (out.rank() != 2 || out.dim(0) != bsz) {
        throw std::logic_error("Trainer: network output must be [N, classes]");
      }
      if (out_sum.empty()) {
        out_sum = out;
      } else {
        tensor::add_inplace(out_sum, out);
      }
    }
    tensor::Tensor rate = out_sum;
    tensor::scale_inplace(rate, 1.0f / static_cast<float>(t_steps));
    const LossResult lr = rate_mse_loss(rate, labels);
    loss_sum += lr.loss;
    ++batches;

    // Each step's output spikes contribute 1/T of the mean rate.
    tensor::Tensor step_grad = lr.grad_rate;
    tensor::scale_inplace(step_grad, 1.0f / static_cast<float>(t_steps));
    for (int t = t_steps - 1; t >= 0; --t) {
      net_.backward(step_grad, t);
    }
    opt_.step(net_.params());
    for (Plif* p : net_.spiking_layers()) p->clamp_vth();
  }
  return batches ? loss_sum / batches : 0.0;
}

std::vector<EpochStats> Trainer::run() {
  std::vector<EpochStats> stats;
  for (int e = 0; e < cfg_.epochs; ++e) {
    common::Timer timer;
    EpochStats s;
    s.epoch = epoch_index_++;
    s.train_loss = run_epoch();
    if (cfg_.post_epoch) cfg_.post_epoch(net_);
    s.test_accuracy = (cfg_.eval_each_epoch && test_)
                          ? evaluate(net_, *test_)
                          : std::numeric_limits<double>::quiet_NaN();
    s.seconds = timer.seconds();
    if (cfg_.on_epoch) cfg_.on_epoch(s);
    stats.push_back(s);
  }
  return stats;
}

tensor::Tensor infer_rates(Network& net, const data::Dataset& ds,
                           const std::vector<int>& indices) {
  return net.rate_forward(make_batch(ds, indices));
}

EvalBatch make_eval_batch(const data::Dataset& ds) {
  EvalBatch batch;
  std::vector<int> idx(static_cast<std::size_t>(ds.size()));
  std::iota(idx.begin(), idx.end(), 0);
  batch.steps = make_batch(ds, idx);
  batch.labels = batch_labels(ds, idx);
  return batch;
}

double evaluate(Network& net, const EvalBatch& batch) {
  if (batch.labels.empty()) return 0.0;
  const tensor::Tensor rates = net.rate_forward(batch.steps);
  const auto pred = tensor::argmax_rows(rates);
  int correct = 0;
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    if (pred[i] == batch.labels[i]) ++correct;
  }
  return 100.0 * correct / static_cast<double>(batch.labels.size());
}

double evaluate(Network& net, const data::Dataset& ds, int batch_size) {
  if (ds.size() == 0) return 0.0;
  if (batch_size <= 0) batch_size = ds.size();  // batched eval mode
  int correct = 0;
  for (int start = 0; start < ds.size(); start += batch_size) {
    const int end = std::min(ds.size(), start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const tensor::Tensor rates = infer_rates(net, ds, idx);
    const auto pred = tensor::argmax_rows(rates);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (pred[i] == ds[idx[i]].label) ++correct;
    }
  }
  return 100.0 * correct / static_cast<double>(ds.size());
}

}  // namespace falvolt::snn
