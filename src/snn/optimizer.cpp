#include "snn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace falvolt::snn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
}

void Sgd::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (!p->trainable) continue;
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    tensor::Tensor& v = it->second;
    if (!inserted && v.shape() != p->value.shape()) {
      throw std::logic_error("Sgd: parameter shape changed");
    }
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      v[i] = static_cast<float>(momentum_ * v[i] + p->grad[i]);
      p->value[i] -= static_cast<float>(lr_ * v[i]);
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (!p->trainable) continue;
    auto it = state_.find(p);
    if (it == state_.end()) {
      State s;
      s.m = tensor::Tensor(p->value.shape());
      s.v = tensor::Tensor(p->value.shape());
      it = state_.emplace(p, std::move(s)).first;
    }
    State& s = it->second;
    ++s.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.t));
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      s.m[i] = static_cast<float>(beta1_ * s.m[i] + (1.0 - beta1_) * g);
      s.v[i] = static_cast<float>(beta2_ * s.v[i] + (1.0 - beta2_) * g * g);
      const double mhat = s.m[i] / bc1;
      const double vhat = s.v[i] / bc2;
      p->value[i] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace falvolt::snn
