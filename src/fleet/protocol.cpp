#include "fleet/protocol.h"

#include <stdexcept>

#include "common/bytes.h"

namespace falvolt::fleet {

using common::ByteReader;
using common::put_f64;
using common::put_i32;
using common::put_str;
using common::put_u32;

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(5 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  out += static_cast<char>(type);
  out += payload;
  return out;
}

std::optional<Frame> FrameBuffer::next() {
  ByteReader r{buf_};
  std::uint32_t length = 0;
  if (!r.u32(length)) return std::nullopt;
  if (length == 0 || length > kMaxFrameBytes) {
    throw std::runtime_error("fleet protocol: bad frame length " +
                             std::to_string(length));
  }
  if (r.remaining() < length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(
      static_cast<unsigned char>(buf_[r.pos]));
  frame.payload.assign(buf_, r.pos + 1, length - 1);
  buf_.erase(0, r.pos + length);
  return frame;
}

std::string encode_hello(const HelloFrame& f) {
  std::string p;
  put_u32(p, f.version);
  put_str(p, f.worker);
  return encode_frame(FrameType::kHello, p);
}

bool decode_hello(const Frame& frame, HelloFrame& out) {
  if (frame.type != FrameType::kHello) return false;
  ByteReader r{frame.payload};
  return r.u32(out.version) && r.str(out.worker) && r.remaining() == 0;
}

std::string encode_welcome(const WelcomeFrame& f) {
  std::string p;
  put_u32(p, f.version);
  put_i32(p, f.worker_id);
  return encode_frame(FrameType::kWelcome, p);
}

bool decode_welcome(const Frame& frame, WelcomeFrame& out) {
  if (frame.type != FrameType::kWelcome) return false;
  ByteReader r{frame.payload};
  return r.u32(out.version) && r.i32(out.worker_id) && r.remaining() == 0;
}

std::string encode_claim_request() {
  return encode_frame(FrameType::kClaimRequest, "");
}

std::string encode_claim(const ClaimFrame& f) {
  std::string p;
  put_str(p, f.bench);
  put_str(p, f.key);
  put_str(p, f.fingerprint);
  put_f64(p, f.cost);
  return encode_frame(FrameType::kClaim, p);
}

bool decode_claim(const Frame& frame, ClaimFrame& out) {
  if (frame.type != FrameType::kClaim) return false;
  ByteReader r{frame.payload};
  return r.str(out.bench) && r.str(out.key) && r.str(out.fingerprint) &&
         r.f64(out.cost) && r.remaining() == 0;
}

std::string encode_result(const ResultFrame& f) {
  std::string p;
  put_str(p, f.bench);
  put_str(p, f.key);
  put_str(p, f.fingerprint);
  put_u32(p, f.cached ? 1 : 0);
  put_f64(p, f.seconds);
  return encode_frame(FrameType::kResult, p);
}

bool decode_result(const Frame& frame, ResultFrame& out) {
  if (frame.type != FrameType::kResult) return false;
  ByteReader r{frame.payload};
  std::uint32_t cached = 0;
  if (!(r.str(out.bench) && r.str(out.key) && r.str(out.fingerprint) &&
        r.u32(cached) && r.f64(out.seconds) && r.remaining() == 0)) {
    return false;
  }
  out.cached = cached != 0;
  return true;
}

std::string encode_error(const std::string& message) {
  std::string p;
  put_str(p, message);
  return encode_frame(FrameType::kError, p);
}

bool decode_error(const Frame& frame, std::string& out) {
  if (frame.type != FrameType::kError) return false;
  ByteReader r{frame.payload};
  return r.str(out) && r.remaining() == 0;
}

std::string encode_shutdown() {
  return encode_frame(FrameType::kShutdown, "");
}

}  // namespace falvolt::fleet
