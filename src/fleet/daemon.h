#pragma once
// The fleet scheduler daemon: owns the cost-ordered cell queue and
// hands one cell at a time to worker processes over the protocol.h
// frames. Control plane only — workers publish record payloads
// directly to the shared store; the daemon never sees one.
//
// Scheduling contract:
//   - Cells are served most-expensive-first (stable on the order given,
//     so equal costs keep grid-major order — the same policy as the
//     in-process engine, which is what makes the two modes
//     byte-identical).
//   - A worker holds at most one claim at a time (CLAIM_REQ -> CLAIM ->
//     RESULT). A worker that disconnects with a claim outstanding — a
//     crash, a SIGKILL, a pulled plug — has its cell pushed back to the
//     FRONT of the queue and re-served to the next claimant: worker
//     death is a scheduled event, not a fleet failure, and no paid work
//     is lost (the re-claimant re-probes the store first; see
//     core::CellQueue::at_least_once).
//   - When the queue is empty but claims are still in flight, a
//     requesting worker is parked; it is woken with a re-queued cell or
//     a SHUTDOWN, whichever comes first.
//   - A worker ERROR frame fails the whole fleet (same fail-fast
//     contract as the in-process engine).
//
// The daemon is single-threaded (poll over the listen socket and every
// client); all state lives on one thread, so there are no locks and no
// data races by construction.

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fleet/protocol.h"

namespace falvolt::fleet {

/// One schedulable cell, by name. `bench` + `key` identify the cell to
/// a worker that built the same grids; `fingerprint` is the
/// content-address its result must land under (validated on RESULT).
struct DaemonCell {
  std::string bench;
  std::string key;
  std::string fingerprint;
  double cost = 0.0;
};

struct DaemonOptions {
  std::string socket_path;
  /// Poll interval for liveness checks, milliseconds.
  int poll_ms = 200;
};

struct DaemonStats {
  int computed = 0;       ///< RESULTs with cached=0 (fresh compute)
  int cached = 0;         ///< RESULTs with cached=1 (store replay)
  int requeued = 0;       ///< cells re-queued after a worker died
  int workers_seen = 0;   ///< distinct accepted connections
  int worker_deaths = 0;  ///< disconnects before SHUTDOWN
  /// Per-worker tail of the fleet summary: what each connection
  /// reported back (busy_seconds sums the RESULT frames' seconds).
  struct WorkerLoad {
    int worker_id = 0;
    std::string name;
    int cells = 0;
    double busy_seconds = 0.0;
  };
  std::vector<WorkerLoad> workers;
};

class Daemon {
 public:
  /// `cells` in any order; the daemon cost-sorts them (stable,
  /// most-expensive-first).
  Daemon(DaemonOptions opts, std::vector<DaemonCell> cells);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Create, bind and listen on the UNIX socket. Call BEFORE forking
  /// workers so no worker can race the bind. Throws on failure.
  void bind_and_listen();

  const std::string& socket_path() const { return opts_.socket_path; }

  /// Serve until every cell has a RESULT, then SHUTDOWN all workers
  /// and return. `live_workers` is polled between socket events (the
  /// parent's waitpid bookkeeping): when it reports zero live workers,
  /// none are connected, and cells remain, the fleet is unrecoverable
  /// and serve() throws. Also throws on a worker ERROR frame.
  DaemonStats serve(const std::function<int()>& live_workers);

 private:
  struct Client;
  void close_client(Client& c, bool expected);
  void enqueue_bytes(Client& c, const std::string& bytes);
  void serve_claim(Client& c);
  void handle_frame(Client& c, const Frame& frame);
  void pump_waiters();
  bool all_done() const { return done_ == cells_.size(); }

  DaemonOptions opts_;
  std::vector<DaemonCell> cells_;
  std::deque<std::size_t> queue_;  ///< pending cell indices, cost-ordered
  std::size_t done_ = 0;
  int listen_fd_ = -1;
  std::vector<Client> clients_;
  int next_worker_id_ = 0;
  DaemonStats stats_;
  std::string failure_;  ///< first worker ERROR, empty = healthy
};

}  // namespace falvolt::fleet
