#pragma once
// Worker side of the fleet protocol: a core::CellQueue fed over the
// daemon socket. The sweep engine's claim loop calls claim() /
// complete() / fail() exactly as it would on an in-process queue; this
// class turns those into CLAIM_REQ / RESULT / ERROR frames and maps
// the daemon's (bench, key) cell names onto the worker's own grid
// ordinals and scenario indices.
//
// The map is built by the worker from the SAME grid construction the
// daemon ran (same binary, same forwarded flags), and every claim's
// fingerprint is checked against the worker's own fingerprint for that
// cell — any drift between the two processes' configurations is a
// fatal protocol error, not a silently-wrong table.
//
// Claims are served at-least-once: a cell claimed by a worker that was
// SIGKILLed is re-queued and handed out again, and the original may in
// fact have published before dying. at_least_once() tells the engine
// to re-probe the store before computing (core/sweep.cpp), which is
// what makes worker death lose zero paid work.
//
// One claim slot per connection: the daemon hands a connection at most
// one cell at a time, so the worker process runs its engine with
// sweep_parallel=1 (the per-cell GEMM pool still uses every thread the
// worker was given).

#include <map>
#include <optional>
#include <string>

#include "core/sweep.h"
#include "fleet/protocol.h"

namespace falvolt::fleet {

class SocketCellQueue : public core::CellQueue {
 public:
  /// `worker_name` is the display name sent in HELLO (logs only).
  SocketCellQueue(std::string socket_path, std::string worker_name);
  ~SocketCellQueue() override;
  SocketCellQueue(const SocketCellQueue&) = delete;
  SocketCellQueue& operator=(const SocketCellQueue&) = delete;

  /// Register one local cell the daemon may claim-hand to us:
  /// bench+key name it on the wire, grid/index locate it in the
  /// engine, fingerprint cross-checks the two sides agree.
  void register_cell(const std::string& bench, const std::string& key,
                     const std::string& fingerprint, int grid, int index);

  /// Connect and complete the HELLO/WELCOME handshake. Throws on
  /// connection failure, version rejection, or a malformed reply.
  /// The protocol version sent is kProtocolVersion unless the
  /// FALVOLT_FLEET_PROTOCOL environment variable overrides it (test
  /// hook for the mismatch path).
  void connect_and_hello();

  int worker_id() const { return worker_id_; }

  // core::CellQueue
  std::optional<Claim> claim(int worker) override;
  void complete(const Claim& claim, bool cached, double seconds) override;
  void fail(const Claim& claim, const std::string& error) override;
  bool at_least_once() const override { return true; }

 private:
  struct CellRef {
    std::string fingerprint;
    int grid = 0;
    int index = 0;
  };
  void send_bytes(const std::string& bytes);
  Frame read_frame();
  const CellRef& resolve(const Claim& claim) const;

  std::string socket_path_;
  std::string worker_name_;
  int fd_ = -1;
  int worker_id_ = -1;
  FrameBuffer in_;
  /// (bench, key) -> local cell; reverse_ maps (grid, index) back to
  /// the wire name for RESULT frames.
  std::map<std::pair<std::string, std::string>, CellRef> cells_;
  std::map<std::pair<int, int>, std::pair<std::string, std::string>> reverse_;
};

}  // namespace falvolt::fleet
