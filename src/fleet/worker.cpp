#include "fleet/worker.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace falvolt::fleet {

SocketCellQueue::SocketCellQueue(std::string socket_path,
                                 std::string worker_name)
    : socket_path_(std::move(socket_path)),
      worker_name_(std::move(worker_name)) {}

SocketCellQueue::~SocketCellQueue() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketCellQueue::register_cell(const std::string& bench,
                                    const std::string& key,
                                    const std::string& fingerprint, int grid,
                                    int index) {
  cells_[{bench, key}] = CellRef{fingerprint, grid, index};
  reverse_[{grid, index}] = {bench, key};
}

void SocketCellQueue::send_bytes(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("fleet worker: daemon connection lost (send)");
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame SocketCellQueue::read_frame() {
  while (true) {
    if (std::optional<Frame> frame = in_.next()) return *frame;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.feed(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("fleet worker: daemon connection lost (recv)");
  }
}

void SocketCellQueue::connect_and_hello() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("fleet worker: socket path '" + socket_path_ +
                                "' exceeds the UNIX socket limit");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("fleet worker: socket(): " +
                             std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("fleet worker: cannot connect to daemon at '" +
                             socket_path_ + "': " + why);
  }
  HelloFrame hello;
  hello.worker = worker_name_;
  // Test hook: lets the CI negative test present a wrong version and
  // assert the daemon rejects it at HELLO.
  if (const char* forced = std::getenv("FALVOLT_FLEET_PROTOCOL")) {
    hello.version = static_cast<std::uint32_t>(std::atoi(forced));
  }
  send_bytes(encode_hello(hello));
  const Frame reply = read_frame();
  if (reply.type == FrameType::kError) {
    std::string message;
    decode_error(reply, message);
    throw std::runtime_error("fleet worker: daemon rejected HELLO: " +
                             message);
  }
  WelcomeFrame welcome;
  if (!decode_welcome(reply, welcome)) {
    throw std::runtime_error("fleet worker: malformed WELCOME from daemon");
  }
  worker_id_ = welcome.worker_id;
}

std::optional<core::CellQueue::Claim> SocketCellQueue::claim(int /*worker*/) {
  if (fd_ < 0) {
    throw std::logic_error("fleet worker: claim() before connect_and_hello()");
  }
  // A daemon that is done closes right after its final frame, so this
  // CLAIM_REQ may hit EPIPE with a SHUTDOWN already sitting in our
  // receive buffer — fall through to the read and let IT decide whether
  // the connection ended cleanly.
  try {
    send_bytes(encode_claim_request());
  } catch (const std::exception&) {
    // Drain what the daemon said before closing (recv still yields
    // buffered bytes after the peer's close, then EOF).
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        in_.feed(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    while (const std::optional<Frame> buffered = in_.next()) {
      if (buffered->type == FrameType::kShutdown) return std::nullopt;
    }
    throw;
  }
  // May block indefinitely: an empty queue with claims in flight
  // elsewhere parks us until the daemon re-queues or shuts down.
  const Frame frame = read_frame();
  if (frame.type == FrameType::kShutdown) return std::nullopt;
  if (frame.type == FrameType::kError) {
    std::string message;
    decode_error(frame, message);
    throw std::runtime_error("fleet worker: daemon error: " + message);
  }
  ClaimFrame c;
  if (!decode_claim(frame, c)) {
    throw std::runtime_error("fleet worker: malformed CLAIM from daemon");
  }
  const auto it = cells_.find({c.bench, c.key});
  if (it == cells_.end()) {
    throw std::runtime_error("fleet worker: claimed cell " + c.bench + ":" +
                             c.key + " is not in this worker's grids");
  }
  if (it->second.fingerprint != c.fingerprint) {
    // Daemon and worker disagree on what this cell IS — config drift.
    throw std::runtime_error(
        "fleet worker: fingerprint mismatch for " + c.bench + ":" + c.key +
        " (daemon " + c.fingerprint.substr(0, 16) + "…, worker " +
        it->second.fingerprint.substr(0, 16) + "…) — daemon and worker were "
        "launched with different configurations");
  }
  return Claim{it->second.grid, it->second.index, c.cost};
}

const SocketCellQueue::CellRef& SocketCellQueue::resolve(
    const Claim& claim) const {
  const auto name = reverse_.find({claim.grid, claim.index});
  if (name == reverse_.end()) {
    throw std::logic_error("fleet worker: completing an unregistered cell");
  }
  return cells_.at(name->second);
}

void SocketCellQueue::complete(const Claim& claim, bool cached,
                               double seconds) {
  const auto name = reverse_.find({claim.grid, claim.index});
  if (name == reverse_.end()) {
    throw std::logic_error("fleet worker: completing an unregistered cell");
  }
  ResultFrame result;
  result.bench = name->second.first;
  result.key = name->second.second;
  result.fingerprint = resolve(claim).fingerprint;
  result.cached = cached;
  result.seconds = seconds;
  send_bytes(encode_result(result));
}

void SocketCellQueue::fail(const Claim& /*claim*/, const std::string& error) {
  // Best-effort: the engine is about to throw and this process to exit
  // nonzero either way; the frame just gives the daemon the message.
  try {
    send_bytes(encode_error(error));
  } catch (const std::exception&) {
  }
}

}  // namespace falvolt::fleet
