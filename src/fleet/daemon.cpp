#include "fleet/daemon.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"

namespace falvolt::fleet {

namespace {

obs::Counter& claims_counter() {
  static obs::Counter& c = obs::counter("fleet.daemon.claims");
  return c;
}
obs::Counter& results_counter() {
  static obs::Counter& c = obs::counter("fleet.daemon.results");
  return c;
}
obs::Counter& requeued_counter() {
  static obs::Counter& c = obs::counter("fleet.daemon.requeued");
  return c;
}
obs::Counter& workers_counter() {
  static obs::Counter& c = obs::counter("fleet.daemon.workers");
  return c;
}
obs::Counter& deaths_counter() {
  static obs::Counter& c = obs::counter("fleet.daemon.worker_deaths");
  return c;
}

}  // namespace

/// Per-connection state. `inflight` is an index into cells_ (npos =
/// none); `out` buffers bytes the socket could not take yet (POLLOUT
/// drains it — a slow worker must never block the daemon).
struct Daemon::Client {
  int fd = -1;
  int worker_id = -1;
  std::string name;
  FrameBuffer in;
  std::string out;
  bool ready = false;    ///< HELLO accepted
  bool parked = false;   ///< claim requested, queue was empty
  bool shutdown_sent = false;
  std::size_t inflight = static_cast<std::size_t>(-1);
  int cells = 0;
  double busy_seconds = 0.0;

  bool has_inflight() const {
    return inflight != static_cast<std::size_t>(-1);
  }
};

Daemon::Daemon(DaemonOptions opts, std::vector<DaemonCell> cells)
    : opts_(std::move(opts)), cells_(std::move(cells)) {
  // Same policy as the in-process queue: most-expensive-first, stable
  // so equal costs keep the caller's (grid-major) order.
  std::vector<std::size_t> order(cells_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return cells_[a].cost > cells_[b].cost;
                   });
  queue_.assign(order.begin(), order.end());
}

Daemon::~Daemon() {
  for (Client& c : clients_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
}

void Daemon::bind_and_listen() {
  if (opts_.socket_path.empty()) {
    throw std::invalid_argument("fleet daemon: empty socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("fleet daemon: socket path '" +
                                opts_.socket_path + "' exceeds the " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                "-byte UNIX socket limit");
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("fleet daemon: socket(): " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(opts_.socket_path.c_str());  // stale path from a killed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("fleet daemon: cannot listen on '" +
                             opts_.socket_path + "': " + why);
  }
}

void Daemon::enqueue_bytes(Client& c, const std::string& bytes) {
  // Try the socket directly first; buffer whatever it refuses.
  // MSG_NOSIGNAL: a worker that died between poll and send must surface
  // as EPIPE (handled at the caller's next poll), not kill the daemon.
  std::size_t off = 0;
  if (c.out.empty()) {
    while (off < bytes.size()) {
      const ssize_t n = ::send(c.fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  c.out.append(bytes, off, bytes.size() - off);
}

void Daemon::serve_claim(Client& c) {
  if (!failure_.empty() || all_done()) {
    if (!c.shutdown_sent) {
      enqueue_bytes(c, encode_shutdown());
      c.shutdown_sent = true;
      // Nothing left to say: close as soon as the frame is out the door
      // (an orderly close still delivers buffered bytes before EOF), so
      // serve() never waits on a worker's exit timing to return.
      if (c.out.empty()) close_client(c, /*expected=*/true);
    }
    return;
  }
  if (queue_.empty()) {
    // Claims are outstanding elsewhere; park this worker. It wakes on
    // a re-queued cell (the other claimant died) or on SHUTDOWN.
    c.parked = true;
    return;
  }
  const std::size_t idx = queue_.front();
  queue_.pop_front();
  c.inflight = idx;
  c.parked = false;
  const DaemonCell& cell = cells_[idx];
  enqueue_bytes(c, encode_claim(ClaimFrame{cell.bench, cell.key,
                                           cell.fingerprint, cell.cost}));
  claims_counter().add(1);
}

void Daemon::pump_waiters() {
  for (Client& c : clients_) {
    if (c.fd >= 0 && c.ready && c.parked) serve_claim(c);
  }
  if (all_done() || !failure_.empty()) {
    // Release every idle worker; ones mid-compute get theirs when the
    // RESULT arrives and they request again.
    for (Client& c : clients_) {
      if (c.fd >= 0 && c.ready && !c.has_inflight() && !c.shutdown_sent) {
        enqueue_bytes(c, encode_shutdown());
        c.shutdown_sent = true;
        if (c.out.empty()) close_client(c, /*expected=*/true);
      }
    }
  }
}

void Daemon::close_client(Client& c, bool expected) {
  if (c.fd < 0) return;
  ::close(c.fd);
  c.fd = -1;
  if (c.has_inflight()) {
    // The crash contract: an in-flight cell from a dead worker goes
    // back to the FRONT of the queue (it was the most expensive cell
    // available when claimed — it still is).
    queue_.push_front(c.inflight);
    c.inflight = static_cast<std::size_t>(-1);
    ++stats_.requeued;
    requeued_counter().add(1);
    pump_waiters();
  }
  if (!expected && !c.shutdown_sent) {
    ++stats_.worker_deaths;
    deaths_counter().add(1);
  }
}

void Daemon::handle_frame(Client& c, const Frame& frame) {
  if (!c.ready) {
    HelloFrame hello;
    if (!decode_hello(frame, hello)) {
      enqueue_bytes(c, encode_error("fleet daemon: expected HELLO"));
      close_client(c, /*expected=*/true);
      return;
    }
    if (hello.version != kProtocolVersion) {
      // Equal-or-nothing at v1: a stale binary must not join the fleet.
      enqueue_bytes(
          c, encode_error("fleet daemon: protocol version mismatch (daemon " +
                          std::to_string(kProtocolVersion) + ", worker " +
                          std::to_string(hello.version) + ")"));
      close_client(c, /*expected=*/true);
      return;
    }
    c.ready = true;
    c.name = hello.worker;
    c.worker_id = next_worker_id_++;
    ++stats_.workers_seen;
    workers_counter().add(1);
    enqueue_bytes(c, encode_welcome(
                         WelcomeFrame{kProtocolVersion, c.worker_id}));
    return;
  }
  switch (frame.type) {
    case FrameType::kClaimRequest:
      serve_claim(c);
      return;
    case FrameType::kResult: {
      ResultFrame result;
      if (!decode_result(frame, result) || !c.has_inflight()) {
        enqueue_bytes(c, encode_error("fleet daemon: unexpected RESULT"));
        close_client(c, /*expected=*/false);
        return;
      }
      const DaemonCell& cell = cells_[c.inflight];
      if (result.bench != cell.bench || result.key != cell.key ||
          result.fingerprint != cell.fingerprint) {
        // The worker computed a different cell than it was handed —
        // config drift between daemon and worker; fail loudly.
        failure_ = "worker '" + c.name + "' answered claim " + cell.bench +
                   ":" + cell.key + " with " + result.bench + ":" +
                   result.key;
        close_client(c, /*expected=*/false);
        pump_waiters();
        return;
      }
      c.inflight = static_cast<std::size_t>(-1);
      ++done_;
      ++c.cells;
      c.busy_seconds += result.seconds;
      if (result.cached) {
        ++stats_.cached;
      } else {
        ++stats_.computed;
      }
      results_counter().add(1);
      pump_waiters();
      return;
    }
    case FrameType::kError: {
      std::string message;
      decode_error(frame, message);
      if (failure_.empty()) {
        failure_ = "worker '" + c.name + "' failed: " +
                   (message.empty() ? "(malformed ERROR frame)" : message);
      }
      close_client(c, /*expected=*/true);
      pump_waiters();
      return;
    }
    default:
      enqueue_bytes(c, encode_error("fleet daemon: unexpected frame type " +
                                    std::to_string(static_cast<int>(
                                        frame.type))));
      close_client(c, /*expected=*/false);
      return;
  }
}

DaemonStats Daemon::serve(const std::function<int()>& live_workers) {
  if (listen_fd_ < 0) {
    throw std::logic_error("fleet daemon: serve() before bind_and_listen()");
  }
  while (true) {
    // Exit when the work is finished (or doomed) AND every client has
    // drained its outbound buffer and hung up or been released.
    const bool finished = all_done() || !failure_.empty();
    bool clients_open = false;
    for (const Client& c : clients_) {
      if (c.fd >= 0) clients_open = true;
    }
    if (finished && !clients_open) break;

    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    std::vector<std::size_t> owner;  // fds[i+1] -> clients_[owner[i]]
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Client& c = clients_[i];
      if (c.fd < 0) continue;
      short events = POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
      owner.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(), opts_.poll_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet daemon: poll(): " +
                               std::string(std::strerror(errno)));
    }
    if (rc == 0) {
      // Liveness: cells remain, nobody is connected, and the parent
      // says every worker process is gone — nothing will ever claim
      // again.
      if (!finished && !clients_open && live_workers() <= 0) {
        throw std::runtime_error(
            "fleet daemon: all workers died with " +
            std::to_string(cells_.size() - done_) + " cell(s) unfinished");
      }
      continue;
    }
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        Client c;
        c.fd = fd;
        clients_.push_back(std::move(c));
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      Client& c = clients_[owner[i - 1]];
      if (c.fd < 0) continue;
      if (fds[i].revents & POLLOUT) {
        while (!c.out.empty()) {
          const ssize_t n =
              ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
          if (n <= 0) break;
          c.out.erase(0, static_cast<std::size_t>(n));
        }
        // A released worker hangs up on SHUTDOWN; once the buffer is
        // drained there is nothing more to say.
        if (c.out.empty() && c.shutdown_sent) {
          close_client(c, /*expected=*/true);
          continue;
        }
      }
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[4096];
        bool closed = false;
        while (true) {
          const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
          if (n > 0) {
            c.in.feed(chunk, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) closed = true;  // orderly EOF
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            closed = true;  // reset — a SIGKILLed worker lands here
          }
          break;
        }
        try {
          while (c.fd >= 0) {
            const std::optional<Frame> frame = c.in.next();
            if (!frame) break;
            handle_frame(c, *frame);
          }
        } catch (const std::exception& e) {
          // Damaged stream (bad length word): drop the connection; an
          // in-flight claim re-queues like any other death.
          close_client(c, /*expected=*/false);
        }
        if (closed && c.fd >= 0) {
          close_client(c, /*expected=*/c.shutdown_sent);
        }
      }
    }
  }
  if (!failure_.empty()) {
    throw std::runtime_error("fleet daemon: " + failure_);
  }
  for (const Client& c : clients_) {
    if (c.worker_id >= 0) {
      stats_.workers.push_back(DaemonStats::WorkerLoad{
          c.worker_id, c.name, c.cells, c.busy_seconds});
    }
  }
  return stats_;
}

}  // namespace falvolt::fleet
