#pragma once
// The fleet wire protocol: versioned, length-prefixed frames over a
// stream socket (UNIX-domain today; nothing here is socket-specific).
// The daemon owns the cost-ordered cell queue and only ever moves
// METADATA — a claim names a cell (bench, key, fingerprint, cost
// hint) and a result names the record the worker just published to
// the shared store. Payloads never cross this socket; the store is
// the data plane, the daemon is the control plane (the nix-daemon
// split).
//
// Frame grammar (all integers little-endian, `str` = u32 length +
// bytes, encoded with common/bytes.h):
//
//   frame     := u32 length ; u8 type ; payload      (length counts
//                                                     type + payload)
//   HELLO     (1) w->d := u32 version ; str worker_name
//   WELCOME   (2) d->w := u32 version ; i32 worker_id
//   CLAIM_REQ (3) w->d := (empty)
//   CLAIM     (4) d->w := str bench ; str key ; str fingerprint ;
//                         f64 cost
//   RESULT    (5) w->d := str bench ; str key ; str fingerprint ;
//                         u32 cached ; f64 seconds
//   ERROR     (6) any  := str message
//   SHUTDOWN  (7) d->w := (empty)
//
// Version compatibility: HELLO carries the worker's protocol version
// and the daemon REJECTS any mismatch with an ERROR frame before
// closing — there is no negotiation at version 1. When the protocol
// grows, the daemon may answer old HELLOs with the highest mutually
// supported version in WELCOME; until then equal-or-nothing keeps a
// stale binary from silently corrupting a fleet.

#include <cstdint>
#include <optional>
#include <string>

namespace falvolt::fleet {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's body (type + payload). Benches, keys and
/// fingerprints are all short strings; anything bigger is a damaged or
/// hostile length word and the connection is dropped, never allocated
/// for.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kClaimRequest = 3,
  kClaim = 4,
  kResult = 5,
  kError = 6,
  kShutdown = 7,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// One wire-ready frame: length prefix + type byte + payload.
std::string encode_frame(FrameType type, const std::string& payload);

/// Reassembles frames from arbitrarily-chunked stream bytes. feed()
/// appends raw socket reads; next() yields one complete frame at a
/// time. A length word above kMaxFrameBytes or a zero-length frame
/// (no type byte) marks the stream damaged: next() throws
/// std::runtime_error and the caller drops the connection.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  std::optional<Frame> next();

 private:
  std::string buf_;
};

// -------------------------------------------------- typed payloads
// Encoders return the full frame (prefix included); decoders parse a
// Frame's payload and return false on any truncation or trailing
// garbage — a malformed frame is a protocol error, never UB.

struct HelloFrame {
  std::uint32_t version = kProtocolVersion;
  std::string worker;  ///< display name, e.g. "worker-2" (logs only)
};

struct WelcomeFrame {
  std::uint32_t version = kProtocolVersion;
  std::int32_t worker_id = 0;
};

struct ClaimFrame {
  std::string bench;
  std::string key;
  std::string fingerprint;
  double cost = 0.0;
};

struct ResultFrame {
  std::string bench;
  std::string key;
  std::string fingerprint;
  bool cached = false;  ///< replayed an already-published record
  double seconds = 0.0;
};

std::string encode_hello(const HelloFrame& f);
bool decode_hello(const Frame& frame, HelloFrame& out);

std::string encode_welcome(const WelcomeFrame& f);
bool decode_welcome(const Frame& frame, WelcomeFrame& out);

std::string encode_claim_request();

std::string encode_claim(const ClaimFrame& f);
bool decode_claim(const Frame& frame, ClaimFrame& out);

std::string encode_result(const ResultFrame& f);
bool decode_result(const Frame& frame, ResultFrame& out);

std::string encode_error(const std::string& message);
bool decode_error(const Frame& frame, std::string& out);

std::string encode_shutdown();

}  // namespace falvolt::fleet
