#include "store/compact.h"

#include <set>
#include <utility>
#include <vector>

#include "io/env.h"
#include "store/record_frame.h"
#include "store/result_store.h"
#include "store/segment.h"

namespace falvolt::store {

CompactStats compact_store(const LocalDirStore& store) {
  CompactStats stats;

  // Fingerprints already covered by a valid segment: their loose copies
  // are pure duplicates (content-addressed), safe to delete now.
  std::set<std::string> segmented;
  for (const SegmentInfo& seg : list_segments(store.root())) {
    if (!seg.readable) continue;
    for (const auto& [fp, length] : seg.entries) segmented.insert(fp);
  }

  std::vector<std::pair<std::string, std::string>> to_pack;
  std::vector<std::string> duplicates;
  for (const std::string& fp : store.fingerprints()) {
    if (segmented.count(fp)) {
      duplicates.push_back(fp);
      continue;
    }
    std::optional<std::string> payload = store.get(fp);
    if (!payload) {
      ++stats.corrupt;  // left in place; GC reclaims it
      continue;
    }
    to_pack.emplace_back(fp, std::move(*payload));
  }

  // Publish the new segment durably BEFORE deleting any loose copy: a
  // crash in between leaves duplicates, never losses.
  if (!to_pack.empty()) {
    write_segment(store.root(), to_pack);
    stats.segments_written = 1;
    for (const auto& [fp, payload] : to_pack) {
      stats.packed_bytes += kRecordHeaderBytes + payload.size();
    }
  }

  for (const auto& [fp, payload] : to_pack) {
    io::env().unlink_file(store.object_path(fp));
    ++stats.packed;
  }
  for (const std::string& fp : duplicates) {
    io::env().unlink_file(store.object_path(fp));
    ++stats.already_segmented;
  }
  return stats;
}

std::string to_text(const CompactStats& stats) {
  return "compacted: packed=" + std::to_string(stats.packed) +
         " already_segmented=" + std::to_string(stats.already_segmented) +
         " corrupt_left=" + std::to_string(stats.corrupt) +
         " segments_written=" + std::to_string(stats.segments_written) +
         " packed_bytes=" + std::to_string(stats.packed_bytes);
}

}  // namespace falvolt::store
