#pragma once
// The record frame shared by every physical store backend: loose `.rec`
// files (LocalDirStore) and records embedded in indexed segment files
// (SegmentStore) carry the exact same bytes, so compaction can move a
// record between layouts verbatim and readers validate one format.
//
// Frame: magic u32, store format epoch u32, payload length u64 — all
// explicitly little-endian so stores move between machines regardless
// of host byte order — then the 32-byte SHA-256 of the payload, then
// the payload itself. Validation checks every field AND that the frame
// length matches exactly (a truncated payload and trailing garbage
// both fail), so damage of any kind degrades to "miss" (recompute),
// never to a throw or a wrong payload.

#include <cstdint>
#include <optional>
#include <string>

namespace falvolt::store {

constexpr std::uint32_t kRecordMagic = 0x46565253;  // "FVRS"

/// Frame header size: magic u32 + epoch u32 + payload length u64 +
/// SHA-256 digest (32 bytes).
constexpr std::size_t kRecordHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) + 32;

/// Little-endian integer helpers shared by the frame and the segment
/// index codec.
void encode_le(std::uint8_t* out, std::uint64_t v, int bytes);
std::uint64_t decode_le(const std::uint8_t* in, int bytes);

/// Frame `payload` into the on-disk record bytes (header + payload).
std::string frame_record(const std::string& payload);

/// Validate a full frame and return its payload; nullopt on bad magic,
/// foreign epoch, length mismatch (truncation OR trailing garbage), or
/// checksum mismatch. Never throws on damage.
std::optional<std::string> unframe_record(const std::string& bytes);

// Durable publishing lives in io::atomic_publish (io/env.h): records,
// manifests, and segments all stage + rename + dir-fsync through the
// one injectable entry point, which is what the crash harness faults.

}  // namespace falvolt::store
