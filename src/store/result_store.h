#pragma once
// Persistent, content-addressed blob store for scenario results.
//
// Layout (one directory tree per store):
//
//   <root>/objects/<fp[0:2]>/<fp>.rec   one record per fingerprint
//   <root>/manifests/<bench>-<grid>.manifest   grid manifests (manifest.h)
//   <root>/tmp/                         staging area for atomic writes
//
// Records are framed with a magic, the store format epoch, the payload
// length, and a SHA-256 checksum of the payload. Writes stage into tmp/
// and publish with an atomic rename, so concurrent writers (several
// sweep shards pointed at one directory) and crashes can never leave a
// half-written record visible under its final name. Reads validate the
// whole frame before returning: a truncated, foreign-epoch, or
// bit-flipped record reads as "miss" (recompute), never as a throw —
// the same degrade-to-recompute contract as core::load_params.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace falvolt::store {

/// True when `root` already holds a store (its objects/ directory
/// exists). ResultStore's constructor CREATES missing directories — the
/// right behavior for a destination, but read-side callers (merge
/// sources, GC targets) must check this first so a typo'd path reads as
/// an error instead of silently materializing an empty store.
bool store_exists(const std::string& root);

class ResultStore {
 public:
  /// Opens (creating if needed) the store rooted at `root`. Throws if
  /// the directories cannot be created.
  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// Final path of a record (whether or not it exists yet).
  std::string object_path(const std::string& fingerprint) const;

  bool contains(const std::string& fingerprint) const;

  /// Store `payload` under `fingerprint` (atomic tmp+rename; an existing
  /// record is replaced). Throws only on I/O errors writing the staged
  /// file — a store that silently drops records would defeat --resume.
  void put(const std::string& fingerprint, const std::string& payload) const;

  /// Read and validate the record. nullopt means "no usable record":
  /// missing file, bad magic, foreign format epoch, truncated payload,
  /// trailing garbage, or checksum mismatch. Never throws on damage.
  std::optional<std::string> get(const std::string& fingerprint) const;

  /// Every fingerprint with a record file in this store (unvalidated —
  /// names only), sorted.
  std::vector<std::string> fingerprints() const;

  struct MergeStats {
    int copied = 0;    ///< records imported from `src`
    int present = 0;   ///< already in this store (content-addressed skip)
    int corrupt = 0;   ///< records in `src` that failed validation
  };

  /// Union `src` into this store. Every candidate record is re-validated
  /// before import (a corrupt shard record is skipped and counted, not
  /// propagated); existing records are kept — with content addressing
  /// both sides agree, so last-writer-wins is harmless.
  MergeStats merge_from(const ResultStore& src) const;

 private:
  std::string stage(const std::string& payload) const;

  std::string root_;
};

}  // namespace falvolt::store
