#pragma once
// LocalDirStore: the loose-object StoreApi backend — a persistent,
// content-addressed directory of one record file per fingerprint.
//
// Layout (one directory tree per store):
//
//   <root>/objects/<fp[0:2]>/<fp>.rec   one record per fingerprint
//   <root>/manifests/<bench>-<grid>.manifest   grid manifests (manifest.h)
//   <root>/segments/<digest>.seg        indexed segment files (segment.h,
//                                       written by compaction — read via
//                                       a SegmentStore layered below)
//   <root>/tmp/                         staging area for atomic writes
//
// Records are framed per record_frame.h. Writes stage into tmp/ and
// publish with fsync + atomic rename + directory fsync, so concurrent
// writers (several sweep shards pointed at one directory) and crashes
// can never leave a half-written record visible under its final name,
// and a published record survives power loss. Reads validate the whole
// frame before returning: a truncated, foreign-epoch, or bit-flipped
// record reads as "miss" (recompute), never as a throw — the same
// degrade-to-recompute contract as core::load_params.

#include <optional>
#include <string>
#include <vector>

#include "store/store_api.h"

namespace falvolt::store {

/// True when `root` already holds a store: its objects/ directory
/// exists, or it is segments-only (fully compacted). LocalDirStore's
/// constructor CREATES missing directories by default — the right
/// behavior for a destination, but read-side callers (merge sources, GC
/// targets, substituters) must check this first so a typo'd path reads
/// as an error instead of silently materializing an empty store.
bool store_exists(const std::string& root);

/// RAII "a sweep is still publishing into this store" marker:
/// construction drops <root>/tmp/inprogress.<pid>, destruction removes
/// it. The sweep engine (and the fleet daemon) hold one for as long as
/// owned cells remain uncomputed, so `sweep_merge` can refuse to emit a
/// partial table from a store a live fleet is mid-publish into. Purely
/// advisory and best-effort: an unwritable marker never fails the
/// sweep, and a SIGKILLed run leaves only a dead-pid marker that
/// live_inprogress_pids() garbage-collects.
class InProgressGuard {
 public:
  explicit InProgressGuard(const std::string& root);
  ~InProgressGuard();
  InProgressGuard(const InProgressGuard&) = delete;
  InProgressGuard& operator=(const InProgressGuard&) = delete;

 private:
  std::string path_;
};

/// Pids of LIVE processes (other than the caller) holding an in-progress
/// marker under `root` — i.e. fleets still publishing into this store.
/// Markers whose pid no longer exists are unlinked as a side effect
/// (crash residue), so a SIGKILLed fleet never wedges future merges.
std::vector<int> live_inprogress_pids(const std::string& root);

class LocalDirStore : public StoreApi {
 public:
  /// Opens the store rooted at `root`. With create=true (the default)
  /// missing directories are created and the store is writable; throws
  /// if they cannot be. With create=false nothing is materialized and
  /// the store is read-only (put/put_manifest throw std::logic_error) —
  /// the mode substituter layers open with.
  explicit LocalDirStore(std::string root, bool create = true);

  const std::string& root() const { return root_; }

  /// Final path of a record (whether or not it exists yet).
  std::string object_path(const std::string& fingerprint) const;

  std::string describe() const override;
  bool writable() const override { return writable_; }
  bool contains(const std::string& fingerprint) const override;
  void put(const std::string& fingerprint,
           const std::string& payload) override;
  std::optional<std::string> get(
      const std::string& fingerprint) const override;
  std::vector<std::string> fingerprints() const override;
  void put_manifest(const Manifest& m) override;
  std::vector<Manifest> manifests(const std::string& bench) const override;

 private:
  std::string root_;
  bool writable_;
};

}  // namespace falvolt::store
