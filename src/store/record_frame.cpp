#include "store/record_frame.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "store/fingerprint.h"
#include "store/hash.h"

namespace fs = std::filesystem;

namespace falvolt::store {

void encode_le(std::uint8_t* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t decode_le(const std::uint8_t* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= std::uint64_t{in[i]} << (8 * i);
  }
  return v;
}

std::string frame_record(const std::string& payload) {
  Sha256 h;
  h.update(payload);
  const Sha256::Digest checksum = h.digest();
  std::uint8_t header[kRecordHeaderBytes];
  encode_le(header, kRecordMagic, 4);
  encode_le(header + 4, kStoreFormatEpoch, 4);
  encode_le(header + 8, payload.size(), 8);
  std::memcpy(header + 16, checksum.data(), checksum.size());
  std::string out;
  out.reserve(sizeof(header) + payload.size());
  out.append(reinterpret_cast<const char*>(header), sizeof(header));
  out += payload;
  return out;
}

std::optional<std::string> unframe_record(const std::string& bytes) {
  if (bytes.size() < kRecordHeaderBytes) return std::nullopt;
  const std::uint8_t* header =
      reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (decode_le(header, 4) != kRecordMagic ||
      decode_le(header + 4, 4) != kStoreFormatEpoch) {
    return std::nullopt;
  }
  // The length must match the frame exactly: a truncated payload AND a
  // record with trailing garbage both read as a miss.
  const std::uint64_t payload_len = decode_le(header + 8, 8);
  if (payload_len != bytes.size() - kRecordHeaderBytes) return std::nullopt;

  std::string payload = bytes.substr(kRecordHeaderBytes);
  Sha256 h;
  h.update(payload);
  const Sha256::Digest digest = h.digest();
  if (std::memcmp(digest.data(), header + 16, digest.size()) != 0) {
    return std::nullopt;
  }
  return payload;
}

namespace {

// fsync by path; read-only open is enough for fsync on every platform
// we build for (Linux/macOS). Returns false on any failure.
bool fsync_path(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

void durable_publish(const std::string& tmp_path,
                     const std::string& final_path) {
  std::error_code ec;
  // Data first: the rename must never publish a name whose bytes are
  // still only in the page cache.
  if (!fsync_path(tmp_path.c_str())) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("durable_publish: cannot fsync " + tmp_path);
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("durable_publish: cannot publish " + final_path);
  }
  // Then the directory entry itself — without this a crash can forget
  // the rename and lose a record the writer already reported durable.
  const std::string dir = fs::path(final_path).parent_path().string();
  if (!fsync_path(dir.empty() ? "." : dir.c_str())) {
    throw std::runtime_error("durable_publish: cannot fsync directory of " +
                             final_path);
  }
}

}  // namespace falvolt::store
