#include "store/record_frame.h"

#include <cstring>

#include "store/fingerprint.h"
#include "store/hash.h"

namespace falvolt::store {

void encode_le(std::uint8_t* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t decode_le(const std::uint8_t* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= std::uint64_t{in[i]} << (8 * i);
  }
  return v;
}

std::string frame_record(const std::string& payload) {
  Sha256 h;
  h.update(payload);
  const Sha256::Digest checksum = h.digest();
  std::uint8_t header[kRecordHeaderBytes];
  encode_le(header, kRecordMagic, 4);
  encode_le(header + 4, kStoreFormatEpoch, 4);
  encode_le(header + 8, payload.size(), 8);
  std::memcpy(header + 16, checksum.data(), checksum.size());
  std::string out;
  out.reserve(sizeof(header) + payload.size());
  out.append(reinterpret_cast<const char*>(header), sizeof(header));
  out += payload;
  return out;
}

std::optional<std::string> unframe_record(const std::string& bytes) {
  if (bytes.size() < kRecordHeaderBytes) return std::nullopt;
  const std::uint8_t* header =
      reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (decode_le(header, 4) != kRecordMagic ||
      decode_le(header + 4, 4) != kStoreFormatEpoch) {
    return std::nullopt;
  }
  // The length must match the frame exactly: a truncated payload AND a
  // record with trailing garbage both read as a miss.
  const std::uint64_t payload_len = decode_le(header + 8, 8);
  if (payload_len != bytes.size() - kRecordHeaderBytes) return std::nullopt;

  std::string payload = bytes.substr(kRecordHeaderBytes);
  Sha256 h;
  h.update(payload);
  const Sha256::Digest digest = h.digest();
  if (std::memcmp(digest.data(), header + 16, digest.size()) != 0) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace falvolt::store
