#include "store/store_api.h"

#include <algorithm>
#include <stdexcept>

#include "store/result_store.h"
#include "store/segment.h"

namespace falvolt::store {

LayeredStore::LayeredStore(std::vector<std::unique_ptr<StoreApi>> layers)
    : layers_(std::move(layers)) {
  if (layers_.empty()) {
    throw std::invalid_argument("LayeredStore: no layers");
  }
  for (const auto& layer : layers_) {
    if (!layer) throw std::invalid_argument("LayeredStore: null layer");
  }
  layer_hit_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layer_hit_.push_back(
        &obs::counter("store.chain.layer" + std::to_string(i) + ".hit"));
  }
  chain_miss_ = &obs::counter("store.chain.miss");
  substituter_hit_ = &obs::counter("store.substituter.hit");
}

std::string LayeredStore::describe() const {
  std::string out = "layered[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) out += " -> ";
    out += layers_[i]->describe();
  }
  out += "]";
  return out;
}

bool LayeredStore::writable() const { return layers_.front()->writable(); }

bool LayeredStore::contains(const std::string& fingerprint) const {
  for (const auto& layer : layers_) {
    if (layer->contains(fingerprint)) return true;
  }
  return false;
}

std::optional<std::string> LayeredStore::get(
    const std::string& fingerprint) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (std::optional<std::string> payload = layers_[i]->get(fingerprint)) {
      layer_hit_[i]->add(1);
      // open_store layers substituter pairs behind the local pair; a
      // hit there is a cell this host never paid for.
      if (i >= 2) substituter_hit_->add(1);
      return payload;
    }
  }
  chain_miss_->add(1);
  return std::nullopt;
}

int LayeredStore::locate(const std::string& fingerprint) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->get(fingerprint)) return static_cast<int>(i);
  }
  return -1;
}

void LayeredStore::put(const std::string& fingerprint,
                       const std::string& payload) {
  layers_.front()->put(fingerprint, payload);
}

std::vector<std::string> LayeredStore::fingerprints() const {
  std::vector<std::string> out;
  for (const auto& layer : layers_) {
    const std::vector<std::string> fps = layer->fingerprints();
    out.insert(out.end(), fps.begin(), fps.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LayeredStore::put_manifest(const Manifest& m) {
  layers_.front()->put_manifest(m);
}

std::vector<Manifest> LayeredStore::manifests(const std::string& bench) const {
  std::vector<Manifest> out;
  for (const auto& layer : layers_) {
    std::vector<Manifest> ms = layer->manifests(bench);
    for (Manifest& m : ms) out.push_back(std::move(m));
  }
  return out;
}

MergeStats merge_records(StoreApi& dst, const StoreApi& src) {
  MergeStats stats;
  for (const std::string& fp : src.fingerprints()) {
    if (dst.contains(fp)) {
      ++stats.present;
      continue;
    }
    const std::optional<std::string> payload = src.get(fp);
    if (!payload) {
      ++stats.corrupt;
      continue;
    }
    dst.put(fp, *payload);
    ++stats.copied;
  }
  return stats;
}

std::unique_ptr<LayeredStore> open_store(
    const std::string& dir, const std::vector<std::string>& substituters,
    bool create) {
  std::vector<std::unique_ptr<StoreApi>> layers;
  layers.push_back(std::make_unique<LocalDirStore>(dir, create));
  layers.push_back(std::make_unique<SegmentStore>(dir));
  for (const std::string& sub : substituters) {
    if (!store_exists(sub)) {
      throw std::invalid_argument("open_store: substituter '" + sub +
                                  "' is not a store (no objects/ or "
                                  "segments/ directory)");
    }
    layers.push_back(std::make_unique<LocalDirStore>(sub, /*create=*/false));
    layers.push_back(std::make_unique<SegmentStore>(sub));
  }
  return std::make_unique<LayeredStore>(std::move(layers));
}

}  // namespace falvolt::store
